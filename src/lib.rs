//! Workspace-root helper crate for the FBMPK reproduction.
//!
//! This crate exists to host the repository-level `examples/` and `tests/`
//! directories required by the project layout; the actual functionality lives
//! in the `fbmpk*` crates under `crates/`.
pub use fbmpk;
pub use fbmpk_gen;
pub use fbmpk_memsim;
pub use fbmpk_parallel;
pub use fbmpk_reorder;
pub use fbmpk_solvers;
pub use fbmpk_sparse;
