//! Benches for the inspector–executor tuning layer: the kernel-variant
//! space (scalar vs unrolled vs row-split vs SELL-C-σ), the partitioning
//! strategies (uniform chunks vs weight-balanced vs merge-path), and the
//! end-to-end tuned plan against the scalar baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fbmpk::{TuneOptions, TunedPlan};
use fbmpk_bench::runner::start_vector;
use fbmpk_bench::BenchConfig;
use fbmpk_parallel::partition::{
    balance_by_weight, chunk_ranges, merge_balance_by_weight, merge_path_partition,
};
use fbmpk_sparse::sellcs::SellCs;
use fbmpk_sparse::spmv::{spmv, spmv_rows_rowsplit, spmv_unrolled4};

fn bench_kernel_variants(c: &mut Criterion) {
    let cfg = BenchConfig::smoke();
    // One regular mesh matrix and one skewed power-law matrix: the two
    // regimes the cost model distinguishes.
    for name in ["pwtk", "cage14"] {
        let a = fbmpk_gen::suite::suite_entry(name).unwrap().generate(cfg.scale, cfg.seed);
        let n = a.nrows();
        let x = start_vector(n);
        let mut y = vec![0.0; n];
        let mut group = c.benchmark_group(format!("kernel_variants/{name}"));
        group.sample_size(20);
        group.bench_function("csr_scalar", |b| b.iter(|| spmv(&a, &x, &mut y)));
        group.bench_function("csr_unrolled4", |b| b.iter(|| spmv_unrolled4(&a, &x, &mut y)));
        group.bench_function("csr_rowsplit", |b| {
            b.iter(|| spmv_rows_rowsplit(&a, &x, &mut y, 0, n, 4))
        });
        let sell = SellCs::from_csr(&a, 8, 64);
        group.bench_function("sell_8_64", |b| b.iter(|| sell.spmv(&x, &mut y)));
        group.finish();
    }
}

fn bench_partitioning(c: &mut Criterion) {
    let cfg = BenchConfig::smoke();
    let a = fbmpk_gen::suite::suite_entry("cage14").unwrap().generate(cfg.scale, cfg.seed);
    let n = a.nrows();
    let weights: Vec<usize> = (0..n).map(|r| a.row_nnz(r) + 1).collect();
    let mut group = c.benchmark_group("partitioning");
    group.sample_size(20);
    for parts in [4usize, 16] {
        group.bench_with_input(BenchmarkId::new("chunk", parts), &parts, |b, &p| {
            b.iter(|| std::hint::black_box(chunk_ranges(n, p)))
        });
        group.bench_with_input(BenchmarkId::new("greedy_weight", parts), &parts, |b, &p| {
            b.iter(|| std::hint::black_box(balance_by_weight(&weights, p)))
        });
        group.bench_with_input(BenchmarkId::new("merge_weight", parts), &parts, |b, &p| {
            b.iter(|| std::hint::black_box(merge_balance_by_weight(&weights, p)))
        });
        group.bench_with_input(BenchmarkId::new("merge_row_ptr", parts), &parts, |b, &p| {
            b.iter(|| std::hint::black_box(merge_path_partition(a.row_ptr(), p)))
        });
    }
    group.finish();
}

fn bench_tuned_plan(c: &mut Criterion) {
    let cfg = BenchConfig::smoke();
    for name in ["pwtk", "G3_circuit"] {
        let a = fbmpk_gen::suite::suite_entry(name).unwrap().generate(cfg.scale, cfg.seed);
        let n = a.nrows();
        let x = start_vector(n);
        let mut y = vec![0.0; n];
        let plan = TunedPlan::new(
            &a,
            TuneOptions { nthreads: 1, probe: true, probe_reps: 3, ..Default::default() },
        );
        let mut group = c.benchmark_group(format!("tuned_plan/{name}"));
        group.sample_size(20);
        group.bench_function("scalar_baseline", |b| b.iter(|| plan.spmv_scalar(&x, &mut y)));
        group.bench_function(format!("tuned[{}]", plan.variant()), |b| {
            b.iter(|| plan.spmv(&x, &mut y))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_kernel_variants, bench_partitioning, bench_tuned_plan);
criterion_main!(benches);
