//! Fig. 7 as a Criterion bench: baseline MPK vs FBMPK at `k = 5` on a
//! representative subset of the suite (full sweep: `repro fig7`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fbmpk::{FbmpkOptions, FbmpkPlan, StandardMpk};
use fbmpk_bench::runner::{abmc_params, start_vector};
use fbmpk_bench::BenchConfig;

const SUBSET: [&str; 4] = ["afshell10", "audikw_1", "G3_circuit", "cage14"];

fn bench_fig7(c: &mut Criterion) {
    let cfg = BenchConfig::smoke();
    let k = 5;
    let mut group = c.benchmark_group("fig7_k5");
    group.sample_size(10);
    for name in SUBSET {
        let entry = fbmpk_gen::suite::suite_entry(name).expect("suite entry");
        let a = entry.generate(cfg.scale, cfg.seed);
        let n = a.nrows();
        let x0 = start_vector(n);
        let baseline = StandardMpk::new(&a, cfg.threads).expect("square");
        let mut opts = FbmpkOptions::parallel(cfg.threads);
        opts.reorder = Some(abmc_params(n));
        let plan = FbmpkPlan::new(&a, opts).expect("square");
        group.bench_with_input(BenchmarkId::new("baseline", name), &x0, |b, x0| {
            b.iter(|| std::hint::black_box(baseline.power(x0, k)))
        });
        group.bench_with_input(BenchmarkId::new("fbmpk", name), &x0, |b, x0| {
            b.iter(|| std::hint::black_box(plan.power(x0, k)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
