//! Micro/ablation benches for the design choices DESIGN.md calls out:
//! SpMV storage formats (CSR vs SELL-C-σ), ABMC blocking strategies,
//! coloring orderings, and preprocessing stages.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fbmpk_bench::runner::start_vector;
use fbmpk_bench::BenchConfig;
use fbmpk_reorder::{
    coloring::{greedy_coloring, ColoringOrdering},
    graph::Graph,
    Abmc, AbmcParams, BlockingStrategy,
};
use fbmpk_sparse::sellcs::SellCs;
use fbmpk_sparse::spmv::spmv;
use fbmpk_sparse::TriangularSplit;

fn bench_spmv_formats(c: &mut Criterion) {
    let cfg = BenchConfig::smoke();
    let a = fbmpk_gen::suite::suite_entry("pwtk").unwrap().generate(cfg.scale, cfg.seed);
    let n = a.nrows();
    let x = start_vector(n);
    let mut y = vec![0.0; n];
    let mut group = c.benchmark_group("spmv_formats");
    group.sample_size(20);
    group.bench_function("csr", |b| b.iter(|| spmv(&a, &x, &mut y)));
    for (chunk, sigma) in [(8usize, 0usize), (8, 64)] {
        let s = SellCs::from_csr(&a, chunk, sigma);
        group.bench_with_input(
            BenchmarkId::new("sell_c_sigma", format!("C{chunk}_s{sigma}")),
            &s,
            |b, s| b.iter(|| s.spmv(&x, &mut y)),
        );
    }
    group.finish();
}

fn bench_abmc_strategies(c: &mut Criterion) {
    let cfg = BenchConfig::smoke();
    let a = fbmpk_gen::suite::suite_entry("G3_circuit").unwrap().generate(cfg.scale, cfg.seed);
    let mut group = c.benchmark_group("abmc_blocking");
    group.sample_size(10);
    for (label, strategy) in
        [("contiguous", BlockingStrategy::Contiguous), ("aggregated", BlockingStrategy::Aggregated)]
    {
        group.bench_function(label, |b| {
            b.iter(|| {
                std::hint::black_box(Abmc::new(
                    &a,
                    AbmcParams { nblocks: 128, strategy, ..Default::default() },
                ))
            })
        });
    }
    group.finish();
}

fn bench_coloring_orderings(c: &mut Criterion) {
    let cfg = BenchConfig::smoke();
    let a = fbmpk_gen::suite::suite_entry("cage14").unwrap().generate(cfg.scale, cfg.seed);
    let g = Graph::from_matrix(&a);
    let mut group = c.benchmark_group("coloring_orderings");
    group.sample_size(10);
    for (label, ord) in [
        ("natural", ColoringOrdering::Natural),
        ("largest_degree_first", ColoringOrdering::LargestDegreeFirst),
        ("smallest_last", ColoringOrdering::SmallestLast),
    ] {
        group.bench_function(label, |b| b.iter(|| std::hint::black_box(greedy_coloring(&g, ord))));
    }
    group.finish();
}

fn bench_preprocessing(c: &mut Criterion) {
    let cfg = BenchConfig::smoke();
    let a = fbmpk_gen::suite::suite_entry("Serena").unwrap().generate(cfg.scale, cfg.seed);
    let mut group = c.benchmark_group("preprocessing");
    group.sample_size(10);
    group.bench_function("triangular_split", |b| {
        b.iter(|| std::hint::black_box(TriangularSplit::split(&a).unwrap()))
    });
    group.bench_function("rcm", |b| b.iter(|| std::hint::black_box(fbmpk_reorder::rcm(&a))));
    group.finish();
}

fn bench_symgs_and_spmm(c: &mut Criterion) {
    use fbmpk::{FbmpkOptions, FbmpkPlan};
    use fbmpk_sparse::spmm::{spmm, MultiVec};
    let cfg = BenchConfig::smoke();
    let a = fbmpk_gen::suite::suite_entry("ldoor").unwrap().generate(cfg.scale, cfg.seed);
    let n = a.nrows();
    let mut group = c.benchmark_group("kernels_extra");
    group.sample_size(20);
    // SYMGS sweep vs one SpMV (same traffic shape: L, U, D once each).
    let plan = FbmpkPlan::new(&a, FbmpkOptions::default()).unwrap();
    let b = start_vector(n);
    let mut x = vec![0.0; n];
    group.bench_function("symgs_sweep", |bch| bch.iter(|| plan.symgs_sweep(&b, &mut x)));
    // SpMM with m = 4 vs 4 sequential SpMVs: matrix-read amortization.
    let cols: Vec<Vec<f64>> = (0..4).map(|_| start_vector(n)).collect();
    let xm = MultiVec::from_columns(&cols);
    let mut ym = MultiVec::zeros(n, 4);
    group.bench_function("spmm_m4", |bch| bch.iter(|| spmm(&a, &xm, &mut ym)));
    let mut y = vec![0.0; n];
    group.bench_function("spmv_x4", |bch| {
        bch.iter(|| {
            for col in &cols {
                spmv(&a, col, &mut y);
            }
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_spmv_formats,
    bench_abmc_strategies,
    bench_coloring_orderings,
    bench_preprocessing,
    bench_symgs_and_spmm
);
criterion_main!(benches);
