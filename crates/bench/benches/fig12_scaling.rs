//! Fig. 12 as a Criterion bench: FBMPK thread scaling at `k = 5`
//! (normalized speedup curves: `repro fig12`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fbmpk::{FbmpkOptions, FbmpkPlan};
use fbmpk_bench::runner::{abmc_params, start_vector};
use fbmpk_bench::BenchConfig;

fn bench_fig12(c: &mut Criterion) {
    let cfg = BenchConfig::smoke();
    let k = 5;
    let entry = fbmpk_gen::suite::suite_entry("inline_1").expect("suite entry");
    let a = entry.generate(cfg.scale, cfg.seed);
    let n = a.nrows();
    let x0 = start_vector(n);
    let mut group = c.benchmark_group("fig12_scaling_inline_1");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        let mut opts =
            if threads == 1 { FbmpkOptions::default() } else { FbmpkOptions::parallel(threads) };
        opts.reorder = Some(abmc_params(n));
        let plan = FbmpkPlan::new(&a, opts).expect("square");
        group.bench_with_input(BenchmarkId::new("fbmpk", threads), &x0, |b, x0| {
            b.iter(|| std::hint::black_box(plan.power(x0, k)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig12);
criterion_main!(benches);
