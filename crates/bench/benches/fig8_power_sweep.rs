//! Fig. 8 as a Criterion bench: the power-`k` sweep on two contrasting
//! inputs — dense-block FEM (audikw-like) where FBMPK shines, and the
//! ultra-sparse circuit class where vector traffic limits the win.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fbmpk::{FbmpkOptions, FbmpkPlan, StandardMpk};
use fbmpk_bench::runner::{abmc_params, start_vector};
use fbmpk_bench::BenchConfig;

fn bench_fig8(c: &mut Criterion) {
    let cfg = BenchConfig::smoke();
    for name in ["audikw_1", "G3_circuit"] {
        let entry = fbmpk_gen::suite::suite_entry(name).expect("suite entry");
        let a = entry.generate(cfg.scale, cfg.seed);
        let n = a.nrows();
        let x0 = start_vector(n);
        let baseline = StandardMpk::new(&a, cfg.threads).expect("square");
        let mut opts = FbmpkOptions::parallel(cfg.threads);
        opts.reorder = Some(abmc_params(n));
        let plan = FbmpkPlan::new(&a, opts).expect("square");
        let mut group = c.benchmark_group(format!("fig8_{name}"));
        group.sample_size(10);
        for k in [3usize, 5, 7, 9] {
            group.bench_with_input(BenchmarkId::new("baseline", k), &k, |b, &k| {
                b.iter(|| std::hint::black_box(baseline.power(&x0, k)))
            });
            group.bench_with_input(BenchmarkId::new("fbmpk", k), &k, |b, &k| {
                b.iter(|| std::hint::black_box(plan.power(&x0, k)))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
