//! Fig. 10 as a Criterion bench: baseline vs FB (split vectors) vs FB+BtB
//! (interleaved vectors), `k = 5`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fbmpk::{FbmpkOptions, FbmpkPlan, StandardMpk, VectorLayout};
use fbmpk_bench::runner::{abmc_params, start_vector};
use fbmpk_bench::BenchConfig;

fn bench_fig10(c: &mut Criterion) {
    let cfg = BenchConfig::smoke();
    let k = 5;
    let mut group = c.benchmark_group("fig10_ablation");
    group.sample_size(10);
    for name in ["afshell10", "pwtk"] {
        let entry = fbmpk_gen::suite::suite_entry(name).expect("suite entry");
        let a = entry.generate(cfg.scale, cfg.seed);
        let n = a.nrows();
        let x0 = start_vector(n);
        let baseline = StandardMpk::new(&a, cfg.threads).expect("square");
        let mk = |layout| {
            let mut opts = FbmpkOptions::parallel(cfg.threads);
            opts.reorder = Some(abmc_params(n));
            opts.layout = layout;
            FbmpkPlan::new(&a, opts).expect("square")
        };
        let fb = mk(VectorLayout::Split);
        let btb = mk(VectorLayout::BackToBack);
        group.bench_with_input(BenchmarkId::new("baseline", name), &x0, |b, x0| {
            b.iter(|| std::hint::black_box(baseline.power(x0, k)))
        });
        group.bench_with_input(BenchmarkId::new("fb", name), &x0, |b, x0| {
            b.iter(|| std::hint::black_box(fb.power(x0, k)))
        });
        group.bench_with_input(BenchmarkId::new("fb_btb", name), &x0, |b, x0| {
            b.iter(|| std::hint::black_box(btb.power(x0, k)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
