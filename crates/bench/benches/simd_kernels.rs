//! Scalar vs unrolled vs SIMD kernel micro-benches (DESIGN.md §12).
//!
//! Three groups, one per storage/stream shape the lane kernels cover:
//!
//! * `simd_spmv` — plain CSR row dots (scalar, 4-way unrolled, dispatched
//!   lanes) on a suite matrix,
//! * `simd_btb` — the FB-sweep dual-stream dot over an interleaved
//!   `xy[2n]` vector, scalar fallback vs dispatched,
//! * `simd_sell` — SELL-C-σ chunk MAC, scalar fallback vs dispatched.
//!
//! Run with and without `--features simd` to compare the fallback against
//! the vector paths; on hosts without AVX2/NEON the dispatched rows
//! measure the (bit-identical) scalar lanes, so the comparison is a no-op
//! rather than a lie.

use criterion::{criterion_group, criterion_main, Criterion};
use fbmpk_bench::runner::start_vector;
use fbmpk_bench::BenchConfig;
use fbmpk_sparse::sellcs::SellCs;
use fbmpk_sparse::simd;
use fbmpk_sparse::spmv::{spmv_rows, spmv_rows_unrolled4};

fn suite_matrix() -> fbmpk_sparse::Csr {
    let cfg = BenchConfig::smoke();
    fbmpk_gen::suite::suite_entry("pwtk").unwrap().generate(cfg.scale, cfg.seed)
}

fn bench_spmv_variants(c: &mut Criterion) {
    let a = suite_matrix();
    let n = a.nrows();
    let x = start_vector(n);
    let mut y = vec![0.0; n];
    let mut group = c.benchmark_group("simd_spmv");
    group.sample_size(20);
    group.bench_function("scalar", |b| b.iter(|| spmv_rows(&a, &x, &mut y, 0, n)));
    group.bench_function("unrolled4", |b| b.iter(|| spmv_rows_unrolled4(&a, &x, &mut y, 0, n)));
    group.bench_function(simd::detect().tag(), |b| {
        b.iter(|| simd::spmv_rows_simd(&a, &x, &mut y, 0, n))
    });
    group.finish();
}

fn bench_btb_dual_dot(c: &mut Criterion) {
    let a = suite_matrix();
    let n = a.nrows();
    let xy: Vec<f64> = (0..2 * n).map(|i| 1.0 + 0.001 * (i % 97) as f64).collect();
    let row_ptr = a.row_ptr();
    let col_idx = a.col_idx();
    let values = a.values();
    let mut group = c.benchmark_group("simd_btb");
    group.sample_size(20);
    group.bench_function("scalar", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for r in 0..n {
                let (lo, hi) = (row_ptr[r], row_ptr[r + 1]);
                let (e, o) =
                    simd::btb_dual_dot_scalar(&col_idx[lo..hi], &values[lo..hi], &xy, 0.0, 0.0);
                acc += e + o;
            }
            std::hint::black_box(acc)
        })
    });
    group.bench_function(simd::detect().tag(), |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for r in 0..n {
                let (lo, hi) = (row_ptr[r], row_ptr[r + 1]);
                let (e, o) = simd::btb_dual_dot(&col_idx[lo..hi], &values[lo..hi], &xy, 0.0, 0.0);
                acc += e + o;
            }
            std::hint::black_box(acc)
        })
    });
    group.finish();
}

fn bench_sell_mac(c: &mut Criterion) {
    let a = suite_matrix();
    let n = a.nrows();
    let s = SellCs::from_csr(&a, 8, 64);
    let x = start_vector(n);
    let mut y = vec![0.0; n];
    let mut group = c.benchmark_group("simd_sell");
    group.sample_size(20);
    // SellCs::spmv dispatches internally; the scalar row is the whole-CSR
    // scalar loop as the format-free baseline.
    group.bench_function("csr-scalar", |b| b.iter(|| spmv_rows(&a, &x, &mut y, 0, n)));
    group.bench_function(format!("sell-{}", simd::detect().tag()), |b| {
        b.iter(|| s.spmv(&x, &mut y))
    });
    group.finish();
}

criterion_group!(benches, bench_spmv_variants, bench_btb_dual_dot, bench_sell_mac);
criterion_main!(benches);
