//! Host platform probe — our stand-in for Table I.
//!
//! The paper evaluates on FT 2000+, ThunderX2, Kunpeng 920 and a Xeon Gold
//! 6230R. We run on whatever host executes the reproduction and record its
//! characteristics next to the paper's, so EXPERIMENTS.md can state exactly
//! what hardware produced our numbers — and so bandwidth/traffic numbers
//! in profile reports are interpretable against the host's cache sizes
//! and core topology (read from sysfs, absent gracefully elsewhere).

use crate::report::Json;
use std::path::Path;

/// The real sysfs CPU root this module reads in production; tests point
/// the `*_at` probes at a fabricated directory tree instead.
pub const SYSFS_CPU_ROOT: &str = "/sys/devices/system/cpu";

/// One cache level as sysfs describes it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheInfo {
    /// Cache level (1, 2, 3, …).
    pub level: u32,
    /// `Data`, `Instruction`, or `Unified`.
    pub cache_type: String,
    /// Size in bytes.
    pub size_bytes: u64,
    /// Number of distinct caches of this (level, type) across the machine
    /// — e.g. one L3 shared by all cores counts 1, per-core L1d counts
    /// one per core.
    pub count: usize,
}

/// Host hardware/software description.
#[derive(Debug, Clone)]
pub struct Platform {
    /// CPU model string (from `/proc/cpuinfo` where available).
    pub cpu_model: String,
    /// Logical CPUs visible to the process.
    pub logical_cpus: usize,
    /// Physical cores (distinct `core_id` per package; 0 when sysfs is
    /// unavailable).
    pub physical_cores: usize,
    /// CPU packages/sockets (distinct `physical_package_id`; 0 unknown).
    pub packages: usize,
    /// Cache hierarchy, deduplicated per (level, type), sorted by level.
    pub caches: Vec<CacheInfo>,
    /// Target architecture.
    pub arch: &'static str,
    /// Operating system.
    pub os: &'static str,
    /// Total memory in GiB (0 when unknown).
    pub mem_gib: f64,
}

impl Platform {
    /// The last-level cache size in bytes (the largest unified cache), or
    /// 0 when the hierarchy is unknown. The profile harness uses it to
    /// pick cache-simulator configurations matching the host.
    pub fn llc_bytes(&self) -> u64 {
        self.caches
            .iter()
            .filter(|c| c.cache_type != "Instruction")
            .map(|c| c.size_bytes)
            .max()
            .unwrap_or(0)
    }

    /// JSON form embedded in every report so numbers stay interpretable
    /// when the JSON travels away from the host that produced it.
    ///
    /// Topology and cache facts that sysfs could not provide (containers
    /// with a masked `/sys`, partial ARM firmware tables, non-Linux
    /// hosts) are emitted as `null` — the record survives with explicit
    /// unknowns instead of being skipped or carrying fake zeroes.
    pub fn to_json(&self) -> Json {
        let opt_count = |v: usize| if v == 0 { Json::Null } else { Json::from(v) };
        Json::obj([
            ("cpu_model", Json::from(self.cpu_model.as_str())),
            ("logical_cpus", Json::from(self.logical_cpus)),
            ("physical_cores", opt_count(self.physical_cores)),
            ("packages", opt_count(self.packages)),
            (
                "caches",
                if self.caches.is_empty() {
                    Json::Null
                } else {
                    Json::Arr(
                        self.caches
                            .iter()
                            .map(|c| {
                                Json::obj([
                                    ("level", Json::from(c.level as usize)),
                                    ("type", Json::from(c.cache_type.as_str())),
                                    ("size_bytes", Json::from(c.size_bytes as usize)),
                                    ("count", Json::from(c.count)),
                                ])
                            })
                            .collect(),
                    )
                },
            ),
            ("arch", Json::from(self.arch)),
            ("os", Json::from(self.os)),
            ("mem_gib", Json::from(self.mem_gib)),
        ])
    }

    /// Short stable fingerprint of the hardware identity — the perf
    /// database keys cross-run comparisons on it so numbers from
    /// different machines are never gated against each other. Hashes the
    /// facts that determine memory behaviour (model, counts, cache
    /// hierarchy, arch), not volatile ones like total free memory.
    pub fn fingerprint(&self) -> String {
        let mut h = fbmpk::Fnv64::new();
        h.write_str("platform-v1")
            .write_str(&self.cpu_model)
            .write_usize(self.logical_cpus)
            .write_usize(self.physical_cores)
            .write_usize(self.packages)
            .write_str(self.arch);
        for c in &self.caches {
            h.write_u64(c.level as u64)
                .write_str(&c.cache_type)
                .write_u64(c.size_bytes)
                .write_usize(c.count);
        }
        format!("{:016x}", h.finish())
    }
}

/// Probes the current host.
pub fn probe() -> Platform {
    let cpu_model = std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|v| v.trim().to_string())
        })
        .unwrap_or_else(|| "unknown".to_string());
    let mem_gib = std::fs::read_to_string("/proc/meminfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("MemTotal"))
                .and_then(|l| l.split_whitespace().nth(1).and_then(|kb| kb.parse::<f64>().ok()))
        })
        .map(|kb| kb / 1024.0 / 1024.0)
        .unwrap_or(0.0);
    let (physical_cores, packages) = probe_topology_at(Path::new(SYSFS_CPU_ROOT));
    Platform {
        cpu_model,
        logical_cpus: std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
        physical_cores,
        packages,
        caches: probe_caches_at(Path::new(SYSFS_CPU_ROOT)),
        arch: std::env::consts::ARCH,
        os: std::env::consts::OS,
        mem_gib,
    }
}

/// Reads `(physical cores, packages)` from `<cpu_root>/cpu*/topology`;
/// `(0, 0)` when the root or the topology files are absent. Public with
/// an explicit root so the container/partial-sysfs degradation paths are
/// unit-testable against a fabricated directory tree.
pub fn probe_topology_at(cpu_root: &Path) -> (usize, usize) {
    let mut cores = std::collections::BTreeSet::new();
    let mut packages = std::collections::BTreeSet::new();
    let Ok(entries) = std::fs::read_dir(cpu_root) else {
        return (0, 0);
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if !name.starts_with("cpu") || !name[3..].chars().all(|c| c.is_ascii_digit()) {
            continue;
        }
        let topo = entry.path().join("topology");
        let read_id = |f: &str| {
            std::fs::read_to_string(topo.join(f)).ok().and_then(|s| s.trim().parse::<i64>().ok())
        };
        if let (Some(core), Some(pkg)) = (read_id("core_id"), read_id("physical_package_id")) {
            cores.insert((pkg, core));
            packages.insert(pkg);
        }
    }
    (cores.len(), packages.len())
}

/// Reads the cache hierarchy from `<cpu_root>/cpu*/cache/index*`,
/// collapsing identical (level, type, size) entries across CPUs into one
/// [`CacheInfo`] with a shared-instance count (distinct `shared_cpu_list`
/// values). Empty when the root is unavailable (non-Linux, sandboxes) or
/// the per-CPU `cache` directories are missing (containers, partial ARM
/// sysfs) — callers degrade to `null` fields, never skipped records.
pub fn probe_caches_at(cpu_root: &Path) -> Vec<CacheInfo> {
    // (level, type, size) -> set of shared_cpu_list strings.
    let mut seen: std::collections::BTreeMap<
        (u32, String, u64),
        std::collections::BTreeSet<String>,
    > = std::collections::BTreeMap::new();
    let Ok(cpus) = std::fs::read_dir(cpu_root) else {
        return Vec::new();
    };
    for cpu in cpus.flatten() {
        let name = cpu.file_name();
        let name = name.to_string_lossy();
        if !name.starts_with("cpu") || !name[3..].chars().all(|c| c.is_ascii_digit()) {
            continue;
        }
        let Ok(indices) = std::fs::read_dir(cpu.path().join("cache")) else {
            continue;
        };
        for idx in indices.flatten() {
            let dir = idx.path();
            let read = |f: &str| std::fs::read_to_string(dir.join(f)).ok();
            let Some(level) = read("level").and_then(|s| s.trim().parse::<u32>().ok()) else {
                continue;
            };
            let Some(ty) = read("type").map(|s| s.trim().to_string()) else { continue };
            let Some(size) = read("size").and_then(|s| parse_cache_size(s.trim())) else {
                continue;
            };
            let shared = read("shared_cpu_list")
                .map(|s| s.trim().to_string())
                .unwrap_or_else(|| name.to_string());
            seen.entry((level, ty, size)).or_default().insert(shared);
        }
    }
    seen.into_iter()
        .map(|((level, cache_type, size_bytes), instances)| CacheInfo {
            level,
            cache_type,
            size_bytes,
            count: instances.len(),
        })
        .collect()
}

/// Parses sysfs cache sizes: `"32K"`, `"1024K"`, `"36864K"`, `"2M"`, plain
/// bytes.
fn parse_cache_size(s: &str) -> Option<u64> {
    let (digits, mult) = match s.as_bytes().last()? {
        b'K' | b'k' => (&s[..s.len() - 1], 1024),
        b'M' | b'm' => (&s[..s.len() - 1], 1024 * 1024),
        b'G' | b'g' => (&s[..s.len() - 1], 1024 * 1024 * 1024),
        _ => (s, 1),
    };
    digits.parse::<u64>().ok().map(|v| v * mult)
}

/// Renders Table I: the paper's four platforms beside the reproduction
/// host.
pub fn platform_table() -> String {
    let host = probe();
    let mut out = String::new();
    out.push_str("Table I - evaluation platforms (paper) vs reproduction host\n");
    out.push_str("  paper: FT2000+   64 cores, 2.2GHz, 8 NUMA, L2 2MB, no L3\n");
    out.push_str("  paper: ThunderX2 32 cores, 2.5GHz, L3 32MB\n");
    out.push_str("  paper: KP920     64 cores, 2.6GHz, L3 64MB\n");
    out.push_str("  paper: Xeon 6230R 26 cores, 2.1GHz, L3 35.75MB\n");
    out.push_str(&format!(
        "  host : {} ({} logical cpus, {}, {}, {:.1} GiB RAM)\n",
        host.cpu_model, host.logical_cpus, host.arch, host.os, host.mem_gib
    ));
    if host.physical_cores > 0 {
        out.push_str(&format!(
            "         {} physical cores on {} package(s)\n",
            host.physical_cores, host.packages
        ));
    }
    for c in &host.caches {
        out.push_str(&format!(
            "         L{} {}: {} KiB x{}\n",
            c.level,
            c.cache_type,
            c.size_bytes / 1024,
            c.count
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_returns_sane_values() {
        let p = probe();
        assert!(p.logical_cpus >= 1);
        assert!(!p.cpu_model.is_empty());
        // Topology/caches may legitimately be absent (no sysfs); when
        // present they must be self-consistent.
        for c in &p.caches {
            assert!(c.level >= 1);
            assert!(c.size_bytes > 0);
            assert!(c.count >= 1);
        }
        if p.physical_cores > 0 {
            assert!(p.packages >= 1);
            assert!(p.physical_cores >= p.packages);
        }
    }

    #[test]
    fn table_mentions_all_platforms() {
        let t = platform_table();
        for name in ["FT2000+", "ThunderX2", "KP920", "Xeon", "host"] {
            assert!(t.contains(name), "missing {name}");
        }
    }

    #[test]
    fn cache_size_parsing() {
        assert_eq!(parse_cache_size("32K"), Some(32 * 1024));
        assert_eq!(parse_cache_size("2M"), Some(2 * 1024 * 1024));
        assert_eq!(parse_cache_size("512"), Some(512));
        assert_eq!(parse_cache_size(""), None);
        assert_eq!(parse_cache_size("xK"), None);
    }

    #[test]
    fn platform_json_has_cache_and_topology_fields() {
        let j = probe().to_json();
        assert!(j.get("cpu_model").is_some());
        // Fields are always present; unknown values degrade to null.
        let caches = j.get("caches").unwrap();
        assert!(caches.as_array().is_some() || *caches == Json::Null);
        let cores = j.get("physical_cores").unwrap();
        assert!(cores.as_f64().is_some() || *cores == Json::Null);
        // Round-trips through the parser.
        let text = j.to_pretty();
        assert_eq!(Json::parse(&text).unwrap(), j);
    }

    /// Builds a two-CPU fake sysfs tree; `with_cache` controls whether
    /// the per-CPU `cache/index*` directories exist (containers and some
    /// ARM firmware expose topology but no cache hierarchy).
    fn fake_sysfs(root: &std::path::Path, with_cache: bool) {
        for cpu in 0..2 {
            let topo = root.join(format!("cpu{cpu}/topology"));
            std::fs::create_dir_all(&topo).unwrap();
            std::fs::write(topo.join("core_id"), format!("{cpu}\n")).unwrap();
            std::fs::write(topo.join("physical_package_id"), "0\n").unwrap();
            if with_cache {
                let idx = root.join(format!("cpu{cpu}/cache/index0"));
                std::fs::create_dir_all(&idx).unwrap();
                std::fs::write(idx.join("level"), "1\n").unwrap();
                std::fs::write(idx.join("type"), "Data\n").unwrap();
                std::fs::write(idx.join("size"), "32K\n").unwrap();
                std::fs::write(idx.join("shared_cpu_list"), format!("{cpu}\n")).unwrap();
            }
        }
        // Non-CPU entries that must be ignored, like the real sysfs has.
        std::fs::create_dir_all(root.join("cpufreq")).unwrap();
    }

    #[test]
    fn fake_sysfs_root_probes_topology_and_caches() {
        let root = std::env::temp_dir().join("fbmpk-fake-sysfs-full");
        std::fs::remove_dir_all(&root).ok();
        fake_sysfs(&root, true);
        assert_eq!(probe_topology_at(&root), (2, 1));
        let caches = probe_caches_at(&root);
        assert_eq!(caches.len(), 1);
        assert_eq!(caches[0].size_bytes, 32 * 1024);
        assert_eq!(caches[0].count, 2);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn missing_cache_dirs_degrade_to_null_fields_not_skipped_records() {
        let root = std::env::temp_dir().join("fbmpk-fake-sysfs-nocache");
        std::fs::remove_dir_all(&root).ok();
        fake_sysfs(&root, false);
        // Topology still read; caches empty rather than an error.
        assert_eq!(probe_topology_at(&root), (2, 1));
        assert!(probe_caches_at(&root).is_empty());
        // A platform built from that state serializes with explicit
        // nulls — the record survives.
        let p = Platform {
            cpu_model: "container-cpu".into(),
            logical_cpus: 2,
            physical_cores: 0,
            packages: 0,
            caches: probe_caches_at(&root),
            arch: "aarch64",
            os: "linux",
            mem_gib: 0.0,
        };
        let j = p.to_json();
        assert_eq!(j.get("caches"), Some(&Json::Null));
        assert_eq!(j.get("physical_cores"), Some(&Json::Null));
        assert_eq!(j.get("packages"), Some(&Json::Null));
        assert_eq!(Json::parse(&j.to_compact()).unwrap(), j);
        assert_eq!(p.llc_bytes(), 0);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn absent_root_probes_to_unknowns() {
        let root = std::env::temp_dir().join("fbmpk-fake-sysfs-does-not-exist");
        assert_eq!(probe_topology_at(&root), (0, 0));
        assert!(probe_caches_at(&root).is_empty());
    }

    #[test]
    fn fingerprint_is_stable_and_cache_sensitive() {
        let mut p = Platform {
            cpu_model: "x".into(),
            logical_cpus: 4,
            physical_cores: 2,
            packages: 1,
            caches: vec![CacheInfo {
                level: 3,
                cache_type: "Unified".into(),
                size_bytes: 8 << 20,
                count: 1,
            }],
            arch: "x86_64",
            os: "linux",
            mem_gib: 16.0,
        };
        let a = p.fingerprint();
        assert_eq!(a.len(), 16);
        assert_eq!(a, p.fingerprint());
        // Memory total is volatile and excluded.
        p.mem_gib = 32.0;
        assert_eq!(a, p.fingerprint());
        p.caches[0].size_bytes = 16 << 20;
        assert_ne!(a, p.fingerprint());
    }

    #[test]
    fn llc_is_largest_data_or_unified_cache() {
        let p = Platform {
            cpu_model: "x".into(),
            logical_cpus: 1,
            physical_cores: 1,
            packages: 1,
            caches: vec![
                CacheInfo { level: 1, cache_type: "Data".into(), size_bytes: 32 << 10, count: 4 },
                CacheInfo {
                    level: 1,
                    cache_type: "Instruction".into(),
                    size_bytes: 1 << 30,
                    count: 4,
                },
                CacheInfo { level: 3, cache_type: "Unified".into(), size_bytes: 8 << 20, count: 1 },
            ],
            arch: "x86_64",
            os: "linux",
            mem_gib: 1.0,
        };
        assert_eq!(p.llc_bytes(), 8 << 20);
    }
}
