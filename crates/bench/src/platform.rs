//! Host platform probe — our stand-in for Table I.
//!
//! The paper evaluates on FT 2000+, ThunderX2, Kunpeng 920 and a Xeon Gold
//! 6230R. We run on whatever host executes the reproduction and record its
//! characteristics next to the paper's, so EXPERIMENTS.md can state exactly
//! what hardware produced our numbers.

/// Host hardware/software description.
#[derive(Debug, Clone)]
pub struct Platform {
    /// CPU model string (from `/proc/cpuinfo` where available).
    pub cpu_model: String,
    /// Logical CPUs visible to the process.
    pub logical_cpus: usize,
    /// Target architecture.
    pub arch: &'static str,
    /// Operating system.
    pub os: &'static str,
    /// Total memory in GiB (0 when unknown).
    pub mem_gib: f64,
}

/// Probes the current host.
pub fn probe() -> Platform {
    let cpu_model = std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|v| v.trim().to_string())
        })
        .unwrap_or_else(|| "unknown".to_string());
    let mem_gib = std::fs::read_to_string("/proc/meminfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("MemTotal"))
                .and_then(|l| l.split_whitespace().nth(1).and_then(|kb| kb.parse::<f64>().ok()))
        })
        .map(|kb| kb / 1024.0 / 1024.0)
        .unwrap_or(0.0);
    Platform {
        cpu_model,
        logical_cpus: std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
        arch: std::env::consts::ARCH,
        os: std::env::consts::OS,
        mem_gib,
    }
}

/// Renders Table I: the paper's four platforms beside the reproduction
/// host.
pub fn platform_table() -> String {
    let host = probe();
    let mut out = String::new();
    out.push_str("Table I - evaluation platforms (paper) vs reproduction host\n");
    out.push_str("  paper: FT2000+   64 cores, 2.2GHz, 8 NUMA, L2 2MB, no L3\n");
    out.push_str("  paper: ThunderX2 32 cores, 2.5GHz, L3 32MB\n");
    out.push_str("  paper: KP920     64 cores, 2.6GHz, L3 64MB\n");
    out.push_str("  paper: Xeon 6230R 26 cores, 2.1GHz, L3 35.75MB\n");
    out.push_str(&format!(
        "  host : {} ({} logical cpus, {}, {}, {:.1} GiB RAM)\n",
        host.cpu_model, host.logical_cpus, host.arch, host.os, host.mem_gib
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_returns_sane_values() {
        let p = probe();
        assert!(p.logical_cpus >= 1);
        assert!(!p.cpu_model.is_empty());
    }

    #[test]
    fn table_mentions_all_platforms() {
        let t = platform_table();
        for name in ["FT2000+", "ThunderX2", "KP920", "Xeon", "host"] {
            assert!(t.contains(name), "missing {name}");
        }
    }
}
