//! Result emission: aligned console tables, CSV files, and JSON dumps.

use std::io::Write;
use std::path::Path;

/// Renders an aligned text table.
pub fn format_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let emit_row = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(&format!("{:<width$}", cell, width = widths[i] + 2));
        }
        out.push('\n');
    };
    emit_row(&mut out, &header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let total: usize = widths.iter().map(|w| w + 2).sum();
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        emit_row(&mut out, row);
    }
    out
}

/// Writes rows as CSV.
///
/// # Errors
/// Propagates I/O failures.
pub fn write_csv(path: &Path, header: &[&str], rows: &[Vec<String>]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{}", header.join(","))?;
    for row in rows {
        // Quote cells containing commas.
        let cells: Vec<String> = row
            .iter()
            .map(|c| if c.contains(',') { format!("\"{c}\"") } else { c.clone() })
            .collect();
        writeln!(f, "{}", cells.join(","))?;
    }
    Ok(())
}

/// A JSON document built by hand (serde is unavailable offline).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for object literals.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    fn render(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    // Integral values print without a trailing ".0" so the
                    // output matches what serde_json would have emitted for
                    // integer-typed fields.
                    if v.fract() == 0.0 && v.abs() < 9.0e15 {
                        out.push_str(&format!("{}", *v as i64));
                    } else {
                        out.push_str(&format!("{v}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for ch in s.chars() {
                    match ch {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_in);
                    item.render(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&pad_in);
                    Json::Str(k.clone()).render(out, indent + 1);
                    out.push_str(": ");
                    v.render(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Pretty-prints the document.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, 0);
        out.push('\n');
        out
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

/// Writes a [`Json`] document as pretty JSON.
///
/// # Errors
/// Propagates I/O failures.
pub fn write_json(path: &Path, value: &Json) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, value.to_pretty())
}

/// Geometric mean of a nonempty slice of positive values.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    let s: f64 = values.iter().map(|v| v.max(1e-300).ln()).sum();
    (s / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = format_table(
            &["name", "value"],
            &[vec!["a".into(), "1.5".into()], vec!["longer-name".into(), "2".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("longer-name"));
        // Columns line up: "value" header and "1.5" start at same offset.
        let col = lines[0].find("value").unwrap();
        assert_eq!(&lines[2][col..col + 3], "1.5");
    }

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join("fbmpk-bench-test");
        let path = dir.join("t.csv");
        write_csv(&path, &["a", "b"], &[vec!["1".into(), "x,y".into()]]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,\"x,y\"\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn json_pretty_output() {
        let doc = Json::obj([
            ("name", Json::from("a\"b")),
            ("n", Json::from(42usize)),
            ("ratio", Json::from(1.5f64)),
            ("items", Json::Arr(vec![Json::from(1.0), Json::Null])),
            ("empty", Json::Arr(vec![])),
        ]);
        let s = doc.to_pretty();
        assert!(s.contains("\"name\": \"a\\\"b\""));
        assert!(s.contains("\"n\": 42"));
        assert!(s.contains("\"ratio\": 1.5"));
        assert!(s.contains("\"empty\": []"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn geomean_basic() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn geomean_empty_panics() {
        geomean(&[]);
    }
}
