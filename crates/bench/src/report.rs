//! Result emission: aligned console tables, CSV files, and JSON dumps.

use std::io::Write;
use std::path::Path;

/// Renders an aligned text table.
pub fn format_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let emit_row = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(&format!("{:<width$}", cell, width = widths[i] + 2));
        }
        out.push('\n');
    };
    emit_row(&mut out, &header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let total: usize = widths.iter().map(|w| w + 2).sum();
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        emit_row(&mut out, row);
    }
    out
}

/// Writes rows as CSV.
///
/// # Errors
/// Propagates I/O failures.
pub fn write_csv(path: &Path, header: &[&str], rows: &[Vec<String>]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{}", header.join(","))?;
    for row in rows {
        // Quote cells containing commas.
        let cells: Vec<String> = row
            .iter()
            .map(|c| if c.contains(',') { format!("\"{c}\"") } else { c.clone() })
            .collect();
        writeln!(f, "{}", cells.join(","))?;
    }
    Ok(())
}

/// A JSON document built by hand (serde is unavailable offline).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for object literals.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    fn render(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    // Integral values print without a trailing ".0" so the
                    // output matches what serde_json would have emitted for
                    // integer-typed fields.
                    if v.fract() == 0.0 && v.abs() < 9.0e15 {
                        out.push_str(&format!("{}", *v as i64));
                    } else {
                        out.push_str(&format!("{v}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for ch in s.chars() {
                    match ch {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_in);
                    item.render(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&pad_in);
                    Json::Str(k.clone()).render(out, indent + 1);
                    out.push_str(": ");
                    v.render(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Pretty-prints the document.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders on a single line with no padding — the JSONL form the perf
    /// database appends, where one record must stay one line so a
    /// truncated tail write can only ever corrupt the final record.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.render_compact(&mut out);
        out
    }

    fn render_compact(&self, out: &mut String) {
        match self {
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).render_compact(out);
                    out.push(':');
                    v.render_compact(out);
                }
                out.push('}');
            }
            // Scalars render identically in both modes (numbers already
            // emit `null` for NaN/±inf, strings escape control chars — so
            // a compact line can never contain a raw newline).
            other => other.render(out, 0),
        }
    }

    /// Field lookup on an object (None for other variants / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The boolean payload, when this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, when this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document (recursive descent; strict — rejects
    /// trailing input, trailing commas, and unescaped control characters).
    /// Used by the profile smoke test to validate emitted trace files
    /// without a serde dependency.
    ///
    /// # Errors
    /// A human-readable message with the byte offset of the failure.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        skip_ws(bytes, &mut pos);
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(value)
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::Str(s) => s,
                    _ => return Err(format!("object key must be a string at byte {pos}")),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                skip_ws(b, pos);
                fields.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                skip_ws(b, pos);
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b't') => parse_literal(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Surrogates don't appear in our own output; map
                        // them to the replacement character rather than
                        // failing on foreign files.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x20 => {
                return Err(format!("unescaped control character at byte {pos}"))
            }
            Some(&c) if c < 0x80 => {
                out.push(c as char);
                *pos += 1;
            }
            Some(&c) => {
                // Decode exactly one multi-byte UTF-8 scalar; validating
                // only its own bytes keeps the parser linear in the input.
                let len = match c {
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    0xF0..=0xF7 => 4,
                    _ => return Err(format!("invalid UTF-8 at byte {pos}")),
                };
                let seq = b
                    .get(*pos..*pos + len)
                    .ok_or_else(|| format!("truncated UTF-8 at byte {pos}"))?;
                let s = std::str::from_utf8(seq).map_err(|e| e.to_string())?;
                out.push(s.chars().next().expect("non-empty by construction"));
                *pos += len;
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    if *pos == start {
        return Err(format!("expected a value at byte {start}"));
    }
    std::str::from_utf8(&b[start..*pos])
        .map_err(|e| e.to_string())?
        .parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number at byte {start}"))
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

/// Writes a [`Json`] document as pretty JSON.
///
/// # Errors
/// Propagates I/O failures.
pub fn write_json(path: &Path, value: &Json) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, value.to_pretty())
}

/// Geometric mean of a slice of positive values.
///
/// An empty slice yields `1.0` — the multiplicative identity — rather
/// than NaN, so aggregates over experiments that produced no rows (e.g.
/// a filtered suite) stay finite instead of poisoning JSON reports.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let s: f64 = values.iter().map(|v| v.max(1e-300).ln()).sum();
    (s / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = format_table(
            &["name", "value"],
            &[vec!["a".into(), "1.5".into()], vec!["longer-name".into(), "2".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("longer-name"));
        // Columns line up: "value" header and "1.5" start at same offset.
        let col = lines[0].find("value").unwrap();
        assert_eq!(&lines[2][col..col + 3], "1.5");
    }

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join("fbmpk-bench-test");
        let path = dir.join("t.csv");
        write_csv(&path, &["a", "b"], &[vec!["1".into(), "x,y".into()]]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,\"x,y\"\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn json_pretty_output() {
        let doc = Json::obj([
            ("name", Json::from("a\"b")),
            ("n", Json::from(42usize)),
            ("ratio", Json::from(1.5f64)),
            ("items", Json::Arr(vec![Json::from(1.0), Json::Null])),
            ("empty", Json::Arr(vec![])),
        ]);
        let s = doc.to_pretty();
        assert!(s.contains("\"name\": \"a\\\"b\""));
        assert!(s.contains("\"n\": 42"));
        assert!(s.contains("\"ratio\": 1.5"));
        assert!(s.contains("\"empty\": []"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn geomean_basic() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_empty_is_identity() {
        assert_eq!(geomean(&[]), 1.0);
    }

    #[test]
    fn json_parse_round_trip() {
        let doc = Json::obj([
            ("name", Json::from("a\"b\\c\nd")),
            ("n", Json::from(42usize)),
            ("neg", Json::Num(-1.5e3)),
            ("flag", Json::from(true)),
            ("nothing", Json::Null),
            ("items", Json::Arr(vec![Json::from(1.0), Json::Null, Json::from("x")])),
            ("empty_arr", Json::Arr(vec![])),
            ("nested", Json::obj([("k", Json::from(0.25f64))])),
        ]);
        let parsed = Json::parse(&doc.to_pretty()).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn json_parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} trailing").is_err());
        assert!(Json::parse("'single'").is_err());
    }

    #[test]
    fn non_finite_floats_emit_null_not_invalid_literals() {
        // A naive `format!("{v}")` would write `NaN`/`inf`, which no JSON
        // parser accepts; both render modes must degrade to `null`.
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(Json::Num(v).to_compact(), "null");
            assert_eq!(Json::Num(v).to_pretty(), "null\n");
        }
        let doc = Json::obj([("t", Json::Num(f64::NAN)), ("ok", Json::from(1.5f64))]);
        let parsed = Json::parse(&doc.to_compact()).unwrap();
        assert_eq!(parsed.get("t"), Some(&Json::Null));
        assert_eq!(parsed.get("ok").and_then(Json::as_f64), Some(1.5));
    }

    #[test]
    fn float_values_round_trip_exactly() {
        for v in [1.5e-300, 0.1 + 0.2, 9.0e15, -1.0 / 3.0, 6.02214076e23, 1e-12] {
            let parsed = Json::parse(&Json::Num(v).to_compact()).unwrap();
            assert_eq!(parsed.as_f64(), Some(v), "round-trip broke for {v}");
        }
    }

    #[test]
    fn compact_is_single_line_and_round_trips() {
        let doc = Json::obj([
            ("name", Json::from("a\"b\nc")),
            ("n", Json::from(42usize)),
            ("xs", Json::Arr(vec![Json::from(1.5), Json::Null, Json::from(true)])),
            ("nested", Json::obj([("k", Json::Arr(vec![]))])),
        ]);
        let line = doc.to_compact();
        assert!(!line.contains('\n'), "JSONL record must stay one line: {line:?}");
        assert_eq!(Json::parse(&line).unwrap(), doc);
        assert_eq!(
            line,
            "{\"name\":\"a\\\"b\\nc\",\"n\":42,\"xs\":[1.5,null,true],\"nested\":{\"k\":[]}}"
        );
    }

    #[test]
    fn json_accessors() {
        let doc = Json::obj([
            ("s", Json::from("hi")),
            ("v", Json::from(2.0f64)),
            ("a", Json::Arr(vec![Json::from(1.0)])),
        ]);
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("hi"));
        assert_eq!(doc.get("v").and_then(Json::as_f64), Some(2.0));
        assert_eq!(doc.get("a").and_then(Json::as_array).map(|a| a.len()), Some(1));
        assert!(doc.get("missing").is_none());
        assert!(doc.get("s").unwrap().as_f64().is_none());
    }
}
