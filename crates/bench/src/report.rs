//! Result emission: aligned console tables, CSV files, and JSON dumps.

use serde::Serialize;
use std::io::Write;
use std::path::Path;

/// Renders an aligned text table.
pub fn format_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let emit_row = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(&format!("{:<width$}", cell, width = widths[i] + 2));
        }
        out.push('\n');
    };
    emit_row(&mut out, &header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let total: usize = widths.iter().map(|w| w + 2).sum();
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        emit_row(&mut out, row);
    }
    out
}

/// Writes rows as CSV.
///
/// # Errors
/// Propagates I/O failures.
pub fn write_csv(
    path: &Path,
    header: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{}", header.join(","))?;
    for row in rows {
        // Quote cells containing commas.
        let cells: Vec<String> = row
            .iter()
            .map(|c| if c.contains(',') { format!("\"{c}\"") } else { c.clone() })
            .collect();
        writeln!(f, "{}", cells.join(","))?;
    }
    Ok(())
}

/// Writes any serializable result set as pretty JSON.
///
/// # Errors
/// Propagates I/O and serialization failures.
pub fn write_json<T: Serialize>(path: &Path, value: &T) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let s = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    std::fs::write(path, s)
}

/// Geometric mean of a nonempty slice of positive values.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    let s: f64 = values.iter().map(|v| v.max(1e-300).ln()).sum();
    (s / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = format_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1.5".into()],
                vec!["longer-name".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("longer-name"));
        // Columns line up: "value" header and "1.5" start at same offset.
        let col = lines[0].find("value").unwrap();
        assert_eq!(&lines[2][col..col + 3], "1.5");
    }

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join("fbmpk-bench-test");
        let path = dir.join("t.csv");
        write_csv(&path, &["a", "b"], &[vec!["1".into(), "x,y".into()]]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,\"x,y\"\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn geomean_basic() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn geomean_empty_panics() {
        geomean(&[]);
    }
}
