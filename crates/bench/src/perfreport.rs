//! Reading the run database back: trend tables, revision comparison,
//! the regression gate, and a self-contained HTML report.
//!
//! Everything here is pure data → text so it is unit-testable without
//! spawning the `repro` binary; the binary's `history` / `compare` /
//! `gate` / `report` subcommands are thin shells over these functions.
//!
//! Gate semantics (deliberately conservative, see DESIGN.md §10): a
//! configuration *regresses* only when the current median exceeds the
//! baseline median by more than the relative threshold **and** the two
//! runs' bootstrap confidence intervals do not overlap. Either test
//! alone misfires on shared runners — the threshold alone flags noise
//! spikes, CI separation alone flags microscopic-but-real drifts that
//! nobody should block a merge on.

use crate::perfdb::RunRecord;
use crate::report::format_table;
use crate::stats;
use std::collections::BTreeSet;

/// One configuration's records in append (chronological) order.
#[derive(Debug)]
pub struct ConfigSeries<'a> {
    /// The grouping key (`RunRecord::config_key`).
    pub key: String,
    /// Human label from the newest record.
    pub label: String,
    /// Records in file order (oldest first).
    pub records: Vec<&'a RunRecord>,
}

/// Groups records by configuration key, preserving first-seen order so
/// reports are stable across re-renders.
pub fn group_by_config(records: &[RunRecord]) -> Vec<ConfigSeries<'_>> {
    let mut series: Vec<ConfigSeries> = Vec::new();
    for rec in records {
        match series.iter_mut().find(|s| s.key == rec.config_key) {
            Some(s) => {
                s.records.push(rec);
                s.label = rec.label();
            }
            None => series.push(ConfigSeries {
                key: rec.config_key.clone(),
                label: rec.label(),
                records: vec![rec],
            }),
        }
    }
    series
}

/// The newest record of `series` for a given git revision.
pub fn latest_for_rev<'a>(series: &ConfigSeries<'a>, rev: &str) -> Option<&'a RunRecord> {
    series.records.iter().rev().find(|r| r.git_rev == rev).copied()
}

/// Seconds rendered with a unit a human can scan (`1.23 ms`, `45.6 µs`).
pub fn format_time_s(s: f64) -> String {
    if !s.is_finite() {
        return "n/a".to_string();
    }
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

/// `repro history`: per-configuration trend across revisions.
pub fn history_table(records: &[RunRecord]) -> String {
    if records.is_empty() {
        return "perf history: no records (run some experiments first)\n".to_string();
    }
    let mut out = String::new();
    for series in group_by_config(records) {
        out.push_str(&format!("## {}  [{}]\n", series.label, series.key));
        let rows: Vec<Vec<String>> = series
            .records
            .iter()
            .map(|r| {
                vec![
                    r.git_rev.clone(),
                    format!("{}", r.unix_time_s),
                    format_time_s(r.median_s),
                    format!("[{} .. {}]", format_time_s(r.ci_lo_s), format_time_s(r.ci_hi_s)),
                    r.achieved_gbs.map_or("n/a".into(), |g| format!("{g:.2}")),
                    r.roofline_frac.map_or("n/a".into(), |f| format!("{:.1}%", f * 100.0)),
                    r.spec.wait_frac.map_or("n/a".into(), |w| format!("{:.1}%", w * 100.0)),
                    format!("{}", r.reps),
                ]
            })
            .collect();
        out.push_str(&format_table(
            &["rev", "time", "median", "95% CI", "GB/s", "roofline", "wait", "reps"],
            &rows,
        ));
        out.push('\n');
    }
    out
}

/// One row of a revision comparison.
#[derive(Debug)]
pub struct CompareRow {
    /// Human label of the configuration.
    pub label: String,
    /// The grouping key.
    pub config_key: String,
    /// Baseline (rev A) median seconds.
    pub median_a: f64,
    /// Candidate (rev B) median seconds.
    pub median_b: f64,
    /// Speedup of B over A (`median_a / median_b`; > 1 = B faster).
    pub speedup: f64,
    /// Bootstrap CI of the speedup ratio, when both sides have samples.
    pub speedup_ci: Option<stats::Ci>,
}

/// `repro compare`: configurations measured at both revisions, with a
/// bootstrap CI on each speedup ratio. Configurations recorded on
/// different hardware (platform fingerprint mismatch) are excluded and
/// counted in `skipped_platform`.
#[derive(Debug)]
pub struct Comparison {
    /// Matched configurations.
    pub rows: Vec<CompareRow>,
    /// Configs present at only one of the two revisions.
    pub unmatched: usize,
    /// Configs skipped because the two records came from different
    /// hardware.
    pub skipped_platform: usize,
}

/// Builds the comparison between `rev_a` (baseline) and `rev_b`.
pub fn compare(records: &[RunRecord], rev_a: &str, rev_b: &str) -> Comparison {
    let mut rows = Vec::new();
    let mut unmatched = 0;
    let mut skipped_platform = 0;
    for series in group_by_config(records) {
        let (Some(a), Some(b)) = (latest_for_rev(&series, rev_a), latest_for_rev(&series, rev_b))
        else {
            unmatched += 1;
            continue;
        };
        if a.platform_fp != b.platform_fp {
            skipped_platform += 1;
            continue;
        }
        let speedup_ci = stats::bootstrap_ratio_ci(
            &a.samples_s,
            &b.samples_s,
            stats::DEFAULT_RESAMPLES,
            stats::DEFAULT_LEVEL,
        );
        rows.push(CompareRow {
            label: series.label.clone(),
            config_key: series.key.clone(),
            median_a: a.median_s,
            median_b: b.median_s,
            speedup: a.median_s / b.median_s.max(1e-300),
            speedup_ci,
        });
    }
    Comparison { rows, unmatched, skipped_platform }
}

/// Renders a [`Comparison`] as an aligned table.
pub fn compare_table(cmp: &Comparison, rev_a: &str, rev_b: &str) -> String {
    let mut out = format!("speedup of {rev_b} over {rev_a} (>1 = {rev_b} faster)\n");
    if cmp.rows.is_empty() {
        out.push_str("  no configurations measured at both revisions\n");
    } else {
        let rows: Vec<Vec<String>> = cmp
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.label.clone(),
                    format_time_s(r.median_a),
                    format_time_s(r.median_b),
                    format!("{:.3}x", r.speedup),
                    r.speedup_ci
                        .as_ref()
                        .map_or("n/a".into(), |ci| format!("[{:.3} .. {:.3}]", ci.lo, ci.hi)),
                ]
            })
            .collect();
        out.push_str(&format_table(&["config", rev_a, rev_b, "speedup", "95% CI"], &rows));
    }
    if cmp.unmatched > 0 {
        out.push_str(&format!("  ({} config(s) present at only one revision)\n", cmp.unmatched));
    }
    if cmp.skipped_platform > 0 {
        out.push_str(&format!(
            "  ({} config(s) skipped: recorded on different hardware)\n",
            cmp.skipped_platform
        ));
    }
    out
}

/// Gate tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct GateConfig {
    /// Relative slowdown that must be exceeded (`0.10` = 10 % slower).
    pub rel_threshold: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig { rel_threshold: 0.10 }
    }
}

/// One gated configuration.
#[derive(Debug)]
pub struct GateRow {
    /// Human label of the configuration.
    pub label: String,
    /// Baseline median seconds.
    pub base_median: f64,
    /// Current median seconds.
    pub cur_median: f64,
    /// Relative change (`cur/base - 1`; positive = slower).
    pub rel_change: f64,
    /// Whether the medians' confidence intervals are disjoint.
    pub ci_separated: bool,
    /// The verdict: over threshold **and** CI-separated.
    pub regressed: bool,
}

/// Gate verdict over the whole database.
#[derive(Debug)]
pub struct GateReport {
    /// Per-configuration rows (compared configs only).
    pub rows: Vec<GateRow>,
    /// Configs present at only one of the two revisions.
    pub unmatched: usize,
    /// Configs skipped for hardware mismatch.
    pub skipped_platform: usize,
}

impl GateReport {
    /// Regressed configuration count.
    pub fn regressions(&self) -> usize {
        self.rows.iter().filter(|r| r.regressed).count()
    }

    /// True when nothing regressed (an empty comparison passes — a gate
    /// with no baseline data must not block).
    pub fn passed(&self) -> bool {
        self.regressions() == 0
    }
}

/// `repro gate`: compares `current_rev` against `baseline_rev` and flags
/// regressions per the two-condition rule documented on this module.
pub fn gate(
    records: &[RunRecord],
    baseline_rev: &str,
    current_rev: &str,
    cfg: GateConfig,
) -> GateReport {
    let mut rows = Vec::new();
    let mut unmatched = 0;
    let mut skipped_platform = 0;
    for series in group_by_config(records) {
        let (Some(base), Some(cur)) =
            (latest_for_rev(&series, baseline_rev), latest_for_rev(&series, current_rev))
        else {
            unmatched += 1;
            continue;
        };
        if base.platform_fp != cur.platform_fp {
            skipped_platform += 1;
            continue;
        }
        let rel_change = cur.median_s / base.median_s.max(1e-300) - 1.0;
        let base_ci = stats::Ci { lo: base.ci_lo_s, hi: base.ci_hi_s, level: 0.95 };
        let cur_ci = stats::Ci { lo: cur.ci_lo_s, hi: cur.ci_hi_s, level: 0.95 };
        let ci_separated = !base_ci.overlaps(&cur_ci);
        rows.push(GateRow {
            label: series.label.clone(),
            base_median: base.median_s,
            cur_median: cur.median_s,
            rel_change,
            ci_separated,
            regressed: rel_change > cfg.rel_threshold && ci_separated,
        });
    }
    GateReport { rows, unmatched, skipped_platform }
}

/// Renders a [`GateReport`] as console text.
pub fn gate_table(report: &GateReport, baseline_rev: &str, current_rev: &str) -> String {
    let mut out = format!("regression gate: {current_rev} vs baseline {baseline_rev}\n");
    if report.rows.is_empty() {
        out.push_str("  no configurations measured at both revisions — gate passes vacuously\n");
    } else {
        let rows: Vec<Vec<String>> = report
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.label.clone(),
                    format_time_s(r.base_median),
                    format_time_s(r.cur_median),
                    format!("{:+.1}%", r.rel_change * 100.0),
                    if r.ci_separated { "yes" } else { "no" }.into(),
                    if r.regressed { "REGRESSED" } else { "ok" }.into(),
                ]
            })
            .collect();
        out.push_str(&format_table(
            &["config", "baseline", "current", "change", "CI separated", "verdict"],
            &rows,
        ));
    }
    if report.unmatched > 0 {
        out.push_str(&format!("  ({} config(s) present at only one revision)\n", report.unmatched));
    }
    if report.skipped_platform > 0 {
        out.push_str(&format!(
            "  ({} config(s) skipped: recorded on different hardware)\n",
            report.skipped_platform
        ));
    }
    out.push_str(&format!(
        "gate: {} compared, {} regression(s) -> {}\n",
        report.rows.len(),
        report.regressions(),
        if report.passed() { "PASS" } else { "FAIL" }
    ));
    out
}

// ---------------------------------------------------------------------------
// Self-contained HTML report
// ---------------------------------------------------------------------------

fn html_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;").replace('"', "&quot;")
}

/// Inline-SVG trend chart for one configuration: median per record with
/// a CI whisker per point. Pure geometry — no scripts, no external
/// resources, so the report opens identically from a CI artifact tarball
/// or a mail attachment.
fn trend_svg(series: &ConfigSeries<'_>) -> String {
    const W: f64 = 640.0;
    const H: f64 = 160.0;
    const PAD: f64 = 30.0;
    let recs = &series.records;
    let hi = recs.iter().map(|r| r.ci_hi_s.max(r.median_s)).fold(0.0f64, f64::max).max(1e-12);
    let lo = recs.iter().map(|r| r.ci_lo_s.min(r.median_s)).fold(f64::INFINITY, f64::min).min(hi);
    let span = (hi - lo).max(hi * 0.05).max(1e-15);
    let x = |i: usize| {
        if recs.len() <= 1 {
            W / 2.0
        } else {
            PAD + (W - 2.0 * PAD) * i as f64 / (recs.len() - 1) as f64
        }
    };
    let y = |v: f64| H - PAD - (H - 2.0 * PAD) * ((v - lo) / span).clamp(0.0, 1.0);
    let mut svg = format!(
        "<svg viewBox=\"0 0 {W} {H}\" width=\"{W}\" height=\"{H}\" \
         xmlns=\"http://www.w3.org/2000/svg\" role=\"img\">"
    );
    svg.push_str(&format!(
        "<rect x=\"0\" y=\"0\" width=\"{W}\" height=\"{H}\" fill=\"#fafafa\" stroke=\"#ddd\"/>"
    ));
    // Axis labels: best (min) and worst (max) of the plotted range.
    svg.push_str(&format!(
        "<text x=\"4\" y=\"{:.1}\" font-size=\"10\" fill=\"#666\">{}</text>\
         <text x=\"4\" y=\"{:.1}\" font-size=\"10\" fill=\"#666\">{}</text>",
        y(hi) + 4.0,
        html_escape(&format_time_s(hi)),
        y(lo) + 4.0,
        html_escape(&format_time_s(lo)),
    ));
    // CI whiskers.
    for (i, r) in recs.iter().enumerate() {
        svg.push_str(&format!(
            "<line x1=\"{0:.1}\" y1=\"{1:.1}\" x2=\"{0:.1}\" y2=\"{2:.1}\" \
             stroke=\"#9ecae1\" stroke-width=\"3\"/>",
            x(i),
            y(r.ci_lo_s),
            y(r.ci_hi_s)
        ));
    }
    // Median polyline + points + rev labels.
    let pts: Vec<String> =
        recs.iter().enumerate().map(|(i, r)| format!("{:.1},{:.1}", x(i), y(r.median_s))).collect();
    if pts.len() > 1 {
        svg.push_str(&format!(
            "<polyline points=\"{}\" fill=\"none\" stroke=\"#3182bd\" stroke-width=\"1.5\"/>",
            pts.join(" ")
        ));
    }
    for (i, r) in recs.iter().enumerate() {
        svg.push_str(&format!(
            "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"3\" fill=\"#3182bd\"/>\
             <text x=\"{:.1}\" y=\"{:.1}\" font-size=\"9\" fill=\"#666\" \
             text-anchor=\"middle\">{}</text>",
            x(i),
            y(r.median_s),
            x(i),
            H - 8.0,
            html_escape(&r.git_rev)
        ));
    }
    svg.push_str("</svg>");
    svg
}

/// Roofline scatter: each configuration's newest achieved GB/s as a
/// point, with the measured triad and gather ceilings as horizontal
/// reference lines.
fn roofline_svg(records: &[RunRecord]) -> Option<String> {
    const W: f64 = 640.0;
    const H: f64 = 220.0;
    const PAD: f64 = 30.0;
    let series = group_by_config(records);
    let pts: Vec<(&str, f64)> = series
        .iter()
        .filter_map(|s| {
            let r = s.records.last()?;
            Some((s.label.as_str(), r.achieved_gbs?))
        })
        .collect();
    if pts.is_empty() {
        return None;
    }
    let last_bw = records.iter().rev().find_map(|r| Some((r.triad_gbs?, r.gather_gbs?)));
    let top = pts
        .iter()
        .map(|&(_, g)| g)
        .chain(last_bw.iter().map(|&(t, _)| t))
        .fold(0.0f64, f64::max)
        .max(1e-9)
        * 1.1;
    let x = |i: usize| PAD + (W - 2.0 * PAD) * (i as f64 + 0.5) / pts.len() as f64;
    let y = |v: f64| H - PAD - (H - 2.0 * PAD) * (v / top).clamp(0.0, 1.0);
    let mut svg = format!(
        "<svg viewBox=\"0 0 {W} {H}\" width=\"{W}\" height=\"{H}\" \
         xmlns=\"http://www.w3.org/2000/svg\" role=\"img\">\
         <rect x=\"0\" y=\"0\" width=\"{W}\" height=\"{H}\" fill=\"#fafafa\" stroke=\"#ddd\"/>"
    );
    if let Some((triad, gather)) = last_bw {
        for (v, name, color) in
            [(triad, "triad ceiling", "#31a354"), (gather, "gather floor", "#e6550d")]
        {
            svg.push_str(&format!(
                "<line x1=\"{PAD}\" y1=\"{0:.1}\" x2=\"{1:.1}\" y2=\"{0:.1}\" stroke=\"{color}\" \
                 stroke-dasharray=\"6 3\"/>\
                 <text x=\"{PAD}\" y=\"{2:.1}\" font-size=\"10\" fill=\"{color}\">{name} \
                 {v:.1} GB/s</text>",
                y(v),
                W - PAD,
                y(v) - 4.0,
            ));
        }
    }
    for (i, (label, gbs)) in pts.iter().enumerate() {
        svg.push_str(&format!(
            "<circle cx=\"{0:.1}\" cy=\"{1:.1}\" r=\"4\" fill=\"#3182bd\"/>\
             <text x=\"{0:.1}\" y=\"{2:.1}\" font-size=\"9\" fill=\"#444\" \
             text-anchor=\"middle\">{3}</text>\
             <text x=\"{0:.1}\" y=\"{4:.1}\" font-size=\"9\" fill=\"#444\" \
             text-anchor=\"middle\">{5:.1}</text>",
            x(i),
            y(*gbs),
            H - 8.0,
            html_escape(label),
            y(*gbs) - 7.0,
            gbs,
        ));
    }
    svg.push_str("</svg>");
    Some(svg)
}

/// `repro report`: the whole database as one self-contained HTML page —
/// inline SVG only, no scripts, no external fetches.
pub fn html_report(records: &[RunRecord]) -> String {
    let mut html = String::from(
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
         <title>fbmpk performance history</title>\n\
         <style>body{font-family:sans-serif;margin:2em;max-width:60em}\
         h2{border-bottom:1px solid #ddd;padding-bottom:.2em}\
         code{background:#f3f3f3;padding:0 .3em}</style>\n</head>\n<body>\n\
         <h1>fbmpk performance history</h1>\n",
    );
    let revs: BTreeSet<&str> = records.iter().map(|r| r.git_rev.as_str()).collect();
    let platforms: BTreeSet<&str> = records.iter().map(|r| r.cpu_model.as_str()).collect();
    html.push_str(&format!(
        "<p>{} record(s), {} revision(s), {} platform(s).</p>\n",
        records.len(),
        revs.len(),
        platforms.len()
    ));
    if records.is_empty() {
        html.push_str("<p>The run database is empty — run an experiment first.</p>\n");
    }
    if let Some(svg) = roofline_svg(records) {
        html.push_str("<h2>Roofline: achieved vs measured ceilings</h2>\n");
        html.push_str(
            "<p>Achieved GB/s = modeled matrix bytes (§III-B) / measured median seconds; \
             ceilings are the host's measured STREAM-triad and random-gather bandwidths.</p>\n",
        );
        html.push_str(&svg);
        html.push('\n');
    }
    for series in group_by_config(records) {
        html.push_str(&format!(
            "<h2>{}</h2>\n<p>config <code>{}</code>, {} run(s)</p>\n",
            html_escape(&series.label),
            html_escape(&series.key),
            series.records.len()
        ));
        html.push_str(&trend_svg(&series));
        html.push('\n');
    }
    html.push_str("</body>\n</html>\n");
    html
}

// ---------------------------------------------------------------------------
// Attribution heatmap
// ---------------------------------------------------------------------------

/// Most blocks one attribution heatmap draws; denser plans show the
/// worst-ratio blocks (kept in block order) with an explicit note, so the
/// page stays readable and bounded regardless of the plan's block count.
pub const HEATMAP_MAX_BLOCKS: usize = 128;

/// Linear interpolation between two RGB colors.
fn lerp_rgb(a: (u8, u8, u8), b: (u8, u8, u8), t: f64) -> String {
    let t = t.clamp(0.0, 1.0);
    let c = |x: u8, y: u8| (x as f64 + (y as f64 - x as f64) * t).round() as u8;
    format!("#{:02x}{:02x}{:02x}", c(a.0, b.0), c(a.1, b.1), c(a.2, b.2))
}

/// Fill color for one achieved-over-modeled ratio: white at 1.0 (the
/// model is exact), toward green below (the cache kept more than the
/// model assumed), toward red above (excess traffic), saturating at 3×;
/// gray when the model predicts zero bytes for the cell.
fn ratio_color(ratio: Option<f64>) -> String {
    const WHITE: (u8, u8, u8) = (0xff, 0xff, 0xff);
    const GREEN: (u8, u8, u8) = (0x31, 0xa3, 0x54);
    const RED: (u8, u8, u8) = (0xde, 0x2d, 0x26);
    match ratio {
        None => "#eeeeee".into(),
        Some(r) if r <= 1.0 => lerp_rgb(WHITE, GREEN, 1.0 - r),
        Some(r) => lerp_rgb(WHITE, RED, (r - 1.0) / 2.0),
    }
}

/// One matrix's blocks × powers grid. Each cell is colored by its
/// achieved-over-modeled ratio — measured bytes when hardware counters
/// ran, simulated bytes otherwise.
fn attribution_grid_svg(case: &crate::runner::AttributionCase) -> String {
    let k = case.k.max(1);
    let all_blocks: Vec<u32> = case.report.blocks.iter().map(|b| b.block).collect();
    let blocks: Vec<u32> = if all_blocks.len() <= HEATMAP_MAX_BLOCKS {
        all_blocks
    } else {
        let mut worst: Vec<u32> =
            case.report.worst_blocks(HEATMAP_MAX_BLOCKS).iter().map(|b| b.block).collect();
        worst.sort_unstable();
        worst
    };
    let shown: std::collections::BTreeSet<u32> = blocks.iter().copied().collect();
    const LABEL_W: f64 = 56.0;
    const CELL_W: f64 = 72.0;
    const HEADER_H: f64 = 18.0;
    let cell_h: f64 = if blocks.len() <= 64 { 10.0 } else { 5.0 };
    let w = LABEL_W + CELL_W * k as f64 + 1.0;
    let h = HEADER_H + cell_h * blocks.len() as f64 + 1.0;
    let mut svg = format!(
        "<svg viewBox=\"0 0 {w} {h}\" width=\"{w}\" height=\"{h}\" \
         xmlns=\"http://www.w3.org/2000/svg\" role=\"img\">"
    );
    for p in 1..=k {
        svg.push_str(&format!(
            "<text x=\"{:.1}\" y=\"12\" font-size=\"10\" fill=\"#444\" \
             text-anchor=\"middle\">x^{p}</text>",
            LABEL_W + CELL_W * (p as f64 - 0.5),
        ));
    }
    for cell in case.report.cells.iter().filter(|c| shown.contains(&c.block)) {
        let bi = blocks.binary_search(&cell.block).unwrap_or(0);
        let x = LABEL_W + CELL_W * (cell.power as f64 - 1.0);
        let y = HEADER_H + cell_h * bi as f64;
        let achieved = cell.measured_bytes.unwrap_or(cell.simulated_bytes);
        let ratio = (cell.modeled_bytes > 0).then(|| achieved as f64 / cell.modeled_bytes as f64);
        svg.push_str(&format!(
            "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{CELL_W}\" height=\"{cell_h}\" \
             fill=\"{}\" stroke=\"#ddd\" stroke-width=\"0.3\"/>",
            ratio_color(ratio),
        ));
        // A row label once per block (its first power column).
        if cell.power == 1 && (cell_h >= 10.0 || bi % 8 == 0) {
            svg.push_str(&format!(
                "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"8\" fill=\"#666\" \
                 text-anchor=\"end\">b{}</text>",
                LABEL_W - 4.0,
                y + cell_h - 1.0,
                cell.block,
            ));
        }
    }
    svg.push_str("</svg>");
    svg
}

/// `repro attribution`: the reconciled byte ledgers as one self-contained
/// HTML page — a blocks × powers heatmap per matrix, colored by each
/// cell's achieved-over-modeled byte ratio (measured bytes when hardware
/// counters ran, cache-simulated bytes otherwise). Inline SVG only — no
/// scripts, no external fetches — so the page opens identically from a CI
/// artifact tarball.
pub fn attribution_heatmap_html(cases: &[crate::runner::AttributionCase]) -> String {
    let mut html = String::from(
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
         <title>fbmpk traffic attribution</title>\n\
         <style>body{font-family:sans-serif;margin:2em;max-width:70em}\
         h2{border-bottom:1px solid #ddd;padding-bottom:.2em}</style>\n</head>\n<body>\n\
         <h1>fbmpk traffic attribution</h1>\n\
         <p>Each grid is one matrix: rows are point-to-point schedule blocks, columns the \
         power each sweep is billed to (§III-B). White = the streaming model is exact; \
         red = excess traffic (saturating at 3×); green = fewer bytes than modeled; \
         gray = the model prices the cell at zero.</p>\n",
    );
    if cases.is_empty() {
        html.push_str("<p>No attribution cases — run <code>repro attribution</code>.</p>\n");
    }
    for case in cases {
        let measured = match case.report.measured_total {
            Some(m) => format!("{:.2} MB measured", m as f64 / 1e6),
            None => "hardware counters unavailable (simulated ratios shown)".to_string(),
        };
        let corr = case
            .report
            .excess_cut_correlation()
            .map(|c| format!("{c:.3}"))
            .unwrap_or_else(|| "n/a".into());
        html.push_str(&format!(
            "<h2>{}</h2>\n<p>{} blocks, k = {}; {:.2} MB modeled, {:.2} MB simulated \
             (ratio {:.3}); {}; corr(cut edges, excess) = {}.</p>\n",
            html_escape(&case.name),
            case.report.blocks.len(),
            case.k,
            case.modeled_matrix_bytes as f64 / 1e6,
            case.sim_dram_total as f64 / 1e6,
            case.traffic_vs_model,
            html_escape(&measured),
            corr,
        ));
        if case.report.blocks.len() > HEATMAP_MAX_BLOCKS {
            html.push_str(&format!(
                "<p>Showing the {HEATMAP_MAX_BLOCKS} worst blocks of {} by \
                 traffic-vs-model ratio.</p>\n",
                case.report.blocks.len()
            ));
        }
        html.push_str(&attribution_grid_svg(case));
        html.push('\n');
    }
    html.push_str("</body>\n</html>\n");
    html
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perfdb::{RecordCtx, RunRecord, RunSpec};
    use crate::platform::Platform;
    use crate::roofline::BandwidthProbe;

    fn platform() -> Platform {
        Platform {
            cpu_model: "test-cpu".into(),
            logical_cpus: 4,
            physical_cores: 2,
            packages: 1,
            caches: Vec::new(),
            arch: "x86_64",
            os: "linux",
            mem_gib: 8.0,
        }
    }

    fn ctx(rev: &str) -> RecordCtx {
        RecordCtx {
            git_rev: rev.into(),
            platform: platform(),
            bw: Some(BandwidthProbe {
                triad_gbs: 20.0,
                gather_gbs: 2.0,
                working_set_bytes: 1 << 20,
                reps: 1,
            }),
            scale: 0.002,
            reps: 5,
            unix_time_s: 1_700_000_000,
        }
    }

    fn spec(matrix: &str) -> RunSpec {
        RunSpec {
            experiment: "sync".into(),
            matrix: matrix.into(),
            kernel: "fbmpk".into(),
            sync: Some("barrier".into()),
            threads: 2,
            k: Some(5),
            options_fp: 1,
            wait_frac: Some(0.1),
            ipc: None,
            modeled_matrix_bytes: Some(1_000_000_000),
            fallbacks: None,
            cut_edges: None,
            simd: None,
            blocking: None,
            watchdog_fires: None,
            traffic_vs_model: None,
            latency_p50_ms: None,
            latency_p99_ms: None,
            shed_count: None,
        }
    }

    fn rec(rev: &str, matrix: &str, around_s: f64) -> RunRecord {
        // Tight, slightly jittered samples around `around_s`.
        let samples: Vec<f64> =
            (0..9).map(|i| around_s * (1.0 + 0.002 * (i as f64 - 4.0))).collect();
        RunRecord::new(&ctx(rev), spec(matrix), &samples).unwrap()
    }

    #[test]
    fn history_groups_by_config_and_orders_chronologically() {
        let records = vec![rec("r1", "a", 0.1), rec("r1", "b", 0.2), rec("r2", "a", 0.09)];
        let series = group_by_config(&records);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].records.len(), 2);
        assert_eq!(series[0].records[0].git_rev, "r1");
        assert_eq!(series[0].records[1].git_rev, "r2");
        let t = history_table(&records);
        assert!(t.contains("a fbmpk/barrier @2t"));
        assert!(t.contains("roofline"));
    }

    #[test]
    fn compare_reports_speedups_with_ci() {
        let records = vec![rec("r1", "a", 0.2), rec("r2", "a", 0.1), rec("r1", "only-r1", 0.3)];
        let cmp = compare(&records, "r1", "r2");
        assert_eq!(cmp.rows.len(), 1);
        assert_eq!(cmp.unmatched, 1);
        let row = &cmp.rows[0];
        assert!((row.speedup - 2.0).abs() < 0.05, "speedup {}", row.speedup);
        let ci = row.speedup_ci.as_ref().unwrap();
        assert!(ci.lo > 1.5 && ci.hi < 2.5, "ci [{} .. {}]", ci.lo, ci.hi);
        let table = compare_table(&cmp, "r1", "r2");
        assert!(table.contains("speedup"));
        assert!(table.contains('x'));
    }

    #[test]
    fn gate_flags_real_regressions_only() {
        // Config "slow" regresses 50 %; config "same" is identical noise.
        let records = vec![
            rec("base", "slow", 0.10),
            rec("base", "same", 0.10),
            rec("cur", "slow", 0.15),
            rec("cur", "same", 0.10),
        ];
        let report = gate(&records, "base", "cur", GateConfig::default());
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.regressions(), 1);
        assert!(!report.passed());
        let slow = report.rows.iter().find(|r| r.label.starts_with("slow")).unwrap();
        assert!(slow.regressed && slow.ci_separated);
        let same = report.rows.iter().find(|r| r.label.starts_with("same")).unwrap();
        assert!(!same.regressed);
        let text = gate_table(&report, "base", "cur");
        assert!(text.contains("REGRESSED"));
        assert!(text.contains("FAIL"));
    }

    #[test]
    fn gate_needs_both_threshold_and_ci_separation() {
        // 12% over threshold but hugely noisy samples -> overlapping CIs
        // -> not a regression.
        let noisy = |rev: &str, base: f64| {
            let samples: Vec<f64> =
                (0..9).map(|i| base * (1.0 + 0.4 * ((i % 3) as f64 - 1.0))).collect();
            RunRecord::new(&ctx(rev), spec("noisy"), &samples).unwrap()
        };
        let records = vec![noisy("base", 0.10), noisy("cur", 0.112)];
        let report = gate(&records, "base", "cur", GateConfig::default());
        assert_eq!(report.rows.len(), 1);
        assert!(report.rows[0].rel_change > 0.10);
        assert!(!report.rows[0].ci_separated);
        assert!(report.passed(), "noisy overlap must not gate");
    }

    #[test]
    fn gate_passes_vacuously_with_no_common_configs() {
        let records = vec![rec("base", "a", 0.1)];
        let report = gate(&records, "base", "cur", GateConfig::default());
        assert!(report.rows.is_empty());
        assert_eq!(report.unmatched, 1);
        assert!(report.passed());
        assert!(gate_table(&report, "base", "cur").contains("vacuously"));
    }

    #[test]
    fn gate_skips_cross_platform_comparisons() {
        let mut other = rec("cur", "a", 0.5);
        other.platform_fp = "ffffffffffffffff".into();
        let records = vec![rec("base", "a", 0.1), other];
        let report = gate(&records, "base", "cur", GateConfig::default());
        assert!(report.rows.is_empty());
        assert_eq!(report.skipped_platform, 1);
        assert!(report.passed());
    }

    #[test]
    fn html_report_is_self_contained_and_balanced() {
        let records = vec![rec("r1", "a", 0.1), rec("r2", "a", 0.09), rec("r1", "b", 0.2)];
        let html = html_report(&records);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.ends_with("</html>\n"));
        // Balanced svg tags, one trend chart per config + roofline.
        let opens = html.matches("<svg").count();
        let closes = html.matches("</svg>").count();
        assert_eq!(opens, closes);
        assert_eq!(opens, 3);
        // Self-contained: no scripts, no external fetches (the only URL
        // is the SVG xmlns declaration).
        assert!(!html.contains("<script"));
        assert!(!html.contains("src="));
        assert!(!html.contains("href="));
        assert!(!html.to_lowercase().contains("nan"));
        // Escaping: a label with markup-significant chars can't break out.
        let mut hostile = rec("r<evil>", "m&m", 0.1);
        hostile.cpu_model = "<b>cpu</b>".into();
        let h = html_report(&[hostile]);
        assert!(!h.contains("<evil>"));
        assert!(h.contains("&lt;evil&gt;") || h.contains("r&lt;evil&gt;"));
    }

    #[test]
    fn html_report_survives_empty_db() {
        let html = html_report(&[]);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("empty"));
        assert!(html.ends_with("</html>\n"));
    }

    #[test]
    fn time_formatting_picks_sane_units() {
        assert_eq!(format_time_s(2.5), "2.500 s");
        assert_eq!(format_time_s(0.0025), "2.500 ms");
        assert_eq!(format_time_s(2.5e-6), "2.5 µs");
        assert_eq!(format_time_s(f64::NAN), "n/a");
    }

    fn fab_attribution_case(name: &str, measured: bool) -> crate::runner::AttributionCase {
        use fbmpk_obs::{AttributionReport, BlockLedger, CellLedger};
        let k = 2usize;
        let mut cells = Vec::new();
        let mut blocks = Vec::new();
        for b in 0..2u32 {
            for p in 1..=k as u32 {
                cells.push(CellLedger {
                    block: b,
                    color: b % 2,
                    power: p,
                    modeled_bytes: 1000,
                    simulated_bytes: 1000 + 500 * b as u64,
                    measured_bytes: measured.then_some(1200),
                });
            }
            blocks.push(BlockLedger {
                block: b,
                color: b % 2,
                rows: 10,
                cut_edges: 3 * b as u64,
                modeled_bytes: 2000,
                simulated_bytes: 2000 + 1000 * b as u64,
                measured_bytes: measured.then_some(2400),
            });
        }
        crate::runner::AttributionCase {
            name: name.into(),
            threads: 2,
            k,
            report: AttributionReport::new(cells, blocks),
            sim_phase_bytes: vec![("forward", 3000), ("backward", 2500)],
            node_bytes: vec![(0, 5500)],
            sim_unattributed: 500,
            sim_dram_total: 6000,
            measured_unattributed: measured.then_some(100),
            measured_available: measured,
            traffic_vs_model: 1.5,
            t_p2p: 0.01,
            samples: vec![0.01],
            options_fp: 7,
            modeled_matrix_bytes: 4000,
            identical: true,
        }
    }

    #[test]
    fn attribution_heatmap_is_self_contained_and_balanced() {
        let cases = [fab_attribution_case("m&m", true), fab_attribution_case("plain", false)];
        let html = attribution_heatmap_html(&cases);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.ends_with("</html>\n"));
        assert_eq!(html.matches("<svg").count(), 2, "one grid per case");
        assert_eq!(html.matches("<svg").count(), html.matches("</svg>").count());
        assert!(!html.contains("<script"));
        assert!(!html.contains("src="));
        assert!(!html.contains("href="));
        // The hostile matrix name is escaped, the plain one is present.
        assert!(html.contains("m&amp;m") && html.contains("plain"));
        // The counter-less case states its degradation.
        assert!(html.contains("hardware counters unavailable"));
        // Power column headers cover 1..=k.
        assert!(html.contains("x^1") && html.contains("x^2"));
        // Empty input still renders a valid page.
        let empty = attribution_heatmap_html(&[]);
        assert!(empty.contains("No attribution cases"));
    }

    #[test]
    fn ratio_color_maps_extremes() {
        assert_eq!(ratio_color(None), "#eeeeee");
        assert_eq!(ratio_color(Some(1.0)), "#ffffff");
        assert_eq!(ratio_color(Some(0.0)), "#31a354");
        assert_eq!(ratio_color(Some(3.0)), "#de2d26");
        // Past saturation clamps rather than overflowing.
        assert_eq!(ratio_color(Some(30.0)), "#de2d26");
    }
}
