//! Experiment implementations — one function per paper table/figure.
//!
//! All timing experiments compare the standard MPK baseline and FBMPK on
//! the same thread pool size and the same synthetic suite; measurement
//! follows the paper's methodology (geometric mean over repetitions,
//! preprocessing excluded — §IV-C).

use crate::BenchConfig;
use fbmpk::{
    probe_llc_bytes, BlockingMode, FbmpkOptions, FbmpkPlan, KernelVariant, LevelBlockPlan,
    ObsOptions, StandardMpk, SyncMode, TuneOptions, TunedPlan, VectorLayout,
};
use fbmpk_gen::suite::SuiteEntry;
use fbmpk_memsim::{
    trace_fbmpk, trace_fbmpk_attributed, trace_level_blocked, trace_standard_mpk, CacheConfig,
    FbmpkTraceAttribution, TracedLayout,
};
use fbmpk_obs::{
    AttributionReport, BlockLedger, CellLedger, HwAttributionProbe, HwSample, HwSession,
    MeasuredLedger, Registry, Span, SpanKind, TraceBuilder,
};
use fbmpk_reorder::{
    balance_ratio, cut_edges, multilevel_blocks, Abmc, AbmcParams, BlockingStrategy, Graph,
};
use fbmpk_sparse::spmv::spmv;
use fbmpk_sparse::stats::MatrixStats;
use fbmpk_sparse::vecops::rel_err_inf;
use fbmpk_sparse::{Csr, TriangularSplit};
use std::time::Instant;

/// A generated suite input.
pub struct MatrixCase {
    /// The Table II entry this case instantiates.
    pub entry: SuiteEntry,
    /// The generated matrix at the configured scale.
    pub matrix: Csr,
}

/// Generates the full 14-matrix suite at the configured scale.
pub fn load_suite(cfg: &BenchConfig) -> Vec<MatrixCase> {
    fbmpk_gen::paper_suite()
        .into_iter()
        .map(|entry| {
            let matrix = entry.generate(cfg.scale, cfg.seed);
            MatrixCase { entry, matrix }
        })
        .collect()
}

/// Untimed warmup invocations before the measured repetitions of
/// [`time_geomean`] — enough to fault in pages, warm caches/branch
/// predictors, and let frequency scaling settle before the first
/// measurement enters the geomean.
pub const WARMUP_REPS: usize = 2;

/// A timing measurement that could not produce a number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimingError {
    /// `reps == 0` was requested — there is no honest value to return,
    /// and silently substituting one (the old behaviour clamped to 1 and
    /// timed anyway) hides a caller bug.
    ZeroReps,
}

impl std::fmt::Display for TimingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimingError::ZeroReps => write!(f, "timing requested with reps = 0"),
        }
    }
}

impl std::error::Error for TimingError {}

/// The result of one timing measurement: the paper's geomean aggregate
/// (§IV-C) *plus* every raw per-rep sample, in measurement order — the
/// perf database persists the samples so later analyses (bootstrap CIs,
/// cross-revision ratio tests) are not limited to one precomputed
/// aggregate.
#[derive(Debug, Clone)]
pub struct Timing {
    /// Geometric mean over [`Timing::samples`].
    pub geomean: f64,
    /// Per-rep wall-clock seconds (each clamped to ≥ 1 ps so a pathological
    /// zero-length measurement cannot poison log-space aggregation).
    pub samples: Vec<f64>,
}

/// Times `reps` invocations of `f` (after [`WARMUP_REPS`] untimed warmup
/// runs) and returns the geomean together with the raw samples.
///
/// # Errors
/// [`TimingError::ZeroReps`] when `reps == 0`.
pub fn time_geomean<F: FnMut()>(mut f: F, reps: usize) -> Result<Timing, TimingError> {
    if reps == 0 {
        return Err(TimingError::ZeroReps);
    }
    for _ in 0..WARMUP_REPS {
        f();
    }
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_secs_f64().max(1e-12));
    }
    let geomean = crate::report::geomean(&samples);
    Ok(Timing { geomean, samples })
}

/// Experiment-internal shorthand: [`BenchConfig`] clamps `reps` to ≥ 1 at
/// construction, so inside the experiment functions `reps == 0` is
/// unreachable and the error arm would only obscure the measurement code.
fn timed<F: FnMut()>(f: F, reps: usize) -> Timing {
    time_geomean(f, reps).expect("BenchConfig guarantees reps >= 1")
}

/// Deterministic non-trivial start vector.
pub fn start_vector(n: usize) -> Vec<f64> {
    (0..n).map(|i| 1.0 + 0.5 * ((i * 2_654_435_761usize) as f64 / usize::MAX as f64)).collect()
}

/// ABMC parameters used by all experiments: the paper's default of 512
/// blocks (clamped so tiny scaled matrices keep ≥ 2 rows per block), with
/// contiguous blocking — on this suite the BFS-aggregated blocking
/// scrambles the generators' already-local row numbering and loses more
/// gather locality than the coloring gains (see the `abmc_blocking`
/// criterion bench for the ablation).
pub fn abmc_params(n: usize) -> AbmcParams {
    AbmcParams {
        nblocks: 512.min(n / 2).max(1),
        strategy: fbmpk_reorder::BlockingStrategy::Contiguous,
        ..Default::default()
    }
}

/// Builds the FBMPK plan configuration the timing experiments use: the
/// serial pipeline (§III-B, no reordering needed) for one thread, the
/// ABMC-colored parallel pipeline (§III-D/E) otherwise.
pub fn fbmpk_options(n: usize, threads: usize, layout: VectorLayout) -> FbmpkOptions {
    if threads == 1 {
        FbmpkOptions { layout, ..Default::default() }
    } else {
        FbmpkOptions {
            nthreads: threads,
            reorder: Some(abmc_params(n)),
            layout,
            ..Default::default()
        }
    }
}

// ---------------------------------------------------------------- table 2

/// One row of Table II (paper values + generated realization).
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Matrix name.
    pub name: String,
    /// Generated dimension.
    pub rows: usize,
    /// Generated nonzero count.
    pub nnz: usize,
    /// Generated mean row density.
    pub nnz_per_row: f64,
    /// Paper dimension.
    pub paper_rows: usize,
    /// Paper `#nnz/N`.
    pub paper_nnz_per_row: f64,
    /// Whether the generated matrix is symmetric.
    pub symmetric: bool,
}

/// Reproduces Table II: the matrix inventory at the configured scale.
pub fn table2(cases: &[MatrixCase]) -> Vec<Table2Row> {
    cases
        .iter()
        .map(|c| {
            let s = MatrixStats::compute(&c.matrix);
            Table2Row {
                name: c.entry.name.to_string(),
                rows: s.nrows,
                nnz: s.nnz,
                nnz_per_row: s.nnz_per_row,
                paper_rows: c.entry.paper_rows,
                paper_nnz_per_row: c.entry.paper_nnz_per_row(),
                symmetric: s.symmetric,
            }
        })
        .collect()
}

// ----------------------------------------------------------------- fig 7

/// One bar of Fig. 7.
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    /// Matrix name.
    pub name: String,
    /// Power `k`.
    pub k: usize,
    /// Baseline (standard MPK) seconds.
    pub t_baseline: f64,
    /// FBMPK seconds.
    pub t_fbmpk: f64,
    /// `t_baseline / t_fbmpk`.
    pub speedup: f64,
    /// Raw per-rep baseline seconds (for the perf database).
    pub samples_baseline: Vec<f64>,
    /// Raw per-rep FBMPK seconds.
    pub samples_fbmpk: Vec<f64>,
    /// Stable fingerprint of the FBMPK plan options (perf-database key).
    pub options_fp: u64,
}

/// Measures FBMPK vs the standard baseline for one matrix and power.
pub fn measure_speedup(cfg: &BenchConfig, case: &MatrixCase, k: usize) -> SpeedupRow {
    let a = &case.matrix;
    let n = a.nrows();
    let x0 = start_vector(n);
    let baseline = StandardMpk::new(a, cfg.threads).expect("square");
    let opts = fbmpk_options(n, cfg.threads, VectorLayout::BackToBack);
    let options_fp = opts.config_fingerprint();
    let plan = FbmpkPlan::new(a, opts).expect("square");
    let baseline_t = timed(|| std::hint::black_box(baseline.power(&x0, k)).truncate(0), cfg.reps);
    let fbmpk_t = timed(|| std::hint::black_box(plan.power(&x0, k)).truncate(0), cfg.reps);
    SpeedupRow {
        name: case.entry.name.to_string(),
        k,
        t_baseline: baseline_t.geomean,
        t_fbmpk: fbmpk_t.geomean,
        speedup: baseline_t.geomean / fbmpk_t.geomean,
        samples_baseline: baseline_t.samples,
        samples_fbmpk: fbmpk_t.samples,
        options_fp,
    }
}

/// Reproduces Fig. 7: speedup of FBMPK over the baseline at `k = 5`.
pub fn fig7(cfg: &BenchConfig, cases: &[MatrixCase]) -> Vec<SpeedupRow> {
    cases.iter().map(|c| measure_speedup(cfg, c, 5)).collect()
}

/// Reproduces Fig. 8: speedup for `k = 3..=9` per matrix.
pub fn fig8(cfg: &BenchConfig, cases: &[MatrixCase]) -> Vec<SpeedupRow> {
    let mut rows = Vec::new();
    for c in cases {
        for k in 3..=9 {
            rows.push(measure_speedup(cfg, c, k));
        }
    }
    rows
}

// ----------------------------------------------------------------- fig 9

/// One bar of Fig. 9.
#[derive(Debug, Clone)]
pub struct Fig9Row {
    /// Matrix name.
    pub name: String,
    /// Power `k`.
    pub k: usize,
    /// Simulated DRAM bytes, standard MPK.
    pub dram_standard: u64,
    /// Simulated DRAM bytes, FBMPK.
    pub dram_fbmpk: u64,
    /// `dram_fbmpk / dram_standard` (the paper's y-axis).
    pub ratio: f64,
    /// The idealized `(k+1)/2k`.
    pub ideal: f64,
    /// Fraction of FBMPK's DRAM traffic attributed to vector arrays — the
    /// §V-C mechanism behind per-matrix variation.
    pub vector_fraction: f64,
}

/// Picks an LLC size for the replay: the paper's platforms hold roughly
/// 1/30 of the working set in LLC, so scale the simulated cache with the
/// matrix (clamped to [256 KiB, 64 MiB], rounded to a power of two).
pub fn scaled_llc(matrix_bytes: usize) -> CacheConfig {
    let target = (matrix_bytes / 30).clamp(256 << 10, 64 << 20);
    let size = target.next_power_of_two();
    CacheConfig { size_bytes: size, line_bytes: 64, assoc: 16 }
}

/// Reproduces Fig. 9: simulated DRAM traffic ratio for `k = 3, 6, 9`.
pub fn fig9(cases: &[MatrixCase]) -> Vec<Fig9Row> {
    let mut rows = Vec::new();
    for c in cases {
        let a = &c.matrix;
        let llc = [scaled_llc(a.nnz() * 12 + 8 * (a.nrows() + 1))];
        for k in [3usize, 6, 9] {
            let std = trace_standard_mpk(a, k, &llc);
            let fb = trace_fbmpk(a, k, TracedLayout::BackToBack, &llc);
            rows.push(Fig9Row {
                name: c.entry.name.to_string(),
                k,
                dram_standard: std.total(),
                dram_fbmpk: fb.total(),
                ratio: fb.total() as f64 / std.total() as f64,
                ideal: fbmpk::model::ideal_ratio(k),
                vector_fraction: fb.vector_fraction(),
            });
        }
    }
    rows
}

// ---------------------------------------------------------------- fig 10

/// One matrix of Fig. 10: ablation of the two optimizations.
#[derive(Debug, Clone)]
pub struct Fig10Row {
    /// Matrix name.
    pub name: String,
    /// Baseline seconds.
    pub t_baseline: f64,
    /// FB only (split vectors).
    pub speedup_fb: f64,
    /// FB + BtB (interleaved vectors).
    pub speedup_fb_btb: f64,
}

/// Reproduces Fig. 10: baseline vs FB vs FB+BtB at `k = 5`.
pub fn fig10(cfg: &BenchConfig, cases: &[MatrixCase]) -> Vec<Fig10Row> {
    let k = 5;
    cases
        .iter()
        .map(|c| {
            let a = &c.matrix;
            let n = a.nrows();
            let x0 = start_vector(n);
            let baseline = StandardMpk::new(a, cfg.threads).expect("square");
            let fb = FbmpkPlan::new(a, fbmpk_options(n, cfg.threads, VectorLayout::Split))
                .expect("square");
            let btb = FbmpkPlan::new(a, fbmpk_options(n, cfg.threads, VectorLayout::BackToBack))
                .expect("square");
            let t_baseline =
                timed(|| std::hint::black_box(baseline.power(&x0, k)).truncate(0), cfg.reps)
                    .geomean;
            let t_fb =
                timed(|| std::hint::black_box(fb.power(&x0, k)).truncate(0), cfg.reps).geomean;
            let t_btb =
                timed(|| std::hint::black_box(btb.power(&x0, k)).truncate(0), cfg.reps).geomean;
            Fig10Row {
                name: c.entry.name.to_string(),
                t_baseline,
                speedup_fb: t_baseline / t_fb,
                speedup_fb_btb: t_baseline / t_btb,
            }
        })
        .collect()
}

// --------------------------------------------------------------- table 3

/// One row of Table III.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Matrix name.
    pub name: String,
    /// `t_original / t_abmc` for a single SpMV — the paper's "slowdown"
    /// normalization, where values > 1 mean ABMC *improved* the SpMV.
    pub ratio: f64,
}

/// Reproduces Table III: single-SpMV performance on the ABMC-permuted
/// matrix, normalized to the original ordering.
pub fn table3(cfg: &BenchConfig, cases: &[MatrixCase]) -> Vec<Table3Row> {
    cases
        .iter()
        .map(|c| {
            let a = &c.matrix;
            let n = a.nrows();
            let abmc = Abmc::new(a, abmc_params(n));
            let b = abmc.apply(a);
            let x = start_vector(n);
            let xp = abmc.permutation().apply_vec_alloc(&x);
            let mut y = vec![0.0; n];
            let t_orig = timed(|| spmv(a, &x, &mut y), cfg.reps).geomean;
            let t_abmc = timed(|| spmv(&b, &xp, &mut y), cfg.reps).geomean;
            Table3Row { name: c.entry.name.to_string(), ratio: t_orig / t_abmc }
        })
        .collect()
}

// --------------------------------------------------------------- table 4

/// One row of Table IV.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Matrix name.
    pub name: String,
    /// Plain CSR bytes.
    pub csr_bytes: usize,
    /// Split `L + U + d` bytes.
    pub split_bytes: usize,
    /// `split / csr`.
    pub overhead: f64,
}

/// Reproduces Table IV: storage of the split format vs plain CSR.
pub fn table4(cases: &[MatrixCase]) -> Vec<Table4Row> {
    cases
        .iter()
        .map(|c| {
            let a = &c.matrix;
            let split = TriangularSplit::split(a).expect("square");
            let csr_bytes = TriangularSplit::csr_storage_bytes(a.nrows(), a.nnz());
            let split_bytes = split.storage_bytes();
            Table4Row {
                name: c.entry.name.to_string(),
                csr_bytes,
                split_bytes,
                overhead: split_bytes as f64 / csr_bytes as f64,
            }
        })
        .collect()
}

// ---------------------------------------------------------------- fig 11

/// One bar of Fig. 11.
#[derive(Debug, Clone)]
pub struct Fig11Row {
    /// Matrix name.
    pub name: String,
    /// ABMC reorder seconds (one-off).
    pub reorder_seconds: f64,
    /// Single-thread SpMV seconds.
    pub spmv_seconds: f64,
    /// Preprocessing cost expressed in SpMV invocations (the y-axis).
    pub n_spmvs: f64,
}

/// Reproduces Fig. 11: ABMC preprocessing cost normalized to single-thread
/// SpMV invocations.
pub fn fig11(cfg: &BenchConfig, cases: &[MatrixCase]) -> Vec<Fig11Row> {
    cases
        .iter()
        .map(|c| {
            let a = &c.matrix;
            let n = a.nrows();
            let t0 = Instant::now();
            let abmc = Abmc::new(a, abmc_params(n));
            let _b = abmc.apply(a);
            let reorder_seconds = t0.elapsed().as_secs_f64();
            let x = start_vector(n);
            let mut y = vec![0.0; n];
            let spmv_seconds = timed(|| spmv(a, &x, &mut y), cfg.reps).geomean;
            Fig11Row {
                name: c.entry.name.to_string(),
                reorder_seconds,
                spmv_seconds,
                n_spmvs: reorder_seconds / spmv_seconds,
            }
        })
        .collect()
}

// ---------------------------------------------------------------- fig 12

/// One point of Fig. 12.
#[derive(Debug, Clone)]
pub struct Fig12Row {
    /// Matrix name.
    pub name: String,
    /// Thread count.
    pub threads: usize,
    /// FBMPK speedup over the *single-threaded baseline MPK* (the paper's
    /// normalization).
    pub speedup: f64,
}

/// Reproduces Fig. 12: scalability at `k = 5` over a thread sweep.
pub fn fig12(cfg: &BenchConfig, cases: &[MatrixCase], threads: &[usize]) -> Vec<Fig12Row> {
    let k = 5;
    let mut rows = Vec::new();
    for c in cases {
        let a = &c.matrix;
        let n = a.nrows();
        let x0 = start_vector(n);
        let serial_baseline = StandardMpk::new(a, 1).expect("square");
        let t_serial =
            timed(|| std::hint::black_box(serial_baseline.power(&x0, k)).truncate(0), cfg.reps)
                .geomean;
        for &t in threads {
            let plan =
                FbmpkPlan::new(a, fbmpk_options(n, t, VectorLayout::BackToBack)).expect("square");
            let tt =
                timed(|| std::hint::black_box(plan.power(&x0, k)).truncate(0), cfg.reps).geomean;
            rows.push(Fig12Row {
                name: c.entry.name.to_string(),
                threads: t,
                speedup: t_serial / tt,
            });
        }
    }
    rows
}

// ------------------------------------------------------------- ablations

/// One point of the block-count ablation (paper §III-D: "The maximum
/// number of elements in each block can be set, with a trade-off between
/// performance and parallelism ... a default of either 512 or 1024").
#[derive(Debug, Clone)]
pub struct BlockAblationRow {
    /// Matrix name.
    pub name: String,
    /// Number of ABMC blocks requested.
    pub nblocks: usize,
    /// Colors produced (barrier count per sweep).
    pub ncolors: usize,
    /// Blocks in the widest color (available parallelism).
    pub max_color_width: usize,
    /// FBMPK seconds at `k = 5`.
    pub t_fbmpk: f64,
    /// Speedup over the baseline at the same thread count.
    pub speedup: f64,
}

/// Sweeps the ABMC block count, measuring the §III-D trade-off: more
/// blocks → more within-color parallelism but more colors/barriers and
/// less intra-block locality.
pub fn ablation_blocks(
    cfg: &BenchConfig,
    case: &MatrixCase,
    counts: &[usize],
) -> Vec<BlockAblationRow> {
    let a = &case.matrix;
    let n = a.nrows();
    let x0 = start_vector(n);
    let k = 5;
    let baseline = StandardMpk::new(a, cfg.threads).expect("square");
    let t_base =
        timed(|| std::hint::black_box(baseline.power(&x0, k)).truncate(0), cfg.reps).geomean;
    counts
        .iter()
        .map(|&nblocks| {
            let abmc = Abmc::new(
                a,
                AbmcParams {
                    nblocks: nblocks.min(n / 2).max(1),
                    strategy: fbmpk_reorder::BlockingStrategy::Contiguous,
                    ..Default::default()
                },
            );
            let (ncolors, width) = (abmc.ncolors(), abmc.max_color_width());
            let opts = FbmpkOptions {
                nthreads: cfg.threads,
                reorder: Some(AbmcParams {
                    nblocks: nblocks.min(n / 2).max(1),
                    strategy: fbmpk_reorder::BlockingStrategy::Contiguous,
                    ..Default::default()
                }),
                layout: VectorLayout::BackToBack,
                ..Default::default()
            };
            let plan = FbmpkPlan::new(a, opts).expect("square");
            let t_fbmpk =
                timed(|| std::hint::black_box(plan.power(&x0, k)).truncate(0), cfg.reps).geomean;
            BlockAblationRow {
                name: case.entry.name.to_string(),
                nblocks,
                ncolors,
                max_color_width: width,
                t_fbmpk,
                speedup: t_base / t_fbmpk,
            }
        })
        .collect()
}

// ------------------------------------------------------------------ sync

/// One point of the `repro sync` comparison: barrier-per-color vs
/// barrier-free point-to-point block synchronization on the same ABMC
/// reordering and thread count.
#[derive(Debug, Clone)]
pub struct SyncRow {
    /// Matrix name.
    pub name: String,
    /// Thread count.
    pub threads: usize,
    /// ABMC colors (barriers per sweep in [`SyncMode::ColorBarrier`]).
    pub ncolors: usize,
    /// ABMC blocks (synchronization granules in
    /// [`SyncMode::PointToPoint`]).
    pub nblocks: usize,
    /// Directed dependency edges in the per-block wait lists.
    pub dep_edges: usize,
    /// FBMPK seconds at `k = 5`, barrier mode.
    pub t_barrier: f64,
    /// FBMPK seconds at `k = 5`, point-to-point mode.
    pub t_p2p: f64,
    /// `t_barrier / t_p2p` (> 1 means point-to-point wins).
    pub speedup: f64,
    /// Whether the two modes produced bit-identical `A^k x0` — must always
    /// be `true`; reported so a regression is visible in the JSON.
    pub identical: bool,
    /// Raw per-rep barrier-mode seconds (for the perf database).
    pub samples_barrier: Vec<f64>,
    /// Raw per-rep point-to-point seconds.
    pub samples_p2p: Vec<f64>,
    /// §III-B modeled matrix bytes per `A^k x0` (same for both modes).
    pub modeled_matrix_bytes: u64,
    /// Stable fingerprint of the barrier-mode plan options.
    pub options_fp_barrier: u64,
    /// Stable fingerprint of the point-to-point plan options.
    pub options_fp_p2p: u64,
    /// Stall-watchdog fallbacks the point-to-point plan recorded during
    /// the measured reps (0 on a healthy run; nonzero marks the samples
    /// as degraded — some reps executed under the barrier schedule).
    pub fallbacks: u64,
}

/// Measures FBMPK power (`k = 5`) under both [`SyncMode`]s on the same
/// ABMC reordering, verifying bit-identical results before reporting the
/// timing ratio. The colored schedule is used even at one thread so both
/// modes traverse identical block structure at every point of the sweep.
pub fn sync_modes(cfg: &BenchConfig, cases: &[MatrixCase], threads: &[usize]) -> Vec<SyncRow> {
    let k = 5;
    let mut rows = Vec::new();
    for c in cases {
        let a = &c.matrix;
        let n = a.nrows();
        let x0 = start_vector(n);
        for &t in threads {
            let base = FbmpkOptions {
                nthreads: t,
                reorder: Some(abmc_params(n)),
                layout: VectorLayout::BackToBack,
                ..Default::default()
            };
            let barrier_opts = FbmpkOptions { sync: SyncMode::ColorBarrier, ..base };
            let p2p_opts = FbmpkOptions { sync: SyncMode::PointToPoint, ..base };
            let barrier = FbmpkPlan::new(a, barrier_opts).expect("square");
            let p2p = FbmpkPlan::new(a, p2p_opts).expect("square");
            let identical = barrier.power(&x0, k) == p2p.power(&x0, k);
            let barrier_t =
                timed(|| std::hint::black_box(barrier.power(&x0, k)).truncate(0), cfg.reps);
            let p2p_t = timed(|| std::hint::black_box(p2p.power(&x0, k)).truncate(0), cfg.reps);
            let stats = p2p.stats();
            rows.push(SyncRow {
                name: c.entry.name.to_string(),
                threads: t,
                ncolors: stats.ncolors,
                nblocks: stats.nblocks,
                dep_edges: p2p.block_deps().map_or(0, |d| d.nedges()),
                t_barrier: barrier_t.geomean,
                t_p2p: p2p_t.geomean,
                speedup: barrier_t.geomean / p2p_t.geomean,
                identical,
                samples_barrier: barrier_t.samples,
                samples_p2p: p2p_t.samples,
                modeled_matrix_bytes: barrier.modeled_matrix_bytes(k),
                options_fp_barrier: barrier_opts.config_fingerprint(),
                options_fp_p2p: p2p_opts.config_fingerprint(),
                fallbacks: p2p.fallbacks(),
            });
        }
    }
    rows
}

// ------------------------------------------------------------- partition

/// One row of the `repro partition` comparison: one blocking strategy's
/// partition quality (cut edges, balance) and its point-to-point sweep
/// behavior (wait-list edges, wait fraction, bandwidth) on one matrix.
#[derive(Debug, Clone)]
pub struct PartitionRow {
    /// Matrix name.
    pub name: String,
    /// Blocking strategy tag (`contiguous` / `aggregated` / `multilevel`).
    pub strategy: String,
    /// Thread count.
    pub threads: usize,
    /// ABMC blocks produced.
    pub nblocks: usize,
    /// ABMC colors produced.
    pub ncolors: usize,
    /// Undirected row-structure edges cut by the partition — the
    /// objective the multilevel partitioner minimizes.
    pub cut_edges: usize,
    /// Directed dependency edges in the P2P per-block wait lists (what
    /// the cut edges become after coloring).
    pub dep_edges: usize,
    /// Heaviest block weight over the mean (1.0 = perfectly balanced).
    pub balance: f64,
    /// Point-to-point FBMPK seconds at `k = 5` (geomean).
    pub t_p2p: f64,
    /// `modeled_matrix_bytes / t_p2p / 1e9`.
    pub gbs: f64,
    /// Fraction of thread time in flag waits, from a recording twin.
    pub wait_frac: f64,
    /// P2P, barrier, and recording runs all produced bit-identical
    /// `A^k x0` for this strategy — must always be `true`.
    pub identical: bool,
    /// Raw per-rep p2p seconds (for the perf database).
    pub samples: Vec<f64>,
    /// Stable fingerprint of the p2p plan options.
    pub options_fp: u64,
    /// §III-B modeled matrix bytes per invocation.
    pub modeled_matrix_bytes: u64,
    /// Stall-watchdog fallbacks during the measured reps.
    pub fallbacks: u64,
}

/// Stable lowercase tag for a blocking strategy (table and perf-DB
/// kernel labels).
pub fn strategy_tag(s: BlockingStrategy) -> &'static str {
    match s {
        BlockingStrategy::Contiguous => "contiguous",
        BlockingStrategy::Aggregated => "aggregated",
        BlockingStrategy::Multilevel => "multilevel",
    }
}

/// Compares the three ABMC blocking strategies under point-to-point
/// synchronization at `k = 5`: partition quality (cut edges, balance),
/// the dependency-edge count the cut induces, the recorded flag-wait
/// fraction, and the achieved bandwidth. Each strategy's p2p run is
/// verified bit-identical to its barrier and recording twins before any
/// timing is reported.
pub fn partition(cfg: &BenchConfig, cases: &[MatrixCase]) -> Vec<PartitionRow> {
    let k = 5;
    let mut rows = Vec::new();
    // The paper suite's irregular entries (G3_circuit, cage14) plus a
    // synthetic symmetric R-MAT power-law graph — the second irregular
    // class the partitioner targets, absent from Table II.
    let rmat_scale = ((2_000_000.0 * cfg.scale).max(256.0).log2().round() as u32).clamp(8, 20);
    let rmat = fbmpk_gen::rmat::rmat(fbmpk_gen::rmat::RmatParams {
        scale: rmat_scale,
        edge_factor: 8,
        symmetric: true,
        seed: cfg.seed.max(1),
        ..Default::default()
    });
    let named: Vec<(&str, &Csr)> = cases
        .iter()
        .map(|c| (c.entry.name, &c.matrix))
        .chain(std::iter::once(("rmat", &rmat)))
        .collect();
    for (case_name, a) in named {
        let n = a.nrows();
        let x0 = start_vector(n);
        let g = Graph::from_matrix(a);
        let nblocks = abmc_params(n).nblocks;
        for strategy in [
            BlockingStrategy::Contiguous,
            BlockingStrategy::Aggregated,
            BlockingStrategy::Multilevel,
        ] {
            let params = AbmcParams { nblocks, strategy, ..Default::default() };
            // The same Blocking `Abmc::new` builds, evaluated on the
            // original row-structure graph.
            let blocking = match strategy {
                BlockingStrategy::Contiguous => {
                    fbmpk_reorder::blocking::contiguous_blocks(n, nblocks)
                }
                BlockingStrategy::Aggregated => fbmpk_reorder::blocking::aggregated_blocks(
                    &g,
                    fbmpk_reorder::blocking::block_size_for_count(n, nblocks),
                ),
                BlockingStrategy::Multilevel => multilevel_blocks(&g, nblocks),
            };
            let cut = cut_edges(&g, &blocking);
            let balance = balance_ratio(&g, &blocking);
            let p2p_opts = FbmpkOptions {
                nthreads: cfg.threads,
                reorder: Some(params),
                layout: VectorLayout::BackToBack,
                sync: SyncMode::PointToPoint,
                ..Default::default()
            };
            let barrier_opts = FbmpkOptions { sync: SyncMode::ColorBarrier, ..p2p_opts };
            let p2p = FbmpkPlan::new(a, p2p_opts).expect("square");
            let barrier = FbmpkPlan::new(a, barrier_opts).expect("square");
            let want = p2p.power(&x0, k);
            let identical = want == barrier.power(&x0, k);
            let t = timed(|| std::hint::black_box(p2p.power(&x0, k)).truncate(0), cfg.reps);
            // Recording twin: one instrumented run for the wait fraction,
            // checked bit-identical to the production configuration.
            let rec = FbmpkPlan::new(a, FbmpkOptions { obs: ObsOptions::recording(), ..p2p_opts })
                .expect("square");
            let identical = identical && rec.power(&x0, k) == want;
            let wait_frac = rec.recorder().expect("recording plan has a recorder").wait_fraction();
            let stats = p2p.stats();
            let modeled = p2p.modeled_matrix_bytes(k);
            rows.push(PartitionRow {
                name: case_name.to_string(),
                strategy: strategy_tag(strategy).to_string(),
                threads: cfg.threads,
                nblocks: stats.nblocks,
                ncolors: stats.ncolors,
                cut_edges: cut,
                dep_edges: p2p.block_deps().map_or(0, |d| d.nedges()),
                balance,
                t_p2p: t.geomean,
                gbs: modeled as f64 / t.geomean / 1e9,
                wait_frac,
                identical,
                samples: t.samples,
                options_fp: p2p_opts.config_fingerprint(),
                modeled_matrix_bytes: modeled,
                fallbacks: p2p.fallbacks(),
            });
        }
    }
    rows
}

// ------------------------------------------------------------------ tune

/// One row of the `repro tune` report: what the inspector–executor layer
/// selected for a suite matrix and the measured single-SpMV speedup of the
/// tuned kernel over the scalar CSR reference on the same pool/partition.
#[derive(Debug, Clone)]
pub struct TuneRow {
    /// Matrix name.
    pub name: String,
    /// Dimension.
    pub rows: usize,
    /// Nonzeros.
    pub nnz: usize,
    /// Mean row length (the dominant cost-model feature).
    pub mean_row_nnz: f64,
    /// Row-length coefficient of variation.
    pub row_cv: f64,
    /// The variant the tuner selected.
    pub variant: String,
    /// Scalar CSR seconds per SpMV (geomean).
    pub t_scalar: f64,
    /// Tuned-variant seconds per SpMV (geomean).
    pub t_tuned: f64,
    /// `t_scalar / t_tuned`.
    pub speedup: f64,
    /// Speedup the one-shot micro-probe itself measured during planning.
    pub probed_speedup: f64,
    /// One-off inspection + selection cost in seconds.
    pub inspect_seconds: f64,
    /// Raw per-rep scalar-CSR seconds (for the perf database).
    pub samples_scalar: Vec<f64>,
    /// Raw per-rep tuned-variant seconds.
    pub samples_tuned: Vec<f64>,
    /// Detected SIMD dispatch level ("scalar", "avx2", "neon").
    pub simd: String,
    /// 4-way-unrolled CSR seconds per SpMV (geomean) on the same pool.
    pub t_unrolled4: f64,
    /// Explicit lane-kernel CSR seconds per SpMV (geomean) on the same
    /// pool, whatever [`fbmpk_sparse::simd::detect`] resolves to.
    pub t_simd: f64,
    /// Raw per-rep unrolled-CSR seconds.
    pub samples_unrolled4: Vec<f64>,
    /// Raw per-rep lane-kernel seconds.
    pub samples_simd: Vec<f64>,
}

/// Runs the auto-tuner on every suite matrix and re-measures the selected
/// variant against the scalar baseline (probe excluded, like all
/// preprocessing in the paper's methodology).
pub fn tune(cfg: &BenchConfig, cases: &[MatrixCase]) -> Vec<TuneRow> {
    cases
        .iter()
        .map(|c| {
            let a = &c.matrix;
            let n = a.nrows();
            let plan = TunedPlan::new(
                a,
                TuneOptions {
                    nthreads: cfg.threads,
                    probe: true,
                    probe_reps: cfg.reps.max(3),
                    ..Default::default()
                },
            );
            let x = start_vector(n);
            let mut y = vec![0.0; n];
            let scalar_t = timed(|| plan.spmv_scalar(&x, &mut y), cfg.reps);
            let tuned_t = timed(|| plan.spmv(&x, &mut y), cfg.reps);
            let unrolled_t =
                timed(|| plan.spmv_with(KernelVariant::CsrUnrolled4, &x, &mut y), cfg.reps);
            let simd_level = plan.simd_level();
            let simd_variant = KernelVariant::CsrSimd { width: simd_level.width() };
            let simd_t = timed(|| plan.spmv_with(simd_variant, &x, &mut y), cfg.reps);
            let f = plan.features();
            TuneRow {
                name: c.entry.name.to_string(),
                rows: f.n,
                nnz: f.nnz,
                mean_row_nnz: f.mean_row_nnz,
                row_cv: f.row_cv,
                variant: plan.variant().to_string(),
                t_scalar: scalar_t.geomean,
                t_tuned: tuned_t.geomean,
                speedup: scalar_t.geomean / tuned_t.geomean,
                probed_speedup: plan.report().probed_speedup(),
                inspect_seconds: plan.report().inspect_seconds,
                samples_scalar: scalar_t.samples,
                samples_tuned: tuned_t.samples,
                simd: simd_level.tag().to_string(),
                t_unrolled4: unrolled_t.geomean,
                t_simd: simd_t.geomean,
                samples_unrolled4: unrolled_t.samples,
                samples_simd: simd_t.samples,
            }
        })
        .collect()
}

// -------------------------------------------------------------- blocking

/// One row of the `repro blocking` report: streaming vs level-blocked
/// FBMPK execution at one power, plus the cache simulator's DRAM read
/// bytes for the same two schedules.
#[derive(Debug, Clone)]
pub struct BlockingRow {
    /// Matrix name.
    pub name: String,
    /// Power `k`.
    pub k: usize,
    /// Resolved powers-per-stage band (`kb`) the auto-sizer picked for
    /// the probed host LLC (what the timed execution ran with).
    pub tile_powers: usize,
    /// Band re-resolved for the *simulated* LLC of the traffic replay —
    /// the simulator's cache is scaled to the matrix, so the schedule
    /// must be sized for it, not for the host. `1` means the auto-sizer
    /// found no shell window worth holding (blocking degenerates to
    /// streaming stages).
    pub tile_powers_sim: usize,
    /// BFS shell count of the wavefront schedule.
    pub nlevels: usize,
    /// Streaming FBMPK seconds (geomean).
    pub t_streaming: f64,
    /// Level-blocked seconds (geomean).
    pub t_blocked: f64,
    /// `t_streaming / t_blocked`.
    pub speedup: f64,
    /// Whether the two schedules agree within `1e-9` relative error
    /// (they associate differently, so bit-identity is not expected).
    pub agrees: bool,
    /// Simulated DRAM read bytes, streaming FBMPK.
    pub dram_read_streaming: u64,
    /// Simulated DRAM read bytes, level-blocked wavefront.
    pub dram_read_blocked: u64,
    /// Raw per-rep streaming seconds (for the perf database).
    pub samples_streaming: Vec<f64>,
    /// Raw per-rep level-blocked seconds.
    pub samples_blocked: Vec<f64>,
    /// Config fingerprint of the streaming options.
    pub options_fp_streaming: u64,
    /// Config fingerprint of the level-blocked options.
    pub options_fp_blocked: u64,
    /// Modeled matrix bytes of the streaming schedule (roofline anchor).
    pub modeled_matrix_bytes: u64,
}

/// Measures streaming vs level-blocked FBMPK at `k = 8` (deep enough
/// that the wavefront re-streams the matrix at least twice less often on
/// cache-resident bands) and replays both schedules through the cache
/// simulator for the DRAM-traffic claim of DESIGN.md §12.
pub fn blocking(cfg: &BenchConfig, cases: &[MatrixCase]) -> Vec<BlockingRow> {
    let k = 8usize;
    let mut rows = Vec::new();
    for c in cases {
        let a = &c.matrix;
        let n = a.nrows();
        let x0 = start_vector(n);
        let stream_opts = fbmpk_options(n, cfg.threads, VectorLayout::BackToBack);
        let mut blocked_opts = stream_opts;
        blocked_opts.blocking = BlockingMode::LevelBlocked { tile_powers: None };
        let streaming = FbmpkPlan::new(a, stream_opts).expect("square");
        let blocked = FbmpkPlan::new(a, blocked_opts).expect("square");
        let want = streaming.power(&x0, k);
        let got = blocked.power(&x0, k);
        let agrees = rel_err_inf(&got, &want) < 1e-9;
        let stream_t =
            timed(|| std::hint::black_box(streaming.power(&x0, k)).truncate(0), cfg.reps);
        let blocked_t = timed(|| std::hint::black_box(blocked.power(&x0, k)).truncate(0), cfg.reps);
        // Re-derive the band the plan's auto-sizer resolved so the
        // simulator replays the same schedule shape.
        let lb = LevelBlockPlan::new(a, cfg.threads, None, probe_llc_bytes());
        let kb = lb.resolve_tile_powers(k);
        let llc = [scaled_llc(a.nnz() * 12 + 8 * (a.nrows() + 1))];
        // The replayed schedule must be sized for the simulated cache,
        // exactly as the auto-sizer would on a machine with that LLC.
        let kb_sim = LevelBlockPlan::new(a, cfg.threads, None, llc[0].size_bytes as u64)
            .resolve_tile_powers(k);
        let sim_stream = trace_fbmpk(a, k, TracedLayout::BackToBack, &llc);
        let sim_blocked = trace_level_blocked(a, k, kb_sim, &llc);
        rows.push(BlockingRow {
            name: c.entry.name.to_string(),
            k,
            tile_powers: kb,
            tile_powers_sim: kb_sim,
            nlevels: lb.levels().nlevels(),
            t_streaming: stream_t.geomean,
            t_blocked: blocked_t.geomean,
            speedup: stream_t.geomean / blocked_t.geomean,
            agrees,
            dram_read_streaming: sim_stream.dram_read_bytes,
            dram_read_blocked: sim_blocked.dram_read_bytes,
            samples_streaming: stream_t.samples,
            samples_blocked: blocked_t.samples,
            options_fp_streaming: stream_opts.config_fingerprint(),
            options_fp_blocked: blocked_opts.config_fingerprint(),
            modeled_matrix_bytes: streaming.modeled_matrix_bytes(k),
        });
    }
    rows
}

// --------------------------------------------------------------- profile

/// One row of the `repro profile` report: in-kernel observability for one
/// matrix at `k = 5` under both synchronization modes.
///
/// Timings come from *non-recording* plans (the production configuration);
/// wait fractions, traces and hardware counters come from separately built
/// recording plans whose results are checked bit-identical against the
/// non-recording ones.
#[derive(Debug, Clone)]
pub struct ProfileRow {
    /// Matrix name.
    pub name: String,
    /// Thread count.
    pub threads: usize,
    /// Power `k`.
    pub k: usize,
    /// ABMC colors.
    pub ncolors: usize,
    /// ABMC blocks.
    pub nblocks: usize,
    /// Seconds per `A^k x0`, [`SyncMode::ColorBarrier`], recording off.
    pub t_barrier: f64,
    /// Seconds per `A^k x0`, [`SyncMode::PointToPoint`], recording off.
    pub t_p2p: f64,
    /// Modeled bytes of matrix data streamed per power computation:
    /// §III-B triangle read counts × split storage footprint.
    pub modeled_matrix_bytes: u64,
    /// `modeled_matrix_bytes / t_barrier` in GB/s — the effective matrix
    /// bandwidth the sweep sustains, comparable to STREAM numbers.
    pub bw_barrier_gbs: f64,
    /// Same for point-to-point mode.
    pub bw_p2p_gbs: f64,
    /// Simulated DRAM traffic for the same computation (cache replay at
    /// the scaled LLC) — what a finite cache actually moves.
    pub sim_dram_bytes: u64,
    /// `sim_dram_bytes / modeled_matrix_bytes`: > 1 means the vectors and
    /// cache misses add traffic beyond the compulsory matrix streams.
    pub traffic_vs_model: f64,
    /// Fraction of total thread time spent in waits (barrier +
    /// epoch-spin), barrier mode, from the recorded run.
    pub wait_frac_barrier: f64,
    /// Same for point-to-point mode (flag waits).
    pub wait_frac_p2p: f64,
    /// Recording plans produced bit-identical `A^k x0` to non-recording
    /// ones — must always be `true`; reported so a regression is visible.
    pub identical: bool,
    /// Hardware counters over one recorded barrier-mode run; `None` when
    /// `perf_event_open` is unavailable (the model-only degradation path).
    pub hw: Option<HwSample>,
    /// Spans lost to ring-buffer overflow across both recorded runs
    /// (0 unless the span capacity is undersized for `k`/colors).
    pub dropped_spans: u64,
    /// Raw per-rep barrier-mode seconds (for the perf database).
    pub samples_barrier: Vec<f64>,
    /// Raw per-rep point-to-point seconds.
    pub samples_p2p: Vec<f64>,
    /// Stable fingerprint of the barrier-mode plan options.
    pub options_fp_barrier: u64,
    /// Stable fingerprint of the point-to-point plan options.
    pub options_fp_p2p: u64,
    /// Watchdog→barrier fallbacks across all four plans of this row
    /// (nonzero marks the p2p samples as degraded).
    pub fallbacks: u64,
    /// Process-wide stall-watchdog fires during this row's measurements.
    pub watchdog_fires: u64,
    /// Deterministic fault-injection sites hit during this row (always 0
    /// without the `fault-inject` feature).
    pub fault_injection_hits: u64,
}

/// Runs the profiling experiment: times both sync modes without
/// observability, then re-runs each once with the span recorder enabled to
/// extract per-thread wait fractions, a chrome://tracing timeline (two
/// trace processes per matrix, one per sync mode), hardware counters where
/// available, and registry metrics. Returns the rows plus the accumulated
/// trace and metrics.
pub fn profile(
    cfg: &BenchConfig,
    cases: &[MatrixCase],
    roofline_gbs: Option<f64>,
) -> (Vec<ProfileRow>, TraceBuilder, Registry) {
    let k = 5;
    let mut rows = Vec::new();
    let mut trace = TraceBuilder::new();
    let registry = Registry::new();
    // Plan-construction phase spans (inspection, partitioning, leveling)
    // land in the chrome://tracing timeline next to the kernel spans.
    fbmpk_obs::phases::set_recording(true);
    let live = fbmpk_obs::live::enabled();
    if let (true, Some(ceiling)) = (live, roofline_gbs) {
        fbmpk_obs::live::global()
            .gauge("fbmpk_bench_roofline_gbs", "Measured STREAM-triad bandwidth ceiling", 1)
            .set(0, ceiling);
    }
    for (i, c) in cases.iter().enumerate() {
        let a = &c.matrix;
        let n = a.nrows();
        let x0 = start_vector(n);
        // The colored schedule even at one thread, like `sync_modes`, so
        // both modes traverse identical block structure.
        let base = FbmpkOptions {
            nthreads: cfg.threads,
            reorder: Some(abmc_params(n)),
            layout: VectorLayout::BackToBack,
            ..Default::default()
        };
        let barrier_opts = FbmpkOptions { sync: SyncMode::ColorBarrier, ..base };
        let p2p_opts = FbmpkOptions { sync: SyncMode::PointToPoint, ..base };
        let (arms0, fires0) = fbmpk_parallel::sync::watchdog_stats();
        let inject0 = fbmpk_parallel::fault::injection_hits();
        let barrier = FbmpkPlan::new(a, barrier_opts).expect("square");
        let p2p = FbmpkPlan::new(a, p2p_opts).expect("square");
        let barrier_t = timed(|| std::hint::black_box(barrier.power(&x0, k)).truncate(0), cfg.reps);
        let p2p_t = timed(|| std::hint::black_box(p2p.power(&x0, k)).truncate(0), cfg.reps);
        let (t_barrier, t_p2p) = (barrier_t.geomean, p2p_t.geomean);

        // Recording twins: run once each; the barrier run doubles as the
        // hardware-counter measurement window.
        let rec = FbmpkOptions { obs: ObsOptions::recording(), ..base };
        let rb = FbmpkPlan::new(a, FbmpkOptions { sync: SyncMode::ColorBarrier, ..rec })
            .expect("square");
        let rp = FbmpkPlan::new(a, FbmpkOptions { sync: SyncMode::PointToPoint, ..rec })
            .expect("square");
        let session = HwSession::start();
        let yb = rb.power(&x0, k);
        let hw = session.as_ref().and_then(HwSession::sample);
        let yp = rp.power(&x0, k);
        let identical = yb == barrier.power(&x0, k) && yp == p2p.power(&x0, k);

        let rec_b = rb.recorder().expect("recording plan has a recorder");
        let rec_p = rp.recorder().expect("recording plan has a recorder");
        let pid_b = (2 * i + 1) as u32;
        let pid_p = (2 * i + 2) as u32;
        trace.add_process(pid_b, &format!("{} / barrier", c.entry.name));
        trace.add_process(pid_p, &format!("{} / point-to-point", c.entry.name));
        let spans = trace.add_recorder(pid_b, rec_b) + trace.add_recorder(pid_p, rec_p);

        let modeled = barrier.modeled_matrix_bytes(k);
        let sim =
            trace_fbmpk(a, k, TracedLayout::BackToBack, &[scaled_llc(a.nnz() * 12 + 8 * (n + 1))])
                .total();
        let dropped_spans = rec_b.total_dropped() + rec_p.total_dropped();

        let (arms1, fires1) = fbmpk_parallel::sync::watchdog_stats();
        let watchdog_fires = fires1 - fires0;
        let fault_injection_hits = fbmpk_parallel::fault::injection_hits() - inject0;
        let fallbacks = barrier.fallbacks() + p2p.fallbacks() + rb.fallbacks() + rp.fallbacks();

        registry.counter_add("profile.matrices", 1);
        registry.counter_add("profile.modeled_matrix_bytes", modeled);
        registry.counter_add("profile.sim_dram_bytes", sim);
        registry.counter_add("profile.spans_recorded", spans as u64);
        registry.counter_add("profile.spans_dropped", dropped_spans);
        registry.counter_add("profile.fallbacks", fallbacks);
        registry.counter_add("profile.watchdog_arms", arms1 - arms0);
        registry.counter_add("profile.watchdog_fires", watchdog_fires);
        registry.counter_add("profile.fault_injection_hits", fault_injection_hits);
        registry.gauge_set(&format!("profile.{}.bw_barrier_gbs", c.entry.name), {
            modeled as f64 / t_barrier / 1e9
        });
        if live {
            // Feed the `repro top` dashboard: the current matrix's
            // effective bandwidth against the measured triad ceiling.
            let reg = fbmpk_obs::live::global();
            let achieved = modeled as f64 / t_barrier / 1e9;
            reg.gauge(
                "fbmpk_bench_achieved_gbs",
                "Effective matrix bandwidth of the matrix being profiled",
                1,
            )
            .set(0, achieved);
            if let Some(ceiling) = roofline_gbs.filter(|&c| c > 0.0) {
                reg.gauge(
                    "fbmpk_bench_roofline_fraction",
                    "Achieved bandwidth over the STREAM-triad ceiling",
                    1,
                )
                .set(0, achieved / ceiling);
            }
        }
        for t in 0..rec_b.nthreads() {
            for s in rec_b.thread_spans(t) {
                if s.kind.is_wait() {
                    registry.observe("profile.wait_span_ns", s.duration_ns());
                }
            }
        }

        let stats = barrier.stats();
        rows.push(ProfileRow {
            name: c.entry.name.to_string(),
            threads: cfg.threads,
            k,
            ncolors: stats.ncolors,
            nblocks: stats.nblocks,
            t_barrier,
            t_p2p,
            modeled_matrix_bytes: modeled,
            bw_barrier_gbs: modeled as f64 / t_barrier / 1e9,
            bw_p2p_gbs: modeled as f64 / t_p2p / 1e9,
            sim_dram_bytes: sim,
            traffic_vs_model: sim as f64 / modeled as f64,
            wait_frac_barrier: rec_b.wait_fraction(),
            wait_frac_p2p: rec_p.wait_fraction(),
            identical,
            hw,
            dropped_spans,
            samples_barrier: barrier_t.samples,
            samples_p2p: p2p_t.samples,
            options_fp_barrier: barrier_opts.config_fingerprint(),
            options_fp_p2p: p2p_opts.config_fingerprint(),
            fallbacks,
            watchdog_fires,
            fault_injection_hits,
        });
    }
    let phase_pid = (2 * cases.len() + 1) as u32;
    trace.add_process(phase_pid, "plan phases");
    fbmpk_obs::phases::add_to_trace(&mut trace, phase_pid);
    fbmpk_obs::phases::set_recording(false);
    (rows, trace, registry)
}

// ----------------------------------------------------------- attribution

/// One matrix's result from the `repro attribution` experiment: the three
/// reconciled byte ledgers at (block × power) granularity plus the
/// simulated phase/node splits and the p2p timing that anchors the
/// perf-database record.
#[derive(Debug, Clone)]
pub struct AttributionCase {
    /// Matrix name (suite entry or `rmat`).
    pub name: String,
    /// Thread count.
    pub threads: usize,
    /// Power `k` of the attributed run.
    pub k: usize,
    /// The merged modeled/simulated/measured ledgers.
    pub report: AttributionReport,
    /// Simulated DRAM bytes per sweep phase (including `other` for
    /// setup traffic and the final flush) — sums exactly to
    /// [`AttributionCase::sim_dram_total`].
    pub sim_phase_bytes: Vec<(&'static str, u64)>,
    /// Simulated DRAM bytes per NUMA node under the pool's first-touch
    /// placement (`u32::MAX` = outside every registered range).
    pub node_bytes: Vec<(u32, u64)>,
    /// Simulated DRAM bytes not attributable to a (block, power) cell.
    pub sim_unattributed: u64,
    /// Whole-kernel simulated DRAM bytes.
    pub sim_dram_total: u64,
    /// Measured bytes without a block id (flat head/tail stages);
    /// `None` when hardware counters are unavailable.
    pub measured_unattributed: Option<u64>,
    /// Whether `perf_event_open` produced a usable measured ledger.
    pub measured_available: bool,
    /// Whole-kernel simulated DRAM over §III-B modeled bytes.
    pub traffic_vs_model: f64,
    /// Point-to-point FBMPK seconds at this `k` (geomean).
    pub t_p2p: f64,
    /// Raw per-rep seconds (for the perf database).
    pub samples: Vec<f64>,
    /// Stable fingerprint of the p2p plan options.
    pub options_fp: u64,
    /// §III-B modeled matrix bytes per invocation.
    pub modeled_matrix_bytes: u64,
    /// Probed runs produced bit-identical `A^k x0` to the plain kernel —
    /// must always be `true`.
    pub identical: bool,
}

/// Counts, per block, the stored off-diagonal entries (`L` + `U`) whose
/// column falls outside the block's row range — the partition's cut edges
/// through each block, the structural covariate of the excess-traffic
/// correlation.
pub fn block_cut_edges(split: &TriangularSplit, block_row_start: &[usize]) -> Vec<u64> {
    let nblocks = block_row_start.len().saturating_sub(1);
    let mut cut = vec![0u64; nblocks];
    for (b, c) in cut.iter_mut().enumerate() {
        let (lo, hi) = (block_row_start[b], block_row_start[b + 1]);
        for tri in [&split.lower, &split.upper] {
            let (ptr, col) = (tri.row_ptr(), tri.col_idx());
            for r in lo..hi {
                *c += col[ptr[r]..ptr[r + 1]]
                    .iter()
                    .filter(|&&j| (j as usize) < lo || (j as usize) >= hi)
                    .count() as u64;
            }
        }
    }
    cut
}

/// The sweep-phase label value a measured [`SpanKind`] maps to — mirrors
/// [`fbmpk_memsim::SweepPhase::name`] so measured and simulated samples of
/// the live `fbmpk_block_bytes_total` family share one phase vocabulary.
fn span_phase_name(kind: SpanKind) -> &'static str {
    match kind {
        SpanKind::Head => "head",
        SpanKind::Forward => "forward",
        SpanKind::Backward => "backward",
        SpanKind::Tail => "tail",
        _ => "other",
    }
}

/// The live-endpoint source behind `fbmpk_block_bytes_total`: a row set
/// replaced wholesale per attributed matrix (the family describes the
/// matrix currently under attribution, not a process-lifetime total).
type LiveRow = (Vec<(String, String)>, u64);

struct AttributionLiveSource {
    rows: std::sync::Mutex<Vec<LiveRow>>,
}

impl fbmpk_obs::live::LiveSource for AttributionLiveSource {
    fn collect(&self) -> Vec<fbmpk_obs::live::FamilySnapshot> {
        let rows = self.rows.lock().expect("attribution live rows");
        if rows.is_empty() {
            return Vec::new();
        }
        vec![fbmpk_obs::live::FamilySnapshot {
            name: "fbmpk_block_bytes_total".into(),
            help: "DRAM bytes per block/phase/ledger for the matrix under attribution \
                   (worst blocks by traffic-vs-model ratio)"
                .into(),
            kind: fbmpk_obs::live::MetricKind::Counter,
            samples: rows
                .iter()
                .map(|(labels, v)| fbmpk_obs::live::LiveSample {
                    labels: labels.clone(),
                    value: fbmpk_obs::live::SampleValue::Counter(*v),
                })
                .collect(),
        }]
    }
}

/// The process-global [`AttributionLiveSource`], registered with the live
/// registry on first use. The `Arc` lives in the `static` so the weak
/// registration never goes stale.
fn attribution_live_source() -> &'static std::sync::Arc<AttributionLiveSource> {
    use std::sync::{Arc, OnceLock};
    static SRC: OnceLock<Arc<AttributionLiveSource>> = OnceLock::new();
    SRC.get_or_init(|| {
        let src = Arc::new(AttributionLiveSource { rows: std::sync::Mutex::new(Vec::new()) });
        let as_dyn: Arc<dyn fbmpk_obs::live::LiveSource> = src.clone();
        fbmpk_obs::live::global().register_source(Arc::downgrade(&as_dyn));
        src
    })
}

/// Number of worst-ratio blocks published on the live endpoint per
/// matrix — bounds the `fbmpk_block_bytes_total` family (and the `repro
/// top` drill-down pane) regardless of the plan's block count.
pub const LIVE_ATTRIBUTION_BLOCKS: usize = 16;

/// Replaces the live `fbmpk_block_bytes_total` rows with this matrix's
/// worst blocks: modeled bytes under `phase="total"`, simulated and
/// measured bytes per sweep phase.
fn publish_block_bytes_live(
    matrix: &str,
    report: &AttributionReport,
    sim_block_phase: &std::collections::BTreeMap<(u32, &'static str), u64>,
    meas_block_phase: Option<&std::collections::BTreeMap<(u32, &'static str), u64>>,
) {
    let label = |block: u32, phase: &str, ledger: &str| {
        vec![
            ("matrix".to_string(), matrix.to_string()),
            ("block".to_string(), block.to_string()),
            ("phase".to_string(), phase.to_string()),
            ("ledger".to_string(), ledger.to_string()),
        ]
    };
    let mut rows = Vec::new();
    for bl in report.worst_blocks(LIVE_ATTRIBUTION_BLOCKS) {
        rows.push((label(bl.block, "total", "modeled"), bl.modeled_bytes));
        for (&(b, phase), &v) in sim_block_phase.iter().filter(|((b, _), _)| *b == bl.block) {
            rows.push((label(b, phase, "simulated"), v));
        }
        if let Some(meas) = meas_block_phase {
            for (&(b, phase), &v) in meas.iter().filter(|((b, _), _)| *b == bl.block) {
                rows.push((label(b, phase, "measured"), v));
            }
        }
    }
    *attribution_live_source().rows.lock().expect("attribution live rows") = rows;
}

/// Runs the traffic-attribution experiment: for each suite matrix (plus
/// the synthetic `rmat` power-law case the partitioner targets) it builds
/// the point-to-point plan at `k = 5` and reconciles three byte ledgers at
/// (block × power) granularity — §III-B modeled bytes, cache-simulated
/// DRAM bytes, and per-thread hardware-counter estimates sampled at the
/// block boundaries the kernels already instrument.
///
/// The measured ledger degrades gracefully: when `perf_event_open` is
/// unavailable (containers, CI) it is reported as `None`, one notice goes
/// to stderr for the whole run, and the modeled/simulated ledgers are
/// unaffected. Probed runs are verified bit-identical to the plain kernel
/// before anything is reported.
pub fn attribution(cfg: &BenchConfig, cases: &[MatrixCase]) -> Vec<AttributionCase> {
    use std::collections::BTreeMap;
    let k = 5;
    // Same irregular extension as `partition`: a symmetric R-MAT
    // power-law graph whose boundary blocks stress the cut-edge signal.
    let rmat_scale = ((2_000_000.0 * cfg.scale).max(256.0).log2().round() as u32).clamp(8, 20);
    let rmat = fbmpk_gen::rmat::rmat(fbmpk_gen::rmat::RmatParams {
        scale: rmat_scale,
        edge_factor: 8,
        symmetric: true,
        seed: cfg.seed.max(1),
        ..Default::default()
    });
    let named: Vec<(&str, &Csr)> = cases
        .iter()
        .map(|c| (c.entry.name, &c.matrix))
        .chain(std::iter::once(("rmat", &rmat)))
        .collect();
    let topo = fbmpk_parallel::NumaTopology::detect();
    let node_of_share: Vec<u32> =
        (0..cfg.threads.max(1)).map(|t| topo.node_of_worker(t) as u32).collect();
    let live = fbmpk_obs::live::enabled();
    let mut degrade_noted = false;
    let mut out = Vec::new();
    for (case_name, a) in named {
        let n = a.nrows();
        let x0 = start_vector(n);
        // Point-to-point only: it is the one schedule whose span stream
        // carries real block ids, so all three ledgers share a key.
        let p2p_opts = FbmpkOptions {
            nthreads: cfg.threads,
            reorder: Some(abmc_params(n)),
            layout: VectorLayout::BackToBack,
            sync: SyncMode::PointToPoint,
            ..Default::default()
        };
        let plan = FbmpkPlan::new(a, p2p_opts).expect("square");
        let want = plan.power(&x0, k);
        let starts = plan.block_row_start().to_vec();
        let colors = plan.block_color();
        let nblocks = starts.len().saturating_sub(1);

        // Modeled ledger: §III-B bytes decomposed per (power, block).
        let modeled_pb = plan.modeled_block_power_bytes(k);
        let modeled_total = plan.modeled_matrix_bytes(k);

        // Simulated ledger: the labeled cache replay, with per-node
        // classification under the pool's first-touch share protocol.
        let attr =
            FbmpkTraceAttribution { block_row_start: &starts, node_of_share: &node_of_share };
        let labeled = trace_fbmpk_attributed(
            plan.split(),
            k,
            TracedLayout::BackToBack,
            &[scaled_llc(a.nnz() * 12 + 8 * (n + 1))],
            &attr,
        );
        let mut sim_cells: BTreeMap<(u32, u32), u64> = BTreeMap::new();
        let mut sim_blocks = vec![0u64; nblocks];
        let mut sim_block_phase: BTreeMap<(u32, &'static str), u64> = BTreeMap::new();
        let mut sim_phase: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut sim_unattributed = 0u64;
        for (label, t) in &labeled.labels {
            let bytes = t.dram_total();
            *sim_phase.entry(label.phase.name()).or_insert(0) += bytes;
            if label.block == u32::MAX || label.power == 0 || label.block as usize >= nblocks {
                sim_unattributed += bytes;
            } else {
                *sim_cells.entry((label.block, label.power)).or_insert(0) += bytes;
                sim_blocks[label.block as usize] += bytes;
                *sim_block_phase.entry((label.block, label.phase.name())).or_insert(0) += bytes;
            }
        }

        // Measured ledger: per-thread counter deltas at block boundaries.
        // The warmup probed run opens each lane's session (each lane's
        // first delta only covers work after its open) and is drained
        // away; the second probed run is the measurement window.
        let mut probe = HwAttributionProbe::new(cfg.threads.max(1));
        let y_warm = plan.power_probed(&x0, k, &probe).expect("probed run");
        probe.drain();
        let y_probed = plan.power_probed(&x0, k, &probe).expect("probed run");
        let lanes = probe.drain();
        let measured_available = probe.available();
        let identical = y_warm == want && y_probed == want;
        if !measured_available && !degrade_noted {
            degrade_noted = true;
            eprintln!(
                "attribution: perf_event_open unavailable -- measured ledger disabled \
                 (modeled + simulated ledgers unaffected)"
            );
        }
        let measured = measured_available.then(|| MeasuredLedger::from_lanes(&lanes, k));
        let meas_blocks = measured.as_ref().map(MeasuredLedger::block_bytes);
        let meas_block_phase: Option<BTreeMap<(u32, &'static str), u64>> =
            measured_available.then(|| {
                let mut m = BTreeMap::new();
                for e in lanes.iter().flatten().filter(|e| e.block != Span::NO_ID) {
                    *m.entry((e.block, span_phase_name(e.kind))).or_insert(0) +=
                        e.llc_misses * fbmpk_obs::attribution::LINE_BYTES;
                }
                m
            });

        // Merge the ledgers: block-major cells, then per-block rollups
        // with the structural cut-edge context.
        let cut = block_cut_edges(plan.split(), &starts);
        let mut cells = Vec::with_capacity(nblocks * k);
        for b in 0..nblocks {
            for p in 1..=k {
                cells.push(CellLedger {
                    block: b as u32,
                    color: colors[b],
                    power: p as u32,
                    modeled_bytes: modeled_pb[p - 1][b],
                    simulated_bytes: sim_cells.get(&(b as u32, p as u32)).copied().unwrap_or(0),
                    measured_bytes: measured
                        .as_ref()
                        .map(|m| m.cells.get(&(b as u32, p as u32)).copied().unwrap_or(0)),
                });
            }
        }
        let blocks: Vec<BlockLedger> = (0..nblocks)
            .map(|b| BlockLedger {
                block: b as u32,
                color: colors[b],
                rows: (starts[b + 1] - starts[b]) as u64,
                cut_edges: cut[b],
                modeled_bytes: (0..k).map(|p| modeled_pb[p][b]).sum(),
                simulated_bytes: sim_blocks[b],
                measured_bytes: meas_blocks
                    .as_ref()
                    .map(|m| m.get(&(b as u32)).copied().unwrap_or(0)),
            })
            .collect();
        let report = AttributionReport::new(cells, blocks);

        if live {
            publish_block_bytes_live(
                case_name,
                &report,
                &sim_block_phase,
                meas_block_phase.as_ref(),
            );
        }

        let t = timed(|| std::hint::black_box(plan.power(&x0, k)).truncate(0), cfg.reps);
        let sim_dram_total = labeled.report.total();
        out.push(AttributionCase {
            name: case_name.to_string(),
            threads: cfg.threads,
            k,
            report,
            sim_phase_bytes: sim_phase.into_iter().collect(),
            node_bytes: labeled.nodes.iter().map(|(&nid, nt)| (nid, nt.dram_total())).collect(),
            sim_unattributed,
            sim_dram_total,
            measured_unattributed: measured.as_ref().map(|m| m.unattributed_bytes),
            measured_available,
            traffic_vs_model: sim_dram_total as f64 / modeled_total.max(1) as f64,
            t_p2p: t.geomean,
            samples: t.samples,
            options_fp: p2p_opts.config_fingerprint(),
            modeled_matrix_bytes: modeled_total,
            identical,
        });
    }
    out
}

// ----------------------------------------------------------------- model

/// One row of the access-count validation table (§III-B formulas).
#[derive(Debug, Clone)]
pub struct ModelRow {
    /// Power `k`.
    pub k: usize,
    /// Standard MPK full-matrix reads.
    pub standard_reads: usize,
    /// FBMPK lower-triangle reads.
    pub fb_lower_reads: usize,
    /// FBMPK upper-triangle reads.
    pub fb_upper_reads: usize,
    /// FBMPK effective reads of `A` (`(L + U) / 2`).
    pub fb_effective_reads: f64,
    /// The idealized ratio `(k+1)/2k`.
    pub ideal_ratio: f64,
}

/// Validates the paper's §III-B access-count formulas for a range of `k`.
pub fn model_table(kmax: usize) -> Vec<ModelRow> {
    (1..=kmax)
        .map(|k| {
            let (l, u) = fbmpk::kernel::triangle_reads(k);
            ModelRow {
                k,
                standard_reads: k,
                fb_lower_reads: l,
                fb_upper_reads: u,
                fb_effective_reads: (l + u) as f64 / 2.0,
                ideal_ratio: fbmpk::model::ideal_ratio(k),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> BenchConfig {
        BenchConfig { scale: 0.0005, threads: 2, reps: 1, seed: 1 }
    }

    #[test]
    fn suite_loads_and_all_experiments_run_at_tiny_scale() {
        let cfg = tiny_cfg();
        let cases: Vec<MatrixCase> = load_suite(&cfg).into_iter().take(3).collect();
        assert_eq!(cases.len(), 3);
        assert_eq!(table2(&cases).len(), 3);
        let f7 = fig7(&cfg, &cases);
        assert!(f7.iter().all(|r| r.speedup > 0.0 && r.t_baseline > 0.0));
        let f9 = fig9(&cases);
        assert_eq!(f9.len(), 9);
        assert!(f9.iter().all(|r| r.ratio > 0.2 && r.ratio < 2.0));
        let f10 = fig10(&cfg, &cases);
        assert!(f10.iter().all(|r| r.speedup_fb > 0.0 && r.speedup_fb_btb > 0.0));
        let t3 = table3(&cfg, &cases);
        assert!(t3.iter().all(|r| r.ratio > 0.0));
        let t4 = table4(&cases);
        // Table IV: storage within ~15% of plain CSR for all inputs.
        assert!(t4.iter().all(|r| r.overhead > 0.85 && r.overhead < 1.35), "{t4:?}");
        let f11 = fig11(&cfg, &cases);
        assert!(f11.iter().all(|r| r.n_spmvs > 0.0));
        let f12 = fig12(&cfg, &cases, &[1, 2]);
        assert_eq!(f12.len(), 6);
        let sy = sync_modes(&cfg, &cases[..1], &[1, 2]);
        assert_eq!(sy.len(), 2);
        assert!(sy.iter().all(|r| r.identical && r.t_barrier > 0.0 && r.t_p2p > 0.0));
        let pa = partition(&cfg, &cases[..1]);
        assert_eq!(pa.len(), 6, "three strategies per matrix, suite case + rmat");
        assert!(pa.iter().any(|r| r.name == "rmat"), "synthetic rmat case appended");
        assert!(pa.iter().all(|r| r.identical), "strategy run not bit-identical: {pa:?}");
        assert!(pa.iter().all(|r| r.t_p2p > 0.0 && r.gbs > 0.0 && r.balance >= 1.0));
        assert!(pa.iter().all(|r| (0.0..=1.0).contains(&r.wait_frac)));
        let at = attribution(&cfg, &cases[..1]);
        assert_eq!(at.len(), 2, "suite case + rmat");
        for r in &at {
            assert!(r.identical, "probed run not bit-identical: {}", r.name);
            assert!(r.t_p2p > 0.0 && r.traffic_vs_model > 0.0);
            // Conservation: modeled cells sum exactly to the whole-plan
            // §III-B bytes; simulated cells + unattributed sum exactly to
            // the whole-kernel simulated DRAM total.
            assert_eq!(r.report.modeled_total, r.modeled_matrix_bytes, "{}", r.name);
            let sim_cells: u64 = r.report.cells.iter().map(|c| c.simulated_bytes).sum();
            assert_eq!(sim_cells + r.sim_unattributed, r.sim_dram_total, "{}", r.name);
            let phase_sum: u64 = r.sim_phase_bytes.iter().map(|&(_, v)| v).sum();
            assert_eq!(phase_sum, r.sim_dram_total, "{}", r.name);
            assert_eq!(r.measured_available, r.report.measured_total.is_some(), "{}", r.name);
        }
        let tr = tune(&cfg, &cases);
        assert_eq!(tr.len(), 3);
        assert!(tr.iter().all(|r| r.t_scalar > 0.0 && r.t_tuned > 0.0 && !r.variant.is_empty()));
        let (pr, trace, registry) = profile(&cfg, &cases[..1], Some(10.0));
        assert_eq!(pr.len(), 1);
        let p = &pr[0];
        assert!(p.identical, "recording changed the numerics");
        assert_eq!(p.fallbacks, 0, "healthy run must not fall back");
        assert_eq!(p.watchdog_fires, 0, "healthy run must not trip the watchdog");
        assert_eq!(p.fault_injection_hits, 0);
        assert!(p.t_barrier > 0.0 && p.t_p2p > 0.0);
        assert!(p.modeled_matrix_bytes > 0 && p.sim_dram_bytes > 0);
        assert!(p.traffic_vs_model > 0.0);
        assert!((0.0..=1.0).contains(&p.wait_frac_barrier), "{}", p.wait_frac_barrier);
        assert!((0.0..=1.0).contains(&p.wait_frac_p2p), "{}", p.wait_frac_p2p);
        assert_eq!(p.dropped_spans, 0);
        assert!(!trace.is_empty());
        assert!(registry.snapshot().iter().any(|(k, _)| k == "profile.spans_recorded"));
    }

    #[test]
    fn model_table_matches_paper() {
        let m = model_table(9);
        assert_eq!(m.len(), 9);
        let k5 = &m[4];
        assert_eq!(k5.standard_reads, 5);
        assert_eq!(k5.fb_lower_reads, 3);
        assert_eq!(k5.fb_upper_reads, 3);
        assert!((k5.fb_effective_reads - 3.0).abs() < 1e-12);
    }

    #[test]
    fn scaled_llc_clamps_and_pow2() {
        let small = scaled_llc(1000);
        assert_eq!(small.size_bytes, 256 << 10);
        let big = scaled_llc(usize::MAX / 64);
        assert_eq!(big.size_bytes, 64 << 20);
        let mid = scaled_llc(100 << 20);
        assert!(mid.size_bytes.is_power_of_two());
    }

    #[test]
    fn geomean_timer_returns_samples_and_rejects_zero_reps() {
        let t =
            time_geomean(|| std::thread::sleep(std::time::Duration::from_micros(50)), 2).unwrap();
        assert!(t.geomean > 0.0);
        assert_eq!(t.samples.len(), 2);
        assert!(t.samples.iter().all(|&s| s > 0.0));
        // The geomean is derived from exactly those samples.
        assert!((t.geomean - crate::report::geomean(&t.samples)).abs() <= 1e-12 * t.geomean);
        assert_eq!(time_geomean(|| (), 0).unwrap_err(), TimingError::ZeroReps);
    }
}
