//! `repro` — regenerates every table and figure of the FBMPK paper.
//!
//! ```text
//! repro [EXPERIMENT ...] [--scale S] [--threads T] [--reps N] [--out DIR]
//!
//! EXPERIMENT: all (default) | table1 | table2 | fig7 | fig8 | fig9 |
//!             fig10 | table3 | table4 | fig11 | fig12 | model |
//!             ablation_blocks | tune | sync | profile | blocking |
//!             partition | attribution | serve
//! ```
//!
//! `serve` (opt-in, not part of `all`) starts the in-process serving
//! layer, measures its sustainable capacity closed-loop, then offers an
//! open-loop baseline and a 2x-capacity overload phase (`--rate`
//! overrides the overload rate, `--duration-s` the phase length),
//! recording p50/p99 latency, goodput, and shed/retry/fault counts to
//! `serve.csv` and the perf database. With the `fault-inject` feature
//! it installs `FBMPK_FAULT` into the kernels first, so fault scenarios
//! run under load. Exits nonzero on any untyped failure (a dropped
//! connection) or zero goodput.
//!
//! `--only NAME[,NAME]` restricts suite-driven experiments to the named
//! Table II matrices (cases the runners append themselves, like
//! `attribution`'s `rmat`, are unaffected).
//!
//! Results are printed as aligned tables and written as CSV under `--out`
//! (default `EXPERIMENTS_RESULTS/`). `profile` additionally writes
//! `BENCH_profile.json` (effective bandwidth, traffic-vs-model, wait
//! fractions, hardware counters) and `profile_trace.json`, a
//! chrome://tracing / Perfetto-loadable per-thread timeline.
//!
//! Timing experiments (`fig7`, `sync`, `tune`, `profile`, `blocking`,
//! `partition`) additionally
//! append one JSONL record per measured configuration to the perf
//! database (`--db`, default `perf/runs.jsonl` or `FBMPK_PERFDB`), each
//! carrying the platform fingerprint, git revision, raw samples, robust
//! statistics and the measured-bandwidth roofline anchor. Reading it
//! back:
//!
//! ```text
//! repro history                          # trend per matrix x kernel
//! repro compare <revA> <revB>            # speedup table with CIs
//! repro gate --baseline <rev> [--current <rev>] [--threshold 0.10]
//!            [--warn-only]               # exit 1 on regression
//! repro report [--out-html FILE]         # self-contained HTML report
//! ```

use fbmpk_bench::perfdb::{self, PerfDb, RecordCtx, RunRecord, RunSpec};
use fbmpk_bench::perfreport;
use fbmpk_bench::report::{format_table, write_csv, write_json, Json};
use fbmpk_bench::runner::{self, MatrixCase};
use fbmpk_bench::{platform, roofline, BenchConfig};
use fbmpk_obs::MetricValue;
use std::path::PathBuf;

struct Args {
    experiments: Vec<String>,
    cfg: BenchConfig,
    only: Vec<String>,
    out: PathBuf,
    db: PathBuf,
    no_perfdb: bool,
    baseline: Option<String>,
    current: Option<String>,
    threshold: f64,
    warn_only: bool,
    out_html: Option<PathBuf>,
    top: fbmpk_bench::top::TopConfig,
    /// Overload arrival rate for `serve` (None = 2x measured capacity).
    rate: Option<f64>,
    /// Length of each `serve` load phase in seconds.
    duration_s: f64,
}

/// Database subcommands — read the perf store instead of running
/// experiments.
const DB_COMMANDS: [&str; 4] = ["history", "compare", "gate", "report"];

/// Parses the next argument as a number, exiting with a clean error
/// message (not a panic) on malformed or missing values.
fn numeric_arg<T: std::str::FromStr>(it: &mut impl Iterator<Item = String>, flag: &str) -> T {
    match it.next().map(|v| (v.parse::<T>(), v)) {
        Some((Ok(n), _)) => n,
        Some((Err(_), v)) => {
            eprintln!("error: {flag} needs a number, got '{v}'");
            std::process::exit(2);
        }
        None => {
            eprintln!("error: {flag} needs a value");
            std::process::exit(2);
        }
    }
}

fn string_arg(it: &mut impl Iterator<Item = String>, flag: &str) -> String {
    it.next().unwrap_or_else(|| {
        eprintln!("error: {flag} needs a value");
        std::process::exit(2);
    })
}

fn parse_args() -> Args {
    let mut cfg = BenchConfig::default();
    let mut out = PathBuf::from("EXPERIMENTS_RESULTS");
    let mut db = perfdb::default_db_path();
    let mut no_perfdb = false;
    let mut baseline = None;
    let mut current = None;
    let mut threshold = 0.10;
    let mut warn_only = false;
    let mut out_html = None;
    let mut top = fbmpk_bench::top::TopConfig::default();
    let mut only = Vec::new();
    let mut rate = None;
    let mut duration_s = 3.0;
    let mut experiments = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => {
                let v = string_arg(&mut it, "--addr");
                top.addr = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("error: --addr needs HOST:PORT, got '{v}'");
                    std::process::exit(2);
                }));
            }
            "--interval-ms" => top.interval_ms = numeric_arg(&mut it, "--interval-ms"),
            "--frames" => top.frames = Some(numeric_arg(&mut it, "--frames")),
            "--scale" => cfg.scale = numeric_arg(&mut it, "--scale"),
            "--threads" => cfg.threads = numeric_arg(&mut it, "--threads"),
            "--reps" => cfg.reps = numeric_arg(&mut it, "--reps"),
            "--seed" => cfg.seed = numeric_arg(&mut it, "--seed"),
            "--only" => only.extend(
                string_arg(&mut it, "--only")
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string),
            ),
            "--rate" => rate = Some(numeric_arg(&mut it, "--rate")),
            "--duration-s" => duration_s = numeric_arg(&mut it, "--duration-s"),
            "--out" => out = PathBuf::from(string_arg(&mut it, "--out")),
            "--db" => db = PathBuf::from(string_arg(&mut it, "--db")),
            "--no-perfdb" => no_perfdb = true,
            "--baseline" => baseline = Some(string_arg(&mut it, "--baseline")),
            "--current" => current = Some(string_arg(&mut it, "--current")),
            "--threshold" => threshold = numeric_arg(&mut it, "--threshold"),
            "--warn-only" => warn_only = true,
            "--out-html" => out_html = Some(PathBuf::from(string_arg(&mut it, "--out-html"))),
            "--help" | "-h" => {
                println!(
                    "usage: repro [all|table1|table2|fig7|fig8|fig9|fig10|table3|table4|fig11|fig12|model ...]\n\
                     \x20      [ablation_blocks|tune|sync|profile|blocking|partition|attribution|serve] [--scale S] [--threads T] [--reps N] [--seed X] [--out DIR]\n\
                     \x20      [--only NAME[,NAME]] [--db FILE] [--no-perfdb]\n\
                     \x20 repro serve [--rate RPS] [--duration-s SECS]   # serving-layer load run (opt-in)\n\
                     \x20 repro history [--db FILE]\n\
                     \x20 repro compare REV_A REV_B [--db FILE]\n\
                     \x20 repro gate --baseline REV [--current REV] [--threshold 0.10] [--warn-only] [--db FILE]\n\
                     \x20 repro report [--out-html FILE] [--db FILE]\n\
                     \x20 repro top [--addr HOST:PORT] [--interval-ms N] [--frames N]"
                );
                std::process::exit(0);
            }
            other => experiments.push(other.to_string()),
        }
    }
    if experiments.is_empty() {
        experiments.push("all".to_string());
    }
    const KNOWN: [&str; 20] = [
        "all",
        "table1",
        "table2",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "table3",
        "table4",
        "fig11",
        "fig12",
        "model",
        "ablation_blocks",
        "tune",
        "sync",
        "profile",
        "blocking",
        "partition",
        "attribution",
        "serve",
    ];
    // Database subcommands own the remaining positional arguments (e.g.
    // the two revisions of `compare`), so the experiment-name check does
    // not apply to them; `top` has no positional arguments at all.
    if !DB_COMMANDS.contains(&experiments[0].as_str()) && experiments[0] != "top" {
        for e in &experiments {
            if !KNOWN.contains(&e.as_str()) {
                eprintln!(
                    "error: unknown experiment '{e}' (known: {}, {})",
                    KNOWN.join(", "),
                    DB_COMMANDS.join(", ")
                );
                std::process::exit(2);
            }
        }
    }
    Args {
        experiments,
        cfg,
        only,
        out,
        db,
        no_perfdb,
        baseline,
        current,
        threshold,
        warn_only,
        out_html,
        top,
        rate,
        duration_s,
    }
}

fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// JSON form of one registry metric for `BENCH_profile.json`.
fn metric_json(m: &MetricValue) -> Json {
    match m {
        MetricValue::Counter(v) => Json::from(*v as usize),
        MetricValue::Gauge(v) => Json::from(*v),
        MetricValue::Histogram(h) => Json::obj([
            ("count", Json::from(h.count() as usize)),
            ("sum", Json::from(h.sum() as usize)),
            ("min", Json::from(h.min() as usize)),
            ("max", Json::from(h.max() as usize)),
            ("mean", Json::from(h.mean())),
            (
                "buckets",
                Json::Arr(
                    h.nonzero_buckets()
                        .into_iter()
                        .map(|(upper, n)| {
                            Json::Arr(vec![Json::from(upper as usize), Json::from(n as usize)])
                        })
                        .collect(),
                ),
            ),
        ]),
    }
}

/// Loads the run database, warning (never failing) on skipped lines.
fn load_db(args: &Args) -> Vec<RunRecord> {
    let db = PerfDb::new(&args.db);
    let load = db.load().unwrap_or_else(|e| {
        eprintln!("error: cannot read {}: {e}", args.db.display());
        std::process::exit(2);
    });
    if load.skipped_lines > 0 {
        eprintln!(
            "perfdb: skipped {} unparseable line(s) in {}",
            load.skipped_lines,
            args.db.display()
        );
    }
    load.records
}

/// Runs one of the database subcommands ([`DB_COMMANDS`]); never returns.
fn run_db_command(args: &Args) -> ! {
    let records = load_db(args);
    match args.experiments[0].as_str() {
        "history" => print!("{}", perfreport::history_table(&records)),
        "compare" => {
            let [rev_a, rev_b] = match &args.experiments[1..] {
                [a, b] => [a.clone(), b.clone()],
                _ => {
                    eprintln!(
                        "error: compare needs exactly two revisions: repro compare REV_A REV_B"
                    );
                    std::process::exit(2);
                }
            };
            let cmp = perfreport::compare(&records, &rev_a, &rev_b);
            print!("{}", perfreport::compare_table(&cmp, &rev_a, &rev_b));
        }
        "gate" => {
            let baseline = args.baseline.clone().unwrap_or_else(|| {
                eprintln!("error: gate needs --baseline REV");
                std::process::exit(2);
            });
            let current = args.current.clone().unwrap_or_else(perfdb::git_rev);
            let cfg = perfreport::GateConfig { rel_threshold: args.threshold };
            let report = perfreport::gate(&records, &baseline, &current, cfg);
            print!("{}", perfreport::gate_table(&report, &baseline, &current));
            if !report.passed() {
                // Shared CI runners pass --warn-only so noisy-neighbour
                // regressions don't block merges; FBMPK_GATE_HARD=1
                // re-arms the hard gate (e.g. on dedicated hardware).
                let hard =
                    !args.warn_only || std::env::var("FBMPK_GATE_HARD").as_deref() == Ok("1");
                if hard {
                    std::process::exit(1);
                }
                eprintln!("gate: regression(s) found, continuing (--warn-only)");
            }
        }
        "report" => {
            let html = perfreport::html_report(&records);
            let path = args.out_html.clone().unwrap_or_else(|| args.out.join("perf_report.html"));
            if let Some(dir) = path.parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir).expect("create report dir");
                }
            }
            std::fs::write(&path, html).expect("write HTML report");
            println!("perf report: {} record(s) -> {}", records.len(), path.display());
        }
        other => unreachable!("not a db command: {other}"),
    }
    std::process::exit(0);
}

/// Appends a record for one measured configuration, skipping silently
/// when the sample vector is empty (nothing honest to persist).
#[allow(clippy::too_many_arguments)]
fn push_record(
    pending: &mut Vec<RunRecord>,
    ctx: &RecordCtx,
    experiment: &str,
    matrix: &str,
    kernel: &str,
    sync: Option<&str>,
    threads: usize,
    k: Option<usize>,
    options_fp: u64,
    wait_frac: Option<f64>,
    ipc: Option<f64>,
    modeled_matrix_bytes: Option<u64>,
    fallbacks: Option<u64>,
    watchdog_fires: Option<u64>,
    cut_edges: Option<u64>,
    traffic_vs_model: Option<f64>,
    blocking: Option<&str>,
    samples: &[f64],
) {
    let spec = RunSpec {
        experiment: experiment.to_string(),
        matrix: matrix.to_string(),
        kernel: kernel.to_string(),
        sync: sync.map(str::to_string),
        threads,
        k,
        options_fp,
        wait_frac,
        ipc,
        modeled_matrix_bytes,
        fallbacks,
        watchdog_fires,
        cut_edges,
        // Every in-process kernel runs at the one detected level, so the
        // axis is recorded unconditionally.
        simd: Some(fbmpk_sparse::simd::detect().tag().to_string()),
        blocking: blocking.map(str::to_string),
        traffic_vs_model,
        // Serving-load outcomes; the serve experiment builds its records
        // directly rather than through this kernel-timing helper.
        latency_p50_ms: None,
        latency_p99_ms: None,
        shed_count: None,
    };
    if let Some(rec) = RunRecord::new(ctx, spec, samples) {
        pending.push(rec);
    }
}

/// Appends the pending records to the perf database and prints the
/// results location — called on both the suite and the suite-free exit
/// paths so `repro serve` alone still persists its records.
fn flush_records(args: &Args, pending: &[RunRecord]) {
    if !pending.is_empty() {
        let db = PerfDb::new(&args.db);
        match db.append_all(pending) {
            Ok(()) => println!(
                "perfdb: appended {} record(s) (rev {}) to {}",
                pending.len(),
                pending[0].git_rev,
                db.path().display()
            ),
            // A read-only checkout must not fail the benchmark run.
            Err(e) => {
                eprintln!("perfdb: WARNING: could not append to {}: {e}", db.path().display())
            }
        }
    }
    println!("CSV results written to {}", args.out.display());
}

fn main() {
    let args = parse_args();
    if DB_COMMANDS.contains(&args.experiments[0].as_str()) {
        run_db_command(&args);
    }
    if args.experiments[0] == "top" {
        // Fall back to the endpoint variable so `repro top` with no
        // flags attaches to a job started with FBMPK_METRICS_ADDR (only
        // useful with an explicit port; a job bound to port 0 prints its
        // actual address on stderr — pass that via --addr).
        let mut cfg = args.top.clone();
        if cfg.addr.is_none() {
            cfg.addr = std::env::var("FBMPK_METRICS_ADDR")
                .ok()
                .and_then(|s| s.parse().ok())
                .filter(|a: &std::net::SocketAddr| a.port() != 0);
        }
        match fbmpk_bench::top::run(&cfg) {
            Ok(()) => std::process::exit(0),
            Err(e) => {
                eprintln!("repro top: {e}");
                std::process::exit(1);
            }
        }
    }
    if !args.only.is_empty() {
        // Validate up front against the static suite vocabulary so a
        // typo'd name fails immediately with the actual choices — even
        // when no suite-driven experiment was requested (where a bad
        // name would otherwise be silently ignored).
        let known: Vec<&'static str> = fbmpk_gen::paper_suite().iter().map(|e| e.name).collect();
        let unknown: Vec<&String> =
            args.only.iter().filter(|n| !known.contains(&n.as_str())).collect();
        if !unknown.is_empty() {
            for n in &unknown {
                eprintln!("error: --only: unknown suite matrix '{n}'");
            }
            eprintln!("known Table II inputs: {}", known.join(", "));
            std::process::exit(2);
        }
    }
    let want = |name: &str| args.experiments.iter().any(|e| e == name || e == "all");
    println!(
        "FBMPK reproduction harness  (scale {}, {} threads, {} reps)\n",
        args.cfg.scale, args.cfg.threads, args.cfg.reps
    );
    // Bring the metrics endpoint up before any measurement so a scraper
    // (curl, `repro top`, the monitor-smoke CI job) can attach from the
    // first second of the run rather than after the first plan builds.
    if let Some(addr) = fbmpk::telemetry::resolved_metrics_addr(None) {
        fbmpk::telemetry::ensure_endpoint(addr);
    }

    // Timing experiments persist perfdb records; probe the host identity
    // and its bandwidth ceilings once for the whole invocation.
    // `serve` is opt-in: it exercises the serving layer rather than a
    // paper artifact, so `all` does not imply it.
    let want_serve = args.experiments.iter().any(|e| e == "serve");
    let records_wanted = !args.no_perfdb
        && (want_serve
            || ["fig7", "sync", "tune", "profile", "blocking", "partition", "attribution"]
                .iter()
                .any(|e| want(e)));
    let perf_ctx = records_wanted.then(|| {
        let host = platform::probe();
        eprintln!("measuring host bandwidth ceilings (triad + random gather) ...");
        let bw = roofline::measure(host.llc_bytes());
        eprintln!(
            "  triad {:.1} GB/s, gather {:.1} GB/s ({} MiB working set)",
            bw.triad_gbs,
            bw.gather_gbs,
            bw.working_set_bytes >> 20
        );
        RecordCtx::current(host, Some(bw), args.cfg.scale, args.cfg.reps)
    });
    let mut pending: Vec<RunRecord> = Vec::new();

    if want("table1") {
        println!("{}", platform::platform_table());
    }
    if want("model") {
        let rows = runner::model_table(9);
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.k.to_string(),
                    r.standard_reads.to_string(),
                    r.fb_lower_reads.to_string(),
                    r.fb_upper_reads.to_string(),
                    f3(r.fb_effective_reads),
                    f3(r.ideal_ratio),
                ]
            })
            .collect();
        println!("Access-count model (paper SIII-B)");
        println!(
            "{}",
            format_table(
                &["k", "standard A-reads", "FB L-reads", "FB U-reads", "FB A-reads", "ideal ratio"],
                &table
            )
        );
        write_csv(
            &args.out.join("model.csv"),
            &["k", "standard_reads", "fb_l", "fb_u", "fb_eff", "ideal"],
            &table,
        )
        .expect("write model.csv");
    }

    // Serving-layer load run. Self-checking: exits nonzero (after the
    // perfdb flush) on any untyped failure or zero goodput.
    let mut serve_failed = false;
    if want_serve {
        use fbmpk_bench::serveload::{self, LoadConfig};
        use std::time::Duration;

        // With the feature compiled in, FBMPK_FAULT installs into the
        // kernels for the whole load run (the serving layer must answer
        // a typed 500/503 for every fault); without it, warn loudly
        // instead of silently running fault-free.
        #[cfg(feature = "fault-inject")]
        let _fault_guard = fbmpk_parallel::fault::install_from_env();
        #[cfg(not(feature = "fault-inject"))]
        if std::env::var("FBMPK_FAULT").is_ok_and(|v| !v.trim().is_empty()) {
            eprintln!(
                "serve: FBMPK_FAULT is set but the fault-inject feature is off; no faults will fire"
            );
        }

        let hot_matrix = "grid:64:64".to_string();
        let serve_k = 8usize;
        let handlers = 4usize;
        let mut server = fbmpk_serve::Server::start(fbmpk_serve::ServeConfig {
            kernel_threads: args.cfg.threads.clamp(1, 4),
            handlers,
            queue_cap: 32,
            tenant_cap: 4,
            default_deadline_ms: 2_000,
            ..Default::default()
        })
        .expect("start serving layer");
        let addr = server.local_addr();
        eprintln!("serve: serving layer on {addr}");
        match serveload::measure_capacity(addr, &hot_matrix, serve_k, Duration::from_millis(400)) {
            Err(e) => {
                eprintln!("serve: FAIL: {e}");
                serve_failed = true;
            }
            Ok(capacity) => {
                let overload = args.rate.unwrap_or(capacity * 2.0);
                eprintln!(
                    "serve: sustainable capacity ~{capacity:.0} rps; phases: baseline {:.0} rps, overload {overload:.0} rps",
                    capacity * 0.5
                );
                let mut reports = Vec::new();
                for (phase, rate_rps) in [("baseline", capacity * 0.5), ("overload", overload)] {
                    reports.push(serveload::run_phase(&LoadConfig {
                        phase: phase.to_string(),
                        addr,
                        rate_rps,
                        duration: Duration::from_secs_f64(args.duration_s.max(0.5)),
                        hot_matrix: hot_matrix.clone(),
                        k: serve_k,
                        timeout: Duration::from_secs(10),
                        seed: args.cfg.seed,
                    }));
                }
                let table: Vec<Vec<String>> = reports.iter().map(serveload::csv_row).collect();
                println!("Serving layer under open-loop load (goodput = 200s/s)");
                println!("{}", format_table(&serveload::CSV_HEADER, &table));
                write_csv(&args.out.join("serve.csv"), &serveload::CSV_HEADER, &table)
                    .expect("write serve.csv");
                if let Some(ctx) = &perf_ctx {
                    for r in &reports {
                        // Built directly rather than through push_record:
                        // the serving axes (percentiles, shed count) have
                        // no kernel-timing analogue.
                        let spec = RunSpec {
                            experiment: "serve".to_string(),
                            matrix: hot_matrix.clone(),
                            kernel: format!("serve:{}", r.phase),
                            sync: None,
                            threads: args.cfg.threads,
                            k: Some(serve_k),
                            options_fp: 0,
                            wait_frac: None,
                            ipc: None,
                            modeled_matrix_bytes: None,
                            fallbacks: Some(r.degraded as u64),
                            watchdog_fires: None,
                            cut_edges: None,
                            simd: Some(fbmpk_sparse::simd::detect().tag().to_string()),
                            blocking: None,
                            traffic_vs_model: None,
                            latency_p50_ms: Some(r.p50_ms),
                            latency_p99_ms: Some(r.p99_ms),
                            shed_count: Some(r.shed as u64),
                        };
                        let samples_s: Vec<f64> =
                            r.ok_latencies_ms.iter().map(|m| m / 1e3).collect();
                        if let Some(rec) = RunRecord::new(ctx, spec, &samples_s) {
                            pending.push(rec);
                        }
                    }
                }
                for r in &reports {
                    if r.untyped_failures > 0 {
                        eprintln!(
                            "serve: FAIL: {} untyped failure(s) in phase '{}' (the server must answer every accepted connection)",
                            r.untyped_failures, r.phase
                        );
                        serve_failed = true;
                    }
                    if r.ok == 0 {
                        eprintln!("serve: FAIL: zero goodput in phase '{}'", r.phase);
                        serve_failed = true;
                    }
                }
            }
        }
        server.shutdown();
    }

    let needs_suite = [
        "table2",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "table3",
        "table4",
        "fig11",
        "fig12",
        "ablation_blocks",
        "tune",
        "sync",
        "profile",
        "blocking",
        "partition",
        "attribution",
    ]
    .iter()
    .any(|e| want(e));
    if !needs_suite {
        flush_records(&args, &pending);
        if serve_failed {
            std::process::exit(1);
        }
        return;
    }
    eprintln!("generating the 14-matrix suite at scale {} ...", args.cfg.scale);
    let mut cases: Vec<MatrixCase> = runner::load_suite(&args.cfg);
    if !args.only.is_empty() {
        // Names were validated against the suite vocabulary in main().
        cases.retain(|c| args.only.iter().any(|n| n == c.entry.name));
        eprintln!("--only: restricted to {} suite matrix(es)", cases.len());
    }
    let cases = cases;

    if want("table2") {
        let rows = runner::table2(&cases);
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.rows.to_string(),
                    r.nnz.to_string(),
                    format!("{:.2}", r.nnz_per_row),
                    format!("{:.2}", r.paper_nnz_per_row),
                    if r.symmetric { "yes" } else { "no" }.into(),
                ]
            })
            .collect();
        println!("Table II - input matrices (generated at scale {})", args.cfg.scale);
        println!(
            "{}",
            format_table(&["input", "rows", "nnz", "nnz/row", "paper nnz/row", "sym"], &table)
        );
        write_csv(
            &args.out.join("table2.csv"),
            &["input", "rows", "nnz", "nnz_per_row", "paper_nnz_per_row", "symmetric"],
            &table,
        )
        .expect("write table2.csv");
    }

    if want("fig7") {
        eprintln!("fig7: FBMPK vs baseline, k = 5 ...");
        let rows = runner::fig7(&args.cfg, &cases);
        let gm = fbmpk_bench::report::geomean(&rows.iter().map(|r| r.speedup).collect::<Vec<_>>());
        let mut table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    format!("{:.6}", r.t_baseline),
                    format!("{:.6}", r.t_fbmpk),
                    f3(r.speedup),
                ]
            })
            .collect();
        table.push(vec!["geomean".into(), String::new(), String::new(), f3(gm)]);
        println!("Fig 7 - speedup of FBMPK over baseline MPK (k=5, {} threads)", args.cfg.threads);
        println!("{}", format_table(&["input", "t_baseline[s]", "t_fbmpk[s]", "speedup"], &table));
        write_csv(
            &args.out.join("fig7.csv"),
            &["input", "t_baseline", "t_fbmpk", "speedup"],
            &table,
        )
        .expect("write fig7.csv");
        if let Some(ctx) = &perf_ctx {
            for r in &rows {
                let t = args.cfg.threads;
                #[rustfmt::skip]
                push_record(&mut pending, ctx, "fig7", &r.name, "standard-mpk", None, t,
                    Some(r.k), 0, None, None, None, None, None, None, None, None,
                    &r.samples_baseline);
                #[rustfmt::skip]
                push_record(&mut pending, ctx, "fig7", &r.name, "fbmpk", None, t,
                    Some(r.k), r.options_fp, None, None, None, None, None, None, None, None,
                    &r.samples_fbmpk);
            }
        }
    }

    if want("fig8") {
        eprintln!("fig8: k sweep 3..9 ...");
        let rows = runner::fig8(&args.cfg, &cases);
        let table: Vec<Vec<String>> =
            rows.iter().map(|r| vec![r.name.clone(), r.k.to_string(), f3(r.speedup)]).collect();
        println!("Fig 8 - speedup vs power k");
        println!("{}", format_table(&["input", "k", "speedup"], &table));
        // Per-k geomeans (the paper's headline trend).
        let mut summary: Vec<Vec<String>> = Vec::new();
        for k in 3..=9usize {
            let s: Vec<f64> = rows.iter().filter(|r| r.k == k).map(|r| r.speedup).collect();
            summary.push(vec![k.to_string(), f3(fbmpk_bench::report::geomean(&s))]);
        }
        println!("Fig 8 summary - geomean speedup per k");
        println!("{}", format_table(&["k", "geomean speedup"], &summary));
        write_csv(&args.out.join("fig8.csv"), &["input", "k", "speedup"], &table)
            .expect("write fig8.csv");
        write_csv(&args.out.join("fig8_summary.csv"), &["k", "geomean_speedup"], &summary)
            .expect("write fig8_summary.csv");
    }

    if want("fig9") {
        eprintln!("fig9: simulated DRAM traffic ...");
        let rows = runner::fig9(&cases);
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.k.to_string(),
                    r.dram_standard.to_string(),
                    r.dram_fbmpk.to_string(),
                    format!("{:.1}%", r.ratio * 100.0),
                    format!("{:.1}%", r.ideal * 100.0),
                    format!("{:.1}%", r.vector_fraction * 100.0),
                ]
            })
            .collect();
        println!("Fig 9 - DRAM read/write volume ratio FBMPK / baseline (cache simulator)");
        println!(
            "{}",
            format_table(
                &["input", "k", "dram_baseline[B]", "dram_fbmpk[B]", "ratio", "ideal", "vec share"],
                &table
            )
        );
        write_csv(
            &args.out.join("fig9.csv"),
            &["input", "k", "dram_baseline", "dram_fbmpk", "ratio", "ideal", "vector_fraction"],
            &table,
        )
        .expect("write fig9.csv");
    }

    if want("fig10") {
        eprintln!("fig10: FB vs FB+BtB ablation ...");
        let rows = runner::fig10(&args.cfg, &cases);
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| vec![r.name.clone(), f3(r.speedup_fb), f3(r.speedup_fb_btb)])
            .collect();
        println!("Fig 10 - ablation (speedups over baseline, k=5)");
        println!("{}", format_table(&["input", "FB", "FB+BtB"], &table));
        write_csv(&args.out.join("fig10.csv"), &["input", "fb", "fb_btb"], &table)
            .expect("write fig10.csv");
    }

    if want("table3") {
        eprintln!("table3: ABMC impact on single SpMV ...");
        let rows = runner::table3(&args.cfg, &cases);
        let table: Vec<Vec<String>> =
            rows.iter().map(|r| vec![r.name.clone(), format!("{:.2}", r.ratio)]).collect();
        println!("Table III - single-SpMV ratio t_original / t_ABMC (>1 = ABMC faster)");
        println!("{}", format_table(&["input", "ratio"], &table));
        write_csv(&args.out.join("table3.csv"), &["input", "ratio"], &table)
            .expect("write table3.csv");
    }

    if want("table4") {
        let rows = runner::table4(&cases);
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.csr_bytes.to_string(),
                    r.split_bytes.to_string(),
                    f3(r.overhead),
                ]
            })
            .collect();
        println!("Table IV - storage: split L+U+d vs plain CSR");
        println!("{}", format_table(&["input", "csr[B]", "L+U+d[B]", "ratio"], &table));
        write_csv(
            &args.out.join("table4.csv"),
            &["input", "csr_bytes", "split_bytes", "ratio"],
            &table,
        )
        .expect("write table4.csv");
    }

    if want("fig11") {
        eprintln!("fig11: ABMC preprocessing cost ...");
        let rows = runner::fig11(&args.cfg, &cases);
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    format!("{:.6}", r.reorder_seconds),
                    format!("{:.6}", r.spmv_seconds),
                    format!("{:.1}", r.n_spmvs),
                ]
            })
            .collect();
        println!("Fig 11 - ABMC preprocessing cost in single-thread SpMV invocations");
        println!("{}", format_table(&["input", "reorder[s]", "spmv[s]", "#SpMVs"], &table));
        write_csv(
            &args.out.join("fig11.csv"),
            &["input", "reorder_seconds", "spmv_seconds", "n_spmvs"],
            &table,
        )
        .expect("write fig11.csv");
    }

    if want("ablation_blocks") {
        eprintln!("ablation: ABMC block-count sweep ...");
        let counts = [32usize, 128, 512, 1024, 4096];
        let mut table: Vec<Vec<String>> = Vec::new();
        for case in
            cases.iter().filter(|c| ["afshell10", "audikw_1", "G3_circuit"].contains(&c.entry.name))
        {
            for r in runner::ablation_blocks(&args.cfg, case, &counts) {
                table.push(vec![
                    r.name.clone(),
                    r.nblocks.to_string(),
                    r.ncolors.to_string(),
                    r.max_color_width.to_string(),
                    f3(r.speedup),
                ]);
            }
        }
        println!(
            "Block-count ablation (paper SIII-D trade-off, k=5, {} threads)",
            args.cfg.threads
        );
        println!(
            "{}",
            format_table(&["input", "nblocks", "colors", "max width", "speedup"], &table)
        );
        write_csv(
            &args.out.join("ablation_blocks.csv"),
            &["input", "nblocks", "colors", "max_width", "speedup"],
            &table,
        )
        .expect("write ablation_blocks.csv");
    }

    if want("tune") {
        eprintln!("tune: inspector-executor kernel selection ...");
        let rows = runner::tune(&args.cfg, &cases);
        let gm = fbmpk_bench::report::geomean(&rows.iter().map(|r| r.speedup).collect::<Vec<_>>());
        let mut table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.rows.to_string(),
                    format!("{:.2}", r.mean_row_nnz),
                    format!("{:.2}", r.row_cv),
                    r.variant.clone(),
                    format!("{:.6}", r.t_scalar),
                    format!("{:.6}", r.t_tuned),
                    f3(r.speedup),
                    f3(r.probed_speedup),
                ]
            })
            .collect();
        table.push(vec![
            "geomean".into(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            f3(gm),
            String::new(),
        ]);
        println!("Tune - auto-selected SpMV variant vs scalar CSR ({} threads)", args.cfg.threads);
        println!(
            "{}",
            format_table(
                &[
                    "input",
                    "rows",
                    "nnz/row",
                    "row cv",
                    "variant",
                    "t_scalar[s]",
                    "t_tuned[s]",
                    "speedup",
                    "probe x"
                ],
                &table
            )
        );
        write_csv(
            &args.out.join("tune.csv"),
            &[
                "input",
                "rows",
                "nnz_per_row",
                "row_cv",
                "variant",
                "t_scalar",
                "t_tuned",
                "speedup",
                "probed_speedup",
            ],
            &table,
        )
        .expect("write tune.csv");
        let json = Json::obj([
            ("experiment", Json::from("tune")),
            ("scale", Json::from(args.cfg.scale)),
            ("threads", Json::from(args.cfg.threads)),
            ("reps", Json::from(args.cfg.reps)),
            ("geomean_speedup", Json::from(gm)),
            ("simd", Json::from(fbmpk_sparse::simd::detect().tag())),
            ("platform", platform::probe().to_json()),
            (
                "matrices",
                Json::Arr(
                    rows.iter()
                        .map(|r| {
                            Json::obj([
                                ("name", Json::from(r.name.as_str())),
                                ("rows", Json::from(r.rows)),
                                ("nnz", Json::from(r.nnz)),
                                ("mean_row_nnz", Json::from(r.mean_row_nnz)),
                                ("row_cv", Json::from(r.row_cv)),
                                ("variant", Json::from(r.variant.as_str())),
                                ("t_scalar_seconds", Json::from(r.t_scalar)),
                                ("t_tuned_seconds", Json::from(r.t_tuned)),
                                ("t_unrolled4_seconds", Json::from(r.t_unrolled4)),
                                ("t_simd_seconds", Json::from(r.t_simd)),
                                ("simd_speedup", Json::from(r.t_scalar / r.t_simd)),
                                ("speedup", Json::from(r.speedup)),
                                ("probed_speedup", Json::from(r.probed_speedup)),
                                ("inspect_seconds", Json::from(r.inspect_seconds)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        write_json(&args.out.join("BENCH_kernels.json"), &json).expect("write BENCH_kernels.json");
        if let Some(ctx) = &perf_ctx {
            for r in &rows {
                // One SpMV streams the whole CSR once — the modeled-bytes
                // anchor for the tuned kernels' roofline fractions.
                let csr = fbmpk_sparse::TriangularSplit::csr_storage_bytes(r.rows, r.nnz) as u64;
                let t = args.cfg.threads;
                #[rustfmt::skip]
                push_record(&mut pending, ctx, "tune", &r.name, "csr-scalar", None, t,
                    None, 0, None, None, Some(csr), None, None, None, None, None,
                    &r.samples_scalar);
                #[rustfmt::skip]
                push_record(&mut pending, ctx, "tune", &r.name, &format!("tuned:{}", r.variant),
                    None, t, None, 0, None, None, Some(csr), None, None, None, None, None,
                    &r.samples_tuned);
                #[rustfmt::skip]
                push_record(&mut pending, ctx, "tune", &r.name, "csr-unrolled4", None, t,
                    None, 0, None, None, Some(csr), None, None, None, None, None,
                    &r.samples_unrolled4);
                #[rustfmt::skip]
                push_record(&mut pending, ctx, "tune", &r.name, &format!("csr-simd:{}", r.simd),
                    None, t, None, 0, None, None, Some(csr), None, None, None, None, None,
                    &r.samples_simd);
            }
        }
    }

    if want("blocking") {
        eprintln!("blocking: streaming vs level-blocked FBMPK, k = 8 ...");
        let rows = runner::blocking(&args.cfg, &cases);
        assert!(
            rows.iter().all(|r| r.agrees),
            "level-blocked execution diverged from streaming beyond 1e-9"
        );
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.nlevels.to_string(),
                    r.tile_powers.to_string(),
                    r.tile_powers_sim.to_string(),
                    format!("{:.6}", r.t_streaming),
                    format!("{:.6}", r.t_blocked),
                    f3(r.speedup),
                    r.dram_read_streaming.to_string(),
                    r.dram_read_blocked.to_string(),
                    f3(r.dram_read_blocked as f64 / r.dram_read_streaming as f64),
                ]
            })
            .collect();
        println!(
            "Blocking - level-blocked wavefront vs streaming FBMPK (k=8, {} threads)",
            args.cfg.threads
        );
        println!(
            "{}",
            format_table(
                &[
                    "input",
                    "levels",
                    "band kb",
                    "sim kb",
                    "t_stream[s]",
                    "t_blocked[s]",
                    "speedup",
                    "dram_rd_stream[B]",
                    "dram_rd_blocked[B]",
                    "rd ratio"
                ],
                &table
            )
        );
        write_csv(
            &args.out.join("blocking.csv"),
            &[
                "input",
                "levels",
                "tile_powers",
                "tile_powers_sim",
                "t_streaming",
                "t_blocked",
                "speedup",
                "dram_read_streaming",
                "dram_read_blocked",
                "read_ratio",
            ],
            &table,
        )
        .expect("write blocking.csv");
        if let Some(ctx) = &perf_ctx {
            for r in &rows {
                let t = args.cfg.threads;
                let modeled = Some(r.modeled_matrix_bytes);
                #[rustfmt::skip]
                push_record(&mut pending, ctx, "blocking", &r.name, "fbmpk", None, t,
                    Some(r.k), r.options_fp_streaming, None, None, modeled, None, None, None,
                    None, Some("streaming"), &r.samples_streaming);
                #[rustfmt::skip]
                push_record(&mut pending, ctx, "blocking", &r.name, "fbmpk", None, t,
                    Some(r.k), r.options_fp_blocked, None, None, modeled, None, None, None,
                    None, Some("level-blocked"), &r.samples_blocked);
            }
        }
    }

    if want("sync") {
        let max_threads = args.cfg.threads.max(8);
        let mut threads = vec![1usize, 2, 4];
        let mut t = 8;
        while t <= max_threads {
            threads.push(t);
            t *= 2;
        }
        eprintln!("sync: barrier vs point-to-point sweep {threads:?} ...");
        let rows = runner::sync_modes(&args.cfg, &cases, &threads);
        assert!(
            rows.iter().all(|r| r.identical),
            "point-to-point produced a result differing from barrier mode"
        );
        let gm = fbmpk_bench::report::geomean(&rows.iter().map(|r| r.speedup).collect::<Vec<_>>());
        let mut table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.threads.to_string(),
                    r.ncolors.to_string(),
                    r.nblocks.to_string(),
                    r.dep_edges.to_string(),
                    format!("{:.6}", r.t_barrier),
                    format!("{:.6}", r.t_p2p),
                    f3(r.speedup),
                ]
            })
            .collect();
        table.push(vec![
            "geomean".into(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            f3(gm),
        ]);
        println!("Sync - color-barrier vs point-to-point FBMPK (k=5, bit-identical verified)");
        println!(
            "{}",
            format_table(
                &[
                    "input",
                    "threads",
                    "colors",
                    "blocks",
                    "dep edges",
                    "t_barrier[s]",
                    "t_p2p[s]",
                    "speedup"
                ],
                &table
            )
        );
        write_csv(
            &args.out.join("sync.csv"),
            &[
                "input",
                "threads",
                "ncolors",
                "nblocks",
                "dep_edges",
                "t_barrier",
                "t_p2p",
                "speedup",
            ],
            &table,
        )
        .expect("write sync.csv");
        let json = Json::obj([
            ("experiment", Json::from("sync")),
            ("scale", Json::from(args.cfg.scale)),
            ("reps", Json::from(args.cfg.reps)),
            ("k", Json::from(5usize)),
            ("thread_counts", Json::Arr(threads.iter().map(|&t| Json::from(t)).collect())),
            ("geomean_speedup", Json::from(gm)),
            ("all_identical", Json::from(true)),
            ("platform", platform::probe().to_json()),
            (
                "points",
                Json::Arr(
                    rows.iter()
                        .map(|r| {
                            Json::obj([
                                ("name", Json::from(r.name.as_str())),
                                ("threads", Json::from(r.threads)),
                                ("ncolors", Json::from(r.ncolors)),
                                ("nblocks", Json::from(r.nblocks)),
                                ("dep_edges", Json::from(r.dep_edges)),
                                ("t_barrier_seconds", Json::from(r.t_barrier)),
                                ("t_p2p_seconds", Json::from(r.t_p2p)),
                                ("speedup", Json::from(r.speedup)),
                                ("identical", Json::from(r.identical)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        write_json(&args.out.join("BENCH_sync.json"), &json).expect("write BENCH_sync.json");
        if let Some(ctx) = &perf_ctx {
            for r in &rows {
                let modeled = Some(r.modeled_matrix_bytes);
                #[rustfmt::skip]
                push_record(&mut pending, ctx, "sync", &r.name, "fbmpk", Some("barrier"),
                    r.threads, Some(5), r.options_fp_barrier, None, None, modeled, None,
                    None, None, None, None, &r.samples_barrier);
                #[rustfmt::skip]
                push_record(&mut pending, ctx, "sync", &r.name, "fbmpk", Some("p2p"),
                    r.threads, Some(5), r.options_fp_p2p, None, None, modeled,
                    Some(r.fallbacks), None, None, None, None, &r.samples_p2p);
            }
        }
    }

    if want("partition") {
        eprintln!("partition: blocking-strategy comparison under p2p sync, k = 5 ...");
        let rows = runner::partition(&args.cfg, &cases);
        assert!(
            rows.iter().all(|r| r.identical),
            "a blocking strategy's p2p run diverged from its barrier/recording twins"
        );
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.strategy.clone(),
                    r.nblocks.to_string(),
                    r.ncolors.to_string(),
                    r.cut_edges.to_string(),
                    r.dep_edges.to_string(),
                    format!("{:.2}", r.balance),
                    format!("{:.6}", r.t_p2p),
                    format!("{:.2}", r.gbs),
                    format!("{:.1}%", r.wait_frac * 100.0),
                ]
            })
            .collect();
        println!(
            "Partition - blocking strategies under point-to-point sync (k=5, {} threads)",
            args.cfg.threads
        );
        println!(
            "{}",
            format_table(
                &[
                    "input",
                    "strategy",
                    "blocks",
                    "colors",
                    "cut edges",
                    "dep edges",
                    "balance",
                    "t_p2p[s]",
                    "GB/s",
                    "wait"
                ],
                &table
            )
        );
        // Headline: per-matrix cut-edge reduction of the multilevel
        // partitioner over block aggregation.
        let mut summary: Vec<Vec<String>> = Vec::new();
        for c in rows.chunks(3) {
            let cut = |tag: &str| c.iter().find(|r| r.strategy == tag).map_or(0, |r| r.cut_edges);
            let (agg, ml) = (cut("aggregated"), cut("multilevel"));
            summary.push(vec![
                c[0].name.clone(),
                agg.to_string(),
                ml.to_string(),
                if agg > 0 {
                    format!("{:.1}%", 100.0 * (1.0 - ml as f64 / agg as f64))
                } else {
                    "n/a".into()
                },
            ]);
        }
        println!("Partition summary - multilevel cut edges vs aggregated");
        println!(
            "{}",
            format_table(&["input", "cut aggregated", "cut multilevel", "reduction"], &summary)
        );
        write_csv(
            &args.out.join("partition.csv"),
            &[
                "input",
                "strategy",
                "nblocks",
                "ncolors",
                "cut_edges",
                "dep_edges",
                "balance",
                "t_p2p",
                "gbs",
                "wait_frac",
            ],
            &table,
        )
        .expect("write partition.csv");
        let json = Json::obj([
            ("experiment", Json::from("partition")),
            ("scale", Json::from(args.cfg.scale)),
            ("threads", Json::from(args.cfg.threads)),
            ("reps", Json::from(args.cfg.reps)),
            ("k", Json::from(5usize)),
            ("all_identical", Json::from(true)),
            ("platform", platform::probe().to_json()),
            (
                "points",
                Json::Arr(
                    rows.iter()
                        .map(|r| {
                            Json::obj([
                                ("name", Json::from(r.name.as_str())),
                                ("strategy", Json::from(r.strategy.as_str())),
                                ("threads", Json::from(r.threads)),
                                ("nblocks", Json::from(r.nblocks)),
                                ("ncolors", Json::from(r.ncolors)),
                                ("cut_edges", Json::from(r.cut_edges)),
                                ("dep_edges", Json::from(r.dep_edges)),
                                ("balance", Json::from(r.balance)),
                                ("t_p2p_seconds", Json::from(r.t_p2p)),
                                ("gbs", Json::from(r.gbs)),
                                ("wait_frac", Json::from(r.wait_frac)),
                                ("identical", Json::from(r.identical)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        write_json(&args.out.join("BENCH_partition.json"), &json)
            .expect("write BENCH_partition.json");
        if let Some(ctx) = &perf_ctx {
            for r in &rows {
                #[rustfmt::skip]
                push_record(&mut pending, ctx, "partition", &r.name, "fbmpk", Some("p2p"),
                    r.threads, Some(5), r.options_fp, Some(r.wait_frac), None,
                    Some(r.modeled_matrix_bytes), Some(r.fallbacks), None,
                    Some(r.cut_edges as u64), None, Some(&r.strategy), &r.samples);
            }
        }
    }

    if want("profile") {
        eprintln!("profile: in-kernel spans, bandwidth, hardware counters ...");
        let roofline_gbs = perf_ctx.as_ref().and_then(|c| c.bw.map(|b| b.triad_gbs));
        let (rows, trace, registry) = runner::profile(&args.cfg, &cases, roofline_gbs);
        assert!(
            rows.iter().all(|r| r.identical),
            "a recording plan produced a result differing from its non-recording twin"
        );
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.threads.to_string(),
                    r.ncolors.to_string(),
                    format!("{:.2}", r.bw_barrier_gbs),
                    format!("{:.2}", r.bw_p2p_gbs),
                    f3(r.traffic_vs_model),
                    format!("{:.1}%", r.wait_frac_barrier * 100.0),
                    format!("{:.1}%", r.wait_frac_p2p * 100.0),
                    r.hw.as_ref()
                        .map(|h| format!("{:.2}", h.ipc()))
                        .unwrap_or_else(|| "n/a".into()),
                    r.fallbacks.to_string(),
                    r.watchdog_fires.to_string(),
                ]
            })
            .collect();
        println!(
            "Profile - effective matrix bandwidth, traffic vs model, wait fractions (k=5, {} threads)",
            args.cfg.threads
        );
        println!(
            "{}",
            format_table(
                &[
                    "input",
                    "threads",
                    "colors",
                    "bw barrier[GB/s]",
                    "bw p2p[GB/s]",
                    "traffic/model",
                    "wait barrier",
                    "wait p2p",
                    "ipc",
                    "fallbacks",
                    "wd fires"
                ],
                &table
            )
        );
        let csv_rows: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.threads.to_string(),
                    r.k.to_string(),
                    r.ncolors.to_string(),
                    r.nblocks.to_string(),
                    format!("{:.9}", r.t_barrier),
                    format!("{:.9}", r.t_p2p),
                    r.modeled_matrix_bytes.to_string(),
                    f3(r.bw_barrier_gbs),
                    f3(r.bw_p2p_gbs),
                    r.sim_dram_bytes.to_string(),
                    f3(r.traffic_vs_model),
                    f3(r.wait_frac_barrier),
                    f3(r.wait_frac_p2p),
                    r.identical.to_string(),
                    r.hw.as_ref().map(|h| h.cycles.to_string()).unwrap_or_default(),
                    r.hw.as_ref().map(|h| h.instructions.to_string()).unwrap_or_default(),
                    r.hw.as_ref().map(|h| h.llc_misses.to_string()).unwrap_or_default(),
                    r.dropped_spans.to_string(),
                    r.fallbacks.to_string(),
                    r.watchdog_fires.to_string(),
                    r.fault_injection_hits.to_string(),
                ]
            })
            .collect();
        write_csv(
            &args.out.join("profile.csv"),
            &[
                "input",
                "threads",
                "k",
                "ncolors",
                "nblocks",
                "t_barrier",
                "t_p2p",
                "modeled_matrix_bytes",
                "bw_barrier_gbs",
                "bw_p2p_gbs",
                "sim_dram_bytes",
                "traffic_vs_model",
                "wait_frac_barrier",
                "wait_frac_p2p",
                "identical",
                "hw_cycles",
                "hw_instructions",
                "hw_llc_misses",
                "dropped_spans",
                "fallbacks",
                "watchdog_fires",
                "fault_injection_hits",
            ],
            &csv_rows,
        )
        .expect("write profile.csv");
        let metrics = Json::Obj(
            registry.snapshot().iter().map(|(k, m)| (k.clone(), metric_json(m))).collect(),
        );
        let json = Json::obj([
            ("experiment", Json::from("profile")),
            ("scale", Json::from(args.cfg.scale)),
            ("threads", Json::from(args.cfg.threads)),
            ("reps", Json::from(args.cfg.reps)),
            ("k", Json::from(5usize)),
            ("platform", platform::probe().to_json()),
            ("metrics", metrics),
            (
                "matrices",
                Json::Arr(
                    rows.iter()
                        .map(|r| {
                            Json::obj([
                                ("name", Json::from(r.name.as_str())),
                                ("threads", Json::from(r.threads)),
                                ("ncolors", Json::from(r.ncolors)),
                                ("nblocks", Json::from(r.nblocks)),
                                ("t_barrier_seconds", Json::from(r.t_barrier)),
                                ("t_p2p_seconds", Json::from(r.t_p2p)),
                                (
                                    "modeled_matrix_bytes",
                                    Json::from(r.modeled_matrix_bytes as usize),
                                ),
                                ("bw_barrier_gbs", Json::from(r.bw_barrier_gbs)),
                                ("bw_p2p_gbs", Json::from(r.bw_p2p_gbs)),
                                ("sim_dram_bytes", Json::from(r.sim_dram_bytes as usize)),
                                ("traffic_vs_model", Json::from(r.traffic_vs_model)),
                                ("wait_frac_barrier", Json::from(r.wait_frac_barrier)),
                                ("wait_frac_p2p", Json::from(r.wait_frac_p2p)),
                                ("identical", Json::from(r.identical)),
                                (
                                    "hw",
                                    match &r.hw {
                                        Some(h) => Json::obj([
                                            ("cycles", Json::from(h.cycles as usize)),
                                            ("instructions", Json::from(h.instructions as usize)),
                                            ("llc_misses", Json::from(h.llc_misses as usize)),
                                            ("ipc", Json::from(h.ipc())),
                                        ]),
                                        None => Json::Null,
                                    },
                                ),
                                ("dropped_spans", Json::from(r.dropped_spans as usize)),
                                ("fallbacks", Json::from(r.fallbacks as usize)),
                                ("watchdog_fires", Json::from(r.watchdog_fires as usize)),
                                (
                                    "fault_injection_hits",
                                    Json::from(r.fault_injection_hits as usize),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        write_json(&args.out.join("BENCH_profile.json"), &json).expect("write BENCH_profile.json");
        trace.write(&args.out.join("profile_trace.json")).expect("write profile_trace.json");
        println!(
            "profile trace: {} events -> {}",
            trace.len(),
            args.out.join("profile_trace.json").display()
        );
        if let Some(ctx) = &perf_ctx {
            for r in &rows {
                let modeled = Some(r.modeled_matrix_bytes);
                let ipc = r.hw.as_ref().map(fbmpk_obs::HwSample::ipc);
                #[rustfmt::skip]
                push_record(&mut pending, ctx, "profile", &r.name, "fbmpk", Some("barrier"),
                    r.threads, Some(r.k), r.options_fp_barrier, Some(r.wait_frac_barrier), ipc,
                    modeled, Some(r.fallbacks), Some(r.watchdog_fires), None,
                    Some(r.traffic_vs_model), None, &r.samples_barrier);
                #[rustfmt::skip]
                push_record(&mut pending, ctx, "profile", &r.name, "fbmpk", Some("p2p"),
                    r.threads, Some(r.k), r.options_fp_p2p, Some(r.wait_frac_p2p), None,
                    modeled, Some(r.fallbacks), Some(r.watchdog_fires), None,
                    Some(r.traffic_vs_model), None, &r.samples_p2p);
            }
        }
    }

    if want("attribution") {
        eprintln!("attribution: modeled / simulated / measured byte ledgers, k = 5 ...");
        let rows = runner::attribution(&args.cfg, &cases);
        assert!(
            rows.iter().all(|r| r.identical),
            "a counter-probed run produced a result differing from the plain kernel"
        );
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.report.blocks.len().to_string(),
                    format!("{:.2}", r.modeled_matrix_bytes as f64 / 1e6),
                    format!("{:.2}", r.sim_dram_total as f64 / 1e6),
                    f3(r.traffic_vs_model),
                    r.report
                        .measured_total
                        .map(|m| format!("{:.2}", m as f64 / 1e6))
                        .unwrap_or_else(|| "n/a".into()),
                    r.report.excess_cut_correlation().map(f3).unwrap_or_else(|| "n/a".into()),
                    format!(
                        "{:.1}%",
                        100.0 * r.sim_unattributed as f64 / r.sim_dram_total.max(1) as f64
                    ),
                ]
            })
            .collect();
        println!("Attribution - where the bytes go (k=5, {} threads)", args.cfg.threads);
        println!(
            "{}",
            format_table(
                &[
                    "input",
                    "blocks",
                    "model[MB]",
                    "sim[MB]",
                    "sim/model",
                    "meas[MB]",
                    "corr(cut,excess)",
                    "sim unattr"
                ],
                &table
            )
        );
        let mut worst: Vec<Vec<String>> = Vec::new();
        for r in &rows {
            for b in r.report.worst_blocks(3) {
                worst.push(vec![
                    r.name.clone(),
                    b.block.to_string(),
                    b.color.to_string(),
                    b.rows.to_string(),
                    b.cut_edges.to_string(),
                    b.modeled_bytes.to_string(),
                    b.simulated_bytes.to_string(),
                    f3(b.ranking_ratio()),
                ]);
            }
        }
        println!("Attribution - worst blocks by traffic-vs-model ratio");
        println!(
            "{}",
            format_table(
                &["input", "block", "color", "rows", "cut edges", "model[B]", "sim[B]", "ratio"],
                &worst
            )
        );
        // The full three-ledger decomposition: one CSV row per
        // (matrix, block, power) cell; `measured_bytes` is empty (not 0)
        // when hardware counters were unavailable.
        let csv: Vec<Vec<String>> = rows
            .iter()
            .flat_map(|r| {
                r.report.cells.iter().map(|c| {
                    vec![
                        r.name.clone(),
                        c.block.to_string(),
                        c.color.to_string(),
                        c.power.to_string(),
                        c.modeled_bytes.to_string(),
                        c.simulated_bytes.to_string(),
                        c.measured_bytes.map(|m| m.to_string()).unwrap_or_default(),
                    ]
                })
            })
            .collect();
        write_csv(
            &args.out.join("attribution.csv"),
            &[
                "input",
                "block",
                "color",
                "power",
                "modeled_bytes",
                "simulated_bytes",
                "measured_bytes",
            ],
            &csv,
        )
        .expect("write attribution.csv");
        let json = Json::obj([
            ("experiment", Json::from("attribution")),
            ("scale", Json::from(args.cfg.scale)),
            ("threads", Json::from(args.cfg.threads)),
            ("reps", Json::from(args.cfg.reps)),
            ("k", Json::from(5usize)),
            ("platform", platform::probe().to_json()),
            (
                "matrices",
                Json::Arr(
                    rows.iter()
                        .map(|r| {
                            Json::obj([
                                ("name", Json::from(r.name.as_str())),
                                ("threads", Json::from(r.threads)),
                                ("nblocks", Json::from(r.report.blocks.len())),
                                ("t_p2p_seconds", Json::from(r.t_p2p)),
                                (
                                    "modeled_matrix_bytes",
                                    Json::from(r.modeled_matrix_bytes as usize),
                                ),
                                ("sim_dram_bytes", Json::from(r.sim_dram_total as usize)),
                                ("sim_unattributed_bytes", Json::from(r.sim_unattributed as usize)),
                                ("traffic_vs_model", Json::from(r.traffic_vs_model)),
                                (
                                    "measured_bytes",
                                    match r.report.measured_total {
                                        Some(m) => Json::from(m as usize),
                                        None => Json::Null,
                                    },
                                ),
                                (
                                    "measured_unattributed_bytes",
                                    match r.measured_unattributed {
                                        Some(m) => Json::from(m as usize),
                                        None => Json::Null,
                                    },
                                ),
                                (
                                    "excess_cut_correlation",
                                    match r.report.excess_cut_correlation() {
                                        Some(c) => Json::from(c),
                                        None => Json::Null,
                                    },
                                ),
                                (
                                    "phase_bytes",
                                    Json::Obj(
                                        r.sim_phase_bytes
                                            .iter()
                                            .map(|&(p, v)| (p.to_string(), Json::from(v as usize)))
                                            .collect(),
                                    ),
                                ),
                                (
                                    "node_bytes",
                                    Json::Obj(
                                        r.node_bytes
                                            .iter()
                                            .map(|&(nid, v)| {
                                                let key = if nid == u32::MAX {
                                                    "unknown".to_string()
                                                } else {
                                                    nid.to_string()
                                                };
                                                (key, Json::from(v as usize))
                                            })
                                            .collect(),
                                    ),
                                ),
                                ("identical", Json::from(r.identical)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        write_json(&args.out.join("BENCH_attribution.json"), &json)
            .expect("write BENCH_attribution.json");
        let html = perfreport::attribution_heatmap_html(&rows);
        let html_path = args.out.join("attribution_heatmap.html");
        std::fs::write(&html_path, html).expect("write attribution_heatmap.html");
        println!("attribution heatmap: {}", html_path.display());
        if let Some(ctx) = &perf_ctx {
            for r in &rows {
                let cut: u64 = r.report.blocks.iter().map(|b| b.cut_edges).sum();
                #[rustfmt::skip]
                push_record(&mut pending, ctx, "attribution", &r.name, "fbmpk", Some("p2p"),
                    r.threads, Some(r.k), r.options_fp, None, None,
                    Some(r.modeled_matrix_bytes), None, None, Some(cut),
                    Some(r.traffic_vs_model), None, &r.samples);
            }
        }
    }

    if want("fig12") {
        let max_threads = args.cfg.threads.max(8);
        let mut threads = vec![1usize, 2, 4];
        let mut t = 8;
        while t <= max_threads {
            threads.push(t);
            t *= 2;
        }
        eprintln!("fig12: thread sweep {threads:?} ...");
        let rows = runner::fig12(&args.cfg, &cases, &threads);
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| vec![r.name.clone(), r.threads.to_string(), f3(r.speedup)])
            .collect();
        println!("Fig 12 - FBMPK speedup over single-thread baseline (k=5)");
        println!("{}", format_table(&["input", "threads", "speedup"], &table));
        write_csv(&args.out.join("fig12.csv"), &["input", "threads", "speedup"], &table)
            .expect("write fig12.csv");
    }

    flush_records(&args, &pending);
    if serve_failed {
        std::process::exit(1);
    }
}
