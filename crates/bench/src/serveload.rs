//! Open-loop load generator for the serving layer (`repro serve`).
//!
//! Drives an in-process [`fbmpk_serve::Server`] with a Poisson-ish
//! arrival schedule that does **not** wait for responses before firing
//! the next request — the defining property of an open-loop generator,
//! and the one that makes overload visible: a closed-loop client slows
//! down with the server and never exposes queue growth.
//!
//! The generator first measures sustainable capacity closed-loop (one
//! request at a time on a warm plan), then offers a configurable
//! multiple of it. Every response is classified by status code plus the
//! typed `X-Fbmpk-*` headers, so the report separates goodput (200s),
//! shedding (429 per rung), deadline expiry (typed 503), worker faults
//! (typed 500), and *untyped* failures (transport errors) — the last
//! must stay zero, because the server promises a typed answer for every
//! accepted connection.

use fbmpk_serve::client;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Ceiling on the capacity estimate: tiny matrices serve in tens of
/// microseconds, and offering 2x of *that* would need an arrival engine
/// this thread-per-slot design cannot honor. Overload behaviour is
/// identical at 400 offered rps; the cap keeps the run honest.
pub const CAPACITY_CAP_RPS: f64 = 400.0;

/// Ceiling on arrivals per phase, so `--duration-s` typos cannot turn
/// the load run into a fork bomb.
pub const MAX_ARRIVALS: usize = 3000;

/// One load phase to run.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Phase label carried into the report and the CSV.
    pub phase: String,
    /// Server address.
    pub addr: SocketAddr,
    /// Offered arrival rate (requests per second).
    pub rate_rps: f64,
    /// How long to keep offering arrivals.
    pub duration: Duration,
    /// Matrix spec for the hot (cache-resident) tenant.
    pub hot_matrix: String,
    /// Power count for kernel requests.
    pub k: usize,
    /// Per-request client timeout.
    pub timeout: Duration,
    /// Seed for the deterministic arrival jitter.
    pub seed: u64,
}

/// Outcome of one request, classified from the response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// 200 — counted toward goodput.
    Ok,
    /// 429 with `X-Fbmpk-Shed` — typed backpressure.
    Shed,
    /// 503 with `X-Fbmpk-Deadline: expired`.
    DeadlineExpired,
    /// 503 without a deadline marker (negative cache, build failure).
    Unavailable,
    /// 500 with `X-Fbmpk-Fault` — isolated worker fault.
    Fault,
    /// 400/413 — the generator never sends these on purpose.
    Bad,
    /// Transport-level failure: the server broke its typed-answer
    /// promise (or the host ran out of sockets). Must stay zero.
    Untyped,
}

/// One completed request.
#[derive(Debug, Clone)]
pub struct Sample {
    /// What happened.
    pub outcome: Outcome,
    /// Wall-clock latency of the request (including any retry wait).
    pub latency_ms: f64,
    /// Whether this arrival was re-sent once after a 429.
    pub retried: bool,
    /// `X-Fbmpk-Batch-Width` when > 1 (the request shared an SpMM).
    pub batched: bool,
    /// `X-Fbmpk-Degraded: 1` (served by the probe-free fallback plan).
    pub degraded: bool,
    /// Transport error text for [`Outcome::Untyped`] samples.
    pub error: Option<String>,
}

/// Aggregated result of one phase.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Phase label.
    pub phase: String,
    /// Offered rate.
    pub offered_rps: f64,
    /// Arrivals fired.
    pub arrivals: usize,
    /// 200 count.
    pub ok: usize,
    /// 429 count (after the retry, if one was attempted).
    pub shed: usize,
    /// Typed deadline 503s.
    pub deadline_expired: usize,
    /// Other 503s.
    pub unavailable: usize,
    /// Typed 500s.
    pub faults: usize,
    /// 400/413s.
    pub bad: usize,
    /// Transport failures — the zero-crash invariant.
    pub untyped_failures: usize,
    /// Arrivals that were retried once after a 429.
    pub retried: usize,
    /// Retried arrivals that then succeeded.
    pub retried_ok: usize,
    /// Requests served from a shared SpMM batch.
    pub batched: usize,
    /// Requests served by the degraded (probe-free) plan.
    pub degraded: usize,
    /// Successful responses per second of wall clock.
    pub goodput_rps: f64,
    /// Median latency over successful requests (ms).
    pub p50_ms: f64,
    /// 99th-percentile latency over successful requests (ms).
    pub p99_ms: f64,
    /// Sorted successful-request latencies in ms (for the perf DB).
    pub ok_latencies_ms: Vec<f64>,
    /// Wall-clock time of the phase.
    pub elapsed: Duration,
}

/// Measures sustainable capacity closed-loop: sequential requests on a
/// warm plan for roughly `window`, returning requests/second capped at
/// [`CAPACITY_CAP_RPS`]. The first request is untimed (it builds the
/// plan). Sequential throughput is the honest floor: same-plan requests
/// serialize on the plan's execution lock, and batching recovers only
/// some of the handler parallelism, so scaling by the handler count
/// would overestimate and make the "baseline" phase an overload.
pub fn measure_capacity(
    addr: SocketAddr,
    matrix: &str,
    k: usize,
    window: Duration,
) -> Result<f64, String> {
    let body = client::kernel_body(matrix, k, "ones");
    let timeout = Duration::from_secs(10);
    let headers = [("X-Tenant", "capacity-probe")];
    // Warm the plan cache (and the tenant quota path) off the clock.
    let warm = client::request(addr, "POST", "/v1/power", &headers, &body, timeout)
        .map_err(|e| format!("capacity probe: transport error: {e}"))?;
    if warm.status != 200 {
        return Err(format!("capacity probe: warmup answered {}", warm.status));
    }
    let start = Instant::now();
    let mut n = 0usize;
    while start.elapsed() < window || n == 0 {
        let r = client::request(addr, "POST", "/v1/power", &headers, &body, timeout)
            .map_err(|e| format!("capacity probe: transport error: {e}"))?;
        if r.status != 200 {
            return Err(format!("capacity probe: answered {}", r.status));
        }
        n += 1;
    }
    let per_req_s = start.elapsed().as_secs_f64() / n as f64;
    Ok((1.0 / per_req_s).min(CAPACITY_CAP_RPS))
}

/// Deterministic 64-bit mix for arrival jitter and scenario choice —
/// keeps the schedule reproducible under `--seed` without an RNG
/// dependency in the hot path.
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed ^ (i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// What the `i`-th arrival sends. The mix keeps the hot tenant dominant
/// (so batching and the plan cache are exercised) while a steady
/// trickle of cold tenants, MPK calls, and zero-deadline probes drives
/// every shedding rung and the typed-503 path.
#[derive(Debug, Clone)]
struct Scenario {
    path: &'static str,
    tenant: String,
    matrix: String,
    deadline_ms: Option<u64>,
}

fn scenario(i: usize, cfg: &LoadConfig) -> Scenario {
    let r = mix(cfg.seed, i as u64) % 100;
    if r < 5 {
        // Zero deadline: expired in the queue, typed 503.
        Scenario {
            path: "/v1/power",
            tenant: "hot".into(),
            matrix: cfg.hot_matrix.clone(),
            deadline_ms: Some(0),
        }
    } else if r < 15 {
        // Cold tenant with a distinct matrix: exercises rung 2 (new
        // tenants shed first) and rung 3 (uncached plans shed) plus the
        // build path. A small pool of cold identities keeps the plan
        // cache from growing without bound.
        let id = mix(cfg.seed ^ 0xc01d, i as u64) % 4;
        Scenario {
            path: "/v1/power",
            tenant: format!("cold-{id}"),
            matrix: format!("banded:2000:5:{}:7", 3 + id),
            deadline_ms: None,
        }
    } else if r < 30 {
        // Hot-plan MPK (deadline-supervised execution path).
        Scenario {
            path: "/v1/mpk",
            tenant: "hot".into(),
            matrix: cfg.hot_matrix.clone(),
            deadline_ms: None,
        }
    } else {
        Scenario {
            path: "/v1/power",
            tenant: "hot".into(),
            matrix: cfg.hot_matrix.clone(),
            deadline_ms: None,
        }
    }
}

fn classify(resp: &client::ClientResponse) -> Outcome {
    match resp.status {
        200 => Outcome::Ok,
        429 => Outcome::Shed,
        503 if resp.header("x-fbmpk-deadline") == Some("expired") => Outcome::DeadlineExpired,
        503 => Outcome::Unavailable,
        500 => Outcome::Fault,
        _ => Outcome::Bad,
    }
}

/// Fires one arrival: sends the request, retries exactly once after a
/// short backoff if it was shed (the real client behaviour Retry-After
/// advises, compressed so the phase stays short).
fn fire(cfg: &LoadConfig, sc: &Scenario) -> Sample {
    let body = client::kernel_body(&sc.matrix, cfg.k, "ones");
    let deadline_hdr = sc.deadline_ms.map(|d| d.to_string());
    let mut headers: Vec<(&str, &str)> = vec![("X-Tenant", &sc.tenant)];
    if let Some(d) = &deadline_hdr {
        headers.push(("X-Deadline-Ms", d));
    }
    let start = Instant::now();
    let first = client::request(cfg.addr, "POST", sc.path, &headers, &body, cfg.timeout);
    let (resp, retried) = match first {
        Ok(r) if r.status == 429 && sc.deadline_ms.is_none() => {
            std::thread::sleep(Duration::from_millis(25));
            (client::request(cfg.addr, "POST", sc.path, &headers, &body, cfg.timeout), true)
        }
        other => (other, false),
    };
    let latency_ms = start.elapsed().as_secs_f64() * 1e3;
    match resp {
        Ok(r) => Sample {
            outcome: classify(&r),
            latency_ms,
            retried,
            batched: r
                .header("x-fbmpk-batch-width")
                .and_then(|w| w.parse::<usize>().ok())
                .is_some_and(|w| w > 1),
            degraded: r.header("x-fbmpk-degraded") == Some("1"),
            error: None,
        },
        Err(e) => Sample {
            outcome: Outcome::Untyped,
            latency_ms,
            retried,
            batched: false,
            degraded: false,
            error: Some(format!("{:?}: {e}", e.kind())),
        },
    }
}

/// Runs one open-loop phase: arrivals at `rate_rps` for `duration`,
/// each fired from a worker-pool slot that sleeps until its scheduled
/// instant. Returns the aggregated report.
pub fn run_phase(cfg: &LoadConfig) -> LoadReport {
    let interval_s = 1.0 / cfg.rate_rps.max(1.0);
    let arrivals = ((cfg.duration.as_secs_f64() * cfg.rate_rps) as usize).clamp(1, MAX_ARRIVALS);
    // Enough slots that a request taking `timeout` cannot stall the
    // schedule at the offered rate, bounded to stay a thread pool.
    let workers = ((cfg.rate_rps * 0.5).ceil() as usize).clamp(8, 96).min(arrivals);
    let next = AtomicUsize::new(0);
    let samples: Mutex<Vec<Sample>> = Mutex::new(Vec::with_capacity(arrivals));
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= arrivals {
                    return;
                }
                // Scheduled arrival time with deterministic +/- 40%
                // jitter, so arrivals are not a metronome.
                let jitter = (mix(cfg.seed ^ 0x717e, i as u64) % 80) as f64 / 100.0 - 0.4;
                let at = Duration::from_secs_f64((i as f64 + jitter).max(0.0) * interval_s);
                let elapsed = t0.elapsed();
                if at > elapsed {
                    std::thread::sleep(at - elapsed);
                }
                let s = fire(cfg, &scenario(i, cfg));
                samples.lock().expect("samples").push(s);
            });
        }
    });
    let elapsed = t0.elapsed();
    let samples = samples.into_inner().expect("samples");
    summarize(cfg, &samples, elapsed)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    // Nearest-rank: the smallest value with at least p of the mass at
    // or below it (p50 of 1..=100 is 50, not an interpolation).
    let idx = ((sorted.len() as f64 * p).ceil() as usize).saturating_sub(1);
    sorted[idx.min(sorted.len() - 1)]
}

fn summarize(cfg: &LoadConfig, samples: &[Sample], elapsed: Duration) -> LoadReport {
    let count = |o: Outcome| samples.iter().filter(|s| s.outcome == o).count();
    // An untyped failure is a bug somewhere (server, generator, or
    // host); print the breakdown so a red CI run is triageable.
    let mut errs: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for s in samples {
        if let Some(e) = &s.error {
            *errs.entry(e.as_str()).or_default() += 1;
        }
    }
    for (e, n) in &errs {
        eprintln!("serve [{}]: {n} untyped failure(s): {e}", cfg.phase);
    }
    let mut ok_latencies_ms: Vec<f64> =
        samples.iter().filter(|s| s.outcome == Outcome::Ok).map(|s| s.latency_ms).collect();
    ok_latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let ok = ok_latencies_ms.len();
    LoadReport {
        phase: cfg.phase.clone(),
        offered_rps: cfg.rate_rps,
        arrivals: samples.len(),
        ok,
        shed: count(Outcome::Shed),
        deadline_expired: count(Outcome::DeadlineExpired),
        unavailable: count(Outcome::Unavailable),
        faults: count(Outcome::Fault),
        bad: count(Outcome::Bad),
        untyped_failures: count(Outcome::Untyped),
        retried: samples.iter().filter(|s| s.retried).count(),
        retried_ok: samples.iter().filter(|s| s.retried && s.outcome == Outcome::Ok).count(),
        batched: samples.iter().filter(|s| s.batched).count(),
        degraded: samples.iter().filter(|s| s.degraded).count(),
        goodput_rps: ok as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_ms: percentile(&ok_latencies_ms, 0.50),
        p99_ms: percentile(&ok_latencies_ms, 0.99),
        ok_latencies_ms,
        elapsed,
    }
}

/// CSV header matching [`csv_row`].
pub const CSV_HEADER: [&str; 16] = [
    "phase",
    "offered_rps",
    "arrivals",
    "ok",
    "shed",
    "deadline_503",
    "unavailable_503",
    "fault_500",
    "bad_400",
    "untyped_failures",
    "retried",
    "retried_ok",
    "batched",
    "goodput_rps",
    "p50_ms",
    "p99_ms",
];

/// One CSV row for a phase report.
pub fn csv_row(r: &LoadReport) -> Vec<String> {
    vec![
        r.phase.clone(),
        format!("{:.1}", r.offered_rps),
        r.arrivals.to_string(),
        r.ok.to_string(),
        r.shed.to_string(),
        r.deadline_expired.to_string(),
        r.unavailable.to_string(),
        r.faults.to_string(),
        r.bad.to_string(),
        r.untyped_failures.to_string(),
        r.retried.to_string(),
        r.retried_ok.to_string(),
        r.batched.to_string(),
        format!("{:.1}", r.goodput_rps),
        format!("{:.3}", r.p50_ms),
        format!("{:.3}", r.p99_ms),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_pick_sane_indices() {
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&sorted, 0.50), 50.0);
        assert_eq!(percentile(&sorted, 0.99), 99.0);
        assert_eq!(percentile(&[], 0.99), 0.0);
        assert_eq!(percentile(&[7.0], 0.5), 7.0);
    }

    #[test]
    fn scenario_mix_is_deterministic_and_covers_all_paths() {
        let cfg = LoadConfig {
            phase: "t".into(),
            addr: "127.0.0.1:1".parse().unwrap(),
            rate_rps: 10.0,
            duration: Duration::from_secs(1),
            hot_matrix: "grid:10:10".into(),
            k: 3,
            timeout: Duration::from_secs(1),
            seed: 42,
        };
        let a: Vec<_> = (0..200).map(|i| scenario(i, &cfg)).collect();
        let b: Vec<_> = (0..200).map(|i| scenario(i, &cfg)).collect();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.tenant, y.tenant);
            assert_eq!(x.path, y.path);
        }
        assert!(a.iter().any(|s| s.deadline_ms == Some(0)), "deadline probes present");
        assert!(a.iter().any(|s| s.tenant.starts_with("cold-")), "cold tenants present");
        assert!(a.iter().any(|s| s.path == "/v1/mpk"), "mpk calls present");
        assert!(
            a.iter().filter(|s| s.tenant == "hot" && s.path == "/v1/power").count() > 100,
            "hot tenant dominates"
        );
    }

    #[test]
    fn end_to_end_against_a_live_server() {
        let mut server = fbmpk_serve::Server::start(fbmpk_serve::ServeConfig {
            kernel_threads: 1,
            handlers: 2,
            queue_cap: 8,
            ..Default::default()
        })
        .expect("start server");
        let cfg = LoadConfig {
            phase: "smoke".into(),
            addr: server.local_addr(),
            rate_rps: 40.0,
            duration: Duration::from_millis(500),
            hot_matrix: "grid:12:12".into(),
            k: 4,
            timeout: Duration::from_secs(10),
            seed: 7,
        };
        let report = run_phase(&cfg);
        assert!(report.arrivals > 0);
        assert!(report.ok > 0, "some goodput: {report:?}");
        assert_eq!(report.untyped_failures, 0, "typed answers only: {report:?}");
        let row = csv_row(&report);
        assert_eq!(row.len(), CSV_HEADER.len());
        server.shutdown();
    }
}
