//! # fbmpk-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation (§IV–V). The `repro` binary drives full experiments;
//! the Criterion benches under `benches/` cover the timing figures at a
//! smaller default scale.
//!
//! Experiment ↔ paper mapping (see DESIGN.md for the full index):
//!
//! | id       | paper                                     | function                    |
//! |----------|-------------------------------------------|-----------------------------|
//! | table1   | hardware platforms                        | [`platform::platform_table`]|
//! | table2   | input matrices                            | [`runner::table2`]          |
//! | fig7     | FBMPK vs baseline speedup, k = 5          | [`runner::fig7`]            |
//! | fig8     | speedup vs k = 3..9                       | [`runner::fig8`]            |
//! | fig9     | DRAM traffic ratio (k = 3, 6, 9)          | [`runner::fig9`]            |
//! | fig10    | ablation: FB vs FB+BtB                    | [`runner::fig10`]           |
//! | table3   | single-SpMV slowdown after ABMC           | [`runner::table3`]          |
//! | table4   | storage: CSR vs L+U+d                     | [`runner::table4`]          |
//! | fig11    | ABMC preprocessing cost in #SpMVs         | [`runner::fig11`]           |
//! | fig12    | thread scalability, k = 5                 | [`runner::fig12`]           |
//! | model    | §III-B access-count formulas              | [`runner::model_table`]     |
//! | profile  | in-kernel spans, bandwidth, hw counters   | [`runner::profile`]         |

pub mod perfdb;
pub mod perfreport;
pub mod platform;
pub mod report;
pub mod roofline;
pub mod runner;
pub mod serveload;
pub mod stats;
pub mod top;

/// Shared experiment configuration.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Fraction of the paper's matrix dimensions to generate
    /// (`FBMPK_SCALE`, default `0.01` → 625–35k rows).
    pub scale: f64,
    /// Worker threads for parallel kernels (`FBMPK_THREADS`, default:
    /// available parallelism).
    pub threads: usize,
    /// Timing repetitions per measurement (`FBMPK_REPS`, default 7; the
    /// paper uses 50 on dedicated hardware).
    pub reps: usize,
    /// RNG seed for matrix generation.
    pub seed: u64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            scale: std::env::var("FBMPK_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(0.01),
            threads: std::env::var("FBMPK_THREADS")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| {
                    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
                }),
            // Clamped to ≥ 1: experiments rely on this invariant (the
            // timing layer rejects reps = 0 rather than fabricating data).
            reps: std::env::var("FBMPK_REPS")
                .ok()
                .and_then(|s| s.parse::<usize>().ok())
                .unwrap_or(7)
                .max(1),
            seed: 42,
        }
    }
}

impl BenchConfig {
    /// A fast configuration for CI / criterion smoke runs.
    pub fn smoke() -> Self {
        BenchConfig { scale: 0.002, threads: 2, reps: 3, seed: 42 }
    }
}
