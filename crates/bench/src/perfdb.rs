//! The append-only performance-run database.
//!
//! Every benchmark invocation appends one self-describing JSONL record
//! per measured configuration to `perf/runs.jsonl` (override with
//! `--db` / `FBMPK_PERFDB`). One record is one line, so a truncated
//! write — kill -9 mid-append, full disk — can only ever corrupt the
//! final line, and [`PerfDb::load`] recovers by skipping it. The store
//! is what turns one-off measurements into decisions (OSKI's offline
//! data, the paper's achieved-vs-modeled bandwidth argument): `repro
//! history`, `repro compare` and `repro gate` all read it back.
//!
//! Records are keyed by a *stable* configuration fingerprint
//! ([`fbmpk::Fnv64`], never `DefaultHasher`) over everything that shapes
//! the measured kernel, so the same configuration hashes identically
//! across sessions, toolchains, and PRs.

use crate::platform::Platform;
use crate::report::Json;
use crate::roofline::BandwidthProbe;
use crate::stats::SampleSummary;
use fbmpk::Fnv64;
use std::io::{Read, Seek, Write};
use std::path::{Path, PathBuf};

/// Version stamp written into every record; bump on breaking schema
/// changes so old readers can skip (not crash on) newer lines.
pub const SCHEMA_VERSION: u64 = 1;

/// Database path resolution: `FBMPK_PERFDB` env override, else the
/// repo-conventional `perf/runs.jsonl` relative to the working dir.
pub fn default_db_path() -> PathBuf {
    std::env::var_os("FBMPK_PERFDB")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("perf").join("runs.jsonl"))
}

/// The git revision to stamp records with: `FBMPK_GIT_REV` override
/// (CI, tests), else `git rev-parse --short HEAD`, else `"unknown"`.
pub fn git_rev() -> String {
    if let Ok(rev) = std::env::var("FBMPK_GIT_REV") {
        let rev = rev.trim().to_string();
        if !rev.is_empty() {
            return rev;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Seconds since the Unix epoch (0 if the clock is before it — records
/// sort by file order anyway; the timestamp is informational).
pub fn unix_time_s() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Run context shared by every record of one benchmark invocation.
#[derive(Debug, Clone)]
pub struct RecordCtx {
    /// Git revision of the benchmarked tree.
    pub git_rev: String,
    /// Host description from the sysfs probe.
    pub platform: Platform,
    /// Measured bandwidth ceilings; `None` when the probe was skipped.
    pub bw: Option<BandwidthProbe>,
    /// Suite scale factor.
    pub scale: f64,
    /// Timed repetitions per measurement.
    pub reps: usize,
    /// Record timestamp (seconds since epoch).
    pub unix_time_s: u64,
}

impl RecordCtx {
    /// Context for the current invocation.
    pub fn current(
        platform: Platform,
        bw: Option<BandwidthProbe>,
        scale: f64,
        reps: usize,
    ) -> Self {
        RecordCtx { git_rev: git_rev(), platform, bw, scale, reps, unix_time_s: unix_time_s() }
    }
}

/// What one record measured, minus the context and the samples.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Experiment family (`sync`, `tune`, `profile`, ...).
    pub experiment: String,
    /// Suite matrix name.
    pub matrix: String,
    /// Kernel identity (`fbmpk`, `standard`, `tuned:csr-unrolled4`, ...).
    pub kernel: String,
    /// Synchronization mode (`barrier` / `p2p`) where applicable.
    pub sync: Option<String>,
    /// Worker threads.
    pub threads: usize,
    /// Power `k` where applicable.
    pub k: Option<usize>,
    /// Stable options fingerprint from `fbmpk::FbmpkOptions::
    /// config_fingerprint` (0 for kernels without plan options).
    pub options_fp: u64,
    /// Recorded wait fraction (PR 3 span recorder), when observed.
    pub wait_frac: Option<f64>,
    /// Instructions per cycle from hardware counters, when available.
    pub ipc: Option<f64>,
    /// §III-B modeled matrix bytes per kernel invocation, when modeled.
    pub modeled_matrix_bytes: Option<u64>,
    /// Stall-watchdog fallbacks during the measured reps (point-to-point
    /// plans with `FallbackPolicy::ColorBarrier`). Nonzero marks the
    /// samples as degraded: some reps ran under the barrier schedule, so
    /// the timing no longer characterizes the p2p configuration.
    pub fallbacks: Option<u64>,
    /// SIMD level the kernel executed with (`fbmpk_sparse::SimdLevel::
    /// tag()`: `"scalar"` / `"avx2"` / `"neon"`), when applicable.
    pub simd: Option<String>,
    /// Cache-blocking mode (`BlockingMode::tag()`: `"streaming"` /
    /// `"level-blocked"`), when applicable.
    pub blocking: Option<String>,
    /// Achieved-over-modeled traffic ratio for this configuration
    /// (simulated or measured DRAM bytes / §III-B modeled bytes), when
    /// the run accounted traffic. Informational like `wait_frac`: it
    /// explains where the bytes went, it does not define the config, so
    /// it never joins the key — absent on pre-existing lines, which keep
    /// parsing.
    pub traffic_vs_model: Option<f64>,
    /// Cross-block dependency edges cut by the plan's blocking partition
    /// (informational, like `wait_frac`: the partitioner identity is
    /// already in `options_fp`, so the count does not join the config
    /// key — it explains wait behavior, it does not define the config).
    pub cut_edges: Option<u64>,
    /// Stall-watchdog fires during the measured reps (process-wide delta
    /// over the measurement window). Informational like `fallbacks`:
    /// nonzero flags the samples as having run through the recovery path.
    /// Excluded from the config key — absent on pre-existing lines, which
    /// keep parsing.
    pub watchdog_fires: Option<u64>,
    /// Serving-layer p50 request latency in milliseconds (`repro serve`
    /// load runs). A measured outcome like the samples themselves, so it
    /// never joins the config key — absent on pre-existing lines, which
    /// keep parsing.
    pub latency_p50_ms: Option<f64>,
    /// Serving-layer p99 request latency in milliseconds. Same rules as
    /// `latency_p50_ms`: informational, excluded from the config key.
    pub latency_p99_ms: Option<f64>,
    /// Requests shed (typed 429s) over the measurement window of a
    /// serving load run. Informational like `fallbacks`: it characterizes
    /// the run, it does not define the configuration, so it never joins
    /// the config key — absent on pre-existing lines, which keep parsing.
    pub shed_count: Option<u64>,
}

impl RunSpec {
    /// The cross-run grouping key: everything that must match for two
    /// records to be the *same configuration* — but **not** the git rev,
    /// timestamp, or measured values, which are what vary across runs.
    /// `scale` is included: a 0.002-scale matrix and a 0.02-scale matrix
    /// are different workloads.
    pub fn config_key(&self, scale: f64) -> String {
        let mut h = Fnv64::new();
        h.write_str("run-config-v2")
            .write_str(&self.experiment)
            .write_str(&self.matrix)
            .write_str(&self.kernel)
            .write_str(self.sync.as_deref().unwrap_or(""))
            .write_str(self.simd.as_deref().unwrap_or(""))
            .write_str(self.blocking.as_deref().unwrap_or(""))
            .write_usize(self.threads)
            .write_u64(self.k.map_or(u64::MAX, |k| k as u64))
            .write_u64(self.options_fp)
            .write_f64(scale);
        format!("{:016x}", h.finish())
    }
}

/// One persisted benchmark run: a [`RunSpec`] measured under a
/// [`RecordCtx`], with raw samples and derived robust statistics.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Schema version of this record.
    pub schema: u64,
    /// Seconds since the Unix epoch at record time.
    pub unix_time_s: u64,
    /// Git revision of the benchmarked tree.
    pub git_rev: String,
    /// What was measured.
    pub spec: RunSpec,
    /// Suite scale factor.
    pub scale: f64,
    /// Timed repetitions (should equal `samples_s.len()`).
    pub reps: usize,
    /// The grouping key (`spec.config_key(scale)`).
    pub config_key: String,
    /// Raw per-rep seconds, measurement order.
    pub samples_s: Vec<f64>,
    /// Median seconds.
    pub median_s: f64,
    /// Median absolute deviation.
    pub mad_s: f64,
    /// Bootstrap CI of the median (lower bound).
    pub ci_lo_s: f64,
    /// Bootstrap CI of the median (upper bound).
    pub ci_hi_s: f64,
    /// Geometric mean seconds (the paper's aggregation, kept for
    /// continuity with the BENCH_*.json reports).
    pub geomean_s: f64,
    /// `modeled_matrix_bytes / median_s / 1e9`, when modeled.
    pub achieved_gbs: Option<f64>,
    /// Measured STREAM-triad ceiling at record time.
    pub triad_gbs: Option<f64>,
    /// Measured random-gather effective bandwidth at record time.
    pub gather_gbs: Option<f64>,
    /// `achieved_gbs / triad_gbs`.
    pub roofline_frac: Option<f64>,
    /// Hardware-identity fingerprint ([`Platform::fingerprint`]).
    pub platform_fp: String,
    /// CPU model string (human-readable context for the fingerprint).
    pub cpu_model: String,
    /// Logical CPUs on the recording host.
    pub logical_cpus: usize,
    /// Last-level cache size in bytes (0 = unknown).
    pub llc_bytes: u64,
}

impl RunRecord {
    /// Builds a record from measured samples; `None` when `samples` is
    /// empty (nothing was measured — there is no honest record to write).
    pub fn new(ctx: &RecordCtx, spec: RunSpec, samples: &[f64]) -> Option<RunRecord> {
        let summary = SampleSummary::compute(samples)?;
        let geomean_s = crate::report::geomean(samples);
        let achieved_gbs =
            spec.modeled_matrix_bytes.map(|b| b as f64 / summary.median.max(1e-300) / 1e9);
        let (triad_gbs, gather_gbs) =
            ctx.bw.map_or((None, None), |p| (Some(p.triad_gbs), Some(p.gather_gbs)));
        let roofline_frac = match (achieved_gbs, ctx.bw) {
            (Some(a), Some(p)) => p.roofline_fraction(a),
            _ => None,
        };
        let config_key = spec.config_key(ctx.scale);
        Some(RunRecord {
            schema: SCHEMA_VERSION,
            unix_time_s: ctx.unix_time_s,
            git_rev: ctx.git_rev.clone(),
            spec,
            scale: ctx.scale,
            reps: samples.len(),
            config_key,
            samples_s: samples.to_vec(),
            median_s: summary.median,
            mad_s: summary.mad,
            ci_lo_s: summary.ci.lo,
            ci_hi_s: summary.ci.hi,
            geomean_s,
            achieved_gbs,
            triad_gbs,
            gather_gbs,
            roofline_frac,
            platform_fp: ctx.platform.fingerprint(),
            cpu_model: ctx.platform.cpu_model.clone(),
            logical_cpus: ctx.platform.logical_cpus,
            llc_bytes: ctx.platform.llc_bytes(),
        })
    }

    /// A short human label for tables: `matrix kernel[/sync] @threads`.
    pub fn label(&self) -> String {
        let sync = self.spec.sync.as_deref().map(|s| format!("/{s}")).unwrap_or_default();
        format!("{} {}{} @{}t", self.spec.matrix, self.spec.kernel, sync, self.spec.threads)
    }

    fn opt_f64(v: Option<f64>) -> Json {
        v.map_or(Json::Null, Json::from)
    }

    /// The JSONL form (one line via [`Json::to_compact`]).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::from(self.schema as usize)),
            ("unix_time_s", Json::from(self.unix_time_s as usize)),
            ("git_rev", Json::from(self.git_rev.as_str())),
            ("experiment", Json::from(self.spec.experiment.as_str())),
            ("matrix", Json::from(self.spec.matrix.as_str())),
            ("kernel", Json::from(self.spec.kernel.as_str())),
            ("sync", self.spec.sync.as_deref().map_or(Json::Null, Json::from)),
            ("threads", Json::from(self.spec.threads)),
            ("k", self.spec.k.map_or(Json::Null, Json::from)),
            ("scale", Json::from(self.scale)),
            ("reps", Json::from(self.reps)),
            ("options_fp", Json::from(format!("{:016x}", self.spec.options_fp))),
            ("config_key", Json::from(self.config_key.as_str())),
            ("samples_s", Json::Arr(self.samples_s.iter().map(|&s| Json::from(s)).collect())),
            ("median_s", Json::from(self.median_s)),
            ("mad_s", Json::from(self.mad_s)),
            ("ci_lo_s", Json::from(self.ci_lo_s)),
            ("ci_hi_s", Json::from(self.ci_hi_s)),
            ("geomean_s", Json::from(self.geomean_s)),
            ("wait_frac", Self::opt_f64(self.spec.wait_frac)),
            ("ipc", Self::opt_f64(self.spec.ipc)),
            (
                "modeled_matrix_bytes",
                self.spec.modeled_matrix_bytes.map_or(Json::Null, |b| Json::from(b as usize)),
            ),
            ("fallbacks", self.spec.fallbacks.map_or(Json::Null, |n| Json::from(n as usize))),
            (
                "watchdog_fires",
                self.spec.watchdog_fires.map_or(Json::Null, |n| Json::from(n as usize)),
            ),
            ("cut_edges", self.spec.cut_edges.map_or(Json::Null, |n| Json::from(n as usize))),
            ("traffic_vs_model", Self::opt_f64(self.spec.traffic_vs_model)),
            ("latency_p50_ms", Self::opt_f64(self.spec.latency_p50_ms)),
            ("latency_p99_ms", Self::opt_f64(self.spec.latency_p99_ms)),
            ("shed_count", self.spec.shed_count.map_or(Json::Null, |n| Json::from(n as usize))),
            ("simd", self.spec.simd.as_deref().map_or(Json::Null, Json::from)),
            ("blocking", self.spec.blocking.as_deref().map_or(Json::Null, Json::from)),
            ("achieved_gbs", Self::opt_f64(self.achieved_gbs)),
            ("triad_gbs", Self::opt_f64(self.triad_gbs)),
            ("gather_gbs", Self::opt_f64(self.gather_gbs)),
            ("roofline_frac", Self::opt_f64(self.roofline_frac)),
            ("platform_fp", Json::from(self.platform_fp.as_str())),
            ("cpu_model", Json::from(self.cpu_model.as_str())),
            ("logical_cpus", Json::from(self.logical_cpus)),
            ("llc_bytes", Json::from(self.llc_bytes as usize)),
        ])
    }

    /// Parses one record; `Err` names the first missing/mistyped field.
    pub fn from_json(j: &Json) -> Result<RunRecord, String> {
        let str_field = |k: &str| {
            j.get(k).and_then(Json::as_str).map(str::to_string).ok_or(format!("missing '{k}'"))
        };
        let num_field = |k: &str| j.get(k).and_then(Json::as_f64).ok_or(format!("missing '{k}'"));
        let opt_num = |k: &str| j.get(k).and_then(Json::as_f64);
        let schema = num_field("schema")? as u64;
        if schema > SCHEMA_VERSION {
            return Err(format!("unsupported schema {schema}"));
        }
        let samples_s: Vec<f64> = j
            .get("samples_s")
            .and_then(Json::as_array)
            .ok_or("missing 'samples_s'")?
            .iter()
            .map(|s| s.as_f64().ok_or("non-numeric sample"))
            .collect::<Result<_, _>>()?;
        let spec = RunSpec {
            experiment: str_field("experiment")?,
            matrix: str_field("matrix")?,
            kernel: str_field("kernel")?,
            sync: j.get("sync").and_then(Json::as_str).map(str::to_string),
            threads: num_field("threads")? as usize,
            k: opt_num("k").map(|k| k as usize),
            options_fp: j
                .get("options_fp")
                .and_then(Json::as_str)
                .and_then(|s| u64::from_str_radix(s, 16).ok())
                .unwrap_or(0),
            wait_frac: opt_num("wait_frac"),
            ipc: opt_num("ipc"),
            modeled_matrix_bytes: opt_num("modeled_matrix_bytes").map(|b| b as u64),
            fallbacks: opt_num("fallbacks").map(|n| n as u64),
            // Absent on pre-v2 lines (and on kernels without the axes) —
            // old histories keep loading.
            simd: j.get("simd").and_then(Json::as_str).map(str::to_string),
            blocking: j.get("blocking").and_then(Json::as_str).map(str::to_string),
            cut_edges: opt_num("cut_edges").map(|n| n as u64),
            watchdog_fires: opt_num("watchdog_fires").map(|n| n as u64),
            traffic_vs_model: opt_num("traffic_vs_model"),
            latency_p50_ms: opt_num("latency_p50_ms"),
            latency_p99_ms: opt_num("latency_p99_ms"),
            shed_count: opt_num("shed_count").map(|n| n as u64),
        };
        Ok(RunRecord {
            schema,
            unix_time_s: num_field("unix_time_s")? as u64,
            git_rev: str_field("git_rev")?,
            spec,
            scale: num_field("scale")?,
            reps: num_field("reps")? as usize,
            config_key: str_field("config_key")?,
            samples_s,
            median_s: num_field("median_s")?,
            mad_s: num_field("mad_s")?,
            ci_lo_s: num_field("ci_lo_s")?,
            ci_hi_s: num_field("ci_hi_s")?,
            geomean_s: num_field("geomean_s")?,
            achieved_gbs: opt_num("achieved_gbs"),
            triad_gbs: opt_num("triad_gbs"),
            gather_gbs: opt_num("gather_gbs"),
            roofline_frac: opt_num("roofline_frac"),
            platform_fp: str_field("platform_fp")?,
            cpu_model: str_field("cpu_model")?,
            logical_cpus: num_field("logical_cpus")? as usize,
            llc_bytes: opt_num("llc_bytes").unwrap_or(0.0) as u64,
        })
    }
}

/// Result of reading the store back.
#[derive(Debug)]
pub struct DbLoad {
    /// Every record that parsed, in file (append) order.
    pub records: Vec<RunRecord>,
    /// Lines that failed to parse (truncated tail writes, foreign
    /// garbage) — skipped, never fatal.
    pub skipped_lines: usize,
}

/// Handle to one JSONL run store.
#[derive(Debug, Clone)]
pub struct PerfDb {
    path: PathBuf,
}

impl PerfDb {
    /// A handle for `path` (nothing is opened until append/load).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        PerfDb { path: path.into() }
    }

    /// The store's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends records, creating parent directories on first use. Each
    /// record is written as exactly one `\n`-terminated line. A store
    /// whose last write was torn (crash mid-append, no trailing newline)
    /// gets a newline first, so the damage stays confined to the already
    /// torn line instead of spreading to this append.
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn append_all(&self, records: &[RunRecord]) -> std::io::Result<()> {
        if records.is_empty() {
            return Ok(());
        }
        if let Some(dir) = self.path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let needs_newline = match std::fs::metadata(&self.path) {
            Ok(m) if m.len() > 0 => {
                let mut f = std::fs::File::open(&self.path)?;
                f.seek(std::io::SeekFrom::End(-1))?;
                let mut last = [0u8; 1];
                f.read_exact(&mut last)?;
                last[0] != b'\n'
            }
            _ => false,
        };
        let mut f = std::fs::OpenOptions::new().create(true).append(true).open(&self.path)?;
        let mut buf = String::new();
        if needs_newline {
            buf.push('\n');
        }
        for rec in records {
            buf.push_str(&rec.to_json().to_compact());
            buf.push('\n');
        }
        f.write_all(buf.as_bytes())?;
        f.flush()
    }

    /// Appends one record.
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn append(&self, record: &RunRecord) -> std::io::Result<()> {
        self.append_all(std::slice::from_ref(record))
    }

    /// Reads every parseable record back. A missing file is an empty
    /// store, and malformed lines (a truncated trailing write, foreign
    /// text) are counted in [`DbLoad::skipped_lines`] instead of
    /// poisoning the whole history.
    ///
    /// # Errors
    /// Propagates I/O failures other than "not found".
    pub fn load(&self) -> std::io::Result<DbLoad> {
        let text = match std::fs::read_to_string(&self.path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e),
        };
        let mut records = Vec::new();
        let mut skipped_lines = 0;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match Json::parse(line)
                .map_err(|e| e.to_string())
                .and_then(|j| RunRecord::from_json(&j))
            {
                Ok(rec) => records.push(rec),
                Err(_) => skipped_lines += 1,
            }
        }
        Ok(DbLoad { records, skipped_lines })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::CacheInfo;

    pub(crate) fn test_platform() -> Platform {
        Platform {
            cpu_model: "test-cpu".into(),
            logical_cpus: 4,
            physical_cores: 2,
            packages: 1,
            caches: vec![CacheInfo {
                level: 3,
                cache_type: "Unified".into(),
                size_bytes: 8 << 20,
                count: 1,
            }],
            arch: "x86_64",
            os: "linux",
            mem_gib: 8.0,
        }
    }

    pub(crate) fn test_ctx(rev: &str) -> RecordCtx {
        RecordCtx {
            git_rev: rev.into(),
            platform: test_platform(),
            bw: Some(BandwidthProbe {
                triad_gbs: 20.0,
                gather_gbs: 2.0,
                working_set_bytes: 1 << 20,
                reps: 1,
            }),
            scale: 0.002,
            reps: 3,
            unix_time_s: 1_700_000_000,
        }
    }

    pub(crate) fn test_spec(matrix: &str, sync: Option<&str>) -> RunSpec {
        RunSpec {
            experiment: "sync".into(),
            matrix: matrix.into(),
            kernel: "fbmpk".into(),
            sync: sync.map(str::to_string),
            threads: 2,
            k: Some(5),
            options_fp: 0xabcd,
            wait_frac: Some(0.125),
            ipc: None,
            modeled_matrix_bytes: Some(2_000_000_000),
            fallbacks: Some(1),
            simd: Some("avx2".into()),
            blocking: Some("streaming".into()),
            cut_edges: Some(123),
            watchdog_fires: Some(2),
            traffic_vs_model: Some(1.25),
            latency_p50_ms: Some(4.5),
            latency_p99_ms: Some(19.5),
            shed_count: Some(7),
        }
    }

    #[test]
    fn record_round_trips_through_jsonl() {
        let ctx = test_ctx("rev1");
        let rec = RunRecord::new(&ctx, test_spec("poisson2d", Some("barrier")), &[0.1, 0.11, 0.09])
            .unwrap();
        let line = rec.to_json().to_compact();
        assert!(!line.contains('\n'));
        let back = RunRecord::from_json(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(back.git_rev, "rev1");
        assert_eq!(back.config_key, rec.config_key);
        assert_eq!(back.samples_s, rec.samples_s);
        assert_eq!(back.median_s, rec.median_s);
        assert_eq!(back.spec.sync.as_deref(), Some("barrier"));
        assert_eq!(back.spec.wait_frac, Some(0.125));
        assert_eq!(back.spec.ipc, None);
        assert_eq!(back.spec.simd.as_deref(), Some("avx2"));
        assert_eq!(back.spec.blocking.as_deref(), Some("streaming"));
        assert_eq!(back.spec.cut_edges, Some(123));
        assert_eq!(back.spec.traffic_vs_model, Some(1.25));
        assert_eq!(back.platform_fp, rec.platform_fp);
        // modeled 2 GB at 0.1 s median = 20 GB/s = the triad ceiling.
        assert!((back.achieved_gbs.unwrap() - 20.0).abs() < 1e-9);
        assert!((back.roofline_frac.unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn config_key_ignores_rev_but_not_config() {
        let a = test_spec("m", Some("barrier"));
        let b = test_spec("m", Some("p2p"));
        assert_eq!(a.config_key(0.002), a.config_key(0.002));
        assert_ne!(a.config_key(0.002), b.config_key(0.002));
        assert_ne!(a.config_key(0.002), a.config_key(0.02));
        let r1 = RunRecord::new(&test_ctx("rev1"), a.clone(), &[0.1]).unwrap();
        let r2 = RunRecord::new(&test_ctx("rev2"), a, &[0.2]).unwrap();
        assert_eq!(r1.config_key, r2.config_key);
    }

    #[test]
    fn config_key_distinguishes_simd_and_blocking() {
        let a = test_spec("m", None);
        let mut b = a.clone();
        b.simd = Some("scalar".into());
        let mut c = a.clone();
        c.blocking = Some("level-blocked".into());
        assert_ne!(a.config_key(0.002), b.config_key(0.002), "simd axis must split keys");
        assert_ne!(a.config_key(0.002), c.config_key(0.002), "blocking axis must split keys");
    }

    #[test]
    fn lines_without_simd_axes_still_parse() {
        // Pre-v2 records have no simd/blocking fields at all.
        let rec = RunRecord::new(&test_ctx("rev1"), test_spec("m", None), &[0.1, 0.2]).unwrap();
        let line = rec.to_json().to_compact();
        let stripped = line.replace(",\"simd\":\"avx2\",\"blocking\":\"streaming\"", "");
        assert_ne!(line, stripped, "test must actually remove the fields");
        let back = RunRecord::from_json(&Json::parse(&stripped).unwrap()).unwrap();
        assert_eq!(back.spec.simd, None);
        assert_eq!(back.spec.blocking, None);
    }

    #[test]
    fn lines_without_cut_edges_still_parse() {
        // Records written before the partitioning work carry no
        // cut_edges field; they must keep loading (and keep their
        // config keys, which never included it).
        let rec = RunRecord::new(&test_ctx("rev1"), test_spec("m", None), &[0.1, 0.2]).unwrap();
        let line = rec.to_json().to_compact();
        let stripped = line.replace(",\"cut_edges\":123", "");
        assert_ne!(line, stripped, "test must actually remove the field");
        let back = RunRecord::from_json(&Json::parse(&stripped).unwrap()).unwrap();
        assert_eq!(back.spec.cut_edges, None);
        assert_eq!(back.config_key, rec.config_key, "cut_edges never joins the key");
    }

    #[test]
    fn lines_without_traffic_vs_model_still_parse() {
        // Records predating the attribution work carry no
        // traffic_vs_model field; they must keep loading with unchanged
        // config keys (the ratio never joined the key).
        let rec = RunRecord::new(&test_ctx("rev1"), test_spec("m", None), &[0.1, 0.2]).unwrap();
        let line = rec.to_json().to_compact();
        let stripped = line.replace(",\"traffic_vs_model\":1.25", "");
        assert_ne!(line, stripped, "test must actually remove the field");
        let back = RunRecord::from_json(&Json::parse(&stripped).unwrap()).unwrap();
        assert_eq!(back.spec.traffic_vs_model, None);
        assert_eq!(back.config_key, rec.config_key, "ratio never joins the key");
    }

    #[test]
    fn lines_without_latency_columns_still_parse() {
        // Records written before the serving layer carry no latency or
        // shed fields; they must keep loading with unchanged config keys
        // (serving outcomes never join the key).
        let rec = RunRecord::new(&test_ctx("rev1"), test_spec("m", None), &[0.1, 0.2]).unwrap();
        let line = rec.to_json().to_compact();
        let stripped = line
            .replace(",\"latency_p50_ms\":4.5", "")
            .replace(",\"latency_p99_ms\":19.5", "")
            .replace(",\"shed_count\":7", "");
        assert_ne!(line, stripped, "test must actually remove the fields");
        let back = RunRecord::from_json(&Json::parse(&stripped).unwrap()).unwrap();
        assert_eq!(back.spec.latency_p50_ms, None);
        assert_eq!(back.spec.latency_p99_ms, None);
        assert_eq!(back.spec.shed_count, None);
        assert_eq!(back.config_key, rec.config_key, "serving outcomes never join the key");
    }

    #[test]
    fn empty_samples_yield_no_record() {
        assert!(RunRecord::new(&test_ctx("r"), test_spec("m", None), &[]).is_none());
    }

    #[test]
    fn missing_bw_degrades_fields_to_null() {
        let ctx = RecordCtx { bw: None, ..test_ctx("r") };
        let rec = RunRecord::new(&ctx, test_spec("m", None), &[0.1]).unwrap();
        assert!(rec.triad_gbs.is_none() && rec.roofline_frac.is_none());
        assert!(rec.achieved_gbs.is_some(), "modeled bytes alone still give achieved GB/s");
        let j = rec.to_json();
        assert_eq!(j.get("triad_gbs"), Some(&Json::Null));
        assert_eq!(j.get("roofline_frac"), Some(&Json::Null));
        let back = RunRecord::from_json(&j).unwrap();
        assert!(back.triad_gbs.is_none());
    }

    #[test]
    fn append_load_and_truncated_tail_recovery() {
        let dir = std::env::temp_dir().join("fbmpk-perfdb-unit");
        std::fs::remove_dir_all(&dir).ok();
        let db = PerfDb::new(dir.join("runs.jsonl"));
        let ctx = test_ctx("rev1");
        let r1 = RunRecord::new(&ctx, test_spec("a", Some("barrier")), &[0.1, 0.2]).unwrap();
        let r2 = RunRecord::new(&ctx, test_spec("b", Some("p2p")), &[0.3, 0.4]).unwrap();
        db.append(&r1).unwrap();
        db.append(&r2).unwrap();
        // Simulate a truncated tail write.
        let mut f = std::fs::OpenOptions::new().append(true).open(db.path()).unwrap();
        f.write_all(b"{\"schema\":1,\"git_rev\":\"re").unwrap();
        drop(f);
        let load = db.load().unwrap();
        assert_eq!(load.records.len(), 2);
        assert_eq!(load.skipped_lines, 1);
        assert_eq!(load.records[0].spec.matrix, "a");
        assert_eq!(load.records[1].spec.matrix, "b");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_empty_store() {
        let db = PerfDb::new("/nonexistent-dir-for-sure/runs.jsonl");
        let load = db.load().unwrap();
        assert!(load.records.is_empty());
        assert_eq!(load.skipped_lines, 0);
    }

    #[test]
    fn newer_schema_lines_are_skipped_not_fatal() {
        let dir = std::env::temp_dir().join("fbmpk-perfdb-schema");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let db = PerfDb::new(dir.join("runs.jsonl"));
        std::fs::write(db.path(), "{\"schema\":999,\"future\":true}\n").unwrap();
        let load = db.load().unwrap();
        assert!(load.records.is_empty());
        assert_eq!(load.skipped_lines, 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
