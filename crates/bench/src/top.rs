//! `repro top` — a 1 Hz plain-ANSI dashboard over the live metrics
//! endpoint.
//!
//! Each frame scrapes the Prometheus text exposition (either from a
//! remote `FBMPK_METRICS_ADDR` endpoint of a running job, or from a
//! self-driving in-process demo workload when no address is given),
//! parses it with the strict in-tree parser, and renders:
//!
//! * achieved matrix bandwidth against the measured roofline ceiling,
//! * per-plan sweep throughput (invocations/s from counter deltas),
//! * overall and per-thread wait fractions as bars,
//! * watchdog arms/fires, barrier fallbacks, fault-injection hits,
//! * tune-cache hit rate and the top plan phases by accumulated time,
//! * the traffic-attribution drill-down: worst blocks of the matrix
//!   under `repro attribution`, three byte ledgers side by side.
//!
//! The renderer is a pure function of two parsed expositions (current
//! and previous frame), so every layout decision is unit-testable
//! without a terminal or a socket.

use fbmpk_obs::expo::{self, ParsedExposition};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Configuration for the dashboard loop.
#[derive(Debug, Clone)]
pub struct TopConfig {
    /// Endpoint to scrape; `None` starts the in-process demo workload.
    pub addr: Option<std::net::SocketAddr>,
    /// Milliseconds between frames.
    pub interval_ms: u64,
    /// Stop after this many frames (`None` = until interrupted).
    pub frames: Option<u64>,
}

impl Default for TopConfig {
    fn default() -> Self {
        TopConfig { addr: None, interval_ms: 1000, frames: None }
    }
}

/// An ASCII bar of `width` cells filled to `frac` (clamped to [0, 1]).
fn bar(frac: f64, width: usize) -> String {
    let f = frac.clamp(0.0, 1.0);
    let filled = (f * width as f64).round() as usize;
    let mut s = String::with_capacity(width + 2);
    s.push('[');
    for i in 0..width {
        s.push(if i < filled { '#' } else { '.' });
    }
    s.push(']');
    s
}

fn unlabeled(p: &ParsedExposition, name: &str) -> Option<f64> {
    p.value(name, &[])
}

/// Counter delta per second between frames; `None` on the first frame
/// or when the counter reset (process restart behind the endpoint).
fn rate(cur: f64, prev: Option<f64>, dt_s: Option<f64>) -> Option<f64> {
    match (prev, dt_s) {
        (Some(p), Some(dt)) if dt > 0.0 && cur >= p => Some((cur - p) / dt),
        _ => None,
    }
}

/// Renders one frame. `prev`/`dt_s` come from the previous scrape and
/// feed the per-second rates; pass `None` on the first frame.
pub fn render_frame(
    p: &ParsedExposition,
    prev: Option<&ParsedExposition>,
    dt_s: Option<f64>,
    source: &str,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "fbmpk top — {source}");
    let _ = writeln!(out, "{}", "-".repeat(64));

    // Bandwidth vs roofline.
    let achieved = unlabeled(p, "fbmpk_bench_achieved_gbs");
    let ceiling = unlabeled(p, "fbmpk_bench_roofline_gbs");
    let fraction =
        unlabeled(p, "fbmpk_bench_roofline_fraction").or_else(|| match (achieved, ceiling) {
            (Some(a), Some(c)) if c > 0.0 => Some(a / c),
            _ => None,
        });
    match (achieved, ceiling) {
        (Some(a), Some(c)) => {
            let f = fraction.unwrap_or(0.0);
            let _ = writeln!(
                out,
                "bandwidth  {a:7.2} GB/s of {c:7.2} GB/s roofline  {} {:5.1}%",
                bar(f, 24),
                f * 100.0
            );
        }
        (Some(a), None) => {
            let _ = writeln!(out, "bandwidth  {a:7.2} GB/s (no roofline measured)");
        }
        _ => {
            let _ = writeln!(out, "bandwidth  (no fbmpk_bench_achieved_gbs yet)");
        }
    }

    // Per-plan sweeps: invocations, rate, achieved GB/s, wait fraction.
    let sweeps = p.samples_of("fbmpk_sweep_invocations_total");
    if !sweeps.is_empty() {
        let _ = writeln!(out, "\nplans");
        for s in &sweeps {
            let plan =
                s.labels.iter().find(|(k, _)| k == "plan").map(|(_, v)| v.as_str()).unwrap_or("?");
            let lbl = [("plan", plan)];
            let prev_count = prev.and_then(|q| q.value("fbmpk_sweep_invocations_total", &lbl));
            let per_s = rate(s.value, prev_count, dt_s)
                .map(|r| format!("{r:6.2}/s"))
                .unwrap_or_else(|| "      –".into());
            let gbs = p
                .value("fbmpk_achieved_gbs", &lbl)
                .map(|g| format!("{g:7.2} GB/s"))
                .unwrap_or_else(|| "          –".into());
            let wait = p.value("fbmpk_wait_fraction", &lbl);
            let wait_str =
                wait.map(|w| format!("{} {:5.1}% wait", bar(w, 12), w * 100.0)).unwrap_or_default();
            let _ = writeln!(
                out,
                "  plan {plan:<3} {:>10.0} sweeps  {per_s}  {gbs}  {wait_str}",
                s.value
            );
            // Per-thread wait bars, when the plan records spans.
            let mut threads: Vec<_> = p
                .samples_of("fbmpk_thread_wait_fraction")
                .into_iter()
                .filter(|t| t.labels.iter().any(|(k, v)| k == "plan" && v == plan))
                .collect();
            threads.sort_by_key(|t| {
                t.labels
                    .iter()
                    .find(|(k, _)| k == "thread")
                    .and_then(|(_, v)| v.parse::<usize>().ok())
                    .unwrap_or(usize::MAX)
            });
            for t in threads {
                let tid = t
                    .labels
                    .iter()
                    .find(|(k, _)| k == "thread")
                    .map(|(_, v)| v.as_str())
                    .unwrap_or("?");
                let _ = writeln!(
                    out,
                    "    t{tid:<3} {} {:5.1}% wait",
                    bar(t.value, 20),
                    t.value * 100.0
                );
            }
        }
    }

    // Faults and recovery.
    let arms = unlabeled(p, "fbmpk_watchdog_arms_total").unwrap_or(0.0);
    let fires = unlabeled(p, "fbmpk_watchdog_fires_total").unwrap_or(0.0);
    // `+ 0.0` normalizes the -0.0 that summing zero samples yields.
    let fallbacks = p.sum("fbmpk_fallbacks_total") + 0.0;
    let inject = unlabeled(p, "fbmpk_fault_injection_hits_total").unwrap_or(0.0);
    let _ = writeln!(
        out,
        "\nfaults     watchdog {arms:.0} armed / {fires:.0} fired   \
         fallbacks {fallbacks:.0}   injected {inject:.0}"
    );

    // Tune cache.
    let hits = unlabeled(p, "fbmpk_tune_cache_hits_total").unwrap_or(0.0);
    let misses = unlabeled(p, "fbmpk_tune_cache_misses_total").unwrap_or(0.0);
    if hits + misses > 0.0 {
        let _ = writeln!(
            out,
            "tune cache {hits:.0} hits / {misses:.0} misses ({:.0}% hit rate)",
            100.0 * hits / (hits + misses)
        );
    }

    // Top phases by accumulated wall time.
    let mut phases: Vec<(String, f64, f64)> = p
        .samples_of("fbmpk_phase_seconds_total")
        .into_iter()
        .filter_map(|s| {
            let name = s.labels.iter().find(|(k, _)| k == "phase")?.1.clone();
            let runs = p.value("fbmpk_phase_runs_total", &[("phase", &name)]).unwrap_or(0.0);
            Some((name, s.value, runs))
        })
        .collect();
    phases.sort_by(|a, b| b.1.total_cmp(&a.1));
    if !phases.is_empty() {
        let _ = writeln!(out, "\nphases                          seconds      runs");
        for (name, secs, runs) in phases.iter().take(10) {
            let _ = writeln!(out, "  {name:<28} {secs:>9.4} {runs:>9.0}");
        }
    }

    // Traffic-attribution drill-down: the worst blocks of the matrix
    // currently under `repro attribution`, all three byte ledgers side by
    // side (modeled from §III-B, simulated from the cache replay,
    // measured from hardware counters when available).
    let attr = p.samples_of("fbmpk_block_bytes_total");
    if !attr.is_empty() {
        let mut per_block: std::collections::BTreeMap<(String, String), (f64, f64, Option<f64>)> =
            std::collections::BTreeMap::new();
        for s in &attr {
            let lab = |k: &str| s.labels.iter().find(|(n, _)| n == k).map(|(_, v)| v.clone());
            let (Some(matrix), Some(block), Some(ledger)) =
                (lab("matrix"), lab("block"), lab("ledger"))
            else {
                continue;
            };
            let e = per_block.entry((matrix, block)).or_insert((0.0, 0.0, None));
            match ledger.as_str() {
                "modeled" => e.0 += s.value,
                "simulated" => e.1 += s.value,
                "measured" => *e.2.get_or_insert(0.0) += s.value,
                _ => {}
            }
        }
        let mut rows: Vec<(String, String, f64, f64, Option<f64>, f64)> = per_block
            .into_iter()
            .map(|((matrix, block), (m, sim, meas))| {
                let achieved = meas.unwrap_or(sim);
                let ratio = if m > 0.0 { achieved / m } else { 0.0 };
                (matrix, block, m, sim, meas, ratio)
            })
            .collect();
        rows.sort_by(|a, b| b.5.total_cmp(&a.5));
        let _ = writeln!(out, "\nattribution — worst blocks (bytes vs model)");
        for (matrix, block, m, sim, meas, ratio) in rows.iter().take(8) {
            let meas_str = meas.map(|v| format!("{v:>9.0}")).unwrap_or_else(|| "        –".into());
            let _ = writeln!(
                out,
                "  {matrix:<12} b{block:<5} model {m:>9.0}  sim {sim:>9.0}  meas {meas_str}  \
                 {} {ratio:4.2}x",
                bar(ratio / 3.0, 12),
            );
        }
    }
    out
}

/// Starts the self-driving demo: enables live telemetry, binds an
/// in-process endpoint, and spawns a background workload (a small
/// reordered plan computing `A^5 x` in a loop) so every dashboard
/// section has data. Returns the bound address. The workload thread is
/// detached and dies with the process.
fn start_demo() -> Result<std::net::SocketAddr, String> {
    fbmpk_obs::live::set_enabled(true);
    let server = fbmpk_obs::MetricsServer::start(
        "127.0.0.1:0".parse().expect("literal addr"),
        fbmpk_obs::live::global(),
    )
    .map_err(|e| format!("bind demo endpoint: {e}"))?;
    let addr = server.local_addr();
    // The server lives for the rest of the process.
    std::mem::forget(server);
    std::thread::Builder::new()
        .name("fbmpk-top-demo".into())
        .spawn(|| {
            let a = fbmpk_gen::poisson::grid2d_5pt(60, 60);
            let opts = fbmpk::FbmpkOptions {
                nthreads: 2,
                reorder: Some(fbmpk_reorder::AbmcParams::default()),
                obs: fbmpk::ObsOptions::recording(),
                ..Default::default()
            };
            let plan = fbmpk::FbmpkPlan::new(&a, opts).expect("square demo matrix");
            let x0 = vec![1.0; a.nrows()];
            loop {
                std::hint::black_box(plan.power(&x0, 5));
                std::thread::sleep(Duration::from_millis(50));
            }
        })
        .map_err(|e| format!("spawn demo workload: {e}"))?;
    Ok(addr)
}

/// Runs the dashboard loop. Blocks until `cfg.frames` frames have been
/// rendered (or forever when `None`). Errors are returned, not printed,
/// so the caller owns the exit code.
pub fn run(cfg: &TopConfig) -> Result<(), String> {
    let (addr, source) = match cfg.addr {
        Some(a) => (a, format!("{a}")),
        None => {
            let a = start_demo()?;
            (a, format!("{a} (demo workload)"))
        }
    };
    let mut prev: Option<(ParsedExposition, Instant)> = None;
    let mut frame = 0u64;
    loop {
        let body = fbmpk_obs::serve::scrape(addr, Duration::from_secs(2))
            .map_err(|e| format!("scrape {addr}: {e}"))?;
        let parsed = expo::parse(&body).map_err(|e| format!("bad exposition from {addr}: {e}"))?;
        let now = Instant::now();
        let dt = prev.as_ref().map(|(_, t)| now.duration_since(*t).as_secs_f64());
        let screen = render_frame(&parsed, prev.as_ref().map(|(q, _)| q), dt, &source);
        // Clear + home, then the frame: plain ANSI, no terminal library.
        print!("\x1b[2J\x1b[H{screen}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        prev = Some((parsed, now));
        frame += 1;
        if let Some(max) = cfg.frames {
            if frame >= max {
                return Ok(());
            }
        }
        std::thread::sleep(Duration::from_millis(cfg.interval_ms));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_clamps_and_fills() {
        assert_eq!(bar(0.0, 4), "[....]");
        assert_eq!(bar(1.0, 4), "[####]");
        assert_eq!(bar(2.5, 4), "[####]");
        assert_eq!(bar(-1.0, 4), "[....]");
        assert_eq!(bar(0.5, 4), "[##..]");
    }

    #[test]
    fn render_frame_covers_every_section() {
        let text = "\
# HELP fbmpk_bench_achieved_gbs h\n\
# TYPE fbmpk_bench_achieved_gbs gauge\n\
fbmpk_bench_achieved_gbs 5\n\
# HELP fbmpk_bench_roofline_gbs h\n\
# TYPE fbmpk_bench_roofline_gbs gauge\n\
fbmpk_bench_roofline_gbs 10\n\
# HELP fbmpk_sweep_invocations_total h\n\
# TYPE fbmpk_sweep_invocations_total counter\n\
fbmpk_sweep_invocations_total{plan=\"1\"} 30\n\
# HELP fbmpk_achieved_gbs h\n\
# TYPE fbmpk_achieved_gbs gauge\n\
fbmpk_achieved_gbs{plan=\"1\"} 4.5\n\
# HELP fbmpk_wait_fraction h\n\
# TYPE fbmpk_wait_fraction gauge\n\
fbmpk_wait_fraction{plan=\"1\"} 0.25\n\
# HELP fbmpk_thread_wait_fraction h\n\
# TYPE fbmpk_thread_wait_fraction gauge\n\
fbmpk_thread_wait_fraction{plan=\"1\",thread=\"0\"} 0.5\n\
fbmpk_thread_wait_fraction{plan=\"1\",thread=\"1\"} 0.1\n\
# HELP fbmpk_watchdog_fires_total h\n\
# TYPE fbmpk_watchdog_fires_total counter\n\
fbmpk_watchdog_fires_total 2\n\
# HELP fbmpk_tune_cache_hits_total h\n\
# TYPE fbmpk_tune_cache_hits_total counter\n\
fbmpk_tune_cache_hits_total 3\n\
# HELP fbmpk_tune_cache_misses_total h\n\
# TYPE fbmpk_tune_cache_misses_total counter\n\
fbmpk_tune_cache_misses_total 1\n\
# HELP fbmpk_phase_seconds_total h\n\
# TYPE fbmpk_phase_seconds_total counter\n\
fbmpk_phase_seconds_total{phase=\"tune.inspect\"} 0.25\n\
# HELP fbmpk_phase_runs_total h\n\
# TYPE fbmpk_phase_runs_total counter\n\
fbmpk_phase_runs_total{phase=\"tune.inspect\"} 7\n\
# HELP fbmpk_block_bytes_total h\n\
# TYPE fbmpk_block_bytes_total counter\n\
fbmpk_block_bytes_total{matrix=\"rmat\",block=\"3\",phase=\"total\",ledger=\"modeled\"} 1000\n\
fbmpk_block_bytes_total{matrix=\"rmat\",block=\"3\",phase=\"forward\",ledger=\"simulated\"} 1500\n\
fbmpk_block_bytes_total{matrix=\"rmat\",block=\"3\",phase=\"backward\",ledger=\"simulated\"} 500\n\
fbmpk_block_bytes_total{matrix=\"rmat\",block=\"3\",phase=\"forward\",ledger=\"measured\"} 3000\n\
fbmpk_block_bytes_total{matrix=\"rmat\",block=\"7\",phase=\"total\",ledger=\"modeled\"} 1000\n\
fbmpk_block_bytes_total{matrix=\"rmat\",block=\"7\",phase=\"forward\",ledger=\"simulated\"} 1000\n";
        let cur = expo::parse(text).expect("fixture parses");
        let frame = render_frame(&cur, None, None, "test");
        assert!(frame.contains("50.0%"), "roofline fraction:\n{frame}");
        assert!(frame.contains("plan 1"), "{frame}");
        assert!(frame.contains("t0"), "{frame}");
        assert!(frame.contains("2 fired"), "{frame}");
        assert!(frame.contains("75% hit rate"), "{frame}");
        assert!(frame.contains("tune.inspect"), "{frame}");
        // Attribution drill-down: block 3's measured/modeled ratio (3.00x)
        // ranks it above block 7 (sim-only, 1.00x with a "–" measured cell).
        assert!(frame.contains("attribution — worst blocks"), "{frame}");
        let b3 = frame.find("b3").expect("block 3 shown");
        let b7 = frame.find("b7").expect("block 7 shown");
        assert!(b3 < b7, "worst ratio first:\n{frame}");
        assert!(frame.contains("3.00x"), "{frame}");
        assert!(frame.contains("1.00x"), "{frame}");
        assert!(frame.contains("–"), "missing measured ledger renders a dash:\n{frame}");
        // First frame has no rate; a second frame 10 sweeps later at
        // dt = 2 s shows 5.00/s.
        let next_text = text.replace(
            "fbmpk_sweep_invocations_total{plan=\"1\"} 30",
            "fbmpk_sweep_invocations_total{plan=\"1\"} 50",
        );
        let next = expo::parse(&next_text).expect("fixture parses");
        let frame2 = render_frame(&next, Some(&cur), Some(2.0), "test");
        assert!(frame2.contains("10.00/s"), "{frame2}");
    }

    #[test]
    fn render_frame_survives_an_empty_exposition() {
        let empty = expo::parse("").expect("empty is valid");
        let frame = render_frame(&empty, None, None, "empty");
        assert!(frame.contains("no fbmpk_bench_achieved_gbs"));
    }
}
