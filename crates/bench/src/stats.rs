//! Robust statistics for benchmark samples.
//!
//! Per-rep wall-clock samples on shared machines are contaminated by
//! scheduler noise, frequency transitions, and neighbour interference —
//! all one-sided (things only get *slower*). Means and standard
//! deviations are dragged by that tail, so the perf database summarizes
//! every run with the median, the median absolute deviation (MAD), and a
//! percentile-bootstrap confidence interval of the median. The bootstrap
//! is a real resampling loop over the vendored deterministic RNG — same
//! samples, same interval, on every host.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Fixed seed for the bootstrap RNG: results must be reproducible from
/// the samples alone, with no ambient state (clock, host entropy).
const BOOTSTRAP_SEED: u64 = 0x5eed_f00d_cafe_d00d;

/// Default bootstrap resample count. 1000 puts the Monte-Carlo error of a
/// 95% percentile interval well under the scheduler noise it measures.
pub const DEFAULT_RESAMPLES: usize = 1000;

/// Default two-sided confidence level.
pub const DEFAULT_LEVEL: f64 = 0.95;

/// Median of `xs`; `None` when empty.
///
/// Sorts a copy — benchmark sample vectors are tens of entries, not
/// millions, so O(n log n) beats quickselect's constant factor here.
pub fn median(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("benchmark samples must not be NaN"));
    let n = v.len();
    Some(if n % 2 == 1 { v[n / 2] } else { 0.5 * (v[n / 2 - 1] + v[n / 2]) })
}

/// Median absolute deviation from the median; `None` when empty.
///
/// Reported raw (no 1.4826 normal-consistency factor): timing noise is
/// asymmetric, so pretending it estimates a Gaussian σ would mislead.
pub fn mad(xs: &[f64]) -> Option<f64> {
    let m = median(xs)?;
    let dev: Vec<f64> = xs.iter().map(|x| (x - m).abs()).collect();
    median(&dev)
}

/// A two-sided percentile interval from a bootstrap distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ci {
    /// Lower percentile bound.
    pub lo: f64,
    /// Upper percentile bound.
    pub hi: f64,
    /// The two-sided confidence level the bounds correspond to.
    pub level: f64,
}

impl Ci {
    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether the two intervals share any point.
    pub fn overlaps(&self, other: &Ci) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }
}

/// Draws one resample (with replacement) of `xs` into `buf` and returns
/// its median.
fn resample_median(xs: &[f64], buf: &mut Vec<f64>, rng: &mut SmallRng) -> f64 {
    buf.clear();
    for _ in 0..xs.len() {
        buf.push(xs[rng.gen_range(0..xs.len())]);
    }
    median(buf).expect("resample of a non-empty slice is non-empty")
}

/// Percentile interval of a sorted bootstrap distribution.
fn percentile_interval(mut boots: Vec<f64>, level: f64) -> Ci {
    boots.sort_by(|a, b| a.partial_cmp(b).expect("bootstrap statistics must not be NaN"));
    let n = boots.len();
    let alpha = (1.0 - level) / 2.0;
    let at = |q: f64| {
        let idx = (q * (n - 1) as f64).round() as usize;
        boots[idx.min(n - 1)]
    };
    Ci { lo: at(alpha), hi: at(1.0 - alpha), level }
}

/// Percentile-bootstrap confidence interval of the median of `xs`.
///
/// `None` when `xs` is empty or `resamples == 0`. A single sample yields
/// the degenerate interval `[x, x]` — correct, if not informative.
pub fn bootstrap_median_ci(xs: &[f64], resamples: usize, level: f64) -> Option<Ci> {
    if xs.is_empty() || resamples == 0 || !(0.0..1.0).contains(&(1.0 - level)) {
        return None;
    }
    let mut rng = SmallRng::seed_from_u64(BOOTSTRAP_SEED ^ xs.len() as u64);
    let mut buf = Vec::with_capacity(xs.len());
    let boots: Vec<f64> = (0..resamples).map(|_| resample_median(xs, &mut buf, &mut rng)).collect();
    Some(percentile_interval(boots, level))
}

/// Percentile-bootstrap confidence interval of `median(num) / median(den)`
/// — the speedup statistic `repro compare` reports. Both sides are
/// resampled independently per bootstrap iteration.
pub fn bootstrap_ratio_ci(num: &[f64], den: &[f64], resamples: usize, level: f64) -> Option<Ci> {
    if num.is_empty() || den.is_empty() || resamples == 0 {
        return None;
    }
    let mut rng =
        SmallRng::seed_from_u64(BOOTSTRAP_SEED ^ ((num.len() as u64) << 32 | den.len() as u64));
    let mut buf = Vec::with_capacity(num.len().max(den.len()));
    let boots: Vec<f64> = (0..resamples)
        .map(|_| {
            let n = resample_median(num, &mut buf, &mut rng);
            let d = resample_median(den, &mut buf, &mut rng);
            n / d.max(1e-300)
        })
        .collect();
    Some(percentile_interval(boots, level))
}

/// Convenience bundle: every summary statistic the perf database stores
/// for one sample vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleSummary {
    /// Median seconds.
    pub median: f64,
    /// Median absolute deviation.
    pub mad: f64,
    /// Bootstrap CI of the median at [`DEFAULT_LEVEL`].
    pub ci: Ci,
}

impl SampleSummary {
    /// Summarizes `xs`; `None` when empty.
    pub fn compute(xs: &[f64]) -> Option<SampleSummary> {
        Some(SampleSummary {
            median: median(xs)?,
            mad: mad(xs)?,
            ci: bootstrap_median_ci(xs, DEFAULT_RESAMPLES, DEFAULT_LEVEL)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even_empty() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(median(&[]), None);
        assert_eq!(median(&[7.0]), Some(7.0));
    }

    #[test]
    fn mad_resists_outliers() {
        // One huge outlier barely moves median/MAD, wrecks mean/stddev.
        let clean = [1.0, 1.1, 0.9, 1.05, 0.95];
        let dirty = [1.0, 1.1, 0.9, 1.05, 100.0];
        assert!((median(&dirty).unwrap() - median(&clean).unwrap()).abs() < 0.11);
        assert!(mad(&dirty).unwrap() < 0.2);
    }

    #[test]
    fn bootstrap_ci_brackets_the_median_and_is_deterministic() {
        let xs: Vec<f64> = (0..20).map(|i| 1.0 + 0.01 * (i % 7) as f64).collect();
        let ci = bootstrap_median_ci(&xs, 500, 0.95).unwrap();
        let m = median(&xs).unwrap();
        assert!(ci.lo <= m && m <= ci.hi, "{ci:?} vs median {m}");
        assert_eq!(ci, bootstrap_median_ci(&xs, 500, 0.95).unwrap());
    }

    #[test]
    fn ci_shrinks_with_more_samples() {
        // Same noise distribution, 8 vs 128 samples: the median's
        // sampling error — and so its bootstrap CI — must tighten.
        use rand::rngs::SmallRng;
        let noisy = |n: usize| -> Vec<f64> {
            let mut rng = SmallRng::seed_from_u64(99);
            (0..n).map(|_| 1.0 + 0.2 * rng.gen::<f64>()).collect()
        };
        let small = bootstrap_median_ci(&noisy(8), 800, 0.95).unwrap();
        let large = bootstrap_median_ci(&noisy(128), 800, 0.95).unwrap();
        assert!(
            large.width() < small.width(),
            "CI failed to shrink: {} -> {}",
            small.width(),
            large.width()
        );
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert!(bootstrap_median_ci(&[], 100, 0.95).is_none());
        assert!(bootstrap_median_ci(&[1.0], 0, 0.95).is_none());
        let one = bootstrap_median_ci(&[2.0], 100, 0.95).unwrap();
        assert_eq!((one.lo, one.hi), (2.0, 2.0));
        assert!(bootstrap_ratio_ci(&[], &[1.0], 100, 0.95).is_none());
    }

    #[test]
    fn ratio_ci_centers_on_true_ratio() {
        let a: Vec<f64> = (0..16).map(|i| 2.0 + 0.01 * (i % 5) as f64).collect();
        let b: Vec<f64> = (0..16).map(|i| 1.0 + 0.01 * (i % 5) as f64).collect();
        let ci = bootstrap_ratio_ci(&a, &b, 500, 0.95).unwrap();
        assert!(ci.lo > 1.5 && ci.hi < 2.5, "{ci:?}");
    }

    #[test]
    fn overlap_predicate() {
        let a = Ci { lo: 1.0, hi: 2.0, level: 0.95 };
        let b = Ci { lo: 1.5, hi: 3.0, level: 0.95 };
        let c = Ci { lo: 2.5, hi: 3.0, level: 0.95 };
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(b.overlaps(&c));
    }

    #[test]
    fn sample_summary_bundles() {
        let s = SampleSummary::compute(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.median, 2.0);
        assert_eq!(s.mad, 1.0);
        assert!(s.ci.lo <= 2.0 && s.ci.hi >= 2.0);
        assert!(SampleSummary::compute(&[]).is_none());
    }
}
