//! Measured-bandwidth anchor for the roofline model.
//!
//! The paper's whole argument is a memory-traffic model (§III-B) versus
//! achieved bandwidth; comparing a kernel's effective GB/s against a
//! *nominal* DRAM figure is meaningless across the zoo of hosts this
//! reproduction runs on. So the perf database anchors every record with
//! two microbenchmark ceilings measured on the spot:
//!
//! * a STREAM-style **triad** (`a[i] = b[i] + s·c[i]`) — the sustainable
//!   sequential bandwidth a perfectly streaming kernel could reach, and
//! * a **random-gather** probe (`sum += x[idx[i]]`) — the effective
//!   bandwidth of dependent irregular loads, the floor an SpMV's column
//!   gathers degrade toward when locality is lost.
//!
//! A kernel's *roofline fraction* is its achieved GB/s (modeled matrix
//! bytes over measured seconds) divided by the triad ceiling; the gather
//! figure contextualizes how much of the gap is irregularity rather than
//! inefficiency. Working sets are sized from the sysfs LLC capacity so
//! the probes measure memory, not cache.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Floor on the probe working set: even with no LLC information the
/// arrays must dwarf any plausible cache.
pub const MIN_WORKING_SET: usize = 64 << 20;

/// Ceiling on the probe working set, so huge-LLC servers don't spend CI
/// minutes streaming memory.
pub const MAX_WORKING_SET: usize = 512 << 20;

/// Measured bandwidth ceilings for one host.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthProbe {
    /// STREAM-triad bandwidth in GB/s (best of the timed reps).
    pub triad_gbs: f64,
    /// Effective random-gather bandwidth in GB/s (useful bytes only:
    /// index + gathered element per access, not the cache lines moved).
    pub gather_gbs: f64,
    /// Total bytes of the triad working set (all three arrays).
    pub working_set_bytes: usize,
    /// Timed repetitions per probe (after one untimed warmup).
    pub reps: usize,
}

impl BandwidthProbe {
    /// `achieved / triad`, the roofline fraction for an achieved
    /// bandwidth; `None` when the ceiling is degenerate.
    pub fn roofline_fraction(&self, achieved_gbs: f64) -> Option<f64> {
        (self.triad_gbs > 0.0).then(|| achieved_gbs / self.triad_gbs)
    }
}

/// Sizes the probe working set from the LLC capacity (`0` = unknown):
/// 8× the LLC so at most 1/8 of the stream can be cache-resident,
/// clamped to [[`MIN_WORKING_SET`], [`MAX_WORKING_SET`]].
pub fn working_set_for_llc(llc_bytes: u64) -> usize {
    let target = (llc_bytes as usize).saturating_mul(8);
    target.clamp(MIN_WORKING_SET, MAX_WORKING_SET)
}

/// Measures both ceilings with the default sizing for `llc_bytes` (from
/// the platform probe; pass 0 when unknown). The `FBMPK_BW_BYTES`
/// environment variable overrides the working-set size — tests and
/// constrained CI runners use it to trade fidelity for seconds.
pub fn measure(llc_bytes: u64) -> BandwidthProbe {
    let ws = std::env::var("FBMPK_BW_BYTES")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or_else(|| working_set_for_llc(llc_bytes));
    measure_with(ws, 3)
}

/// Measures both ceilings on a `working_set_bytes`-byte footprint with
/// `reps` timed repetitions each (plus one warmup). Reports the *best*
/// rep — bandwidth ceilings are maxima by definition; interference can
/// only subtract.
pub fn measure_with(working_set_bytes: usize, reps: usize) -> BandwidthProbe {
    let n = (working_set_bytes / (3 * std::mem::size_of::<f64>())).max(1024);
    let reps = reps.max(1);

    // Triad: initialize with non-trivial values so subnormal-flush or
    // constant-folding shortcuts can't distort the timing.
    let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 17) as f64).collect();
    let c: Vec<f64> = (0..n).map(|i| 2.0 + (i % 13) as f64).collect();
    let mut a = vec![0.0f64; n];
    let scalar = 0.42f64;
    let mut best = f64::INFINITY;
    for rep in 0..=reps {
        let t0 = Instant::now();
        for ((ai, bi), ci) in a.iter_mut().zip(&b).zip(&c) {
            *ai = bi + scalar * ci;
        }
        let dt = t0.elapsed().as_secs_f64();
        std::hint::black_box(&a);
        if rep > 0 {
            best = best.min(dt);
        }
    }
    let triad_bytes = 3 * std::mem::size_of::<f64>() * n;
    let triad_gbs = triad_bytes as f64 / best.max(1e-12) / 1e9;

    // Random gather over the same footprint: one u32 index array plus
    // the f64 target. Indices are a deterministic uniform draw, not a
    // permutation — SpMV column streams revisit entries too.
    let gather_n =
        (working_set_bytes / (std::mem::size_of::<u32>() + std::mem::size_of::<f64>())).max(1024);
    let mut rng = SmallRng::seed_from_u64(0xbead_cafe);
    let idx: Vec<u32> = (0..gather_n).map(|_| rng.gen_range(0..gather_n as u64) as u32).collect();
    let x: Vec<f64> = (0..gather_n).map(|i| (i % 29) as f64).collect();
    let mut best_gather = f64::INFINITY;
    for rep in 0..=reps {
        let t0 = Instant::now();
        let mut sum = 0.0f64;
        for &j in &idx {
            sum += x[j as usize];
        }
        let dt = t0.elapsed().as_secs_f64();
        std::hint::black_box(sum);
        if rep > 0 {
            best_gather = best_gather.min(dt);
        }
    }
    let gather_bytes = (std::mem::size_of::<u32>() + std::mem::size_of::<f64>()) * gather_n;
    let gather_gbs = gather_bytes as f64 / best_gather.max(1e-12) / 1e9;

    BandwidthProbe { triad_gbs, gather_gbs, working_set_bytes, reps }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn working_set_sizing_clamps() {
        assert_eq!(working_set_for_llc(0), MIN_WORKING_SET);
        assert_eq!(working_set_for_llc(1 << 20), MIN_WORKING_SET);
        assert_eq!(working_set_for_llc(32 << 20), 256 << 20);
        assert_eq!(working_set_for_llc(u64::MAX / 2), MAX_WORKING_SET);
    }

    #[test]
    fn tiny_probe_produces_positive_finite_bandwidths() {
        // 2 MiB keeps the unit test fast; ceilings are then cache
        // bandwidths, which is fine — the test checks plumbing, not
        // physics.
        let p = measure_with(2 << 20, 2);
        assert!(p.triad_gbs.is_finite() && p.triad_gbs > 0.0);
        assert!(p.gather_gbs.is_finite() && p.gather_gbs > 0.0);
        assert_eq!(p.working_set_bytes, 2 << 20);
        assert_eq!(p.reps, 2);
    }

    #[test]
    fn roofline_fraction_divides_by_triad() {
        let p = BandwidthProbe { triad_gbs: 10.0, gather_gbs: 1.0, working_set_bytes: 0, reps: 1 };
        assert_eq!(p.roofline_fraction(5.0), Some(0.5));
        let z = BandwidthProbe { triad_gbs: 0.0, ..p };
        assert_eq!(z.roofline_fraction(5.0), None);
    }
}
