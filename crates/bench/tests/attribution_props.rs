//! Conservation, bit-identity and correlation properties of the
//! traffic-attribution subsystem: the three byte ledgers must sum
//! *exactly* (no tolerance) to their whole-kernel anchors, a disabled or
//! attached probe must never perturb the numerics, and on an irregular
//! power-law graph the excess traffic of boundary blocks must correlate
//! positively with the partition's cut edges through them.

use fbmpk::{FbmpkOptions, FbmpkPlan, SyncMode, VectorLayout};
use fbmpk_bench::runner::{self, abmc_params, block_cut_edges, scaled_llc, start_vector};
use fbmpk_bench::BenchConfig;
use fbmpk_memsim::{
    trace_fbmpk_attributed, trace_fbmpk_split, FbmpkTraceAttribution, TracedLayout,
};
use fbmpk_obs::NoopProbe;
use fbmpk_sparse::{Csr, TriangularSplit};

fn test_plan(w: usize, h: usize, threads: usize) -> (Csr, FbmpkPlan) {
    let a = fbmpk_gen::poisson::grid2d_5pt(w, h);
    let opts = FbmpkOptions {
        nthreads: threads,
        reorder: Some(abmc_params(a.nrows())),
        layout: VectorLayout::BackToBack,
        sync: SyncMode::PointToPoint,
        ..Default::default()
    };
    let plan = FbmpkPlan::new(&a, opts).expect("square");
    (a, plan)
}

/// The §III-B modeled ledger is conservative by construction: the
/// per-(power, block) decomposition sums exactly — integer equality, no
/// epsilon — to the whole-plan modeled bytes, for several `k`.
#[test]
fn modeled_cells_sum_exactly_to_plan_bytes() {
    let (_a, plan) = test_plan(40, 40, 2);
    for k in 1..=6 {
        let per_pb = plan.modeled_block_power_bytes(k);
        assert_eq!(per_pb.len(), k);
        let cell_sum: u64 = per_pb.iter().flatten().sum();
        assert_eq!(cell_sum, plan.modeled_matrix_bytes(k), "k = {k}");
        let per_block = plan.modeled_block_bytes(k);
        let block_sum: u64 = per_block.iter().sum();
        assert_eq!(block_sum, plan.modeled_matrix_bytes(k), "k = {k}");
    }
}

/// Attribution must be a pure observation: the labeled replay reports
/// whole-kernel totals bit-identical to the unlabeled replay, its label
/// sums equal those totals exactly, and the per-node split (when enabled)
/// partitions the same DRAM bytes exactly.
#[test]
fn attributed_replay_conserves_whole_kernel_totals() {
    let (a, plan) = test_plan(48, 48, 2);
    let k = 5;
    let cfgs = [scaled_llc(a.nnz() * 12 + 8 * (a.nrows() + 1))];
    let split = plan.split();
    let plain = trace_fbmpk_split(split, k, TracedLayout::BackToBack, &cfgs);
    let starts = plan.block_row_start().to_vec();
    let attr = FbmpkTraceAttribution { block_row_start: &starts, node_of_share: &[0, 0] };
    let labeled = trace_fbmpk_attributed(split, k, TracedLayout::BackToBack, &cfgs, &attr);
    assert_eq!(labeled.report, plain, "labeling changed the replay");
    let label_read: u64 = labeled.labels.values().map(|t| t.dram_read_bytes).sum();
    let label_write: u64 = labeled.labels.values().map(|t| t.dram_write_bytes).sum();
    assert_eq!(label_read, plain.dram_read_bytes);
    assert_eq!(label_write, plain.dram_write_bytes);
    let node_total: u64 = labeled.nodes.values().map(|t| t.dram_total()).sum();
    assert_eq!(node_total, plain.dram_read_bytes + plain.dram_write_bytes);
}

/// A `NoopProbe` power run and an attached `HwAttributionProbe` run both
/// produce bit-identical results to the plain kernel — observation never
/// changes the numerics.
#[test]
fn probes_never_perturb_the_numerics() {
    let (_a, plan) = test_plan(40, 40, 2);
    let x0 = start_vector(plan.split().diag.len());
    let k = 5;
    let want = plan.power(&x0, k);
    let noop = plan.power_probed(&x0, k, &NoopProbe).expect("noop probed run");
    assert_eq!(noop, want, "NoopProbe changed the result");
    let probe = fbmpk_obs::HwAttributionProbe::new(2);
    let probed = plan.power_probed(&x0, k, &probe).expect("hw probed run");
    assert_eq!(probed, want, "HwAttributionProbe changed the result");
}

/// `block_cut_edges` counts exactly the off-diagonal entries whose column
/// leaves the block's row range, verified against a hand-computed split.
#[test]
fn block_cut_edges_counts_match_by_hand() {
    // 4x4 ring: every row couples to its two neighbours (wrapping), so
    // with blocks {0,1} and {2,3} each block has one internal edge per
    // triangle and two wrap/boundary cut entries.
    let a = Csr::from_dense(&[
        &[2.0, 1.0, 0.0, 1.0],
        &[1.0, 2.0, 1.0, 0.0],
        &[0.0, 1.0, 2.0, 1.0],
        &[1.0, 0.0, 1.0, 2.0],
    ]);
    let split = TriangularSplit::split(&a).expect("square");
    let cut = block_cut_edges(&split, &[0, 2, 4]);
    // Block 0 (rows 0-1): entries (0,3) upper and (1,2) upper leave it.
    // Block 1 (rows 2-3): entries (3,0) lower and (2,1) lower leave it.
    assert_eq!(cut, vec![2, 2]);
    // One block covering everything has no cut.
    assert_eq!(block_cut_edges(&split, &[0, 4]), vec![0]);
}

/// End-to-end on the synthetic R-MAT power-law case (the runner appends
/// it even with an empty suite): conservation holds on real data, and
/// blocks with more cut edges move disproportionately more bytes than the
/// streaming model predicts — the correlation the partitioner optimizes
/// must be positive.
#[test]
fn rmat_attribution_conserves_and_correlates() {
    let cfg = BenchConfig { scale: 0.002, threads: 2, reps: 1, seed: 1 };
    let rows = runner::attribution(&cfg, &[]);
    assert_eq!(rows.len(), 1, "empty suite leaves only the appended rmat case");
    let r = &rows[0];
    assert_eq!(r.name, "rmat");
    assert!(r.identical, "probed rmat run diverged");
    // Exact conservation of both ledgers.
    assert_eq!(r.report.modeled_total, r.modeled_matrix_bytes);
    let sim_cells: u64 = r.report.cells.iter().map(|c| c.simulated_bytes).sum();
    assert_eq!(sim_cells + r.sim_unattributed, r.sim_dram_total);
    let node_sum: u64 = r.node_bytes.iter().map(|&(_, v)| v).sum();
    assert_eq!(node_sum, r.sim_dram_total, "node split must partition the DRAM total");
    // The partition-quality signal: cut edges vs excess traffic.
    let corr = r.report.excess_cut_correlation().expect("rmat has varied blocks");
    assert!(corr > 0.0, "cut-edge / excess-traffic correlation must be positive, got {corr}");
}

/// With attribution disabled (the plain `power` path) there is no probe
/// in the loop at all; this release-only test pins the overhead of the
/// *probed entry point with a disabled probe* under 2 % against the plain
/// kernel, so the zero-cost claim is load-bearing, not aspirational.
/// Debug builds skip it (unoptimized generics dominate).
#[cfg(not(debug_assertions))]
#[test]
fn disabled_probe_overhead_is_under_two_percent() {
    let (_a, plan) = test_plan(96, 96, 2);
    let x0 = start_vector(plan.split().diag.len());
    let k = 5;
    let median = |f: &mut dyn FnMut()| {
        for _ in 0..3 {
            f();
        }
        let mut samples: Vec<f64> = (0..25)
            .map(|_| {
                let t0 = std::time::Instant::now();
                f();
                t0.elapsed().as_secs_f64()
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        samples[samples.len() / 2]
    };
    let t_plain = median(&mut || {
        std::hint::black_box(plan.power(&x0, k));
    });
    let t_noop = median(&mut || {
        std::hint::black_box(plan.power_probed(&x0, k, &NoopProbe).expect("probed"));
    });
    let overhead = t_noop / t_plain - 1.0;
    assert!(
        overhead < 0.02,
        "disabled-probe overhead {:.2}% exceeds 2% (plain {t_plain:.6}s, noop {t_noop:.6}s)",
        overhead * 100.0
    );
}
