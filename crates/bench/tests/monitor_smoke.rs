//! Monitor smoke: spawn a real `repro profile` run with
//! `FBMPK_METRICS_ADDR=127.0.0.1:0`, pick the bound port off the child's
//! stderr banner, scrape the live endpoint *mid-run*, and assert every
//! required metric family is present — with the workload families
//! (sweeps, phase time) strictly nonzero. This is the end-to-end proof
//! that a running job is observable from outside the process.

use fbmpk_obs::expo::{self, ParsedExposition};
use fbmpk_obs::serve;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Families that must be present in any mid-run scrape. The first two
/// must also be nonzero once the child has swept at least one plan.
const NONZERO_FAMILIES: [&str; 2] = ["fbmpk_sweep_invocations_total", "fbmpk_phase_seconds_total"];
const PRESENT_FAMILIES: [&str; 6] = [
    "fbmpk_achieved_gbs",
    "fbmpk_wait_fraction",
    "fbmpk_fallbacks_total",
    "fbmpk_watchdog_arms_total",
    "fbmpk_watchdog_fires_total",
    "fbmpk_fault_injection_hits_total",
];

struct KillOnDrop(Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        self.0.kill().ok();
        self.0.wait().ok();
    }
}

/// Streams the child's stderr off-thread so the pipe never backs up,
/// keeping every line for failure diagnostics.
struct StderrTail {
    rx: std::sync::mpsc::Receiver<String>,
    seen: Vec<String>,
}

impl StderrTail {
    fn new(child: &mut Child) -> Self {
        let stderr = child.stderr.take().expect("stderr piped");
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            for line in BufReader::new(stderr).lines() {
                let Ok(line) = line else { break };
                if tx.send(line).is_err() {
                    break;
                }
            }
        });
        StderrTail { rx, seen: Vec::new() }
    }

    fn drain(&mut self) -> String {
        while let Ok(line) = self.rx.try_recv() {
            self.seen.push(line);
        }
        self.seen.join("\n")
    }

    /// Waits for the endpoint banner and returns the bound address.
    /// Fails fast if the child dies first.
    fn wait_for_banner(&mut self, child: &mut Child, deadline: Duration) -> SocketAddr {
        const BANNER: &str = "fbmpk: serving metrics on ";
        let t0 = Instant::now();
        while t0.elapsed() < deadline {
            match self.rx.recv_timeout(Duration::from_millis(200)) {
                Ok(line) => {
                    if let Some(addr) = line.strip_prefix(BANNER) {
                        return addr.trim().parse().expect("banner carries a socket address");
                    }
                    self.seen.push(line);
                }
                Err(_) => {
                    if let Ok(Some(status)) = child.try_wait() {
                        // Give the reader thread a beat to flush the tail.
                        std::thread::sleep(Duration::from_millis(100));
                        panic!(
                            "repro exited ({status}) before serving metrics; stderr:\n{}",
                            self.drain()
                        );
                    }
                }
            }
        }
        panic!("no metrics banner within {deadline:?}; stderr so far:\n{}", self.drain());
    }
}

fn families_ready(p: &ParsedExposition) -> bool {
    PRESENT_FAMILIES.iter().all(|f| p.families.contains_key(*f))
        && NONZERO_FAMILIES.iter().all(|f| p.sum(f) > 0.0)
}

#[test]
fn live_endpoint_is_scrapable_mid_run_with_required_families() {
    let out_dir = std::env::temp_dir().join("fbmpk-monitor-smoke");
    std::fs::remove_dir_all(&out_dir).ok();
    // Generous reps keep the child sweeping long past our assertions, so
    // the scrape genuinely happens mid-run; KillOnDrop reaps it after.
    let child = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["profile", "--scale", "0.004", "--threads", "2", "--reps", "40", "--no-perfdb"])
        .arg("--out")
        .arg(&out_dir)
        .env("FBMPK_METRICS_ADDR", "127.0.0.1:0")
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn repro profile");
    let mut child = KillOnDrop(child);
    let mut tail = StderrTail::new(&mut child.0);

    let addr = tail.wait_for_banner(&mut child.0, Duration::from_secs(60));

    // Poll-scrape until the workload families are live. The endpoint is
    // up before the first matrix, so early scrapes legitimately see
    // zero sweeps — keep polling until the kernel work shows up.
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut last = String::new();
    loop {
        if let Ok(Some(status)) = child.0.try_wait() {
            std::thread::sleep(Duration::from_millis(100));
            panic!(
                "repro exited ({status}) before families went live; stderr:\n{}\nlast scrape:\n{last}",
                tail.drain()
            );
        }
        // Transient connect/read failures race with server accept:
        // retry until the deadline.
        if let Ok(text) = serve::scrape(addr, Duration::from_secs(2)) {
            let parsed = expo::parse(&text)
                .unwrap_or_else(|e| panic!("mid-run exposition must parse: {e}\n{text}"));
            if families_ready(&parsed) {
                // Beyond presence: the scrape is internally coherent.
                for f in PRESENT_FAMILIES {
                    assert!(
                        !parsed.samples_of(f).is_empty(),
                        "family {f} declared but sampleless:\n{text}"
                    );
                }
                let waits = parsed.samples_of("fbmpk_wait_fraction");
                assert!(
                    waits.iter().all(|s| (0.0..=1.0).contains(&s.value)),
                    "wait fraction out of [0,1]:\n{text}"
                );
                assert!(
                    parsed.sum("fbmpk_fault_injection_hits_total") == 0.0,
                    "fault injection fired in a plain profile run:\n{text}"
                );
                break;
            }
            last = text;
        }
        assert!(Instant::now() < deadline, "families never went live; last scrape:\n{last}");
        std::thread::sleep(Duration::from_millis(100));
    }
    drop(child);
    std::fs::remove_dir_all(&out_dir).ok();
}
