//! End-to-end smoke tests for the perf-database subcommands of the
//! `repro` binary: the gate must demonstrably exit nonzero on a
//! fabricated regression, exit zero on identical re-runs, honor
//! `--warn-only`/`FBMPK_GATE_HARD`, and the HTML report must be written
//! and self-contained. One test also runs a real (tiny) experiment and
//! checks that records with platform fingerprint, git rev, raw samples
//! and roofline fields were appended.

use fbmpk_bench::perfdb::{PerfDb, RecordCtx, RunRecord, RunSpec};
use fbmpk_bench::platform::{CacheInfo, Platform};
use fbmpk_bench::report::Json;
use fbmpk_bench::roofline::BandwidthProbe;
use std::path::{Path, PathBuf};
use std::process::Command;

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fbmpk-gate-smoke-{name}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn fab_platform() -> Platform {
    Platform {
        cpu_model: "smoke-cpu".into(),
        logical_cpus: 4,
        physical_cores: 2,
        packages: 1,
        caches: vec![CacheInfo {
            level: 3,
            cache_type: "Unified".into(),
            size_bytes: 8 << 20,
            count: 1,
        }],
        arch: "x86_64",
        os: "linux",
        mem_gib: 8.0,
    }
}

fn fab_ctx(rev: &str) -> RecordCtx {
    RecordCtx {
        git_rev: rev.into(),
        platform: fab_platform(),
        bw: Some(BandwidthProbe {
            triad_gbs: 20.0,
            gather_gbs: 2.0,
            working_set_bytes: 1 << 20,
            reps: 1,
        }),
        scale: 0.002,
        reps: 9,
        unix_time_s: 1_700_000_000,
    }
}

/// A tight sample cloud around `around_s` (±0.4 % spread).
fn fab_record(rev: &str, matrix: &str, around_s: f64) -> RunRecord {
    let samples: Vec<f64> = (0..9).map(|i| around_s * (1.0 + 0.001 * (i as f64 - 4.0))).collect();
    let spec = RunSpec {
        experiment: "sync".into(),
        matrix: matrix.into(),
        kernel: "fbmpk".into(),
        sync: Some("barrier".into()),
        threads: 2,
        k: Some(5),
        options_fp: 7,
        wait_frac: Some(0.1),
        ipc: None,
        modeled_matrix_bytes: Some(1_000_000_000),
        fallbacks: None,
        cut_edges: None,
        simd: None,
        blocking: None,
        watchdog_fires: None,
        traffic_vs_model: None,
        latency_p50_ms: None,
        latency_p99_ms: None,
        shed_count: None,
    };
    RunRecord::new(&fab_ctx(rev), spec, &samples).unwrap()
}

fn repro(db: &Path, args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .arg("--db")
        .arg(db)
        .env_remove("FBMPK_GATE_HARD")
        .output()
        .expect("spawn repro")
}

#[test]
fn gate_fails_on_fabricated_regression_and_passes_on_identical_rerun() {
    let dir = test_dir("gate");
    let db = PerfDb::new(dir.join("runs.jsonl"));
    // Baseline, then a 50 % regression on one config at rev "cur".
    db.append_all(&[
        fab_record("base", "poisson2d", 0.10),
        fab_record("base", "tri-band", 0.20),
        fab_record("cur", "poisson2d", 0.15),
        fab_record("cur", "tri-band", 0.20),
    ])
    .unwrap();

    let out = repro(db.path(), &["gate", "--baseline", "base", "--current", "cur"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!out.status.success(), "gate must exit nonzero on a regression:\n{stdout}");
    assert!(stdout.contains("REGRESSED"), "{stdout}");
    assert!(stdout.contains("FAIL"), "{stdout}");

    // --warn-only downgrades the same regression to exit 0.
    let out = repro(db.path(), &["gate", "--baseline", "base", "--current", "cur", "--warn-only"]);
    assert!(out.status.success(), "--warn-only must not fail the process");

    // An identical re-run (same numbers under a new rev) passes clean.
    db.append_all(&[fab_record("cur2", "poisson2d", 0.10), fab_record("cur2", "tri-band", 0.20)])
        .unwrap();
    let out = repro(db.path(), &["gate", "--baseline", "base", "--current", "cur2"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "identical re-run regressed?\n{stdout}");
    assert!(stdout.contains("PASS"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn gate_hard_env_overrides_warn_only() {
    let dir = test_dir("gate-hard");
    let db = PerfDb::new(dir.join("runs.jsonl"));
    db.append_all(&[fab_record("base", "m", 0.10), fab_record("cur", "m", 0.18)]).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["gate", "--baseline", "base", "--current", "cur", "--warn-only"])
        .arg("--db")
        .arg(db.path())
        .env("FBMPK_GATE_HARD", "1")
        .output()
        .expect("spawn repro");
    assert!(!out.status.success(), "FBMPK_GATE_HARD=1 must re-arm the hard gate");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn gate_without_baseline_data_passes_vacuously() {
    let dir = test_dir("gate-empty");
    let db = dir.join("runs.jsonl"); // never created
    let out = repro(&db, &["gate", "--baseline", "nope", "--current", "alsono"]);
    assert!(out.status.success(), "an empty store must not block");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn history_compare_and_report_subcommands_work() {
    let dir = test_dir("readers");
    let db = PerfDb::new(dir.join("runs.jsonl"));
    db.append_all(&[fab_record("r1", "poisson2d", 0.20), fab_record("r2", "poisson2d", 0.10)])
        .unwrap();

    let out = repro(db.path(), &["history"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("poisson2d"), "{stdout}");
    assert!(stdout.contains("r1") && stdout.contains("r2"), "{stdout}");

    let out = repro(db.path(), &["compare", "r1", "r2"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("2.0"), "expected ~2x speedup:\n{stdout}");

    let html_path = dir.join("perf.html");
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["report", "--out-html"])
        .arg(&html_path)
        .arg("--db")
        .arg(db.path())
        .output()
        .expect("spawn repro");
    assert!(out.status.success());
    let html = std::fs::read_to_string(&html_path).expect("report written");
    assert!(html.starts_with("<!DOCTYPE html>"));
    assert!(html.contains("<svg") && html.contains("</svg>"));
    assert!(!html.contains("<script"));
    assert_eq!(html.matches("<svg").count(), html.matches("</svg>").count());
    std::fs::remove_dir_all(&dir).ok();
}

/// The real pipeline: a tiny `fig7` run must append perfdb records
/// carrying platform fingerprint, git rev, raw samples, and the
/// roofline/bandwidth fields.
#[test]
fn tiny_experiment_run_appends_self_describing_records() {
    let dir = test_dir("e2e");
    let db_path = dir.join("runs.jsonl");
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["fig7", "--scale", "0.0005", "--reps", "2", "--threads", "2", "--seed", "1"])
        .arg("--out")
        .arg(dir.join("results"))
        .arg("--db")
        .arg(&db_path)
        .env("FBMPK_BW_BYTES", "2097152") // 2 MiB probe: speed over fidelity
        .env("FBMPK_GIT_REV", "e2e-test-rev")
        .output()
        .expect("spawn repro");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "fig7 run failed:\n{stderr}");

    let text = std::fs::read_to_string(&db_path).expect("db written");
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    // 14 suite matrices x 2 kernels.
    assert_eq!(lines.len(), 28, "one record per measured configuration");
    for line in &lines {
        let j = Json::parse(line).unwrap_or_else(|e| panic!("bad JSONL line: {e}\n{line}"));
        assert_eq!(j.get("git_rev").and_then(Json::as_str), Some("e2e-test-rev"));
        assert_eq!(j.get("experiment").and_then(Json::as_str), Some("fig7"));
        let fp = j.get("platform_fp").and_then(Json::as_str).expect("platform_fp");
        assert_eq!(fp.len(), 16);
        let samples = j.get("samples_s").and_then(Json::as_array).expect("samples_s");
        assert_eq!(samples.len(), 2);
        assert!(samples.iter().all(|s| s.as_f64().is_some_and(|v| v > 0.0)));
        assert!(j.get("median_s").and_then(Json::as_f64).is_some_and(|v| v > 0.0));
        // Bandwidth ceilings were probed, so both are recorded …
        assert!(j.get("triad_gbs").and_then(Json::as_f64).is_some_and(|v| v > 0.0));
        assert!(j.get("gather_gbs").and_then(Json::as_f64).is_some_and(|v| v > 0.0));
        // … and the roofline fields exist (null here: fig7 rows carry no
        // modeled-bytes anchor; sync/profile records populate them).
        assert!(j.get("roofline_frac").is_some());
        assert!(j.get("achieved_gbs").is_some());
    }
    // The store round-trips through the typed loader too.
    let load = PerfDb::new(&db_path).load().unwrap();
    assert_eq!(load.records.len(), 28);
    assert_eq!(load.skipped_lines, 0);
    std::fs::remove_dir_all(&dir).ok();
}
