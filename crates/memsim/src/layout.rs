//! Address-space layout for replayed kernels.
//!
//! Arrays are laid out consecutively, page-aligned, in a synthetic address
//! space; an [`ArrayRef`] turns an element index into the byte address the
//! hierarchy simulator sees.

/// Element width of an array in the synthetic address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Elem {
    /// 8-byte floats (`values`, vectors, `d`).
    F64,
    /// 4-byte column indices.
    U32,
    /// 8-byte row pointers.
    U64,
}

impl Elem {
    /// Width in bytes.
    pub fn bytes(self) -> usize {
        match self {
            Elem::F64 | Elem::U64 => 8,
            Elem::U32 => 4,
        }
    }
}

/// A placed array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayRef {
    base: u64,
    elem: Elem,
    len: usize,
}

impl ArrayRef {
    /// Byte address of element `i`.
    ///
    /// # Panics
    /// Panics (debug) when `i` is out of bounds.
    #[inline]
    pub fn addr(&self, i: usize) -> u64 {
        debug_assert!(i < self.len, "index {i} out of bounds ({})", self.len);
        self.base + (i * self.elem.bytes()) as u64
    }

    /// Element width in bytes.
    #[inline]
    pub fn elem_bytes(&self) -> usize {
        self.elem.bytes()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Bump allocator over the synthetic address space.
#[derive(Debug, Default)]
pub struct AddressMap {
    next: u64,
}

impl AddressMap {
    /// Fresh, empty address space.
    pub fn new() -> Self {
        AddressMap { next: 0 }
    }

    /// Places an array of `len` elements, 4 KiB-aligned (so distinct arrays
    /// never share a cache line, as with real page-aligned allocations).
    pub fn alloc(&mut self, elem: Elem, len: usize) -> ArrayRef {
        const ALIGN: u64 = 4096;
        let base = self.next.div_ceil(ALIGN) * ALIGN;
        self.next = base + (len * elem.bytes()) as u64;
        ArrayRef { base, elem, len }
    }

    /// Total span of the placed arrays.
    pub fn footprint(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrays_are_page_aligned_and_disjoint() {
        let mut m = AddressMap::new();
        let a = m.alloc(Elem::F64, 10);
        let b = m.alloc(Elem::U32, 100);
        assert_eq!(a.addr(0) % 4096, 0);
        assert_eq!(b.addr(0) % 4096, 0);
        assert!(b.addr(0) >= a.addr(9) + 8);
    }

    #[test]
    fn addressing_respects_element_width() {
        let mut m = AddressMap::new();
        let f = m.alloc(Elem::F64, 4);
        let i = m.alloc(Elem::U32, 4);
        assert_eq!(f.addr(2) - f.addr(0), 16);
        assert_eq!(i.addr(2) - i.addr(0), 8);
        assert_eq!(i.elem_bytes(), 4);
    }

    #[test]
    fn footprint_grows() {
        let mut m = AddressMap::new();
        assert_eq!(m.footprint(), 0);
        m.alloc(Elem::F64, 1000);
        assert!(m.footprint() >= 8000);
    }
}
