//! A set-associative write-back, write-allocate LRU cache model.
//!
//! Models one cache level at line granularity — enough fidelity for DRAM
//! traffic accounting (the quantity Fig. 9 measures), while staying fast
//! enough to replay hundreds of millions of accesses.

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
}

impl CacheConfig {
    /// A 32 MiB, 16-way, 64 B-line last-level cache — the ballpark of the
    /// evaluation platforms in Table I (TX2 32 MB, Xeon 35.75 MB, KP920
    /// 64 MB).
    pub fn llc_32m() -> Self {
        CacheConfig { size_bytes: 32 << 20, line_bytes: 64, assoc: 16 }
    }

    /// A 32 KiB, 8-way L1.
    pub fn l1_32k() -> Self {
        CacheConfig { size_bytes: 32 << 10, line_bytes: 64, assoc: 8 }
    }

    /// Number of sets.
    pub fn nsets(&self) -> usize {
        self.size_bytes / (self.line_bytes * self.assoc)
    }
}

/// Hit/miss/writeback counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed (lines fetched from the next level).
    pub misses: u64,
    /// Dirty lines evicted (written to the next level).
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; `0` when no accesses were made.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    dirty: bool,
    /// LRU timestamp (monotone per cache; u64 never wraps in practice).
    lru: u64,
    valid: bool,
}

/// One cache level.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>,
    clock: u64,
    stats: CacheStats,
    set_shift: u32,
    set_mask: u64,
}

/// Outcome of a cache access, for hierarchy plumbing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// The access missed and the line was fetched from below.
    pub miss: bool,
    /// A dirty victim line (by base address) was evicted.
    pub writeback: Option<u64>,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    /// Panics on non-power-of-two line size, zero associativity, or a size
    /// that is not a multiple of `line_bytes * assoc`.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(cfg.assoc > 0, "associativity must be positive");
        assert!(
            cfg.size_bytes.is_multiple_of(cfg.line_bytes * cfg.assoc) && cfg.nsets() > 0,
            "capacity must be a whole number of sets"
        );
        let nsets = cfg.nsets();
        assert!(nsets.is_power_of_two(), "set count must be a power of two");
        Cache {
            cfg,
            lines: vec![Line { tag: 0, dirty: false, lru: 0, valid: false }; nsets * cfg.assoc],
            clock: 0,
            stats: CacheStats::default(),
            set_shift: cfg.line_bytes.trailing_zeros(),
            set_mask: (nsets - 1) as u64,
        }
    }

    /// Geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Accesses the line containing `addr`. `write` marks the line dirty.
    pub fn access(&mut self, addr: u64, write: bool) -> AccessOutcome {
        self.clock += 1;
        let line_addr = addr >> self.set_shift;
        let set = (line_addr & self.set_mask) as usize;
        let tag = line_addr >> self.set_mask.count_ones();
        let base = set * self.cfg.assoc;
        let ways = &mut self.lines[base..base + self.cfg.assoc];
        // Hit?
        for w in ways.iter_mut() {
            if w.valid && w.tag == tag {
                w.lru = self.clock;
                w.dirty |= write;
                self.stats.hits += 1;
                return AccessOutcome { miss: false, writeback: None };
            }
        }
        // Miss: pick invalid way or LRU victim.
        self.stats.misses += 1;
        let victim = ways
            .iter_mut()
            .min_by_key(|w| if w.valid { w.lru + 1 } else { 0 })
            .expect("associativity > 0");
        let mut writeback = None;
        if victim.valid && victim.dirty {
            self.stats.writebacks += 1;
            let victim_line = (victim.tag << self.set_mask.count_ones()) | set as u64;
            writeback = Some(victim_line << self.set_shift);
        }
        *victim = Line { tag, dirty: write, lru: self.clock, valid: true };
        AccessOutcome { miss: true, writeback }
    }

    /// Flushes all dirty lines, returning how many writebacks occurred
    /// (end-of-run accounting so resident dirty data is not under-counted).
    pub fn flush(&mut self) -> u64 {
        self.flush_lines().len() as u64
    }

    /// Flushes all dirty lines and returns their base addresses (for
    /// traffic attribution of the final writeback burst).
    pub fn flush_lines(&mut self) -> Vec<u64> {
        let mut out = Vec::new();
        let tag_bits = self.set_mask.count_ones();
        let nsets = (self.set_mask + 1) as usize;
        for (idx, l) in self.lines.iter_mut().enumerate() {
            if l.valid && l.dirty {
                let set = (idx / self.cfg.assoc) % nsets;
                let line = (l.tag << tag_bits) | set as u64;
                out.push(line << self.set_shift);
                l.dirty = false;
            }
            l.valid = false;
        }
        self.stats.writebacks += out.len() as u64;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B = 512B.
        Cache::new(CacheConfig { size_bytes: 512, line_bytes: 64, assoc: 2 })
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = tiny();
        assert!(c.access(0x1000, false).miss);
        assert!(!c.access(0x1000, false).miss);
        assert!(!c.access(0x103F, false).miss); // same line
        assert!(c.access(0x1040, false).miss); // next line
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Three lines mapping to the same set (set stride = 4 lines = 256B).
        let (a, b, d) = (0x0000, 0x0100, 0x0200);
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // a is now MRU
        c.access(d, false); // evicts b (LRU)
        assert!(!c.access(a, false).miss, "a must survive");
        assert!(c.access(b, false).miss, "b must have been evicted");
    }

    #[test]
    fn writeback_on_dirty_eviction() {
        let mut c = tiny();
        c.access(0x0000, true); // dirty
        c.access(0x0100, false);
        let out = c.access(0x0200, false); // evicts dirty 0x0000
        assert_eq!(out.writeback, Some(0x0000));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_no_writeback() {
        let mut c = tiny();
        c.access(0x0000, false);
        c.access(0x0100, false);
        let out = c.access(0x0200, false);
        assert!(out.miss);
        assert_eq!(out.writeback, None);
    }

    #[test]
    fn flush_counts_resident_dirty_lines() {
        let mut c = tiny();
        // Three different sets: no capacity eviction before the flush.
        c.access(0x0000, true); // set 0, dirty
        c.access(0x0040, true); // set 1, dirty
        c.access(0x0080, false); // set 2, clean
        assert_eq!(c.flush(), 2);
        // After flush, everything misses again.
        assert!(c.access(0x0000, false).miss);
    }

    #[test]
    fn miss_ratio_computation() {
        let mut c = tiny();
        assert_eq!(c.stats().miss_ratio(), 0.0);
        c.access(0, false);
        c.access(0, false);
        assert_eq!(c.stats().miss_ratio(), 0.5);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_rejected() {
        Cache::new(CacheConfig { size_bytes: 512, line_bytes: 48, assoc: 2 });
    }
}
