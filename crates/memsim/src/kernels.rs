//! Traced MPK kernels: replay the exact address streams of the standard
//! and forward–backward pipelines through the cache hierarchy.
//!
//! These mirror `fbmpk::standard` and `fbmpk::kernel` access-for-access
//! (row pointers, index/value streams, vector gathers, result stores) but
//! perform no arithmetic — the structure alone determines DRAM traffic.
//! Replays are single-threaded, like the paper's per-socket LIKWID counts
//! (traffic is schedule-invariant for barrier-synchronized sweeps up to
//! boundary effects).

#![allow(clippy::needless_range_loop)] // replay loops index several parallel arrays by j/r

use crate::cache::CacheConfig;
use crate::hierarchy::{
    AccessLabel, Hierarchy, LabeledReport, SweepPhase, TrafficClass, TrafficReport,
};
use crate::layout::{AddressMap, ArrayRef, Elem};
use fbmpk_reorder::levels::bfs_level_schedule;
use fbmpk_sparse::{Csr, TriangularSplit};

/// Which vector layout the FBMPK replay models (paper §III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TracedLayout {
    /// Interleaved `xy[2n]` (back-to-back).
    #[default]
    BackToBack,
    /// Two separate iterate arrays.
    Split,
}

struct CsrRefs {
    ptr: ArrayRef,
    col: ArrayRef,
    val: ArrayRef,
}

fn place_csr(map: &mut AddressMap, m: &Csr) -> CsrRefs {
    CsrRefs {
        ptr: map.alloc(Elem::U64, m.nrows() + 1),
        col: map.alloc(Elem::U32, m.nnz()),
        val: map.alloc(Elem::F64, m.nnz()),
    }
}

/// Registers an array's span under a traffic class.
fn tag(h: &mut Hierarchy, a: &ArrayRef, class: TrafficClass) {
    if !a.is_empty() {
        h.register_region(a.addr(0), (a.len() * a.elem_bytes()) as u64, class);
    }
}

/// Registers all three CSR arrays as matrix traffic.
fn tag_csr(h: &mut Hierarchy, m: &CsrRefs) {
    tag(h, &m.ptr, TrafficClass::Matrix);
    tag(h, &m.col, TrafficClass::Matrix);
    tag(h, &m.val, TrafficClass::Matrix);
}

/// Attribution inputs for [`trace_fbmpk_attributed`].
#[derive(Debug, Clone, Copy)]
pub struct FbmpkTraceAttribution<'a> {
    /// Block row boundaries: block `b` covers rows
    /// `block_row_start[b]..block_row_start[b + 1]`; must start at 0 and
    /// end at `n`.
    pub block_row_start: &'a [usize],
    /// NUMA node of each of the pool workers' equal contiguous
    /// first-touch shares (worker `t` touches elements
    /// `[t·⌈len/T⌉, (t+1)·⌈len/T⌉)` of every array, `T =
    /// node_of_share.len()`). Empty disables the per-node split.
    pub node_of_share: &'a [u32],
}

/// Registers an array's pages per NUMA node under the pool's first-touch
/// share protocol: worker `t` zeroes an equal contiguous element share,
/// so under Linux first-touch those elements land on `t`'s node.
fn tag_nodes(h: &mut Hierarchy, a: &ArrayRef, node_of_share: &[u32]) {
    if a.is_empty() || node_of_share.is_empty() {
        return;
    }
    let nshares = node_of_share.len();
    let chunk = a.len().div_ceil(nshares);
    for (t, &node) in node_of_share.iter().enumerate() {
        let start = (t * chunk).min(a.len());
        let end = ((t + 1) * chunk).min(a.len());
        if start < end {
            h.register_node_range(a.addr(start), ((end - start) * a.elem_bytes()) as u64, node);
        }
    }
}

/// Replays `k` standard CSR SpMV invocations (`Aᵏx` via Algorithm 1) and
/// reports DRAM traffic.
///
/// # Panics
/// Panics when `k == 0` or `a` is not square.
pub fn trace_standard_mpk(a: &Csr, k: usize, configs: &[CacheConfig]) -> TrafficReport {
    assert!(k >= 1);
    assert_eq!(a.nrows(), a.ncols());
    let n = a.nrows();
    let mut map = AddressMap::new();
    let m = place_csr(&mut map, a);
    let x = map.alloc(Elem::F64, n);
    let y = map.alloc(Elem::F64, n);
    let mut h = Hierarchy::new(configs);
    tag_csr(&mut h, &m);
    tag(&mut h, &x, TrafficClass::Vector);
    tag(&mut h, &y, TrafficClass::Vector);
    let row_ptr = a.row_ptr();
    let col_idx = a.col_idx();
    for inv in 0..k {
        let (src, dst) = if inv % 2 == 0 { (&x, &y) } else { (&y, &x) };
        for r in 0..n {
            h.access(m.ptr.addr(r), 8, false);
            h.access(m.ptr.addr(r + 1), 8, false);
            for j in row_ptr[r]..row_ptr[r + 1] {
                h.access(m.col.addr(j), 4, false);
                h.access(m.val.addr(j), 8, false);
                h.access(src.addr(col_idx[j] as usize), 8, false);
            }
            h.access(dst.addr(r), 8, true);
        }
    }
    h.finish()
}

/// Replays the FBMPK pipeline (head + ⌊k/2⌋ forward/backward rounds +
/// odd-`k` tail) for the given vector layout and reports DRAM traffic.
///
/// ```
/// use fbmpk_memsim::{trace_fbmpk, trace_standard_mpk, CacheConfig, TracedLayout};
/// let a = fbmpk_gen::poisson::grid3d_27pt(8, 8, 8);
/// let llc = [CacheConfig { size_bytes: 64 << 10, line_bytes: 64, assoc: 8 }];
/// let std = trace_standard_mpk(&a, 6, &llc);
/// let fb = trace_fbmpk(&a, 6, TracedLayout::BackToBack, &llc);
/// // FBMPK moves less DRAM traffic than the standard pipeline.
/// assert!(fb.total() < std.total());
/// ```
///
/// # Panics
/// Panics when `k == 0` or `a` is not square.
pub fn trace_fbmpk(
    a: &Csr,
    k: usize,
    layout: TracedLayout,
    configs: &[CacheConfig],
) -> TrafficReport {
    assert!(k >= 1);
    let split = TriangularSplit::split(a).expect("square matrix");
    trace_fbmpk_split(&split, k, layout, configs)
}

/// Like [`trace_fbmpk`] but takes a precomputed split (so callers can reuse
/// the preprocessing across `k` values, as the plan API does).
pub fn trace_fbmpk_split(
    split: &TriangularSplit,
    k: usize,
    layout: TracedLayout,
    configs: &[CacheConfig],
) -> TrafficReport {
    trace_fbmpk_inner(split, k, layout, configs, None).report
}

/// [`trace_fbmpk_split`] with every access stamped with its
/// (block × power × phase) label and the address space carved into
/// per-NUMA-node ranges — the simulated attribution ledger. The access
/// stream is identical to the unlabeled replay, so the embedded
/// [`LabeledReport::report`] equals [`trace_fbmpk_split`]'s output
/// bit-for-bit, and the label/node maps sum to it exactly.
///
/// # Panics
/// Panics when `k == 0` or `attr.block_row_start` does not cover `0..n`.
pub fn trace_fbmpk_attributed(
    split: &TriangularSplit,
    k: usize,
    layout: TracedLayout,
    configs: &[CacheConfig],
    attr: &FbmpkTraceAttribution<'_>,
) -> LabeledReport {
    trace_fbmpk_inner(split, k, layout, configs, Some(attr))
}

fn trace_fbmpk_inner(
    split: &TriangularSplit,
    k: usize,
    layout: TracedLayout,
    configs: &[CacheConfig],
    attr: Option<&FbmpkTraceAttribution<'_>>,
) -> LabeledReport {
    assert!(k >= 1);
    let n = split.n();
    // Row → block lookup for the labeled replay (empty when unlabeled).
    let block_of_row: Vec<u32> = match attr {
        Some(a) => {
            let starts = a.block_row_start;
            assert!(starts.len() >= 2, "need at least one block");
            assert_eq!(starts[0], 0, "blocks must start at row 0");
            assert_eq!(*starts.last().expect("nonempty"), n, "blocks must cover all rows");
            (0..n).map(|r| (starts.partition_point(|&s| s <= r) - 1) as u32).collect()
        }
        None => Vec::new(),
    };
    let mut map = AddressMap::new();
    let l = place_csr(&mut map, &split.lower);
    let u = place_csr(&mut map, &split.upper);
    let d = map.alloc(Elem::F64, n.max(1));
    let tmp = map.alloc(Elem::F64, n.max(1));
    // Vector layout: one interleaved array or two separate ones.
    let (xy, xe, xo) = match layout {
        TracedLayout::BackToBack => {
            let xy = map.alloc(Elem::F64, 2 * n.max(1));
            (Some(xy), None, None)
        }
        TracedLayout::Split => {
            let xe = map.alloc(Elem::F64, n.max(1));
            let xo = map.alloc(Elem::F64, n.max(1));
            (None, Some(xe), Some(xo))
        }
    };
    let out = map.alloc(Elem::F64, n.max(1));
    let even_addr = |i: usize| match layout {
        TracedLayout::BackToBack => xy.unwrap().addr(2 * i),
        TracedLayout::Split => xe.unwrap().addr(i),
    };
    let odd_addr = |i: usize| match layout {
        TracedLayout::BackToBack => xy.unwrap().addr(2 * i + 1),
        TracedLayout::Split => xo.unwrap().addr(i),
    };

    let mut h = Hierarchy::new(configs);
    tag_csr(&mut h, &l);
    tag_csr(&mut h, &u);
    tag(&mut h, &d, TrafficClass::Matrix);
    tag(&mut h, &tmp, TrafficClass::Vector);
    match layout {
        TracedLayout::BackToBack => tag(&mut h, &xy.unwrap(), TrafficClass::Vector),
        TracedLayout::Split => {
            tag(&mut h, &xe.unwrap(), TrafficClass::Vector);
            tag(&mut h, &xo.unwrap(), TrafficClass::Vector);
        }
    }
    tag(&mut h, &out, TrafficClass::Vector);
    if let Some(a) = attr {
        for arr in [&l.ptr, &l.col, &l.val, &u.ptr, &u.col, &u.val, &d, &tmp, &out] {
            tag_nodes(&mut h, arr, a.node_of_share);
        }
        match layout {
            TracedLayout::BackToBack => tag_nodes(&mut h, &xy.unwrap(), a.node_of_share),
            TracedLayout::Split => {
                tag_nodes(&mut h, &xe.unwrap(), a.node_of_share);
                tag_nodes(&mut h, &xo.unwrap(), a.node_of_share);
            }
        }
    }
    let labeled = attr.is_some();
    let l_ptr = split.lower.row_ptr();
    let l_col = split.lower.col_idx();
    let u_ptr = split.upper.row_ptr();
    let u_col = split.upper.col_idx();

    // Head: tmp = U x0 (billed to power 1, like the modeled ledger).
    for r in 0..n {
        if labeled {
            h.set_label(AccessLabel { block: block_of_row[r], power: 1, phase: SweepPhase::Head });
        }
        h.access(u.ptr.addr(r), 8, false);
        h.access(u.ptr.addr(r + 1), 8, false);
        for j in u_ptr[r]..u_ptr[r + 1] {
            h.access(u.col.addr(j), 4, false);
            h.access(u.val.addr(j), 8, false);
            h.access(even_addr(u_col[j] as usize), 8, false);
        }
        h.access(tmp.addr(r), 8, true);
    }
    let rounds = k / 2;
    for p in 0..rounds {
        // Forward over L (completes x_{2p+1}).
        for r in 0..n {
            if labeled {
                h.set_label(AccessLabel {
                    block: block_of_row[r],
                    power: (2 * p + 1) as u32,
                    phase: SweepPhase::Forward,
                });
            }
            h.access(tmp.addr(r), 8, false);
            h.access(d.addr(r), 8, false);
            h.access(even_addr(r), 8, false);
            h.access(l.ptr.addr(r), 8, false);
            h.access(l.ptr.addr(r + 1), 8, false);
            for j in l_ptr[r]..l_ptr[r + 1] {
                h.access(l.col.addr(j), 4, false);
                h.access(l.val.addr(j), 8, false);
                h.access(even_addr(l_col[j] as usize), 8, false);
                h.access(odd_addr(l_col[j] as usize), 8, false);
            }
            h.access(odd_addr(r), 8, true);
            h.access(tmp.addr(r), 8, true);
        }
        // Backward over U (completes x_{2p+2}).
        for r in (0..n).rev() {
            if labeled {
                h.set_label(AccessLabel {
                    block: block_of_row[r],
                    power: (2 * p + 2) as u32,
                    phase: SweepPhase::Backward,
                });
            }
            h.access(tmp.addr(r), 8, false);
            h.access(u.ptr.addr(r), 8, false);
            h.access(u.ptr.addr(r + 1), 8, false);
            for j in u_ptr[r]..u_ptr[r + 1] {
                h.access(u.col.addr(j), 4, false);
                h.access(u.val.addr(j), 8, false);
                h.access(odd_addr(u_col[j] as usize), 8, false);
                h.access(even_addr(u_col[j] as usize), 8, false);
            }
            h.access(even_addr(r), 8, true);
            h.access(tmp.addr(r), 8, true);
        }
    }
    if k % 2 == 1 {
        // Tail: out = tmp + D x_{k-1} + L x_{k-1} (completes x_k).
        for r in 0..n {
            if labeled {
                h.set_label(AccessLabel {
                    block: block_of_row[r],
                    power: k as u32,
                    phase: SweepPhase::Tail,
                });
            }
            h.access(tmp.addr(r), 8, false);
            h.access(d.addr(r), 8, false);
            h.access(even_addr(r), 8, false);
            h.access(l.ptr.addr(r), 8, false);
            h.access(l.ptr.addr(r + 1), 8, false);
            for j in l_ptr[r]..l_ptr[r + 1] {
                h.access(l.col.addr(j), 4, false);
                h.access(l.val.addr(j), 8, false);
                h.access(even_addr(l_col[j] as usize), 8, false);
            }
            h.access(out.addr(r), 8, true);
        }
    }
    h.finish_labeled()
}

/// Replays the level-blocked wavefront schedule for `Aᵏx` (the cache
/// blocking in `fbmpk::levelblock`): BFS shells of the symmetrized
/// pattern advance `tile_powers` powers per stage through a ring of
/// `tile_powers + 1` iterate buffers. When `tile_powers` consecutive
/// shells fit the cache, each stage's matrix re-reads hit cache and the
/// matrix streams from DRAM only `⌈k / tile_powers⌉` times, versus `k`
/// for [`trace_standard_mpk`] and `⌈(k+1)/2⌉` for [`trace_fbmpk`].
///
/// # Panics
/// Panics when `k == 0`, `tile_powers == 0`, or `a` is not square.
pub fn trace_level_blocked(
    a: &Csr,
    k: usize,
    tile_powers: usize,
    configs: &[CacheConfig],
) -> TrafficReport {
    assert!(k >= 1);
    assert!(tile_powers >= 1);
    assert_eq!(a.nrows(), a.ncols());
    let n = a.nrows();
    let shells = bfs_level_schedule(a);
    let nlevels = shells.nlevels();
    let kb = tile_powers.min(k);
    let nb = kb + 1;
    let mut map = AddressMap::new();
    let m = place_csr(&mut map, a);
    let bufs: Vec<ArrayRef> = (0..nb).map(|_| map.alloc(Elem::F64, n.max(1))).collect();
    let mut h = Hierarchy::new(configs);
    tag_csr(&mut h, &m);
    for b in &bufs {
        tag(&mut h, b, TrafficClass::Vector);
    }
    let row_ptr = a.row_ptr();
    let col_idx = a.col_idx();
    let mut base = 0usize;
    while base < k {
        let kb_eff = kb.min(k - base);
        // Wavefront over (power offset q, shell j): substep (q, j) runs at
        // step s = q + j - 1, ascending q within a step — identical
        // iteration space to `LevelBlockPlan::run_probed`.
        for s in 0..(nlevels + kb_eff).saturating_sub(1) {
            for q in 1..=kb_eff {
                let Some(j) = (s + 1).checked_sub(q) else { continue };
                if j >= nlevels {
                    continue;
                }
                let p = base + q;
                let src = &bufs[(p - 1) % nb];
                let dst = &bufs[p % nb];
                for &r in shells.level_rows(j) {
                    let r = r as usize;
                    h.access(m.ptr.addr(r), 8, false);
                    h.access(m.ptr.addr(r + 1), 8, false);
                    for e in row_ptr[r]..row_ptr[r + 1] {
                        h.access(m.col.addr(e), 4, false);
                        h.access(m.val.addr(e), 8, false);
                        h.access(src.addr(col_idx[e] as usize), 8, false);
                    }
                    h.access(dst.addr(r), 8, true);
                }
            }
        }
        base += kb_eff;
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A cache far smaller than the matrix but large enough for the live
    /// vectors: the streaming regime where the paper's (k+1)/2k argument
    /// applies (matrix re-reads hit DRAM, stencil-local gathers hit cache).
    fn small_llc() -> Vec<CacheConfig> {
        vec![CacheConfig { size_bytes: 256 << 10, line_bytes: 64, assoc: 8 }]
    }

    /// A cache that holds everything: only compulsory misses remain.
    fn huge_llc() -> Vec<CacheConfig> {
        vec![CacheConfig { size_bytes: 256 << 20, line_bytes: 64, assoc: 16 }]
    }

    /// 27-point stencil, dense enough (27 nnz/row) that matrix traffic
    /// dominates. Footprint ~1.3 MB >> 256 KiB cache; vectors (32 KiB)
    /// stay resident.
    fn grid() -> Csr {
        fbmpk_gen::poisson::grid3d_27pt(16, 16, 16)
    }

    #[test]
    fn fbmpk_reduces_streaming_traffic_toward_ideal() {
        let a = grid();
        for k in [3usize, 6, 9] {
            let std = trace_standard_mpk(&a, k, &small_llc());
            let fb = trace_fbmpk(&a, k, TracedLayout::BackToBack, &small_llc());
            let ratio = fb.total() as f64 / std.total() as f64;
            let ideal = (k + 1) as f64 / (2 * k) as f64;
            // The measured ratio sits above the matrix-only ideal (vector
            // and row_ptr overheads — exactly what Fig. 9 reports) but well
            // below 1.
            assert!(
                ratio > ideal - 0.02 && ratio < 0.95,
                "k={k}: ratio {ratio:.3} vs ideal {ideal:.3}"
            );
        }
    }

    #[test]
    fn ratio_improves_with_k() {
        let a = grid();
        let r3 = {
            let s = trace_standard_mpk(&a, 3, &small_llc());
            let f = trace_fbmpk(&a, 3, TracedLayout::BackToBack, &small_llc());
            f.total() as f64 / s.total() as f64
        };
        let r9 = {
            let s = trace_standard_mpk(&a, 9, &small_llc());
            let f = trace_fbmpk(&a, 9, TracedLayout::BackToBack, &small_llc());
            f.total() as f64 / s.total() as f64
        };
        assert!(r9 < r3, "k=9 ratio {r9:.3} must beat k=3 ratio {r3:.3}");
    }

    #[test]
    fn btb_wins_when_gathers_miss_cache() {
        // BtB pays stride-2 on even-only streams but halves the line count
        // of the paired even/odd gathers in the merged loops. It wins
        // exactly when those gathers miss: a wide random band whose x
        // window (±bw*8 bytes) exceeds the cache. This is the FT 2000+
        // regime where the paper sees BtB's largest gains (§V-D: small
        // caches, no L3).
        let a = fbmpk_gen::banded::banded_symmetric(fbmpk_gen::banded::BandedParams {
            n: 20_000,
            nnz_per_row: 35.0,
            bandwidth: 8_000,
            seed: 3,
        });
        let cache = vec![CacheConfig { size_bytes: 64 << 10, line_bytes: 64, assoc: 8 }];
        let btb = trace_fbmpk(&a, 5, TracedLayout::BackToBack, &cache);
        let split = trace_fbmpk(&a, 5, TracedLayout::Split, &cache);
        assert!(btb.total() < split.total(), "btb {} vs split {}", btb.total(), split.total());
        // Logical traffic is identical; only cache behavior differs.
        assert_eq!(btb.logical_bytes, split.logical_bytes);
    }

    #[test]
    fn btb_and_split_equal_when_vectors_fit() {
        // With all vectors resident, layout cannot change DRAM traffic
        // beyond boundary-line noise.
        let a = grid();
        let btb = trace_fbmpk(&a, 4, TracedLayout::BackToBack, &huge_llc());
        let split = trace_fbmpk(&a, 4, TracedLayout::Split, &huge_llc());
        let diff = (btb.total() as f64 - split.total() as f64).abs();
        assert!(diff / (split.total() as f64) < 0.02, "btb {btb:?} split {split:?}");
    }

    #[test]
    fn infinite_cache_costs_compulsory_traffic_only() {
        let a = grid();
        let k = 6;
        let std1 = trace_standard_mpk(&a, k, &huge_llc());
        // Matrix footprint read once + vectors; repeating k never refetches.
        let matrix_bytes = (a.nnz() * 12 + (a.nrows() + 1) * 8) as u64;
        assert!(std1.dram_read_bytes < matrix_bytes + 64 * 1024 + 2 * 8 * a.nrows() as u64);
        let fb = trace_fbmpk(&a, k, TracedLayout::BackToBack, &huge_llc());
        // FBMPK reads at most the same footprint (split arrays + vectors).
        assert!(fb.dram_read_bytes <= std1.dram_read_bytes + 64 * 1024);
    }

    #[test]
    fn standard_traffic_scales_linearly_in_k_when_streaming() {
        let a = grid();
        let t3 = trace_standard_mpk(&a, 3, &small_llc()).total();
        let t6 = trace_standard_mpk(&a, 6, &small_llc()).total();
        let ratio = t6 as f64 / t3 as f64;
        assert!((ratio - 2.0).abs() < 0.05, "k=6/k=3 traffic ratio {ratio}");
    }

    #[test]
    fn level_blocked_beats_streaming_on_27pt_suite_input() {
        // Elongated 3D bar: BFS shells plateau at 8x8 = 64 rows, so a few
        // consecutive shells (matrix window plus ring-buffer slots) fit
        // comfortably in the 256 KiB LLC while the whole matrix (~2.7 MB)
        // does not — the regime where advancing each tile through several
        // powers converts DRAM matrix re-reads into cache hits.
        let a = fbmpk_gen::poisson::grid3d_27pt(8, 8, 128);
        for k in [4usize, 6, 8] {
            let streaming = trace_standard_mpk(&a, k, &small_llc());
            let blocked = trace_level_blocked(&a, k, 4, &small_llc());
            assert!(
                blocked.dram_read_bytes < streaming.dram_read_bytes,
                "k={k}: blocked {} must read less DRAM than streaming {}",
                blocked.dram_read_bytes,
                streaming.dram_read_bytes
            );
        }
    }

    #[test]
    fn level_blocked_read_traffic_tracks_stage_count() {
        // The model: matrix DRAM reads scale with ceil(k / kb) stages, not
        // with k. Doubling the band at fixed k should therefore cut matrix
        // read traffic roughly in half (k=8: 4 stages -> 2).
        let a = fbmpk_gen::poisson::grid3d_27pt(8, 8, 128);
        let kb2 = trace_level_blocked(&a, 8, 2, &small_llc());
        let kb4 = trace_level_blocked(&a, 8, 4, &small_llc());
        let ratio = kb4.matrix_bytes as f64 / kb2.matrix_bytes as f64;
        assert!(
            (0.4..0.7).contains(&ratio),
            "kb=4/kb=2 matrix-read ratio {ratio:.3}, expected ~0.5"
        );
        // And deep blocking beats the FBMPK sweeps' ceil((k+1)/2) reads.
        let fb = trace_fbmpk(&a, 8, TracedLayout::BackToBack, &small_llc());
        assert!(
            kb4.dram_read_bytes < fb.dram_read_bytes,
            "blocked {} vs fbmpk {}",
            kb4.dram_read_bytes,
            fb.dram_read_bytes
        );
    }

    #[test]
    fn level_blocked_degenerates_to_streaming_at_band_one() {
        // kb=1 is plain power iteration in shell order: same logical
        // traffic as the standard kernel, so totals must be close (the
        // shell traversal differs from row order only in line boundary
        // effects and ring-buffer aliasing).
        let a = fbmpk_gen::poisson::grid3d_27pt(8, 8, 32);
        let streaming = trace_standard_mpk(&a, 4, &small_llc());
        let blocked = trace_level_blocked(&a, 4, 1, &small_llc());
        let ratio = blocked.total() as f64 / streaming.total() as f64;
        assert!((0.85..1.15).contains(&ratio), "kb=1 ratio {ratio:.3} should be ~1");
    }

    #[test]
    fn sparser_matrix_has_higher_fb_ratio() {
        // §V-C: G3_circuit-like inputs benefit least because vector traffic
        // dominates.
        let dense = fbmpk_gen::blockfem::block_fem(fbmpk_gen::blockfem::BlockFemParams {
            n: 1500,
            block: 3,
            neighbors: 27,
            symmetric: true,
            seed: 1,
        });
        let sparse = fbmpk_gen::circuit::circuit_like(fbmpk_gen::circuit::CircuitParams {
            n: 1500,
            nnz_per_row: 4.8,
            long_range_frac: 0.15,
            seed: 1,
        });
        let k = 9;
        let r = |m: &Csr| {
            let s = trace_standard_mpk(m, k, &small_llc());
            let f = trace_fbmpk(m, k, TracedLayout::BackToBack, &small_llc());
            f.total() as f64 / s.total() as f64
        };
        assert!(r(&sparse) > r(&dense), "sparse {} dense {}", r(&sparse), r(&dense));
    }
}

#[cfg(test)]
mod attribution_tests {
    use super::*;

    fn llc() -> Vec<CacheConfig> {
        vec![CacheConfig { size_bytes: 256 << 10, line_bytes: 64, assoc: 8 }]
    }

    #[test]
    fn classified_traffic_accounts_for_everything() {
        let a = fbmpk_gen::poisson::grid3d_27pt(12, 12, 12);
        let r = trace_standard_mpk(&a, 4, &llc());
        // Every DRAM byte hits a registered region.
        assert_eq!(r.matrix_bytes + r.vector_bytes, r.total());
        assert!(r.matrix_bytes > 0 && r.vector_bytes > 0);
    }

    #[test]
    fn sparse_matrices_are_vector_dominated() {
        // The quantitative core of SV-C: for G3_circuit-class inputs the
        // vector share of DRAM traffic is large; for block-FEM inputs the
        // matrix share dominates.
        let dense = fbmpk_gen::blockfem::block_fem(fbmpk_gen::blockfem::BlockFemParams {
            n: 6000,
            block: 3,
            neighbors: 27,
            symmetric: true,
            seed: 1,
        });
        let sparse = fbmpk_gen::circuit::circuit_like(fbmpk_gen::circuit::CircuitParams {
            n: 18_000,
            nnz_per_row: 4.8,
            long_range_frac: 0.15,
            seed: 1,
        });
        let k = 6;
        let fd = trace_fbmpk(&dense, k, TracedLayout::BackToBack, &llc());
        let fs = trace_fbmpk(&sparse, k, TracedLayout::BackToBack, &llc());
        assert!(
            fs.vector_fraction() > 2.0 * fd.vector_fraction(),
            "sparse {:.2} vs dense {:.2}",
            fs.vector_fraction(),
            fd.vector_fraction()
        );
        assert!(fd.vector_fraction() < 0.25, "dense input must be matrix-bound");
    }

    #[test]
    fn attributed_trace_is_bit_identical_and_conserves() {
        let a = fbmpk_gen::poisson::grid3d_27pt(10, 10, 10);
        let split = TriangularSplit::split(&a).expect("square");
        let n = split.n();
        let starts = vec![0, n / 4, n / 2, 3 * n / 4, n];
        let nodes = vec![0u32, 0, 1, 1];
        for k in [1usize, 4, 5] {
            for layout in [TracedLayout::BackToBack, TracedLayout::Split] {
                let plain = trace_fbmpk_split(&split, k, layout, &llc());
                let attr =
                    FbmpkTraceAttribution { block_row_start: &starts, node_of_share: &nodes };
                let lr = trace_fbmpk_attributed(&split, k, layout, &llc(), &attr);
                // Same access stream → identical whole-run report.
                assert_eq!(lr.report, plain, "k={k} layout={layout:?}");
                // Per-label DRAM bytes sum to the totals exactly.
                let label_read: u64 = lr.labels.values().map(|t| t.dram_read_bytes).sum();
                let label_write: u64 = lr.labels.values().map(|t| t.dram_write_bytes).sum();
                assert_eq!(label_read, lr.report.dram_read_bytes);
                assert_eq!(label_write, lr.report.dram_write_bytes);
                // Per-node DRAM bytes sum to the totals exactly.
                let node_total: u64 = lr.nodes.values().map(|t| t.dram_total()).sum();
                assert_eq!(node_total, lr.report.total());
                // Every power 1..=k appears; no label leaks past k or
                // names an out-of-range block.
                for label in lr.labels.keys() {
                    if *label == AccessLabel::UNLABELED {
                        continue;
                    }
                    assert!(label.power >= 1 && label.power <= k as u32, "{label:?}");
                    assert!((label.block as usize) < starts.len() - 1, "{label:?}");
                }
                for p in 1..=k as u32 {
                    assert!(lr.labels.keys().any(|l| l.power == p), "power {p} missing at k={k}");
                }
            }
        }
    }

    #[test]
    fn fbmpk_reduces_matrix_traffic_not_vector_traffic() {
        // The mechanism behind Fig. 9: FBMPK's savings are entirely on the
        // matrix side; vector traffic does not shrink.
        let a = fbmpk_gen::poisson::grid3d_27pt(14, 14, 14);
        let k = 8;
        let std = trace_standard_mpk(&a, k, &llc());
        let fb = trace_fbmpk(&a, k, TracedLayout::BackToBack, &llc());
        assert!(
            (fb.matrix_bytes as f64) < 0.7 * std.matrix_bytes as f64,
            "matrix {} vs {}",
            fb.matrix_bytes,
            std.matrix_bytes
        );
        assert!(fb.vector_bytes >= std.vector_bytes / 2, "vector traffic should not collapse");
    }
}
