//! # fbmpk-memsim
//!
//! A memory-hierarchy simulator and traced MPK kernels — the substitute for
//! the LIKWID DRAM counters the paper uses in §V-C (Fig. 9).
//!
//! The paper measures "total amount of data read and write from DRAM"
//! while running the standard MPK (MKL) and FBMPK. We reproduce the
//! *measurement* rather than the wall clock: [`kernels`] replays the exact
//! address streams of both kernels (row pointers, column indices, values,
//! vector gathers, result stores) through a configurable set-associative
//! write-back/write-allocate LRU cache hierarchy ([`cache`], [`hierarchy`])
//! and reports the bytes that cross the last-level cache to memory.
//!
//! This captures the two effects §V-C discusses:
//! * FBMPK's ~`(k+1)/2k` reduction in matrix traffic, and
//! * the vector-traffic floor that keeps very sparse matrices (G3_circuit)
//!   from reaching the ideal ratio.

pub mod cache;
pub mod hierarchy;
pub mod kernels;
pub mod layout;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use hierarchy::{
    AccessLabel, Hierarchy, LabelTraffic, LabeledReport, NodeTraffic, SweepPhase, TrafficReport,
    NODE_UNKNOWN,
};
pub use kernels::{
    trace_fbmpk, trace_fbmpk_attributed, trace_fbmpk_split, trace_level_blocked,
    trace_standard_mpk, FbmpkTraceAttribution, TracedLayout,
};
