//! A multi-level cache hierarchy with DRAM traffic accounting.
//!
//! Levels are inclusive-ish and checked outer-to-inner (L1 first); a miss
//! at the last level costs one line of DRAM read, and a dirty eviction
//! from the last level costs one line of DRAM write — exactly the
//! read/write volumes the paper's LIKWID measurement reports.

use crate::cache::{Cache, CacheConfig};

/// Classification of an address range for traffic attribution — §V-C of
/// the paper explains Fig. 9's per-matrix variation by the balance of
/// matrix vs vector traffic; tagging regions makes that balance a
/// measured output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrafficClass {
    /// Matrix arrays (row pointers, column indices, values, diagonal).
    #[default]
    Matrix,
    /// Dense vector arrays (iterates, tmp, outputs).
    Vector,
}

/// DRAM traffic observed by a replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficReport {
    /// Bytes fetched from DRAM (LLC miss fills).
    pub dram_read_bytes: u64,
    /// Bytes written to DRAM (LLC dirty writebacks, including final flush).
    pub dram_write_bytes: u64,
    /// Logical bytes the kernel requested (no cache filtering) — the
    /// model's upper bound for traffic.
    pub logical_bytes: u64,
    /// DRAM bytes (read + write) attributed to matrix arrays.
    pub matrix_bytes: u64,
    /// DRAM bytes (read + write) attributed to vector arrays.
    pub vector_bytes: u64,
}

impl TrafficReport {
    /// Total DRAM bytes moved.
    pub fn total(&self) -> u64 {
        self.dram_read_bytes + self.dram_write_bytes
    }

    /// Fraction of DRAM traffic attributed to vector arrays (0 when no
    /// traffic was classified).
    pub fn vector_fraction(&self) -> f64 {
        let classified = self.matrix_bytes + self.vector_bytes;
        if classified == 0 {
            0.0
        } else {
            self.vector_bytes as f64 / classified as f64
        }
    }
}

/// A stack of cache levels in front of DRAM.
pub struct Hierarchy {
    levels: Vec<Cache>,
    report: TrafficReport,
    /// Sorted, disjoint `(base, end, class)` ranges for attribution.
    regions: Vec<(u64, u64, TrafficClass)>,
}

impl Hierarchy {
    /// Builds a hierarchy from outermost-first configs (L1 first, LLC
    /// last).
    ///
    /// # Panics
    /// Panics when `configs` is empty.
    pub fn new(configs: &[CacheConfig]) -> Self {
        assert!(!configs.is_empty(), "need at least one cache level");
        Hierarchy {
            levels: configs.iter().map(|&c| Cache::new(c)).collect(),
            report: TrafficReport::default(),
            regions: Vec::new(),
        }
    }

    /// Registers an address range for traffic attribution. Ranges must not
    /// overlap previously registered ones.
    pub fn register_region(&mut self, base: u64, bytes: u64, class: TrafficClass) {
        let end = base + bytes;
        debug_assert!(
            self.regions.iter().all(|&(b, e, _)| end <= b || e <= base),
            "overlapping traffic regions"
        );
        self.regions.push((base, end, class));
        self.regions.sort_unstable_by_key(|&(b, _, _)| b);
    }

    /// Classifies an address against the registered regions.
    fn classify(&self, addr: u64) -> Option<TrafficClass> {
        let idx = self.regions.partition_point(|&(b, _, _)| b <= addr);
        if idx == 0 {
            return None;
        }
        let (b, e, class) = self.regions[idx - 1];
        (addr >= b && addr < e).then_some(class)
    }

    /// Records a DRAM transfer of `bytes` at `line_addr` in the per-class
    /// counters.
    fn attribute(&mut self, line_addr: u64, bytes: u64) {
        match self.classify(line_addr) {
            Some(TrafficClass::Matrix) => self.report.matrix_bytes += bytes,
            Some(TrafficClass::Vector) => self.report.vector_bytes += bytes,
            None => {}
        }
    }

    /// A single-LLC hierarchy — the default for Fig. 9 replays, where only
    /// the DRAM boundary matters.
    pub fn llc_only(cfg: CacheConfig) -> Self {
        Hierarchy::new(&[cfg])
    }

    /// A two-level L1 + LLC hierarchy.
    pub fn l1_llc() -> Self {
        Hierarchy::new(&[CacheConfig::l1_32k(), CacheConfig::llc_32m()])
    }

    /// Line size of the DRAM-facing level.
    pub fn dram_line_bytes(&self) -> u64 {
        self.levels.last().expect("nonempty").config().line_bytes as u64
    }

    /// Performs one logical access of `bytes` bytes at `addr`, touching
    /// every line the range covers.
    pub fn access(&mut self, addr: u64, bytes: usize, write: bool) {
        if bytes == 0 {
            return;
        }
        self.report.logical_bytes += bytes as u64;
        let line = self.levels.last().expect("nonempty").config().line_bytes as u64;
        let first = addr / line;
        let last = (addr + bytes as u64 - 1) / line;
        for l in first..=last {
            self.access_line(l * line, write);
        }
    }

    fn access_line(&mut self, line_addr: u64, write: bool) {
        let nlevels = self.levels.len();
        let mut pending_writebacks: Vec<(usize, u64)> = Vec::new();
        let mut level = 0;
        loop {
            // Write-back: the store dirties only the outermost level; the
            // copies filled into deeper levels stay clean until an inner
            // writeback reaches them.
            let out = self.levels[level].access(line_addr, write && level == 0);
            if let Some(victim) = out.writeback {
                pending_writebacks.push((level, victim));
            }
            if !out.miss {
                break;
            }
            if level + 1 == nlevels {
                // Last-level miss: fetch from DRAM.
                let lb = self.levels[level].config().line_bytes as u64;
                self.report.dram_read_bytes += lb;
                self.attribute(line_addr, lb);
                break;
            }
            level += 1;
        }
        // Propagate dirty victims: a writeback from level i is a write
        // access at level i+1; from the last level it is a DRAM write.
        while let Some((lvl, victim)) = pending_writebacks.pop() {
            if lvl + 1 == nlevels {
                let lb = self.levels[lvl].config().line_bytes as u64;
                self.report.dram_write_bytes += lb;
                self.attribute(victim, lb);
            } else {
                let out = self.levels[lvl + 1].access(victim, true);
                if let Some(v2) = out.writeback {
                    pending_writebacks.push((lvl + 1, v2));
                }
                if out.miss && lvl + 2 == nlevels {
                    // Write-allocate fill for the victim at the last level.
                    let lb = self.levels[lvl + 1].config().line_bytes as u64;
                    self.report.dram_read_bytes += lb;
                    self.attribute(victim, lb);
                }
            }
        }
    }

    /// Flushes all levels (inner dirty lines count as DRAM writes through
    /// the last level) and returns the final report.
    pub fn finish(mut self) -> TrafficReport {
        // Dirty data can reside at any level; at finish we attribute every
        // distinct dirty line one DRAM write. Flushing outer levels into
        // the next level would double-count lines dirty in both, so we
        // simply count each level's resident dirty lines: disciplined
        // kernels write each output line at one level anyway.
        let nlevels = self.levels.len();
        // Count each distinct dirty line once: a line dirty in several
        // levels still costs a single eventual DRAM writeback.
        let mut seen = std::collections::HashSet::new();
        for i in 0..nlevels {
            let lb = self.levels[i].config().line_bytes as u64;
            for line in self.levels[i].flush_lines() {
                if seen.insert(line) {
                    self.report.dram_write_bytes += lb;
                    self.attribute(line, lb);
                }
            }
        }
        self.report
    }

    /// The running report (before final flush).
    pub fn report(&self) -> TrafficReport {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_llc() -> Hierarchy {
        Hierarchy::llc_only(CacheConfig { size_bytes: 1024, line_bytes: 64, assoc: 2 })
    }

    #[test]
    fn cold_sequential_reads_cost_footprint() {
        let mut h = small_llc();
        // Stream 4 KiB sequentially: every line missed once.
        for i in 0..512 {
            h.access(i * 8, 8, false);
        }
        let r = h.finish();
        assert_eq!(r.dram_read_bytes, 4096);
        assert_eq!(r.dram_write_bytes, 0);
        assert_eq!(r.logical_bytes, 4096);
    }

    #[test]
    fn warm_rereads_are_free_within_capacity() {
        let mut h = small_llc();
        for _ in 0..10 {
            for i in 0..64 {
                h.access(i * 8, 8, false); // 512 B working set < 1 KiB
            }
        }
        let r = h.finish();
        assert_eq!(r.dram_read_bytes, 512);
        assert_eq!(r.logical_bytes, 10 * 512);
    }

    #[test]
    fn writes_flush_to_dram() {
        let mut h = small_llc();
        for i in 0..64 {
            h.access(i * 8, 8, true);
        }
        let r = h.finish();
        assert_eq!(r.dram_read_bytes, 512); // write-allocate fills
        assert_eq!(r.dram_write_bytes, 512); // final flush
    }

    #[test]
    fn capacity_thrashing_rereads_pay() {
        let mut h = small_llc(); // 1 KiB capacity
        for _ in 0..3 {
            for i in 0..512 {
                h.access(i * 8, 8, false); // 4 KiB stream > capacity
            }
        }
        let r = h.finish();
        assert_eq!(r.dram_read_bytes, 3 * 4096);
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        let mut h = small_llc();
        h.access(60, 8, false); // crosses the 64-byte boundary
        let r = h.finish();
        assert_eq!(r.dram_read_bytes, 128);
    }

    #[test]
    fn two_level_hierarchy_filters_through_l1() {
        let mut h = Hierarchy::new(&[
            CacheConfig { size_bytes: 256, line_bytes: 64, assoc: 2 },
            CacheConfig { size_bytes: 1024, line_bytes: 64, assoc: 2 },
        ]);
        // Working set: 512 B — fits LLC, not L1.
        for _ in 0..5 {
            for i in 0..64 {
                h.access(i * 8, 8, false);
            }
        }
        let r = h.finish();
        // Only the first pass misses in the LLC.
        assert_eq!(r.dram_read_bytes, 512);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_hierarchy_rejected() {
        Hierarchy::new(&[]);
    }
}
