//! A multi-level cache hierarchy with DRAM traffic accounting.
//!
//! Levels are inclusive-ish and checked outer-to-inner (L1 first); a miss
//! at the last level costs one line of DRAM read, and a dirty eviction
//! from the last level costs one line of DRAM write — exactly the
//! read/write volumes the paper's LIKWID measurement reports.

use crate::cache::{Cache, CacheConfig};

/// Classification of an address range for traffic attribution — §V-C of
/// the paper explains Fig. 9's per-matrix variation by the balance of
/// matrix vs vector traffic; tagging regions makes that balance a
/// measured output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrafficClass {
    /// Matrix arrays (row pointers, column indices, values, diagonal).
    #[default]
    Matrix,
    /// Dense vector arrays (iterates, tmp, outputs).
    Vector,
}

/// DRAM traffic observed by a replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficReport {
    /// Bytes fetched from DRAM (LLC miss fills).
    pub dram_read_bytes: u64,
    /// Bytes written to DRAM (LLC dirty writebacks, including final flush).
    pub dram_write_bytes: u64,
    /// Logical bytes the kernel requested (no cache filtering) — the
    /// model's upper bound for traffic.
    pub logical_bytes: u64,
    /// DRAM bytes (read + write) attributed to matrix arrays.
    pub matrix_bytes: u64,
    /// DRAM bytes (read + write) attributed to vector arrays.
    pub vector_bytes: u64,
}

impl TrafficReport {
    /// Total DRAM bytes moved.
    pub fn total(&self) -> u64 {
        self.dram_read_bytes + self.dram_write_bytes
    }

    /// Fraction of DRAM traffic attributed to vector arrays (0 when no
    /// traffic was classified).
    pub fn vector_fraction(&self) -> f64 {
        let classified = self.matrix_bytes + self.vector_bytes;
        if classified == 0 {
            0.0
        } else {
            self.vector_bytes as f64 / classified as f64
        }
    }
}

/// The sweep phase an access executes under — one axis of the simulated
/// attribution ledger's label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum SweepPhase {
    /// Outside any labeled phase (setup traffic, or the final flush).
    #[default]
    Other,
    /// The head sweep (`tmp = U·x₀`).
    Head,
    /// A forward sweep over `L` + diagonal.
    Forward,
    /// A backward sweep over `U`.
    Backward,
    /// The odd-`k` tail sweep over `L` + diagonal.
    Tail,
}

impl SweepPhase {
    /// Stable lowercase name (CSV / metric label value).
    pub fn name(self) -> &'static str {
        match self {
            SweepPhase::Other => "other",
            SweepPhase::Head => "head",
            SweepPhase::Forward => "forward",
            SweepPhase::Backward => "backward",
            SweepPhase::Tail => "tail",
        }
    }
}

/// The (block × power × phase) label the replay stamps on each access.
/// [`AccessLabel::UNLABELED`] (the default) buckets traffic issued before
/// any label was set and the final flush, so per-label sums always equal
/// the whole-run totals exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AccessLabel {
    /// Global block id (`u32::MAX` when unlabeled).
    pub block: u32,
    /// The power `x_p` this traversal is billed to (1-based; 0 when
    /// unlabeled).
    pub power: u32,
    /// The sweep phase.
    pub phase: SweepPhase,
}

impl AccessLabel {
    /// The catch-all bucket for unlabeled traffic and the final flush.
    pub const UNLABELED: AccessLabel =
        AccessLabel { block: u32::MAX, power: 0, phase: SweepPhase::Other };
}

impl Default for AccessLabel {
    fn default() -> Self {
        AccessLabel::UNLABELED
    }
}

/// Per-label tallies of the simulated ledger.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LabelTraffic {
    /// Demand line accesses issued under this label.
    pub accesses: u64,
    /// Demand accesses served without reaching DRAM.
    pub hits: u64,
    /// Demand accesses that fetched from DRAM.
    pub misses: u64,
    /// DRAM bytes read under this label (demand fills + write-allocates).
    pub dram_read_bytes: u64,
    /// DRAM bytes written under this label (writebacks + final flush).
    pub dram_write_bytes: u64,
}

impl LabelTraffic {
    /// Total DRAM bytes moved under this label.
    pub fn dram_total(&self) -> u64 {
        self.dram_read_bytes + self.dram_write_bytes
    }
}

/// Per-NUMA-node DRAM tallies (addresses classified against the ranges
/// registered with [`Hierarchy::register_node_range`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeTraffic {
    /// DRAM bytes read from addresses on this node.
    pub dram_read_bytes: u64,
    /// DRAM bytes written to addresses on this node.
    pub dram_write_bytes: u64,
}

impl NodeTraffic {
    /// Total DRAM bytes moved on this node.
    pub fn dram_total(&self) -> u64 {
        self.dram_read_bytes + self.dram_write_bytes
    }
}

/// Node id used for DRAM traffic outside every registered node range.
pub const NODE_UNKNOWN: u32 = u32::MAX;

/// A [`TrafficReport`] plus its per-label and per-node decompositions.
/// Both maps sum exactly to the report's DRAM totals (the unlabeled /
/// unknown buckets absorb whatever the replay did not stamp).
#[derive(Debug, Clone, Default)]
pub struct LabeledReport {
    /// The whole-run totals, identical to what [`Hierarchy::finish`]
    /// returns.
    pub report: TrafficReport,
    /// DRAM traffic per (block, power, phase) label, deterministic order.
    pub labels: std::collections::BTreeMap<AccessLabel, LabelTraffic>,
    /// DRAM traffic per NUMA node.
    pub nodes: std::collections::BTreeMap<u32, NodeTraffic>,
}

/// A stack of cache levels in front of DRAM.
pub struct Hierarchy {
    levels: Vec<Cache>,
    report: TrafficReport,
    /// Sorted, disjoint `(base, end, class)` ranges for attribution.
    regions: Vec<(u64, u64, TrafficClass)>,
    /// The label stamped on traffic until the next [`Self::set_label`].
    label: AccessLabel,
    /// Per-label DRAM tallies (BTreeMap for deterministic reports).
    label_traffic: std::collections::BTreeMap<AccessLabel, LabelTraffic>,
    /// Sorted `(base, end, node)` ranges for per-node attribution.
    node_ranges: Vec<(u64, u64, u32)>,
    /// Per-node DRAM tallies.
    node_traffic: std::collections::BTreeMap<u32, NodeTraffic>,
}

impl Hierarchy {
    /// Builds a hierarchy from outermost-first configs (L1 first, LLC
    /// last).
    ///
    /// # Panics
    /// Panics when `configs` is empty.
    pub fn new(configs: &[CacheConfig]) -> Self {
        assert!(!configs.is_empty(), "need at least one cache level");
        Hierarchy {
            levels: configs.iter().map(|&c| Cache::new(c)).collect(),
            report: TrafficReport::default(),
            regions: Vec::new(),
            label: AccessLabel::UNLABELED,
            label_traffic: std::collections::BTreeMap::new(),
            node_ranges: Vec::new(),
            node_traffic: std::collections::BTreeMap::new(),
        }
    }

    /// Sets the label stamped on all subsequent traffic (until changed).
    pub fn set_label(&mut self, label: AccessLabel) {
        self.label = label;
    }

    /// Registers an address range as resident on NUMA node `node` for the
    /// per-node DRAM split. Ranges must not overlap previously registered
    /// ones; unmatched addresses tally under [`NODE_UNKNOWN`].
    pub fn register_node_range(&mut self, base: u64, bytes: u64, node: u32) {
        let end = base + bytes;
        debug_assert!(
            self.node_ranges.iter().all(|&(b, e, _)| end <= b || e <= base),
            "overlapping node ranges"
        );
        self.node_ranges.push((base, end, node));
        self.node_ranges.sort_unstable_by_key(|&(b, _, _)| b);
    }

    /// Classifies an address against the registered node ranges.
    fn classify_node(&self, addr: u64) -> u32 {
        let idx = self.node_ranges.partition_point(|&(b, _, _)| b <= addr);
        if idx == 0 {
            return NODE_UNKNOWN;
        }
        let (b, e, node) = self.node_ranges[idx - 1];
        if addr >= b && addr < e {
            node
        } else {
            NODE_UNKNOWN
        }
    }

    /// Books a DRAM read of `bytes` at `line_addr` into every ledger
    /// dimension (totals, class, label, node).
    fn dram_read(&mut self, line_addr: u64, bytes: u64) {
        self.report.dram_read_bytes += bytes;
        self.attribute(line_addr, bytes);
        self.label_traffic.entry(self.label).or_default().dram_read_bytes += bytes;
        let node = self.classify_node(line_addr);
        self.node_traffic.entry(node).or_default().dram_read_bytes += bytes;
    }

    /// Books a DRAM write of `bytes` at `line_addr` into every ledger
    /// dimension.
    fn dram_write(&mut self, line_addr: u64, bytes: u64) {
        self.report.dram_write_bytes += bytes;
        self.attribute(line_addr, bytes);
        self.label_traffic.entry(self.label).or_default().dram_write_bytes += bytes;
        let node = self.classify_node(line_addr);
        self.node_traffic.entry(node).or_default().dram_write_bytes += bytes;
    }

    /// Registers an address range for traffic attribution. Ranges must not
    /// overlap previously registered ones.
    pub fn register_region(&mut self, base: u64, bytes: u64, class: TrafficClass) {
        let end = base + bytes;
        debug_assert!(
            self.regions.iter().all(|&(b, e, _)| end <= b || e <= base),
            "overlapping traffic regions"
        );
        self.regions.push((base, end, class));
        self.regions.sort_unstable_by_key(|&(b, _, _)| b);
    }

    /// Classifies an address against the registered regions.
    fn classify(&self, addr: u64) -> Option<TrafficClass> {
        let idx = self.regions.partition_point(|&(b, _, _)| b <= addr);
        if idx == 0 {
            return None;
        }
        let (b, e, class) = self.regions[idx - 1];
        (addr >= b && addr < e).then_some(class)
    }

    /// Records a DRAM transfer of `bytes` at `line_addr` in the per-class
    /// counters.
    fn attribute(&mut self, line_addr: u64, bytes: u64) {
        match self.classify(line_addr) {
            Some(TrafficClass::Matrix) => self.report.matrix_bytes += bytes,
            Some(TrafficClass::Vector) => self.report.vector_bytes += bytes,
            None => {}
        }
    }

    /// A single-LLC hierarchy — the default for Fig. 9 replays, where only
    /// the DRAM boundary matters.
    pub fn llc_only(cfg: CacheConfig) -> Self {
        Hierarchy::new(&[cfg])
    }

    /// A two-level L1 + LLC hierarchy.
    pub fn l1_llc() -> Self {
        Hierarchy::new(&[CacheConfig::l1_32k(), CacheConfig::llc_32m()])
    }

    /// Line size of the DRAM-facing level.
    pub fn dram_line_bytes(&self) -> u64 {
        self.levels.last().expect("nonempty").config().line_bytes as u64
    }

    /// Performs one logical access of `bytes` bytes at `addr`, touching
    /// every line the range covers.
    pub fn access(&mut self, addr: u64, bytes: usize, write: bool) {
        if bytes == 0 {
            return;
        }
        self.report.logical_bytes += bytes as u64;
        let line = self.levels.last().expect("nonempty").config().line_bytes as u64;
        let first = addr / line;
        let last = (addr + bytes as u64 - 1) / line;
        for l in first..=last {
            self.access_line(l * line, write);
        }
    }

    fn access_line(&mut self, line_addr: u64, write: bool) {
        let nlevels = self.levels.len();
        let mut pending_writebacks: Vec<(usize, u64)> = Vec::new();
        let mut level = 0;
        let mut reached_dram = false;
        loop {
            // Write-back: the store dirties only the outermost level; the
            // copies filled into deeper levels stay clean until an inner
            // writeback reaches them.
            let out = self.levels[level].access(line_addr, write && level == 0);
            if let Some(victim) = out.writeback {
                pending_writebacks.push((level, victim));
            }
            if !out.miss {
                break;
            }
            if level + 1 == nlevels {
                // Last-level miss: fetch from DRAM.
                let lb = self.levels[level].config().line_bytes as u64;
                self.dram_read(line_addr, lb);
                reached_dram = true;
                break;
            }
            level += 1;
        }
        // The demand access counts as one hit-or-miss event under the
        // current label; writeback propagation below is side traffic.
        let tally = self.label_traffic.entry(self.label).or_default();
        tally.accesses += 1;
        if reached_dram {
            tally.misses += 1;
        } else {
            tally.hits += 1;
        }
        // Propagate dirty victims: a writeback from level i is a write
        // access at level i+1; from the last level it is a DRAM write.
        while let Some((lvl, victim)) = pending_writebacks.pop() {
            if lvl + 1 == nlevels {
                let lb = self.levels[lvl].config().line_bytes as u64;
                self.dram_write(victim, lb);
            } else {
                let out = self.levels[lvl + 1].access(victim, true);
                if let Some(v2) = out.writeback {
                    pending_writebacks.push((lvl + 1, v2));
                }
                if out.miss && lvl + 2 == nlevels {
                    // Write-allocate fill for the victim at the last level.
                    let lb = self.levels[lvl + 1].config().line_bytes as u64;
                    self.dram_read(victim, lb);
                }
            }
        }
    }

    /// Flushes all levels (inner dirty lines count as DRAM writes through
    /// the last level) and returns the final report.
    pub fn finish(self) -> TrafficReport {
        self.finish_labeled().report
    }

    /// Like [`Self::finish`], but also returns the per-label and per-node
    /// decompositions. Flush writes tally under
    /// [`AccessLabel::UNLABELED`], so the label sums equal the report's
    /// DRAM totals exactly.
    pub fn finish_labeled(mut self) -> LabeledReport {
        // Dirty data can reside at any level; at finish we attribute every
        // distinct dirty line one DRAM write. Flushing outer levels into
        // the next level would double-count lines dirty in both, so we
        // simply count each level's resident dirty lines: disciplined
        // kernels write each output line at one level anyway.
        self.label = AccessLabel::UNLABELED;
        let nlevels = self.levels.len();
        // Count each distinct dirty line once: a line dirty in several
        // levels still costs a single eventual DRAM writeback.
        let mut seen = std::collections::HashSet::new();
        for i in 0..nlevels {
            let lb = self.levels[i].config().line_bytes as u64;
            for line in self.levels[i].flush_lines() {
                if seen.insert(line) {
                    self.dram_write(line, lb);
                }
            }
        }
        LabeledReport { report: self.report, labels: self.label_traffic, nodes: self.node_traffic }
    }

    /// The running report (before final flush).
    pub fn report(&self) -> TrafficReport {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_llc() -> Hierarchy {
        Hierarchy::llc_only(CacheConfig { size_bytes: 1024, line_bytes: 64, assoc: 2 })
    }

    #[test]
    fn cold_sequential_reads_cost_footprint() {
        let mut h = small_llc();
        // Stream 4 KiB sequentially: every line missed once.
        for i in 0..512 {
            h.access(i * 8, 8, false);
        }
        let r = h.finish();
        assert_eq!(r.dram_read_bytes, 4096);
        assert_eq!(r.dram_write_bytes, 0);
        assert_eq!(r.logical_bytes, 4096);
    }

    #[test]
    fn warm_rereads_are_free_within_capacity() {
        let mut h = small_llc();
        for _ in 0..10 {
            for i in 0..64 {
                h.access(i * 8, 8, false); // 512 B working set < 1 KiB
            }
        }
        let r = h.finish();
        assert_eq!(r.dram_read_bytes, 512);
        assert_eq!(r.logical_bytes, 10 * 512);
    }

    #[test]
    fn writes_flush_to_dram() {
        let mut h = small_llc();
        for i in 0..64 {
            h.access(i * 8, 8, true);
        }
        let r = h.finish();
        assert_eq!(r.dram_read_bytes, 512); // write-allocate fills
        assert_eq!(r.dram_write_bytes, 512); // final flush
    }

    #[test]
    fn capacity_thrashing_rereads_pay() {
        let mut h = small_llc(); // 1 KiB capacity
        for _ in 0..3 {
            for i in 0..512 {
                h.access(i * 8, 8, false); // 4 KiB stream > capacity
            }
        }
        let r = h.finish();
        assert_eq!(r.dram_read_bytes, 3 * 4096);
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        let mut h = small_llc();
        h.access(60, 8, false); // crosses the 64-byte boundary
        let r = h.finish();
        assert_eq!(r.dram_read_bytes, 128);
    }

    #[test]
    fn two_level_hierarchy_filters_through_l1() {
        let mut h = Hierarchy::new(&[
            CacheConfig { size_bytes: 256, line_bytes: 64, assoc: 2 },
            CacheConfig { size_bytes: 1024, line_bytes: 64, assoc: 2 },
        ]);
        // Working set: 512 B — fits LLC, not L1.
        for _ in 0..5 {
            for i in 0..64 {
                h.access(i * 8, 8, false);
            }
        }
        let r = h.finish();
        // Only the first pass misses in the LLC.
        assert_eq!(r.dram_read_bytes, 512);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_hierarchy_rejected() {
        Hierarchy::new(&[]);
    }

    #[test]
    fn label_and_node_sums_conserve_dram_totals_exactly() {
        let mut h = small_llc();
        h.register_node_range(0, 2048, 0);
        h.register_node_range(2048, 2048, 1);
        // Interleave labeled phases, writes, and unlabeled setup traffic.
        for i in 0..32 {
            h.access(i * 8, 8, false); // unlabeled
        }
        h.set_label(AccessLabel { block: 0, power: 1, phase: SweepPhase::Head });
        for i in 0..256 {
            h.access(i * 8, 8, false);
        }
        h.set_label(AccessLabel { block: 1, power: 1, phase: SweepPhase::Forward });
        for i in 256..512 {
            h.access(i * 8, 8, true);
        }
        let lr = h.finish_labeled();
        let label_read: u64 = lr.labels.values().map(|t| t.dram_read_bytes).sum();
        let label_write: u64 = lr.labels.values().map(|t| t.dram_write_bytes).sum();
        assert_eq!(label_read, lr.report.dram_read_bytes);
        assert_eq!(label_write, lr.report.dram_write_bytes);
        let node_read: u64 = lr.nodes.values().map(|t| t.dram_read_bytes).sum();
        let node_write: u64 = lr.nodes.values().map(|t| t.dram_write_bytes).sum();
        assert_eq!(node_read, lr.report.dram_read_bytes);
        assert_eq!(node_write, lr.report.dram_write_bytes);
        // The flush bucket exists (dirty lines from the write phase).
        assert!(lr.labels[&AccessLabel::UNLABELED].dram_write_bytes > 0);
        // Hit/miss partition the demand accesses per label.
        for t in lr.labels.values() {
            assert_eq!(t.hits + t.misses, t.accesses);
        }
        // Both nodes saw traffic and nothing fell in the unknown bucket.
        assert!(lr.nodes[&0].dram_total() > 0);
        assert!(lr.nodes[&1].dram_total() > 0);
        assert!(!lr.nodes.contains_key(&NODE_UNKNOWN));
    }

    #[test]
    fn labeling_does_not_change_totals() {
        let run = |labeled: bool| {
            let mut h = small_llc();
            if labeled {
                h.set_label(AccessLabel { block: 3, power: 2, phase: SweepPhase::Backward });
                h.register_node_range(0, 4096, 0);
            }
            for _ in 0..3 {
                for i in 0..512 {
                    h.access(i * 8, 8, i % 7 == 0);
                }
            }
            h.finish()
        };
        assert_eq!(run(false), run(true));
    }
}
