//! Random-walk transition matrices — the `cage14` class.
//!
//! The cage matrices model DNA electrophoresis as Markov transition
//! matrices: numerically unsymmetric, row-stochastic,
//! ~18 nnz/row for cage14. We reproduce that with a 3D-grid walk extended to
//! an 18-offset neighborhood whose transition probabilities are drawn
//! independently per direction and normalized per row.

use fbmpk_sparse::{Coo, Csr};
use rand::Rng;

/// Parameters for [`cage_like`].
#[derive(Debug, Clone, Copy)]
pub struct CageParams {
    /// Approximate matrix dimension (rounded to a 3D grid).
    pub n: usize,
    /// Neighbors per site including self (cage14 ≈ 18). Max 27.
    pub neighbors: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Generates a cage-like row-stochastic transition matrix (unsymmetric).
pub fn cage_like(p: CageParams) -> Csr {
    assert!((1..=27).contains(&p.neighbors));
    let side = (p.n as f64).cbrt().round().max(1.0) as usize;
    let (nx, ny) = (side, side);
    let nz = (p.n.div_ceil(nx * ny)).max(1);
    let n = nx * ny * nz;
    let mut offs: Vec<(i64, i64, i64)> = Vec::with_capacity(27);
    for dz in -1i64..=1 {
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                offs.push((dx, dy, dz));
            }
        }
    }
    offs.sort_by_key(|&(x, y, z)| (x.abs() + y.abs() + z.abs(), (x, y, z)));
    let offs = &offs[..p.neighbors];
    let mut rng = crate::rng(p.seed);
    let mut coo = Coo::with_capacity(n, n, n * p.neighbors);
    let node = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    let mut row: Vec<(usize, f64)> = Vec::with_capacity(p.neighbors);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let i = node(x, y, z);
                row.clear();
                let mut total = 0.0;
                for &(dx, dy, dz) in offs {
                    let (xx, yy, zz) = (x as i64 + dx, y as i64 + dy, z as i64 + dz);
                    if xx < 0
                        || yy < 0
                        || zz < 0
                        || xx >= nx as i64
                        || yy >= ny as i64
                        || zz >= nz as i64
                    {
                        continue;
                    }
                    let j = node(xx as usize, yy as usize, zz as usize);
                    let w = 0.05 + rng.gen::<f64>();
                    row.push((j, w));
                    total += w;
                }
                for &(j, w) in &row {
                    coo.push_unchecked(i, j, w / total);
                }
            }
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbmpk_sparse::stats::MatrixStats;

    #[test]
    fn rows_are_stochastic() {
        let a = cage_like(CageParams { n: 1000, neighbors: 18, seed: 3 });
        for r in 0..a.nrows() {
            let s: f64 = a.row_vals(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "row {r} sums to {s}");
        }
    }

    #[test]
    fn numerically_unsymmetric() {
        let a = cage_like(CageParams { n: 1000, neighbors: 18, seed: 3 });
        assert!(!a.is_symmetric(1e-12));
        // With a pair-complete neighborhood (7 = self + 6 faces) the
        // structure is symmetric even though the values are not.
        let b = cage_like(CageParams { n: 1000, neighbors: 7, seed: 3 });
        let t = b.transpose();
        assert_eq!(b.row_ptr(), t.row_ptr());
        assert_eq!(b.col_idx(), t.col_idx());
        assert!(!b.is_symmetric(1e-12));
    }

    #[test]
    fn density_near_target() {
        let a = cage_like(CageParams { n: 8000, neighbors: 18, seed: 3 });
        let s = MatrixStats::compute(&a);
        assert!(s.nnz_per_row > 12.0 && s.nnz_per_row <= 18.0, "density {}", s.nnz_per_row);
    }

    #[test]
    fn spectral_radius_at_most_one() {
        // Row-stochastic: ||A||_inf = 1, so power iterates stay bounded.
        let a = cage_like(CageParams { n: 512, neighbors: 7, seed: 9 });
        let mut x = vec![1.0; a.nrows()];
        let mut y = vec![0.0; a.nrows()];
        for _ in 0..10 {
            fbmpk_sparse::spmv::spmv(&a, &x, &mut y);
            std::mem::swap(&mut x, &mut y);
        }
        // A * ones == ones exactly for a stochastic matrix.
        for &v in &x {
            assert!((v - 1.0).abs() < 1e-10);
        }
    }
}
