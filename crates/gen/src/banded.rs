//! Banded random symmetric matrices — FEM-shell / structural analogs.
//!
//! Matrices like `af_shell10`, `Hook_1498`, `ldoor`, `pwtk`, `Serena` and
//! `shipsec1` in the paper's suite are symmetric structural-mechanics
//! matrices: moderate row density (35–55 nnz/row) with entries concentrated
//! in a band around the diagonal (node numberings are already locality
//! friendly). This generator reproduces that profile.

use crate::offdiag_value;
use fbmpk_sparse::{Coo, Csr};
use rand::Rng;

/// Parameters for [`banded_symmetric`].
#[derive(Debug, Clone, Copy)]
pub struct BandedParams {
    /// Matrix dimension.
    pub n: usize,
    /// Target mean nonzeros per row (including the diagonal).
    pub nnz_per_row: f64,
    /// Half-bandwidth: off-diagonal entries satisfy `|i-j| <= bandwidth`.
    pub bandwidth: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Generates a symmetric positive-definite banded random matrix.
///
/// Each row draws `(nnz_per_row - 1) / 2` distinct lower-triangle columns
/// uniformly from its band; mirroring doubles them, and the diagonal is set
/// diagonally dominant (hence SPD).
pub fn banded_symmetric(p: BandedParams) -> Csr {
    let mut rng = crate::rng(p.seed);
    let per_side = ((p.nnz_per_row - 1.0) / 2.0).max(0.0);
    let n = p.n;
    let mut coo = Coo::with_capacity(n, n, (p.nnz_per_row.ceil() as usize + 1) * n);
    let mut rowsum = vec![0.0f64; n];
    let mut picked: Vec<usize> = Vec::new();
    for i in 0..n {
        let lo = i.saturating_sub(p.bandwidth);
        let avail = i - lo;
        // Expected count per row is per_side; draw the fractional part
        // stochastically so the mean matches the target.
        let mut want = per_side.floor() as usize;
        if rng.gen::<f64>() < per_side.fract() {
            want += 1;
        }
        let want = want.min(avail);
        picked.clear();
        // Sample distinct columns from [lo, i).
        while picked.len() < want {
            let c = lo + rng.gen_range(0..avail);
            if !picked.contains(&c) {
                picked.push(c);
            }
        }
        for &c in &picked {
            let v = -offdiag_value(&mut rng);
            coo.push_unchecked(i, c, v);
            coo.push_unchecked(c, i, v);
            rowsum[i] += v.abs();
            rowsum[c] += v.abs();
        }
    }
    for (i, &s) in rowsum.iter().enumerate() {
        coo.push_unchecked(i, i, s * 1.05 + 1.0);
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbmpk_sparse::stats::MatrixStats;

    #[test]
    fn hits_target_density_and_band() {
        let a =
            banded_symmetric(BandedParams { n: 2000, nnz_per_row: 35.0, bandwidth: 400, seed: 7 });
        let s = MatrixStats::compute(&a);
        assert_eq!(s.nrows, 2000);
        assert!(
            (s.nnz_per_row - 35.0).abs() / 35.0 < 0.10,
            "density {} too far from 35",
            s.nnz_per_row
        );
        assert!(s.bandwidth <= 400);
        assert!(s.symmetric);
        assert_eq!(s.diag_coverage, 1.0);
    }

    #[test]
    fn spd_by_diagonal_dominance() {
        let a =
            banded_symmetric(BandedParams { n: 300, nnz_per_row: 11.0, bandwidth: 40, seed: 3 });
        for r in 0..a.nrows() {
            let off: f64 = a
                .row_cols(r)
                .iter()
                .zip(a.row_vals(r))
                .filter(|(&c, _)| c as usize != r)
                .map(|(_, v)| v.abs())
                .sum();
            assert!(a.get(r, r) > off, "row {r} not dominant");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = BandedParams { n: 200, nnz_per_row: 9.0, bandwidth: 30, seed: 42 };
        assert_eq!(banded_symmetric(p), banded_symmetric(p));
        let p2 = BandedParams { seed: 43, ..p };
        assert_ne!(banded_symmetric(p), banded_symmetric(p2));
    }

    #[test]
    fn tiny_matrices_work() {
        let a = banded_symmetric(BandedParams { n: 1, nnz_per_row: 5.0, bandwidth: 3, seed: 1 });
        assert_eq!(a.nrows(), 1);
        assert!(a.get(0, 0) > 0.0);
        let b = banded_symmetric(BandedParams { n: 3, nnz_per_row: 1.0, bandwidth: 2, seed: 1 });
        assert!(b.is_symmetric(0.0));
    }
}
