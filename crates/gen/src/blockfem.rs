//! Dense-block FEM matrices — `audikw_1` / `inline_1` / `Flan_1565` analogs.
//!
//! 3D solid-mechanics matrices store a dense `b x b` block (b = degrees of
//! freedom per node, typically 3) for every pair of adjacent mesh nodes.
//! With a 27-neighbor 3D node graph that yields ~`27*b` ≈ 75–82 nnz/row —
//! exactly the density regime of the paper's block-FEM inputs. Block
//! structure also drives the ABMC locality win the paper reports on
//! `audikw_1`/`inline_1` (Fig. 7, Table III).

use crate::{offdiag_value, GenRng};
use fbmpk_sparse::{Coo, Csr};

/// Parameters for [`block_fem`].
#[derive(Debug, Clone, Copy)]
pub struct BlockFemParams {
    /// Approximate matrix dimension; rounded to a whole number of nodes.
    pub n: usize,
    /// Block size `b` (degrees of freedom per mesh node).
    pub block: usize,
    /// Neighbors per node *including self* (max 27; the closest offsets of
    /// the 3D 27-point stencil are used). `nnz/row ≈ neighbors * block`.
    pub neighbors: usize,
    /// When false, upper-triangle block values are independently drawn,
    /// making the matrix structurally symmetric but numerically unsymmetric
    /// (the `ML_Geer` case).
    pub symmetric: bool,
    /// RNG seed.
    pub seed: u64,
}

/// The 27 stencil offsets sorted by distance (self first, then faces,
/// edges, corners) so a `neighbors` prefix picks the most local coupling.
fn stencil_offsets() -> Vec<(i64, i64, i64)> {
    let mut offs: Vec<(i64, i64, i64)> = Vec::with_capacity(27);
    for dz in -1i64..=1 {
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                offs.push((dx, dy, dz));
            }
        }
    }
    offs.sort_by_key(|&(x, y, z)| (x.abs() + y.abs() + z.abs(), (x, y, z)));
    offs
}

/// Generates a block-structured FEM-like matrix on a 3D node grid.
pub fn block_fem(p: BlockFemParams) -> Csr {
    assert!(p.block >= 1, "block size must be at least 1");
    assert!((1..=27).contains(&p.neighbors), "neighbors must be in 1..=27");
    let nodes = (p.n / p.block).max(1);
    // Near-cubic grid covering `nodes`.
    let side = (nodes as f64).cbrt().round().max(1.0) as usize;
    let (nx, ny) = (side, side);
    let nz = nodes.div_ceil(nx * ny);
    let nodes = nx * ny * nz;
    let n = nodes * p.block;
    let offs = stencil_offsets();
    let offs = &offs[..p.neighbors];
    let mut rng = crate::rng(p.seed);
    let mut coo = Coo::with_capacity(n, n, n * p.neighbors * p.block);
    let mut rowsum = vec![0.0f64; n];
    let node_id = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let u = node_id(x, y, z);
                for &(dx, dy, dz) in offs {
                    let (xx, yy, zz) = (x as i64 + dx, y as i64 + dy, z as i64 + dz);
                    if xx < 0
                        || yy < 0
                        || zz < 0
                        || xx >= nx as i64
                        || yy >= ny as i64
                        || zz >= nz as i64
                    {
                        continue;
                    }
                    let v = node_id(xx as usize, yy as usize, zz as usize);
                    // Emit each node pair once (u <= v) and mirror blocks.
                    if v < u {
                        continue;
                    }
                    emit_block(&mut coo, &mut rowsum, &mut rng, u, v, p.block, p.symmetric);
                }
            }
        }
    }
    for (i, &s) in rowsum.iter().enumerate() {
        coo.push_unchecked(i, i, s * 1.05 + 1.0);
    }
    coo.to_csr()
}

/// Emits the dense `b x b` coupling block between nodes `u <= v` (and its
/// mirror when `u != v`). Diagonal entries of the matrix are handled by the
/// caller's dominance pass, so the self block skips `(i, i)`.
fn emit_block(
    coo: &mut Coo,
    rowsum: &mut [f64],
    rng: &mut GenRng,
    u: usize,
    v: usize,
    b: usize,
    symmetric: bool,
) {
    for bi in 0..b {
        for bj in 0..b {
            let i = u * b + bi;
            let j = v * b + bj;
            if i == j {
                continue;
            }
            if u == v && i > j {
                // Within the self block emit each unordered pair once.
                continue;
            }
            let val = -offdiag_value(rng);
            coo.push_unchecked(i, j, val);
            rowsum[i] += val.abs();
            let mirror = if symmetric { val } else { -offdiag_value(rng) };
            coo.push_unchecked(j, i, mirror);
            rowsum[j] += mirror.abs();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbmpk_sparse::stats::MatrixStats;

    #[test]
    fn audikw_like_density() {
        // audikw_1: 82.3 nnz/row with 3x3 blocks and full 27-neighborhood.
        let a = block_fem(BlockFemParams {
            n: 6000,
            block: 3,
            neighbors: 27,
            symmetric: true,
            seed: 5,
        });
        let s = MatrixStats::compute(&a);
        assert!(s.symmetric);
        assert!(s.nnz_per_row > 55.0 && s.nnz_per_row < 85.0, "density {}", s.nnz_per_row);
        assert_eq!(s.diag_coverage, 1.0);
    }

    #[test]
    fn unsymmetric_variant_structurally_symmetric() {
        let a =
            block_fem(BlockFemParams { n: 900, block: 3, neighbors: 7, symmetric: false, seed: 5 });
        assert!(!a.is_symmetric(1e-12));
        // Structure is symmetric: A and A^T share the pattern.
        let t = a.transpose();
        assert_eq!(a.row_ptr(), t.row_ptr());
        assert_eq!(a.col_idx(), t.col_idx());
    }

    #[test]
    fn block_one_reduces_to_scalar_stencil() {
        let a =
            block_fem(BlockFemParams { n: 64, block: 1, neighbors: 7, symmetric: true, seed: 1 });
        let s = MatrixStats::compute(&a);
        assert!(s.nnz_per_row <= 7.0);
        assert!(s.symmetric);
    }

    #[test]
    fn deterministic() {
        let p = BlockFemParams { n: 300, block: 3, neighbors: 11, symmetric: true, seed: 9 };
        assert_eq!(block_fem(p), block_fem(p));
    }

    #[test]
    fn diagonal_dominant_for_solvers() {
        let a =
            block_fem(BlockFemParams { n: 500, block: 2, neighbors: 7, symmetric: true, seed: 2 });
        for r in 0..a.nrows() {
            let off: f64 = a
                .row_cols(r)
                .iter()
                .zip(a.row_vals(r))
                .filter(|(&c, _)| c as usize != r)
                .map(|(_, v)| v.abs())
                .sum();
            assert!(a.get(r, r) > off);
        }
    }
}
