//! Structured-grid Poisson stencil matrices.
//!
//! The classic model problems: 2D 5-point, 3D 7-point and 3D 27-point finite
//! difference Laplacians. These are the matrices HPCG-class workloads (which
//! the paper cites as MPK consumers) are built on, and they make good SPD
//! test inputs because their spectra are known.

use fbmpk_sparse::{Coo, Csr};

/// 2D 5-point Laplacian on an `nx x ny` grid (dimension `nx*ny`).
///
/// Row `i = y*nx + x` holds `4` on the diagonal and `-1` for each of the up
/// to four grid neighbors. SPD.
pub fn grid2d_5pt(nx: usize, ny: usize) -> Csr {
    let n = nx * ny;
    let mut coo = Coo::with_capacity(n, n, 5 * n);
    for y in 0..ny {
        for x in 0..nx {
            let i = y * nx + x;
            coo.push_unchecked(i, i, 4.0);
            if x > 0 {
                coo.push_unchecked(i, i - 1, -1.0);
            }
            if x + 1 < nx {
                coo.push_unchecked(i, i + 1, -1.0);
            }
            if y > 0 {
                coo.push_unchecked(i, i - nx, -1.0);
            }
            if y + 1 < ny {
                coo.push_unchecked(i, i + nx, -1.0);
            }
        }
    }
    coo.to_csr()
}

/// 3D 7-point Laplacian on an `nx x ny x nz` grid. SPD.
pub fn grid3d_7pt(nx: usize, ny: usize, nz: usize) -> Csr {
    let n = nx * ny * nz;
    let mut coo = Coo::with_capacity(n, n, 7 * n);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let i = (z * ny + y) * nx + x;
                coo.push_unchecked(i, i, 6.0);
                if x > 0 {
                    coo.push_unchecked(i, i - 1, -1.0);
                }
                if x + 1 < nx {
                    coo.push_unchecked(i, i + 1, -1.0);
                }
                if y > 0 {
                    coo.push_unchecked(i, i - nx, -1.0);
                }
                if y + 1 < ny {
                    coo.push_unchecked(i, i + nx, -1.0);
                }
                if z > 0 {
                    coo.push_unchecked(i, i - nx * ny, -1.0);
                }
                if z + 1 < nz {
                    coo.push_unchecked(i, i + nx * ny, -1.0);
                }
            }
        }
    }
    coo.to_csr()
}

/// 3D 27-point stencil on an `nx x ny x nz` grid (all face, edge and corner
/// neighbors), the stencil HPCG uses. Diagonal `26`, neighbors `-1`. SPD.
pub fn grid3d_27pt(nx: usize, ny: usize, nz: usize) -> Csr {
    let n = nx * ny * nz;
    let mut coo = Coo::with_capacity(n, n, 27 * n);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let i = (z * ny + y) * nx + x;
                for dz in -1i64..=1 {
                    for dy in -1i64..=1 {
                        for dx in -1i64..=1 {
                            let (xx, yy, zz) = (x as i64 + dx, y as i64 + dy, z as i64 + dz);
                            if xx < 0
                                || yy < 0
                                || zz < 0
                                || xx >= nx as i64
                                || yy >= ny as i64
                                || zz >= nz as i64
                            {
                                continue;
                            }
                            let j = ((zz as usize * ny) + yy as usize) * nx + xx as usize;
                            if i == j {
                                coo.push_unchecked(i, i, 26.0);
                            } else {
                                coo.push_unchecked(i, j, -1.0);
                            }
                        }
                    }
                }
            }
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbmpk_sparse::stats::MatrixStats;

    #[test]
    fn grid2d_structure() {
        let a = grid2d_5pt(4, 3);
        assert_eq!(a.nrows(), 12);
        // Interior row has 5 entries.
        assert_eq!(a.row_nnz(5), 5);
        // Corner row has 3.
        assert_eq!(a.row_nnz(0), 3);
        assert!(a.is_symmetric(0.0));
        // Row sums are >= 0 (diagonally dominant).
        for r in 0..a.nrows() {
            let off: f64 = a.row_vals(r).iter().filter(|&&v| v < 0.0).map(|v| -v).sum();
            assert!(a.get(r, r) >= off);
        }
    }

    #[test]
    fn grid3d_7pt_structure() {
        let a = grid3d_7pt(3, 3, 3);
        assert_eq!(a.nrows(), 27);
        assert_eq!(a.row_nnz(13), 7); // center voxel
        assert!(a.is_symmetric(0.0));
    }

    #[test]
    fn grid3d_27pt_structure() {
        let a = grid3d_27pt(3, 3, 3);
        assert_eq!(a.row_nnz(13), 27);
        assert!(a.is_symmetric(0.0));
        let s = MatrixStats::compute(&a);
        assert!(s.diag_coverage == 1.0);
    }

    #[test]
    fn degenerate_1d_grids() {
        let a = grid2d_5pt(5, 1);
        assert_eq!(a.nrows(), 5);
        assert_eq!(a.row_nnz(2), 3); // tridiagonal
        let b = grid3d_7pt(1, 1, 4);
        assert_eq!(b.bandwidth(), 1);
    }
}
