//! Circuit-simulation analogs — the `G3_circuit` class.
//!
//! Circuit matrices are symmetric, extremely sparse (~4.8 nnz/row for
//! G3_circuit) and irregular: mostly local chain/grid coupling plus a tail
//! of longer-range connections. Their low row density makes *vector*
//! traffic dominate — the case where the paper measures FBMPK's smallest
//! memory-traffic win (77% ratio at k=9, §V-C).

use fbmpk_sparse::{Coo, Csr};
use rand::Rng;

/// Parameters for [`circuit_like`].
#[derive(Debug, Clone, Copy)]
pub struct CircuitParams {
    /// Matrix dimension.
    pub n: usize,
    /// Target mean nonzeros per row (diagonal included); G3_circuit ≈ 4.8.
    pub nnz_per_row: f64,
    /// Fraction of off-diagonal connections that are long-range (uniform
    /// over the whole index space) instead of near-diagonal.
    pub long_range_frac: f64,
    /// RNG seed.
    pub seed: u64,
}

/// Generates a symmetric, diagonally dominant circuit-like matrix.
///
/// Every node couples to its chain predecessor (guaranteeing an irreducible
/// structure); remaining connections are drawn near-diagonal or long-range
/// according to `long_range_frac`.
pub fn circuit_like(p: CircuitParams) -> Csr {
    let n = p.n;
    assert!(n >= 2, "circuit needs at least 2 nodes");
    let mut rng = crate::rng(p.seed);
    let mut coo = Coo::with_capacity(n, n, (p.nnz_per_row.ceil() as usize + 2) * n);
    let mut rowsum = vec![0.0f64; n];
    // (nnz_per_row - 1) off-diagonals per row total; mirroring means we draw
    // half that per row. One of them is the fixed chain edge.
    let per_row = ((p.nnz_per_row - 1.0) / 2.0 - 1.0).max(0.0);
    let push_sym =
        |coo: &mut Coo, rowsum: &mut [f64], rng: &mut crate::GenRng, i: usize, j: usize| {
            if i == j {
                return;
            }
            let v = -crate::offdiag_value(rng);
            coo.push_unchecked(i, j, v);
            coo.push_unchecked(j, i, v);
            rowsum[i] += v.abs();
            rowsum[j] += v.abs();
        };
    for i in 1..n {
        push_sym(&mut coo, &mut rowsum, &mut rng, i, i - 1);
        let mut extra = per_row.floor() as usize;
        if rng.gen::<f64>() < per_row.fract() {
            extra += 1;
        }
        for _ in 0..extra {
            let j = if rng.gen::<f64>() < p.long_range_frac {
                rng.gen_range(0..n)
            } else {
                // Near-diagonal: within a small window behind i.
                let w = 32.min(i);
                if w == 0 {
                    continue;
                }
                i - 1 - rng.gen_range(0..w)
            };
            if j != i {
                push_sym(&mut coo, &mut rowsum, &mut rng, i, j);
            }
        }
    }
    for (i, &s) in rowsum.iter().enumerate() {
        coo.push_unchecked(i, i, s * 1.05 + 1.0);
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbmpk_sparse::stats::MatrixStats;

    #[test]
    fn g3_circuit_like_density() {
        let a = circuit_like(CircuitParams {
            n: 5000,
            nnz_per_row: 4.83,
            long_range_frac: 0.2,
            seed: 11,
        });
        let s = MatrixStats::compute(&a);
        assert!(s.symmetric);
        // Duplicate folding can remove a few entries; stay within 15%.
        assert!((s.nnz_per_row - 4.83).abs() / 4.83 < 0.15, "density {}", s.nnz_per_row);
        assert_eq!(s.diag_coverage, 1.0);
    }

    #[test]
    fn chain_guarantees_connectivity_edges() {
        let a =
            circuit_like(CircuitParams { n: 100, nnz_per_row: 3.0, long_range_frac: 0.0, seed: 1 });
        for i in 1..100 {
            assert!(a.get(i, i - 1) != 0.0, "chain edge {i} missing");
        }
    }

    #[test]
    fn long_range_increases_bandwidth() {
        let local = circuit_like(CircuitParams {
            n: 3000,
            nnz_per_row: 5.0,
            long_range_frac: 0.0,
            seed: 2,
        });
        let global = circuit_like(CircuitParams {
            n: 3000,
            nnz_per_row: 5.0,
            long_range_frac: 0.9,
            seed: 2,
        });
        assert!(global.bandwidth() > local.bandwidth());
    }

    #[test]
    fn deterministic() {
        let p = CircuitParams { n: 500, nnz_per_row: 4.8, long_range_frac: 0.3, seed: 77 };
        assert_eq!(circuit_like(p), circuit_like(p));
    }
}
