//! R-MAT power-law graph matrices (Chakrabarti et al., SDM 2004).
//!
//! Table II's caption notes the suite covers "directed weighted graphs".
//! R-MAT is the standard synthetic generator for that class: recursive
//! quadrant sampling produces skewed degree distributions — a stress test
//! for load balancing in the colored parallel schedule (a few very heavy
//! rows per color).

use fbmpk_sparse::{Coo, Csr};
use rand::Rng;

/// Parameters for [`rmat`].
#[derive(Debug, Clone, Copy)]
pub struct RmatParams {
    /// log2 of the matrix dimension (`n = 2^scale`).
    pub scale: u32,
    /// Average edges per vertex (before duplicate folding).
    pub edge_factor: usize,
    /// Quadrant probabilities `(a, b, c)`; `d = 1 - a - b - c`.
    /// The Graph500 default is `(0.57, 0.19, 0.19)`.
    pub probs: (f64, f64, f64),
    /// Mirror each edge to force a symmetric pattern.
    pub symmetric: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RmatParams {
    fn default() -> Self {
        RmatParams {
            scale: 10,
            edge_factor: 8,
            probs: (0.57, 0.19, 0.19),
            symmetric: false,
            seed: 1,
        }
    }
}

/// Generates an R-MAT adjacency matrix with unit diagonal added (so the
/// triangular split always has a usable `D`).
pub fn rmat(p: RmatParams) -> Csr {
    let n = 1usize << p.scale;
    let (a, b, c) = p.probs;
    assert!(a > 0.0 && b >= 0.0 && c >= 0.0 && a + b + c < 1.0, "bad quadrant probabilities");
    let mut rng = crate::rng(p.seed);
    let m = n * p.edge_factor;
    let cap = if p.symmetric { 2 * m + n } else { m + n };
    let mut coo = Coo::with_capacity(n, n, cap);
    for _ in 0..m {
        let (mut r, mut cidx) = (0usize, 0usize);
        for level in (0..p.scale).rev() {
            let u: f64 = rng.gen();
            let (dr, dc) = if u < a {
                (0, 0)
            } else if u < a + b {
                (0, 1)
            } else if u < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            r |= dr << level;
            cidx |= dc << level;
        }
        if r == cidx {
            continue; // self-loops handled by the diagonal pass
        }
        let w = crate::offdiag_value(&mut rng);
        coo.push_unchecked(r, cidx, w);
        if p.symmetric {
            coo.push_unchecked(cidx, r, w);
        }
    }
    for i in 0..n {
        coo.push_unchecked(i, i, 1.0);
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbmpk_sparse::stats::MatrixStats;

    #[test]
    fn dimension_and_diagonal() {
        let a = rmat(RmatParams { scale: 8, ..Default::default() });
        assert_eq!(a.nrows(), 256);
        let s = MatrixStats::compute(&a);
        assert_eq!(s.diag_coverage, 1.0);
    }

    #[test]
    fn skewed_degrees() {
        let a = rmat(RmatParams { scale: 12, edge_factor: 8, ..Default::default() });
        let s = MatrixStats::compute(&a);
        // Power-law: max row far above the mean.
        assert!(
            (s.max_row_nnz as f64) > 4.0 * s.nnz_per_row,
            "max {} mean {}",
            s.max_row_nnz,
            s.nnz_per_row
        );
    }

    #[test]
    fn symmetric_option() {
        let a = rmat(RmatParams { scale: 8, symmetric: true, ..Default::default() });
        assert!(a.is_symmetric(0.0));
    }

    #[test]
    fn deterministic() {
        let p = RmatParams { scale: 9, seed: 4, ..Default::default() };
        assert_eq!(rmat(p), rmat(p));
    }
}
