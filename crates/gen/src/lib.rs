//! # fbmpk-gen
//!
//! Synthetic sparse-matrix generators for the FBMPK reproduction.
//!
//! The paper evaluates on 14 SuiteSparse matrices (Table II). Those exact
//! inputs are proprietary-by-download; this crate substitutes generators that
//! reproduce the *structural knobs the paper's analysis depends on*:
//!
//! * dimension `N` and mean row density `nnz/N` (which set the matrix-vs-
//!   vector traffic balance — the driver of Fig. 9's sparsity dependence),
//! * symmetry (cage14 and ML_Geer are unsymmetric, the rest symmetric),
//! * structure class: banded FEM shells, dense-block FEM (audikw-like),
//!   circuit-style irregular ultra-sparse graphs, and random-walk (cage)
//!   matrices — which determine bandwidth/locality and ABMC color counts.
//!
//! [`suite`] instantiates the paper's Table II at a configurable scale;
//! individual generators are exposed for custom experiments. All generators
//! take an explicit seed and are fully deterministic.

pub mod banded;
pub mod blockfem;
pub mod cage;
pub mod circuit;
pub mod poisson;
pub mod rmat;
pub mod suite;

pub use suite::{paper_suite, SuiteEntry};

use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// The deterministic RNG used by every generator in this crate.
pub type GenRng = ChaCha8Rng;

/// Creates the crate's deterministic RNG from a seed.
pub fn rng(seed: u64) -> GenRng {
    use rand::SeedableRng;
    ChaCha8Rng::seed_from_u64(seed)
}

/// Draws a value in `[0.1, 1.0)`; keeping magnitudes bounded away from zero
/// avoids accidental cancellation in correctness comparisons.
pub(crate) fn offdiag_value(rng: &mut GenRng) -> f64 {
    0.1 + 0.9 * rng.gen::<f64>()
}
