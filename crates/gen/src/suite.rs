//! The paper's Table II evaluation suite, reproduced synthetically.
//!
//! Each SuiteSparse input is matched by a generator recipe preserving its
//! dimension (scaled), mean row density, symmetry and structure class. The
//! `scale` argument multiplies the paper's row count: `scale = 1.0`
//! reproduces full-size inputs (up to 3.5M rows / ~100M nnz — only feasible
//! on a large-memory host); the benchmarks default to a much smaller scale
//! and record it.

use crate::banded::{banded_symmetric, BandedParams};
use crate::blockfem::{block_fem, BlockFemParams};
use crate::cage::{cage_like, CageParams};
use crate::circuit::{circuit_like, CircuitParams};
use fbmpk_sparse::Csr;

/// Structure class of a suite input (drives which generator is used).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MatrixClass {
    /// Banded random symmetric (FEM shells / structural problems).
    Banded {
        /// Half-bandwidth as a fraction of `n`.
        rel_bandwidth: f64,
    },
    /// Dense-block FEM on a 3D node grid.
    BlockFem {
        /// Degrees of freedom per node.
        block: usize,
        /// Neighbors per node incl. self (≤ 27).
        neighbors: usize,
        /// Numerically symmetric values?
        symmetric: bool,
    },
    /// Circuit-like irregular ultra-sparse symmetric.
    Circuit {
        /// Fraction of long-range connections.
        long_range_frac: f64,
    },
    /// Cage-like row-stochastic random walk (unsymmetric).
    Cage {
        /// Neighbors per site incl. self (≤ 27).
        neighbors: usize,
    },
}

/// One row of the paper's Table II plus its generator recipe.
#[derive(Debug, Clone)]
pub struct SuiteEntry {
    /// Matrix name as printed in the paper.
    pub name: &'static str,
    /// Table II `Rows(N)`.
    pub paper_rows: usize,
    /// Table II `#nnz`.
    pub paper_nnz: usize,
    /// Whether the paper's input is symmetric.
    pub symmetric: bool,
    /// Generator recipe.
    pub class: MatrixClass,
}

impl SuiteEntry {
    /// Table II `#nnz/N`.
    pub fn paper_nnz_per_row(&self) -> f64 {
        self.paper_nnz as f64 / self.paper_rows as f64
    }

    /// Scaled row count for a given scale factor (minimum 64).
    pub fn rows_at(&self, scale: f64) -> usize {
        ((self.paper_rows as f64 * scale) as usize).max(64)
    }

    /// Generates the synthetic analog at `scale` times the paper dimension.
    pub fn generate(&self, scale: f64, seed: u64) -> Csr {
        let n = self.rows_at(scale);
        let target = self.paper_nnz_per_row();
        match self.class {
            MatrixClass::Banded { rel_bandwidth } => banded_symmetric(BandedParams {
                n,
                nnz_per_row: target,
                bandwidth: ((n as f64 * rel_bandwidth) as usize).max(target.ceil() as usize),
                seed,
            }),
            MatrixClass::BlockFem { block, neighbors, symmetric } => {
                block_fem(BlockFemParams { n, block, neighbors, symmetric, seed })
            }
            MatrixClass::Circuit { long_range_frac } => {
                circuit_like(CircuitParams { n, nnz_per_row: target, long_range_frac, seed })
            }
            MatrixClass::Cage { neighbors } => cage_like(CageParams { n, neighbors, seed }),
        }
    }
}

/// The 14-matrix suite of Table II.
///
/// Classes were assigned from the SuiteSparse collection's own domain labels
/// (structural, circuit simulation, weighted graph, optimization).
pub fn paper_suite() -> Vec<SuiteEntry> {
    vec![
        SuiteEntry {
            name: "afshell10",
            paper_rows: 1_508_065,
            paper_nnz: 52_670_000,
            symmetric: true,
            class: MatrixClass::Banded { rel_bandwidth: 0.02 },
        },
        SuiteEntry {
            name: "audikw_1",
            paper_rows: 943_695,
            paper_nnz: 77_650_000,
            symmetric: true,
            class: MatrixClass::BlockFem { block: 3, neighbors: 27, symmetric: true },
        },
        SuiteEntry {
            name: "cage14",
            paper_rows: 1_505_785,
            paper_nnz: 27_130_000,
            symmetric: false,
            class: MatrixClass::Cage { neighbors: 18 },
        },
        SuiteEntry {
            name: "cant",
            paper_rows: 62_451,
            paper_nnz: 4_010_000,
            symmetric: true,
            class: MatrixClass::BlockFem { block: 3, neighbors: 21, symmetric: true },
        },
        SuiteEntry {
            name: "Flan_1565",
            paper_rows: 1_564_794,
            paper_nnz: 117_410_000,
            symmetric: true,
            class: MatrixClass::BlockFem { block: 3, neighbors: 25, symmetric: true },
        },
        SuiteEntry {
            name: "G3_circuit",
            paper_rows: 1_585_478,
            paper_nnz: 7_660_000,
            symmetric: true,
            class: MatrixClass::Circuit { long_range_frac: 0.15 },
        },
        SuiteEntry {
            name: "Hook_1498",
            paper_rows: 1_498_023,
            paper_nnz: 60_920_000,
            symmetric: true,
            class: MatrixClass::Banded { rel_bandwidth: 0.03 },
        },
        SuiteEntry {
            name: "inline_1",
            paper_rows: 503_712,
            paper_nnz: 36_820_000,
            symmetric: true,
            class: MatrixClass::BlockFem { block: 3, neighbors: 24, symmetric: true },
        },
        SuiteEntry {
            name: "ldoor",
            paper_rows: 952_203,
            paper_nnz: 46_520_000,
            symmetric: true,
            class: MatrixClass::Banded { rel_bandwidth: 0.025 },
        },
        SuiteEntry {
            name: "ML_Geer",
            paper_rows: 1_504_002,
            paper_nnz: 110_880_000,
            symmetric: false,
            class: MatrixClass::BlockFem { block: 3, neighbors: 24, symmetric: false },
        },
        SuiteEntry {
            name: "nlpkkt120",
            paper_rows: 3_542_400,
            paper_nnz: 96_850_000,
            symmetric: true,
            class: MatrixClass::Banded { rel_bandwidth: 0.08 },
        },
        SuiteEntry {
            name: "pwtk",
            paper_rows: 217_918,
            paper_nnz: 11_630_000,
            symmetric: true,
            class: MatrixClass::Banded { rel_bandwidth: 0.02 },
        },
        SuiteEntry {
            name: "Serena",
            paper_rows: 1_391_349,
            paper_nnz: 64_530_000,
            symmetric: true,
            class: MatrixClass::Banded { rel_bandwidth: 0.04 },
        },
        SuiteEntry {
            name: "shipsec1",
            paper_rows: 140_874,
            paper_nnz: 7_810_000,
            symmetric: true,
            class: MatrixClass::Banded { rel_bandwidth: 0.03 },
        },
    ]
}

/// Looks up a suite entry by its paper name (case-insensitive).
pub fn suite_entry(name: &str) -> Option<SuiteEntry> {
    paper_suite().into_iter().find(|e| e.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbmpk_sparse::stats::MatrixStats;

    #[test]
    fn suite_has_14_entries_with_paper_table2_values() {
        let s = paper_suite();
        assert_eq!(s.len(), 14);
        let g3 = suite_entry("g3_circuit").unwrap();
        assert!((g3.paper_nnz_per_row() - 4.83).abs() < 0.01);
        let audi = suite_entry("audikw_1").unwrap();
        assert!((audi.paper_nnz_per_row() - 82.28).abs() < 0.05);
        assert_eq!(s.iter().filter(|e| !e.symmetric).count(), 2); // cage14, ML_Geer
    }

    #[test]
    fn generated_matrices_match_declared_symmetry() {
        for e in paper_suite() {
            let a = e.generate(0.002, 1);
            assert_eq!(a.is_symmetric(1e-12), e.symmetric, "{} symmetry mismatch", e.name);
            a.validate().unwrap();
        }
    }

    #[test]
    fn generated_density_tracks_table2() {
        // Density targets at small scale are looser for block/grid classes
        // (surface-to-volume effects at tiny grids) but must correlate.
        for e in paper_suite() {
            let a = e.generate(0.004, 1);
            let s = MatrixStats::compute(&a);
            let target = e.paper_nnz_per_row();
            assert!(
                s.nnz_per_row > 0.4 * target && s.nnz_per_row < 1.4 * target,
                "{}: generated {:.1} vs paper {:.1}",
                e.name,
                s.nnz_per_row,
                target
            );
        }
    }

    #[test]
    fn rows_at_scales_linearly_with_floor() {
        let e = suite_entry("cant").unwrap();
        assert_eq!(e.rows_at(1.0), 62_451);
        assert_eq!(e.rows_at(0.1), 6_245);
        assert_eq!(e.rows_at(1e-9), 64);
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(suite_entry("not_a_matrix").is_none());
    }
}
