//! The single-flight plan cache.
//!
//! [`fbmpk::TunedPlan::cached`] deduplicates *identical* plans but lets
//! concurrent first requests race: each builds its own plan and all but
//! one are discarded. At serving scale an inspection costs milliseconds
//! to seconds, so the cache here is single-flight: the first request for
//! a fingerprint builds while later arrivals block on a condvar and
//! share the result. A build that fails (or panics) is *negatively*
//! cached: repeats of the same doomed request are refused instantly for
//! a TTL that doubles with each consecutive failure, so a crashing
//! tenant cannot wedge the cache — or the builder threads — by
//! retrying in a loop.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How a successful lookup was satisfied (feeds distinct counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The entry was already resident.
    Hit,
    /// This caller ran the build.
    Built,
    /// Another caller was building; this one waited and shared.
    Waited,
}

/// Why a lookup failed.
#[derive(Debug, Clone)]
pub enum CacheError {
    /// The fingerprint is negatively cached from an earlier failure.
    NegativelyCached {
        /// The original failure message.
        detail: String,
        /// Time until the negative entry decays and a rebuild is allowed.
        retry_in: Duration,
    },
    /// This caller's own build failed (now negatively cached).
    BuildFailed {
        /// The failure (or stringified panic payload).
        detail: String,
    },
}

impl CacheError {
    /// The client-facing failure message.
    pub fn detail(&self) -> &str {
        match self {
            CacheError::NegativelyCached { detail, .. } | CacheError::BuildFailed { detail } => {
                detail
            }
        }
    }
}

enum Slot<T> {
    /// A build is in flight; waiters sleep on the condvar.
    Building,
    Ready(Arc<T>),
    /// A failed build; refused until `until`, then retried. `failures`
    /// survives the decay so repeat offenders back off exponentially.
    Poisoned {
        until: Instant,
        failures: u32,
        detail: String,
    },
}

/// A keyed single-flight cache with negative caching. `T` is the plan
/// bundle; the cache never clones it, only the `Arc`.
pub struct PlanCache<T> {
    slots: Mutex<HashMap<u64, Slot<T>>>,
    cv: Condvar,
    neg_ttl_base: Duration,
}

/// Cap the exponential negative-TTL backoff at `base × 2⁶`.
const MAX_BACKOFF_DOUBLINGS: u32 = 6;

impl<T> PlanCache<T> {
    /// An empty cache whose negative entries start at `neg_ttl_base` and
    /// double per consecutive failure (capped at 64×).
    pub fn new(neg_ttl_base: Duration) -> Self {
        PlanCache { slots: Mutex::new(HashMap::new()), cv: Condvar::new(), neg_ttl_base }
    }

    fn backoff(&self, failures: u32) -> Duration {
        self.neg_ttl_base * (1u32 << failures.saturating_sub(1).min(MAX_BACKOFF_DOUBLINGS))
    }

    /// The resident entry for `key`, if ready — never builds, never
    /// waits (the admission ladder uses this to ask "is this cached?").
    pub fn peek(&self, key: u64) -> Option<Arc<T>> {
        match self.slots.lock().expect("plan cache lock").get(&key) {
            Some(Slot::Ready(v)) => Some(Arc::clone(v)),
            _ => None,
        }
    }

    /// Drops a *ready* entry (e.g. to upgrade a degraded plan once
    /// pressure subsides). In-flight builds and negative entries are
    /// left alone; existing `Arc` holders keep their entry.
    pub fn invalidate(&self, key: u64) {
        let mut slots = self.slots.lock().expect("plan cache lock");
        if let Some(Slot::Ready(_)) = slots.get(&key) {
            slots.remove(&key);
        }
    }

    /// Looks up `key`, building via `build` on a miss. Exactly one
    /// caller builds per fingerprint at a time; the rest wait and share
    /// its outcome. A `build` error (or panic) poisons the key for the
    /// decaying TTL.
    pub fn get_or_build(
        &self,
        key: u64,
        build: impl FnOnce() -> Result<T, String>,
    ) -> Result<(Arc<T>, CacheOutcome), CacheError> {
        let mut waited = false;
        let mut slots = self.slots.lock().expect("plan cache lock");
        loop {
            match slots.get(&key) {
                Some(Slot::Ready(v)) => {
                    let out = if waited { CacheOutcome::Waited } else { CacheOutcome::Hit };
                    return Ok((Arc::clone(v), out));
                }
                Some(Slot::Poisoned { until, failures, detail }) => {
                    let now = Instant::now();
                    if now < *until {
                        return Err(CacheError::NegativelyCached {
                            detail: detail.clone(),
                            retry_in: *until - now,
                        });
                    }
                    // Decayed: this caller retries the build, keeping the
                    // failure streak for the next backoff step.
                    let failures = *failures;
                    slots.insert(key, Slot::Building);
                    return self.run_build(slots, key, failures, build);
                }
                Some(Slot::Building) => {
                    waited = true;
                    slots = self.cv.wait(slots).expect("plan cache lock");
                }
                None => {
                    slots.insert(key, Slot::Building);
                    return self.run_build(slots, key, 0, build);
                }
            }
        }
    }

    fn run_build(
        &self,
        slots: std::sync::MutexGuard<'_, HashMap<u64, Slot<T>>>,
        key: u64,
        prior_failures: u32,
        build: impl FnOnce() -> Result<T, String>,
    ) -> Result<(Arc<T>, CacheOutcome), CacheError> {
        // Build outside the lock: an inspection can take seconds and must
        // not serialize lookups of other fingerprints.
        drop(slots);
        let built = catch_unwind(AssertUnwindSafe(build)).unwrap_or_else(|payload| {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(format!("plan build panicked: {msg}"))
        });
        let mut slots = self.slots.lock().expect("plan cache lock");
        let result = match built {
            Ok(v) => {
                let v = Arc::new(v);
                slots.insert(key, Slot::Ready(Arc::clone(&v)));
                Ok((v, CacheOutcome::Built))
            }
            Err(detail) => {
                let failures = prior_failures + 1;
                slots.insert(
                    key,
                    Slot::Poisoned {
                        until: Instant::now() + self.backoff(failures),
                        failures,
                        detail: detail.clone(),
                    },
                );
                Err(CacheError::BuildFailed { detail })
            }
        };
        drop(slots);
        self.cv.notify_all();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn hit_after_build_and_peek() {
        let cache = PlanCache::new(Duration::from_millis(50));
        assert!(cache.peek(1).is_none());
        let (v, out) = cache.get_or_build(1, || Ok(7usize)).unwrap();
        assert_eq!((*v, out), (7, CacheOutcome::Built));
        let (v, out) = cache.get_or_build(1, || panic!("must not rebuild")).unwrap();
        assert_eq!((*v, out), (7, CacheOutcome::Hit));
        assert_eq!(*cache.peek(1).unwrap(), 7);
    }

    #[test]
    fn single_flight_builds_once_for_concurrent_callers() {
        let cache = Arc::new(PlanCache::new(Duration::from_millis(50)));
        let builds = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let (cache, builds) = (Arc::clone(&cache), Arc::clone(&builds));
                std::thread::spawn(move || {
                    cache
                        .get_or_build(9, || {
                            builds.fetch_add(1, Ordering::Relaxed);
                            std::thread::sleep(Duration::from_millis(30));
                            Ok(42usize)
                        })
                        .unwrap()
                })
            })
            .collect();
        let outcomes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(builds.load(Ordering::Relaxed), 1, "exactly one build");
        assert!(outcomes.iter().all(|(v, _)| **v == 42));
        assert_eq!(outcomes.iter().filter(|(_, o)| *o == CacheOutcome::Built).count(), 1);
    }

    #[test]
    fn failed_build_is_negatively_cached_with_decay() {
        let cache: PlanCache<usize> = PlanCache::new(Duration::from_millis(40));
        let err = cache.get_or_build(3, || Err("boom".into())).unwrap_err();
        assert!(matches!(err, CacheError::BuildFailed { .. }));
        assert_eq!(err.detail(), "boom");
        // Within the TTL: refused without calling the builder.
        let err = cache.get_or_build(3, || panic!("must not run")).unwrap_err();
        assert!(matches!(err, CacheError::NegativelyCached { .. }));
        // After decay: the builder runs again; a second failure doubles
        // the backoff.
        std::thread::sleep(Duration::from_millis(50));
        let err = cache.get_or_build(3, || Err("boom2".into())).unwrap_err();
        assert!(matches!(err, CacheError::BuildFailed { .. }));
        match cache.get_or_build(3, || Ok(1usize)) {
            Err(CacheError::NegativelyCached { retry_in, .. }) => {
                assert!(retry_in > Duration::from_millis(40), "backoff must have doubled");
            }
            other => panic!("expected negative entry, got {:?}", other.map(|(v, o)| (*v, o))),
        }
        // Eventually a successful rebuild clears the poison.
        std::thread::sleep(Duration::from_millis(100));
        let (v, out) = cache.get_or_build(3, || Ok(5usize)).unwrap();
        assert_eq!((*v, out), (5, CacheOutcome::Built));
    }

    #[test]
    fn panicking_build_poisons_instead_of_wedging() {
        let cache: PlanCache<usize> = PlanCache::new(Duration::from_millis(30));
        let err = cache.get_or_build(4, || panic!("inspector crash")).unwrap_err();
        assert!(err.detail().contains("inspector crash"), "{}", err.detail());
        // Waiters are released, the key is poisoned, the cache still works.
        assert!(cache.get_or_build(4, || Ok(1usize)).is_err());
        let (v, _) = cache.get_or_build(5, || Ok(2usize)).unwrap();
        assert_eq!(*v, 2);
    }

    #[test]
    fn invalidate_drops_only_ready_entries() {
        let cache: PlanCache<usize> = PlanCache::new(Duration::from_millis(30));
        cache.get_or_build(6, || Ok(1usize)).unwrap();
        cache.invalidate(6);
        assert!(cache.peek(6).is_none());
        let _ = cache.get_or_build(7, || Err("bad".into()));
        cache.invalidate(7); // poisoned entries stay
        assert!(matches!(
            cache.get_or_build(7, || Ok(1usize)),
            Err(CacheError::NegativelyCached { .. })
        ));
    }
}
