//! The single-flight plan cache.
//!
//! [`fbmpk::TunedPlan::cached`] deduplicates *identical* plans but lets
//! concurrent first requests race: each builds its own plan and all but
//! one are discarded. At serving scale an inspection costs milliseconds
//! to seconds, so the cache here is single-flight: the first request for
//! a fingerprint builds while later arrivals block on a condvar and
//! share the result. A build that fails (or panics) is *negatively*
//! cached: repeats of the same doomed request are refused instantly for
//! a TTL that doubles with each consecutive failure, so a crashing
//! tenant cannot wedge the cache — or the builder threads — by
//! retrying in a loop.
//!
//! The cache is **bounded**: at most `cap` resident entries (ready or
//! poisoned; in-flight builds are never evicted). A plan for a
//! `MAX_N`-sized matrix costs on the order of 100 MB, so an unbounded
//! map would let a slow trickle of distinct valid specs grow memory
//! without ever tripping the occupancy-based shedding ladder. Eviction
//! prefers, in order: expired negative entries (already worthless),
//! then the least-recently-used ready entry, then the oldest negative
//! entry. Evicting a ready entry only drops the cache's `Arc`; requests
//! already holding the plan keep it alive until they finish.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How a successful lookup was satisfied (feeds distinct counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The entry was already resident.
    Hit,
    /// This caller ran the build.
    Built,
    /// Another caller was building; this one waited and shared.
    Waited,
}

/// Why a lookup failed.
#[derive(Debug, Clone)]
pub enum CacheError {
    /// The fingerprint is negatively cached from an earlier failure.
    NegativelyCached {
        /// The original failure message.
        detail: String,
        /// Time until the negative entry decays and a rebuild is allowed.
        retry_in: Duration,
    },
    /// This caller's own build failed (now negatively cached).
    BuildFailed {
        /// The failure (or stringified panic payload).
        detail: String,
    },
}

impl CacheError {
    /// The client-facing failure message.
    pub fn detail(&self) -> &str {
        match self {
            CacheError::NegativelyCached { detail, .. } | CacheError::BuildFailed { detail } => {
                detail
            }
        }
    }
}

enum Slot<T> {
    /// A build is in flight; waiters sleep on the condvar.
    Building,
    Ready {
        value: Arc<T>,
        /// Logical access clock value at the last hit (LRU eviction key).
        last_used: u64,
    },
    /// A failed build; refused until `until`, then retried. `failures`
    /// survives the decay so repeat offenders back off exponentially.
    Poisoned {
        until: Instant,
        failures: u32,
        detail: String,
    },
}

struct Slots<T> {
    map: HashMap<u64, Slot<T>>,
    /// Monotonic access counter backing the LRU order.
    clock: u64,
}

/// A keyed single-flight cache with negative caching and a bounded
/// resident count. `T` is the plan bundle; the cache never clones it,
/// only the `Arc`.
pub struct PlanCache<T> {
    slots: Mutex<Slots<T>>,
    cv: Condvar,
    neg_ttl_base: Duration,
    cap: usize,
}

/// Cap the exponential negative-TTL backoff at `base × 2⁶`.
const MAX_BACKOFF_DOUBLINGS: u32 = 6;

impl<T> PlanCache<T> {
    /// An empty cache holding at most `cap` resident entries, whose
    /// negative entries start at `neg_ttl_base` and double per
    /// consecutive failure (capped at 64×).
    pub fn new(neg_ttl_base: Duration, cap: usize) -> Self {
        PlanCache {
            slots: Mutex::new(Slots { map: HashMap::new(), clock: 0 }),
            cv: Condvar::new(),
            neg_ttl_base,
            cap: cap.max(1),
        }
    }

    fn backoff(&self, failures: u32) -> Duration {
        self.neg_ttl_base * (1u32 << failures.saturating_sub(1).min(MAX_BACKOFF_DOUBLINGS))
    }

    /// Resident entry count (ready + poisoned + building; tests assert
    /// the bound).
    pub fn len(&self) -> usize {
        self.slots.lock().expect("plan cache lock").map.len()
    }

    /// True when no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The resident entry for `key`, if ready — never builds, never
    /// waits (the admission ladder uses this to ask "is this cached?").
    /// Counts as a use for LRU purposes.
    pub fn peek(&self, key: u64) -> Option<Arc<T>> {
        let mut slots = self.slots.lock().expect("plan cache lock");
        slots.clock += 1;
        let now = slots.clock;
        match slots.map.get_mut(&key) {
            Some(Slot::Ready { value, last_used }) => {
                *last_used = now;
                Some(Arc::clone(value))
            }
            _ => None,
        }
    }

    /// Drops a *ready* entry (e.g. to upgrade a degraded plan once
    /// pressure subsides). In-flight builds and negative entries are
    /// left alone; existing `Arc` holders keep their entry.
    pub fn invalidate(&self, key: u64) {
        let mut slots = self.slots.lock().expect("plan cache lock");
        if let Some(Slot::Ready { .. }) = slots.map.get(&key) {
            slots.map.remove(&key);
        }
    }

    /// Evicts until at most `cap` entries remain, preferring expired
    /// negative entries, then LRU ready entries, then oldest negative
    /// entries. `Building` slots are never evicted (a waiter is parked
    /// on them), so the map can transiently exceed `cap` only by the
    /// number of concurrent in-flight builds.
    fn evict_excess(&self, slots: &mut Slots<T>) {
        while slots.map.len() > self.cap {
            let now = Instant::now();
            let mut expired_neg: Option<u64> = None;
            let mut lru_ready: Option<(u64, u64)> = None;
            let mut oldest_neg: Option<(u64, Instant)> = None;
            for (&key, slot) in &slots.map {
                match slot {
                    Slot::Building => {}
                    Slot::Ready { last_used, .. } => {
                        if lru_ready.is_none_or(|(_, lu)| *last_used < lu) {
                            lru_ready = Some((key, *last_used));
                        }
                    }
                    Slot::Poisoned { until, .. } => {
                        if *until <= now {
                            expired_neg = Some(key);
                        } else if oldest_neg.is_none_or(|(_, u)| *until < u) {
                            oldest_neg = Some((key, *until));
                        }
                    }
                }
            }
            let victim = expired_neg.or(lru_ready.map(|(k, _)| k)).or(oldest_neg.map(|(k, _)| k));
            match victim {
                Some(key) => {
                    slots.map.remove(&key);
                }
                // Everything is Building: nothing evictable right now.
                None => break,
            }
        }
    }

    /// Looks up `key`, building via `build` on a miss. Exactly one
    /// caller builds per fingerprint at a time; the rest wait and share
    /// its outcome. A `build` error (or panic) poisons the key for the
    /// decaying TTL.
    pub fn get_or_build(
        &self,
        key: u64,
        build: impl FnOnce() -> Result<T, String>,
    ) -> Result<(Arc<T>, CacheOutcome), CacheError> {
        let mut waited = false;
        let mut slots = self.slots.lock().expect("plan cache lock");
        loop {
            slots.clock += 1;
            let now_tick = slots.clock;
            match slots.map.get_mut(&key) {
                Some(Slot::Ready { value, last_used }) => {
                    *last_used = now_tick;
                    let out = if waited { CacheOutcome::Waited } else { CacheOutcome::Hit };
                    return Ok((Arc::clone(value), out));
                }
                Some(Slot::Poisoned { until, failures, detail }) => {
                    let now = Instant::now();
                    if now < *until {
                        return Err(CacheError::NegativelyCached {
                            detail: detail.clone(),
                            retry_in: *until - now,
                        });
                    }
                    // Decayed: this caller retries the build, keeping the
                    // failure streak for the next backoff step.
                    let failures = *failures;
                    slots.map.insert(key, Slot::Building);
                    return self.run_build(slots, key, failures, build);
                }
                Some(Slot::Building) => {
                    waited = true;
                    slots = self.cv.wait(slots).expect("plan cache lock");
                }
                None => {
                    slots.map.insert(key, Slot::Building);
                    return self.run_build(slots, key, 0, build);
                }
            }
        }
    }

    fn run_build(
        &self,
        slots: std::sync::MutexGuard<'_, Slots<T>>,
        key: u64,
        prior_failures: u32,
        build: impl FnOnce() -> Result<T, String>,
    ) -> Result<(Arc<T>, CacheOutcome), CacheError> {
        // Build outside the lock: an inspection can take seconds and must
        // not serialize lookups of other fingerprints.
        drop(slots);
        let built = catch_unwind(AssertUnwindSafe(build)).unwrap_or_else(|payload| {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(format!("plan build panicked: {msg}"))
        });
        let mut slots = self.slots.lock().expect("plan cache lock");
        let result = match built {
            Ok(v) => {
                let v = Arc::new(v);
                slots.clock += 1;
                let now_tick = slots.clock;
                slots.map.insert(key, Slot::Ready { value: Arc::clone(&v), last_used: now_tick });
                Ok((v, CacheOutcome::Built))
            }
            Err(detail) => {
                let failures = prior_failures + 1;
                slots.map.insert(
                    key,
                    Slot::Poisoned {
                        until: Instant::now() + self.backoff(failures),
                        failures,
                        detail: detail.clone(),
                    },
                );
                Err(CacheError::BuildFailed { detail })
            }
        };
        self.evict_excess(&mut slots);
        drop(slots);
        self.cv.notify_all();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn hit_after_build_and_peek() {
        let cache = PlanCache::new(Duration::from_millis(50), 16);
        assert!(cache.peek(1).is_none());
        let (v, out) = cache.get_or_build(1, || Ok(7usize)).unwrap();
        assert_eq!((*v, out), (7, CacheOutcome::Built));
        let (v, out) = cache.get_or_build(1, || panic!("must not rebuild")).unwrap();
        assert_eq!((*v, out), (7, CacheOutcome::Hit));
        assert_eq!(*cache.peek(1).unwrap(), 7);
    }

    #[test]
    fn single_flight_builds_once_for_concurrent_callers() {
        let cache = Arc::new(PlanCache::new(Duration::from_millis(50), 16));
        let builds = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let (cache, builds) = (Arc::clone(&cache), Arc::clone(&builds));
                std::thread::spawn(move || {
                    cache
                        .get_or_build(9, || {
                            builds.fetch_add(1, Ordering::Relaxed);
                            std::thread::sleep(Duration::from_millis(30));
                            Ok(42usize)
                        })
                        .unwrap()
                })
            })
            .collect();
        let outcomes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(builds.load(Ordering::Relaxed), 1, "exactly one build");
        assert!(outcomes.iter().all(|(v, _)| **v == 42));
        assert_eq!(outcomes.iter().filter(|(_, o)| *o == CacheOutcome::Built).count(), 1);
    }

    #[test]
    fn failed_build_is_negatively_cached_with_decay() {
        let cache: PlanCache<usize> = PlanCache::new(Duration::from_millis(40), 16);
        let err = cache.get_or_build(3, || Err("boom".into())).unwrap_err();
        assert!(matches!(err, CacheError::BuildFailed { .. }));
        assert_eq!(err.detail(), "boom");
        // Within the TTL: refused without calling the builder.
        let err = cache.get_or_build(3, || panic!("must not run")).unwrap_err();
        assert!(matches!(err, CacheError::NegativelyCached { .. }));
        // After decay: the builder runs again; a second failure doubles
        // the backoff.
        std::thread::sleep(Duration::from_millis(50));
        let err = cache.get_or_build(3, || Err("boom2".into())).unwrap_err();
        assert!(matches!(err, CacheError::BuildFailed { .. }));
        match cache.get_or_build(3, || Ok(1usize)) {
            Err(CacheError::NegativelyCached { retry_in, .. }) => {
                assert!(retry_in > Duration::from_millis(40), "backoff must have doubled");
            }
            other => panic!("expected negative entry, got {:?}", other.map(|(v, o)| (*v, o))),
        }
        // Eventually a successful rebuild clears the poison.
        std::thread::sleep(Duration::from_millis(100));
        let (v, out) = cache.get_or_build(3, || Ok(5usize)).unwrap();
        assert_eq!((*v, out), (5, CacheOutcome::Built));
    }

    #[test]
    fn panicking_build_poisons_instead_of_wedging() {
        let cache: PlanCache<usize> = PlanCache::new(Duration::from_millis(30), 16);
        let err = cache.get_or_build(4, || panic!("inspector crash")).unwrap_err();
        assert!(err.detail().contains("inspector crash"), "{}", err.detail());
        // Waiters are released, the key is poisoned, the cache still works.
        assert!(cache.get_or_build(4, || Ok(1usize)).is_err());
        let (v, _) = cache.get_or_build(5, || Ok(2usize)).unwrap();
        assert_eq!(*v, 2);
    }

    #[test]
    fn invalidate_drops_only_ready_entries() {
        let cache: PlanCache<usize> = PlanCache::new(Duration::from_millis(30), 16);
        cache.get_or_build(6, || Ok(1usize)).unwrap();
        cache.invalidate(6);
        assert!(cache.peek(6).is_none());
        let _ = cache.get_or_build(7, || Err("bad".into()));
        cache.invalidate(7); // poisoned entries stay
        assert!(matches!(
            cache.get_or_build(7, || Ok(1usize)),
            Err(CacheError::NegativelyCached { .. })
        ));
    }

    /// Distinct keys never grow the cache past its bound, and the evicted
    /// entry is the least recently used.
    #[test]
    fn resident_count_is_bounded_and_eviction_is_lru() {
        let cache: PlanCache<u64> = PlanCache::new(Duration::from_millis(30), 3);
        for key in 0..3 {
            cache.get_or_build(key, || Ok(key)).unwrap();
        }
        // Touch 0 and 2 so 1 is the LRU entry.
        assert!(cache.peek(0).is_some());
        assert!(cache.peek(2).is_some());
        cache.get_or_build(3, || Ok(3)).unwrap();
        assert_eq!(cache.len(), 3, "cap must hold after inserting a 4th key");
        assert!(cache.peek(1).is_none(), "LRU entry must be the one evicted");
        for key in [0u64, 2, 3] {
            assert!(cache.peek(key).is_some(), "recently used key {key} must survive");
        }
        // A long trickle of distinct keys stays bounded.
        for key in 100..200 {
            cache.get_or_build(key, || Ok(key)).unwrap();
        }
        assert_eq!(cache.len(), 3);
    }

    /// Expired negative entries are evicted before any ready entry.
    #[test]
    fn expired_negative_entries_are_evicted_first() {
        let cache: PlanCache<u64> = PlanCache::new(Duration::from_millis(5), 2);
        cache.get_or_build(1, || Ok(1)).unwrap();
        let _ = cache.get_or_build(2, || Err("bad".into()));
        std::thread::sleep(Duration::from_millis(10));
        // The negative entry for 2 has expired; inserting 3 must evict it,
        // not the ready plan for 1.
        cache.get_or_build(3, || Ok(3)).unwrap();
        assert_eq!(cache.len(), 2);
        assert!(cache.peek(1).is_some(), "live ready entry outranks an expired negative one");
        assert!(cache.peek(3).is_some());
    }
}
