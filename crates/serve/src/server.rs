//! The request server: acceptor, bounded queue, handler threads, and
//! the request lifecycle tying cache, admission, deadlines, and
//! batching together.
//!
//! Routes (plain text in and out; one request per connection):
//!
//! * `POST /v1/spmv` — one tuned SpMV (`k` ignored).
//! * `POST /v1/power` — `Aᵏx` by repeated SpMM; same-matrix requests
//!   coalesce (see [`crate::batch`]).
//! * `POST /v1/mpk` — `Aᵏx` through the FBMPK fused kernel under the
//!   per-request watchdog deadline.
//! * `GET /v1/stats` — the serving counters (`name value` lines).
//! * `GET /healthz` — liveness.
//!
//! Request headers: `X-Tenant` names the tenant (default `anonymous`),
//! `X-Deadline-Ms` the time budget (default from [`ServeConfig`]; `0`
//! means "already expired" and is answered 503 — the degenerate budget
//! the load generator uses for hopeless-deadline scenarios). The budget
//! is checked at admission (covering queue wait), again right before
//! kernel execution (covering plan-build time), and — on `/v1/mpk`
//! only — *during* the kernel via the per-request watchdog; `/v1/spmv`
//! and `/v1/power` kernels run to completion once started, so their
//! enforcement is strictly pre-execution. Response headers
//! `X-Fbmpk-Shed`, `X-Fbmpk-Deadline`, `X-Fbmpk-Fault`,
//! `X-Fbmpk-Degraded`, and `X-Fbmpk-Batch-Width` type every outcome so
//! no client ever has to infer what happened from a dropped connection.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use fbmpk::tune::fingerprint;
use fbmpk::{FbmpkError, FbmpkPlan, SyncMode, TuneOptions, TunedPlan};
use fbmpk_sparse::Csr;

use crate::admission::{Admission, Decision};
use crate::batch::PowerBatcher;
use crate::http::{read_request, render_vector, ReadError, Request, Response};
use crate::metrics::ServeMetrics;
use crate::plancache::{CacheError, CacheOutcome, PlanCache};
use crate::spec::RequestSpec;

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (port 0 picks a free port).
    pub addr: SocketAddr,
    /// Worker threads per kernel pool (each cached plan gets one pool).
    pub kernel_threads: usize,
    /// Handler threads draining the request queue.
    pub handlers: usize,
    /// Bound of the request queue; a full queue rejects with 429.
    pub queue_cap: usize,
    /// Per-tenant in-flight concurrency quota.
    pub tenant_cap: usize,
    /// Default `X-Deadline-Ms` when the client sends none.
    pub default_deadline_ms: u64,
    /// Base TTL of negative plan-cache entries (doubles per consecutive
    /// failure).
    pub neg_ttl: Duration,
    /// Bound on resident plan-cache entries (LRU-evicted beyond it). A
    /// plan can cost ~100 MB at the spec grammar's size ceiling, so the
    /// cache must be bounded even when the shedding ladder never
    /// engages.
    pub plan_cache_cap: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".parse().expect("loopback addr"),
            kernel_threads: 2,
            handlers: 4,
            queue_cap: 64,
            tenant_cap: 8,
            default_deadline_ms: 10_000,
            neg_ttl: Duration::from_millis(250),
            plan_cache_cap: 32,
        }
    }
}

/// Bound on the canonical-spec → fingerprint memo. Entries are tiny
/// (string + u64) but keyed by client-controlled specs, so the map is
/// capped; at the cap an arbitrary entry is dropped (costing one
/// generator rebuild on that spec's next request).
const SPEC_FP_CAP: usize = 4096;

/// A cached per-matrix plan bundle.
pub struct PlanEntry {
    /// The matrix itself (the `power` batching path reads it directly).
    pub csr: Csr,
    /// The tuned SpMV executor.
    pub tuned: TunedPlan,
    /// The FBMPK fused-kernel plan (point-to-point sync, so per-request
    /// deadlines are enforceable).
    pub fbmpk: FbmpkPlan,
    /// Serializes FBMPK invocations: the per-request deadline re-arms
    /// the shared watchdog, so two requests must not run interleaved on
    /// one plan.
    pub exec: Mutex<()>,
    /// Built probe-free under ladder rung 1; served scalar.
    pub degraded: bool,
}

fn build_entry(csr: Csr, degrade: bool, threads: usize) -> Result<PlanEntry, String> {
    let options = TuneOptions {
        nthreads: threads,
        probe: !degrade,
        sync: SyncMode::PointToPoint,
        ..Default::default()
    };
    let tuned = TunedPlan::new(&csr, options);
    let nblocks = (threads * 4).max(1).min(csr.nrows().max(1));
    let fbmpk = tuned.fbmpk_plan_auto(nblocks).map_err(|e| e.to_string())?;
    Ok(PlanEntry { csr, tuned, fbmpk, exec: Mutex::new(()), degraded: degrade })
}

struct State {
    cfg: ServeConfig,
    metrics: Arc<ServeMetrics>,
    admission: Arc<Admission>,
    cache: PlanCache<PlanEntry>,
    /// Canonical matrix spec → fingerprint, so cached-plan requests
    /// never rebuild the generator output just to find their key.
    spec_fps: Mutex<HashMap<String, u64>>,
    batcher: PowerBatcher,
}

struct Queued {
    stream: TcpStream,
    arrived: Instant,
}

/// A running server.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    state: Arc<State>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    handlers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds and starts accepting. Flips the live-telemetry gate on so
    /// the serving counters reach the exposition endpoint.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(cfg.addr)?;
        let addr = listener.local_addr()?;
        fbmpk_obs::live::set_enabled(true);
        let state = Arc::new(State {
            metrics: Arc::new(ServeMetrics::default()),
            admission: Arc::new(Admission::new(cfg.queue_cap, cfg.tenant_cap, cfg.handlers)),
            cache: PlanCache::new(cfg.neg_ttl, cfg.plan_cache_cap),
            spec_fps: Mutex::new(HashMap::new()),
            batcher: PowerBatcher::new(),
            cfg,
        });
        let (tx, rx) = std::sync::mpsc::sync_channel::<Queued>(state.cfg.queue_cap);
        let rx = Arc::new(Mutex::new(rx));
        let handlers = (0..state.cfg.handlers.max(1))
            .map(|i| {
                let (state, rx) = (Arc::clone(&state), Arc::clone(&rx));
                std::thread::Builder::new()
                    .name(format!("fbmpk-serve-{i}"))
                    .spawn(move || handler_loop(&state, &rx))
                    .expect("spawn handler thread")
            })
            .collect();
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let (state, stop) = (Arc::clone(&state), Arc::clone(&stop));
            std::thread::Builder::new()
                .name("fbmpk-serve-accept".to_string())
                .spawn(move || accept_loop(&state, &listener, tx, &stop))
                .expect("spawn acceptor thread")
        };
        Ok(Server { addr, stop, state, acceptor: Some(acceptor), handlers })
    }

    /// The bound address (resolved port when 0 was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The serving counters (shared with the handler threads).
    pub fn metrics(&self) -> Arc<ServeMetrics> {
        Arc::clone(&self.state.metrics)
    }

    /// The admission state (tests inspect quotas and the EWMA).
    pub fn admission(&self) -> Arc<Admission> {
        Arc::clone(&self.state.admission)
    }

    /// Stops accepting, drains the handler threads, and joins them.
    pub fn shutdown(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            self.stop.store(true, Ordering::Release);
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
            let _ = acceptor.join();
            for h in self.handlers.drain(..) {
                let _ = h.join();
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(state: &State, listener: &TcpListener, tx: SyncSender<Queued>, stop: &AtomicBool) {
    for conn in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = conn else { continue };
        // Bounded patience per connection: a slow or stuck peer costs at
        // most these timeouts, never a wedged thread.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
        // Count before sending: the handler decrements right after recv,
        // and the pairing must never go negative.
        state.admission.enqueued();
        match tx.try_send(Queued { stream, arrived: Instant::now() }) {
            Ok(()) => {}
            Err(TrySendError::Full(q)) => {
                state.admission.dequeued();
                let r = state.admission.reject_queue_full();
                state.metrics.count_shed(r.reason);
                let resp = Response::text(429, "request shed: queue-full\n")
                    .with_header("Retry-After", r.retry_after_s.to_string())
                    .with_header("X-Fbmpk-Shed", r.reason.as_str());
                reject_detached(q.stream, resp);
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
    // Closing `tx` (dropped here) ends the handler loops.
}

/// Live rejector threads. Above the cap the 429 is written without
/// draining the request first — the floor for pathological overload,
/// where bounded memory wins over a clean close.
static REJECTORS: AtomicUsize = AtomicUsize::new(0);
const MAX_REJECTORS: usize = 128;

/// Answers a shed connection off the accept thread. The request must be
/// consumed before the socket closes: closing with unread data in the
/// receive buffer makes the kernel send RST, tearing down the typed 429
/// before the client can read it. Reading can block for the connection
/// read timeout, so it runs on a short-lived detached thread rather
/// than stalling the acceptor.
fn reject_detached(mut stream: TcpStream, resp: Response) {
    if REJECTORS.fetch_add(1, Ordering::AcqRel) >= MAX_REJECTORS {
        REJECTORS.fetch_sub(1, Ordering::AcqRel);
        let _ = resp.write(&mut stream);
        return;
    }
    let spawned =
        std::thread::Builder::new().name("fbmpk-serve-reject".to_string()).spawn(move || {
            let _ = read_request(&mut stream);
            let _ = resp.write(&mut stream);
            let _ = stream.shutdown(std::net::Shutdown::Both);
            REJECTORS.fetch_sub(1, Ordering::AcqRel);
        });
    // Spawn failure drops the stream unanswered; just repair the count.
    if spawned.is_err() {
        REJECTORS.fetch_sub(1, Ordering::AcqRel);
    }
}

fn handler_loop(state: &State, rx: &Mutex<Receiver<Queued>>) {
    loop {
        let queued = {
            let guard = rx.lock().expect("serve queue lock");
            guard.recv()
        };
        let Ok(mut queued) = queued else { break };
        state.admission.dequeued();
        serve_one(state, &mut queued);
    }
}

fn serve_one(state: &State, queued: &mut Queued) {
    let m = &state.metrics;
    let request = match read_request(&mut queued.stream) {
        Ok(r) => r,
        Err(ReadError::Malformed(msg)) => {
            m.inc(&m.bad_request, "bad_request");
            let _ = Response::text(400, format!("{msg}\n")).write(&mut queued.stream);
            return;
        }
        Err(ReadError::TooLarge(msg)) => {
            m.inc(&m.bad_request, "bad_request");
            let _ = Response::text(413, format!("{msg}\n")).write(&mut queued.stream);
            return;
        }
        // The peer vanished; there is no one to respond to.
        Err(ReadError::Io(_)) => return,
    };
    m.inc(&m.requests, "requests");
    let response = route(state, &request, queued.arrived);
    match response.status {
        200 => m.inc(&m.ok, "ok"),
        400 | 405 | 413 => m.inc(&m.bad_request, "bad_request"),
        404 => m.inc(&m.not_found, "not_found"),
        // 429/500/503 are counted at their creation sites, where the
        // reason is known.
        _ => {}
    }
    let _ = response.write(&mut queued.stream);
}

fn route(state: &State, request: &Request, arrived: Instant) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Response::text(200, "ok\n"),
        ("GET", "/") => Response::text(
            200,
            "fbmpk serving endpoint; POST /v1/{spmv,power,mpk}, GET /v1/stats\n",
        ),
        ("GET", "/v1/stats") => {
            let mut body = state.metrics.render();
            body.push_str(&format!("fbmpk_serve_queue_depth {}\n", state.admission.depth()));
            body.push_str(&format!(
                "fbmpk_serve_service_ewma_ms {:.3}\n",
                state.admission.service_ewma_ms()
            ));
            Response::text(200, body)
        }
        ("POST", "/v1/spmv" | "/v1/power" | "/v1/mpk") => kernel_request(state, request, arrived),
        ("GET", _) => Response::text(404, "not found\n"),
        _ => Response::text(405, "method not allowed\n"),
    }
}

fn kernel_request(state: &State, request: &Request, arrived: Instant) -> Response {
    let m = &state.metrics;
    let tenant = request.header("x-tenant").unwrap_or("anonymous").to_string();
    let deadline_ms = match request.header("x-deadline-ms") {
        Some(v) => match v.trim().parse::<u64>() {
            Ok(d) => d,
            Err(_) => {
                return Response::text(400, "bad X-Deadline-Ms (want milliseconds)\n");
            }
        },
        None => state.cfg.default_deadline_ms,
    };
    let queued_ms = arrived.elapsed().as_millis() as u64;
    if queued_ms >= deadline_ms {
        // Covers the degenerate `X-Deadline-Ms: 0` budget too. Expiring
        // *before* admission spends no capacity on a doomed request.
        m.inc(&m.deadline_expired, "deadline_expired");
        return Response::text(
            503,
            format!("deadline expired before execution: budget {deadline_ms} ms, queued {queued_ms} ms\n"),
        )
        .with_header("X-Fbmpk-Deadline", "expired");
    }
    let spec = match RequestSpec::parse(&request.body) {
        Ok(s) => s,
        Err(e) => return Response::text(400, format!("{e}\n")),
    };
    let canonical = spec.matrix.canonical();
    let fp_known = state.spec_fps.lock().expect("spec map").get(&canonical).copied();
    let plan_cached = fp_known.is_some_and(|fp| state.cache.peek(fp).is_some());
    let (degrade, ticket) = match state.admission.decide(&tenant, plan_cached) {
        Decision::Admit { degrade, ticket } => (degrade, ticket),
        Decision::Reject(r) => {
            m.count_shed(r.reason);
            return Response::text(429, format!("request shed: {}\n", r.reason.as_str()))
                .with_header("Retry-After", r.retry_after_s.to_string())
                .with_header("X-Fbmpk-Shed", r.reason.as_str());
        }
    };
    let started = Instant::now();
    let deadline = arrived + Duration::from_millis(deadline_ms);
    // The request-scoped fault boundary: a panic anywhere below — an
    // inspector crash, a kernel assertion, an injected fault the pool
    // did not already convert — becomes a typed 500 for THIS request.
    // The ticket, queue, cache, and pools all stay healthy.
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        execute(state, &request.path, &spec, deadline, degrade)
    }));
    drop(ticket);
    let response = match outcome {
        Ok(response) => response,
        Err(payload) => {
            m.inc(&m.worker_fault, "worker_fault");
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Response::text(500, format!("worker fault: {msg}\n"))
                .with_header("X-Fbmpk-Fault", "panic")
        }
    };
    if response.status == 200 {
        state.admission.observe_service_ms(started.elapsed().as_secs_f64() * 1000.0);
    }
    response
}

/// Milliseconds left until `deadline`, zero once past it.
fn remaining_ms(deadline: Instant) -> u64 {
    deadline.saturating_duration_since(Instant::now()).as_millis() as u64
}

/// The typed 503 for a budget that ran out before the kernel started
/// (plan building and queueing behind a batch both spend budget).
fn deadline_expired_response(m: &ServeMetrics, stage: &str) -> Response {
    m.inc(&m.deadline_expired, "deadline_expired");
    Response::text(503, format!("deadline expired before {stage}\n"))
        .with_header("X-Fbmpk-Deadline", "expired")
}

fn execute(
    state: &State,
    path: &str,
    spec: &RequestSpec,
    deadline: Instant,
    degrade: bool,
) -> Response {
    let m = &state.metrics;
    let canonical = spec.matrix.canonical();
    let mut prebuilt: Option<Csr> = None;
    // Bind before matching: a guard temporary in a match scrutinee
    // lives to the end of the match, and the `None` arm re-locks.
    let fp_known = state.spec_fps.lock().expect("spec map").get(&canonical).copied();
    let fp = match fp_known {
        Some(fp) => fp,
        None => {
            let csr = spec.matrix.build();
            let fp = fingerprint(&csr);
            {
                let mut memo = state.spec_fps.lock().expect("spec map");
                if memo.len() >= SPEC_FP_CAP {
                    if let Some(victim) = memo.keys().next().cloned() {
                        memo.remove(&victim);
                    }
                }
                memo.insert(canonical, fp);
            }
            prebuilt = Some(csr);
            fp
        }
    };
    // Upgrade path: a plan degraded under pressure is rebuilt at full
    // quality once a request for it is admitted without the degrade flag.
    if !degrade {
        if let Some(entry) = state.cache.peek(fp) {
            if entry.degraded {
                state.cache.invalidate(fp);
            }
        }
    }
    let threads = state.cfg.kernel_threads;
    let matrix = spec.matrix.clone();
    let entry = match state.cache.get_or_build(fp, move || {
        let csr = prebuilt.unwrap_or_else(|| matrix.build());
        build_entry(csr, degrade, threads)
    }) {
        Ok((entry, outcome)) => {
            match outcome {
                CacheOutcome::Hit => m.inc(&m.cache_hits, "cache_hits"),
                CacheOutcome::Built => m.inc(&m.cache_misses, "cache_misses"),
                CacheOutcome::Waited => {
                    m.inc(&m.cache_singleflight_waits, "cache_singleflight_waits")
                }
            }
            entry
        }
        Err(CacheError::NegativelyCached { detail, retry_in }) => {
            m.inc(&m.cache_negative_hits, "cache_negative_hits");
            m.inc(&m.plan_unavailable, "plan_unavailable");
            return Response::text(503, format!("plan negatively cached: {detail}\n"))
                .with_header("Retry-After", retry_in.as_secs().max(1).to_string())
                .with_header("X-Fbmpk-Plan", "negative-cached");
        }
        Err(CacheError::BuildFailed { detail }) => {
            m.inc(&m.cache_build_failures, "cache_build_failures");
            m.inc(&m.plan_unavailable, "plan_unavailable");
            return Response::text(503, format!("plan build failed: {detail}\n"))
                .with_header("X-Fbmpk-Plan", "build-failed");
        }
    };
    let x = match spec.x.materialize(entry.csr.nrows()) {
        Ok(x) => x,
        Err(e) => return Response::text(400, format!("{e}\n")),
    };
    if entry.degraded {
        m.inc(&m.degraded, "degraded");
    }
    let tag_degraded = |r: Response| {
        if entry.degraded {
            r.with_header("X-Fbmpk-Degraded", "1")
        } else {
            r
        }
    };
    // Re-check the budget at the kernel boundary: plan building above
    // can consume an arbitrary slice of it. Past this point `/v1/spmv`
    // and `/v1/power` run to completion (mid-kernel enforcement is
    // mpk-only, via the watchdog), so an already-expired budget must be
    // refused here, not discovered by the client after the work is done.
    if remaining_ms(deadline) == 0 {
        return deadline_expired_response(m, "kernel execution (budget spent on plan build)");
    }
    match path {
        "/v1/spmv" => {
            let mut y = vec![0.0; entry.csr.nrows()];
            if entry.degraded {
                entry.tuned.spmv_scalar(&x, &mut y);
            } else {
                entry.tuned.spmv(&x, &mut y);
            }
            tag_degraded(Response::text(200, render_vector(&y)))
        }
        "/v1/power" => {
            // `batch_executions` counts SpMM executions (incremented by
            // whichever request leads the batch); `batched` counts
            // requests that shared a width > 1 batch.
            let count_exec = |_width: usize| m.inc(&m.batch_executions, "batch_executions");
            match state.batcher.power(fp, spec.k, &entry.csr, x, &count_exec) {
                Ok(out) => {
                    if out.width > 1 {
                        m.inc(&m.batched, "batched");
                    }
                    tag_degraded(
                        Response::text(200, render_vector(&out.y))
                            .with_header("X-Fbmpk-Batch-Width", out.width.to_string()),
                    )
                }
                Err(e) => {
                    m.inc(&m.worker_fault, "worker_fault");
                    Response::text(500, format!("worker fault: {e}\n"))
                        .with_header("X-Fbmpk-Fault", "batch-leader")
                }
            }
        }
        "/v1/mpk" => {
            // One FBMPK invocation at a time per plan: the deadline
            // override re-arms the plan's shared watchdog. Waiting for
            // the lock spends budget, so the remaining time is computed
            // after acquisition (and may already be zero).
            let _exec = entry.exec.lock().expect("plan exec lock");
            let remaining = remaining_ms(deadline);
            if remaining == 0 {
                return deadline_expired_response(m, "kernel execution (budget spent waiting)");
            }
            match entry.fbmpk.try_power_deadline(&x, spec.k, remaining) {
                Ok(y) => tag_degraded(Response::text(200, render_vector(&y))),
                Err(FbmpkError::Stalled { waited_ms, dump, .. }) => {
                    m.inc(&m.deadline_expired, "deadline_expired");
                    Response::text(
                        503,
                        format!(
                            "deadline expired after {waited_ms} ms in the kernel\n\
                             partial progress at expiry:\n{dump}"
                        ),
                    )
                    .with_header("X-Fbmpk-Deadline", "expired")
                }
                Err(e @ FbmpkError::WorkerPanicked { .. }) => {
                    m.inc(&m.worker_fault, "worker_fault");
                    Response::text(500, format!("worker fault: {e}\n"))
                        .with_header("X-Fbmpk-Fault", "worker-panic")
                }
                Err(e) => Response::text(400, format!("{e}\n")),
            }
        }
        other => Response::text(404, format!("unknown kernel route {other}\n")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{kernel_body, parse_vector, request};

    fn tiny_server() -> Server {
        Server::start(ServeConfig {
            kernel_threads: 1,
            handlers: 2,
            queue_cap: 8,
            ..Default::default()
        })
        .expect("bind")
    }

    const T: Duration = Duration::from_secs(10);

    #[test]
    fn build_entry_terminates() {
        let csr = fbmpk_gen::poisson::grid2d_5pt(4, 4);
        let e = build_entry(csr, false, 1).unwrap();
        assert!(!e.degraded);
    }

    #[test]
    fn health_stats_and_404() {
        let mut server = tiny_server();
        let addr = server.local_addr();
        assert_eq!(request(addr, "GET", "/healthz", &[], "", T).unwrap().status, 200);
        let stats = request(addr, "GET", "/v1/stats", &[], "", T).unwrap();
        assert_eq!(stats.status, 200);
        assert!(stats.body.contains("fbmpk_serve_requests_total"));
        assert_eq!(request(addr, "GET", "/nope", &[], "", T).unwrap().status, 404);
        assert_eq!(request(addr, "PUT", "/v1/power", &[], "", T).unwrap().status, 405);
        server.shutdown();
    }

    #[test]
    fn power_round_trip_and_cache_reuse() {
        let mut server = tiny_server();
        let addr = server.local_addr();
        let body = kernel_body("grid:6:6", 2, "seed:3");
        let first = request(addr, "POST", "/v1/power", &[("X-Tenant", "t1")], &body, T).unwrap();
        assert_eq!(first.status, 200, "{}", first.body);
        let y1 = parse_vector(&first.body).unwrap();
        assert_eq!(y1.len(), 36);
        let second = request(addr, "POST", "/v1/power", &[("X-Tenant", "t2")], &body, T).unwrap();
        assert_eq!(second.status, 200);
        assert_eq!(parse_vector(&second.body).unwrap(), y1, "identical request, identical bits");
        let snap = server.metrics().snapshot();
        assert_eq!(snap.cache_misses, 1, "one inspection for two requests");
        assert!(snap.cache_hits >= 1);
        server.shutdown();
    }

    #[test]
    fn mpk_and_spmv_agree_with_power_for_k1() {
        let mut server = tiny_server();
        let addr = server.local_addr();
        let body = kernel_body("grid:5:4", 1, "seed:9");
        let spmv = request(addr, "POST", "/v1/spmv", &[], &body, T).unwrap();
        let power = request(addr, "POST", "/v1/power", &[], &body, T).unwrap();
        let mpk = request(addr, "POST", "/v1/mpk", &[], &body, T).unwrap();
        assert_eq!((spmv.status, power.status, mpk.status), (200, 200, 200), "{}", mpk.body);
        let (ys, yp, ym) = (
            parse_vector(&spmv.body).unwrap(),
            parse_vector(&power.body).unwrap(),
            parse_vector(&mpk.body).unwrap(),
        );
        let close = |a: &[f64], b: &[f64]| {
            a.iter().zip(b).all(|(x, y)| (x - y).abs() <= 1e-12 * y.abs().max(1.0))
        };
        assert!(close(&ys, &yp), "spmv vs power");
        assert!(close(&ym, &yp), "mpk vs power");
        server.shutdown();
    }

    #[test]
    fn malformed_requests_get_400() {
        let mut server = tiny_server();
        let addr = server.local_addr();
        for body in ["matrix=mystery:1", "matrix=grid:0:0", "k=2", "matrix=grid:4:4\nk=junk"] {
            let r = request(addr, "POST", "/v1/power", &[], body, T).unwrap();
            assert_eq!(r.status, 400, "{body:?} → {}", r.body);
        }
        let r = request(
            addr,
            "POST",
            "/v1/power",
            &[("X-Deadline-Ms", "soon")],
            &kernel_body("grid:4:4", 1, "ones"),
            T,
        )
        .unwrap();
        assert_eq!(r.status, 400);
        // Wrong-length explicit vector.
        let r = request(addr, "POST", "/v1/power", &[], "matrix=grid:4:4\nx=1,2,3\n", T).unwrap();
        assert_eq!(r.status, 400);
        server.shutdown();
    }

    #[test]
    fn zero_deadline_is_typed_503_and_cache_survives() {
        let mut server = tiny_server();
        let addr = server.local_addr();
        let body = kernel_body("grid:6:5", 2, "ones");
        // Warm the cache.
        assert_eq!(request(addr, "POST", "/v1/mpk", &[], &body, T).unwrap().status, 200);
        let r = request(addr, "POST", "/v1/mpk", &[("X-Deadline-Ms", "0")], &body, T).unwrap();
        assert_eq!(r.status, 503, "{}", r.body);
        assert_eq!(r.header("x-fbmpk-deadline"), Some("expired"));
        assert!(r.body.contains("deadline expired"), "{}", r.body);
        // The cache still serves.
        let ok = request(addr, "POST", "/v1/mpk", &[], &body, T).unwrap();
        assert_eq!(ok.status, 200);
        assert_eq!(server.metrics().snapshot().deadline_expired, 1);
        server.shutdown();
    }
}
