//! Same-matrix request coalescing.
//!
//! Power requests naming the same matrix fingerprint and the same `k`
//! that arrive while one of them is executing are folded into a single
//! multi-vector SpMM ([`fbmpk_sparse::spmm::block_power`]): the matrix
//! is read once for all of them, which is exactly the traffic
//! amortization the paper pursues across iterations, applied across
//! *requests*. The SpMM inner loop accumulates every vector column with
//! the same per-row operation sequence a width-1 run uses, so a batched
//! response is bit-identical to serving the request alone — asserted in
//! `tests/serve_props.rs`.
//!
//! The mechanism is leader/follower: the first arrival for an idle
//! `(fingerprint, k)` slot becomes the leader and executes; requests
//! that arrive while it runs park their vectors in the slot, and the
//! leader drains them as its next batch before stepping down. At low
//! load every batch has width 1 and no latency is added; under load the
//! batch width grows with the arrival rate.

use fbmpk_sparse::spmm::{block_power, MultiVec};
use fbmpk_sparse::Csr;
use std::collections::HashMap;
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};

/// One coalesced execution's result for one request.
#[derive(Debug)]
pub struct PowerOutcome {
    /// This request's output column.
    pub y: Vec<f64>,
    /// Width of the SpMM batch that produced it (1 = ran alone).
    pub width: usize,
}

struct Pending {
    x: Vec<f64>,
    tx: Sender<PowerOutcome>,
}

#[derive(Default)]
struct SlotState {
    pending: Vec<Pending>,
    leader_active: bool,
}

/// One shared `(fingerprint, k)` coalescing slot.
type SharedSlot = Arc<Mutex<SlotState>>;

/// Per-`(fingerprint, k)` coalescing state.
pub struct PowerBatcher {
    slots: Mutex<HashMap<(u64, usize), SharedSlot>>,
}

impl Default for PowerBatcher {
    fn default() -> Self {
        Self::new()
    }
}

impl PowerBatcher {
    /// An empty batcher.
    pub fn new() -> Self {
        PowerBatcher { slots: Mutex::new(HashMap::new()) }
    }

    /// Computes `Aᵏ x`, coalescing with concurrent requests for the same
    /// `(fp, k)`. Blocks until the (possibly shared) execution finishes.
    ///
    /// All callers for one `fp` must pass the same matrix (the
    /// fingerprint guarantees it) and `x.len() == a.nrows()` (the
    /// handler validates before calling).
    ///
    /// # Errors
    /// An error means the batch leader unwound mid-execution; the
    /// request maps it to a typed 500.
    pub fn power(&self, fp: u64, k: usize, a: &Csr, x: Vec<f64>) -> Result<PowerOutcome, String> {
        let slot = {
            let mut slots = self.slots.lock().expect("batch slots");
            Arc::clone(slots.entry((fp, k)).or_default())
        };
        let (tx, rx) = channel();
        let lead = {
            let mut st = slot.lock().expect("batch slot");
            st.pending.push(Pending { x, tx });
            if st.leader_active {
                false
            } else {
                st.leader_active = true;
                true
            }
        };
        if lead {
            // Drain-until-empty: requests that parked while a batch ran
            // become the next batch; the leader steps down only when the
            // slot is empty, so no request is left behind leaderless.
            loop {
                let batch = {
                    let mut st = slot.lock().expect("batch slot");
                    if st.pending.is_empty() {
                        st.leader_active = false;
                        break;
                    }
                    std::mem::take(&mut st.pending)
                };
                let width = batch.len();
                let cols: Vec<Vec<f64>> = batch.iter().map(|p| p.x.clone()).collect();
                let y = block_power(a, &MultiVec::from_columns(&cols), k);
                for (v, p) in batch.into_iter().enumerate() {
                    // A follower that gave up (disconnected) is fine.
                    let _ = p.tx.send(PowerOutcome { y: y.column(v), width });
                }
            }
        }
        // The leader receives its own column through the same channel, so
        // every path below is uniform. A RecvError means the leader
        // unwound before distributing (its send never happened).
        rx.recv().map_err(|_| "batch leader failed before distributing results".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbmpk::tune::fingerprint;
    use fbmpk_gen::poisson::grid2d_5pt;

    #[test]
    fn solo_power_matches_direct_block_power() {
        let a = grid2d_5pt(8, 8);
        let fp = fingerprint(&a);
        let x: Vec<f64> = (0..a.nrows()).map(|i| (i as f64).sin()).collect();
        let b = PowerBatcher::new();
        let out = b.power(fp, 3, &a, x.clone()).unwrap();
        assert_eq!(out.width, 1);
        let want = block_power(&a, &MultiVec::from_columns(&[x]), 3).column(0);
        assert_eq!(out.y, want, "solo batch must be the direct result");
    }

    #[test]
    fn concurrent_same_matrix_requests_coalesce_bit_identically() {
        let a = Arc::new(grid2d_5pt(12, 12));
        let fp = fingerprint(&a);
        let batcher = Arc::new(PowerBatcher::new());
        let n = a.nrows();
        let handles: Vec<_> = (0..16)
            .map(|r| {
                let (a, batcher) = (Arc::clone(&a), Arc::clone(&batcher));
                std::thread::spawn(move || {
                    let x: Vec<f64> = (0..n).map(|i| ((i + 7 * r) as f64).cos()).collect();
                    let out = batcher.power(fp, 4, &a, x.clone()).unwrap();
                    (r, x, out)
                })
            })
            .collect();
        let mut widths = Vec::new();
        for h in handles {
            let (r, x, out) = h.join().unwrap();
            let solo = block_power(&a, &MultiVec::from_columns(&[x]), 4).column(0);
            assert_eq!(out.y, solo, "request {r}: batched must be bit-identical to sequential");
            widths.push(out.width);
        }
        assert!(widths.iter().all(|&w| w >= 1));
    }

    #[test]
    fn distinct_k_do_not_share_a_batch() {
        let a = grid2d_5pt(6, 6);
        let fp = fingerprint(&a);
        let b = PowerBatcher::new();
        let x = vec![1.0; a.nrows()];
        let y1 = b.power(fp, 1, &a, x.clone()).unwrap().y;
        let y2 = b.power(fp, 2, &a, x.clone()).unwrap().y;
        assert_ne!(y1, y2);
        assert_eq!(y2, block_power(&a, &MultiVec::from_columns(&[x]), 2).column(0));
    }
}
