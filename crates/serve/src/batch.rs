//! Same-matrix request coalescing.
//!
//! Power requests naming the same matrix fingerprint and the same `k`
//! that arrive while one of them is executing are folded into a single
//! multi-vector SpMM ([`fbmpk_sparse::spmm::block_power`]): the matrix
//! is read once for all of them, which is exactly the traffic
//! amortization the paper pursues across iterations, applied across
//! *requests*. The SpMM inner loop accumulates every vector column with
//! the same per-row operation sequence a width-1 run uses, so a batched
//! response is bit-identical to serving the request alone — asserted in
//! `tests/serve_props.rs`.
//!
//! The mechanism is leader/follower: the first arrival for an idle
//! `(fingerprint, k)` slot becomes the leader and executes; requests
//! that arrive while it runs park their vectors in the slot, and the
//! leader drains them as its next batch. At low load every batch has
//! width 1 and no latency is added; under load the batch width grows
//! with the arrival rate.
//!
//! Two liveness guarantees bound the cost of leadership:
//!
//! * **Bounded tenure.** A leader runs at most [`MAX_LEADER_BATCHES`]
//!   SpMM executions (its own batch plus one follow-up), then hands
//!   leadership to a parked follower and returns its own result. Under
//!   sustained arrivals no request's latency grows with the arrival
//!   rate — each leader's wait is capped at two executions.
//! * **Panic abdication.** If the kernel panics under a leader, a drop
//!   guard resets the slot and drops every parked sender, so followers
//!   wake with a `RecvError` (mapped to a typed 500) instead of
//!   blocking forever, and the next arrival for the slot becomes a
//!   fresh leader. A panic costs exactly the requests in flight on the
//!   slot, never the slot itself.
//!
//! Slots whose last leader steps down with nothing pending are removed
//! from the map, so the per-`(fingerprint, k)` state is bounded by the
//! number of *concurrently active* keys, not every key ever seen.

use fbmpk_sparse::spmm::{block_power, MultiVec};
use fbmpk_sparse::Csr;
use std::collections::HashMap;
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex, MutexGuard};

/// One coalesced execution's result for one request.
#[derive(Debug)]
pub struct PowerOutcome {
    /// This request's output column.
    pub y: Vec<f64>,
    /// Width of the SpMM batch that produced it (1 = ran alone).
    pub width: usize,
}

/// What a parked request receives through its channel.
enum Msg {
    /// Its result: the shared execution finished.
    Done(PowerOutcome),
    /// Leadership handoff: run the next batches, then keep receiving.
    Lead,
}

struct Pending {
    x: Vec<f64>,
    tx: Sender<Msg>,
}

#[derive(Default)]
struct SlotState {
    pending: Vec<Pending>,
    leader_active: bool,
}

/// One shared `(fingerprint, k)` coalescing slot.
type SharedSlot = Arc<Mutex<SlotState>>;

/// SpMM executions one leader runs before handing leadership to a
/// parked follower. The leader's own result is produced by its first
/// execution, so its extra latency is bounded by one more batch — it
/// can never be held hostage by an open-loop arrival stream.
const MAX_LEADER_BATCHES: usize = 2;

/// Locks a slot, recovering the guard when a panicking peer poisoned
/// the mutex (slot state is a plain list + flag, valid at every step).
fn lock_slot(slot: &SharedSlot) -> MutexGuard<'_, SlotState> {
    match slot.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Resets a slot when its leader unwinds: parked senders are dropped so
/// every follower wakes with a `RecvError` (→ typed 500), and the slot
/// is reopened so the next arrival becomes a fresh leader. Disarmed on
/// every normal exit path.
struct AbdicateOnUnwind {
    slot: SharedSlot,
    armed: bool,
}

impl Drop for AbdicateOnUnwind {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let mut st = lock_slot(&self.slot);
        st.leader_active = false;
        st.pending.clear();
    }
}

/// Per-`(fingerprint, k)` coalescing state.
pub struct PowerBatcher {
    slots: Mutex<HashMap<(u64, usize), SharedSlot>>,
}

impl Default for PowerBatcher {
    fn default() -> Self {
        Self::new()
    }
}

impl PowerBatcher {
    /// An empty batcher.
    pub fn new() -> Self {
        PowerBatcher { slots: Mutex::new(HashMap::new()) }
    }

    /// Number of live coalescing slots (tests assert idle slots are
    /// collected).
    pub fn slot_count(&self) -> usize {
        self.slots.lock().expect("batch slots").len()
    }

    /// Computes `Aᵏ x`, coalescing with concurrent requests for the same
    /// `(fp, k)`. Blocks until the (possibly shared) execution finishes.
    /// `on_execute(width)` is called once per SpMM execution this call
    /// performs as leader (the server counts executions there, distinct
    /// from per-request counters).
    ///
    /// All callers for one `fp` must pass the same matrix (the
    /// fingerprint guarantees it) and `x.len() == a.nrows()` (the
    /// handler validates before calling).
    ///
    /// # Errors
    /// An error means the batch leader unwound mid-execution; the
    /// request maps it to a typed 500.
    pub fn power(
        &self,
        fp: u64,
        k: usize,
        a: &Csr,
        x: Vec<f64>,
        on_execute: &dyn Fn(usize),
    ) -> Result<PowerOutcome, String> {
        let key = (fp, k);
        let slot = {
            let mut slots = self.slots.lock().expect("batch slots");
            Arc::clone(slots.entry(key).or_default())
        };
        let (tx, rx) = channel();
        let lead = {
            let mut st = lock_slot(&slot);
            st.pending.push(Pending { x, tx });
            if st.leader_active {
                false
            } else {
                st.leader_active = true;
                true
            }
        };
        if lead {
            self.lead(&slot, key, a, k, on_execute);
        }
        // Both leaders and followers receive their own column through the
        // channel. A follower may first be handed leadership (its result
        // arrives in the batch it executes); a RecvError means the leader
        // unwound before distributing (its send never happened).
        loop {
            match rx.recv() {
                Ok(Msg::Done(out)) => return Ok(out),
                Ok(Msg::Lead) => self.lead(&slot, key, a, k, on_execute),
                Err(_) => {
                    return Err("batch leader failed before distributing results".to_string())
                }
            }
        }
    }

    /// The leader loop: drain parked requests in batches until the slot
    /// is empty or the tenure cap is reached (then hand off to a parked
    /// follower). On unwind the guard resets the slot (see
    /// [`AbdicateOnUnwind`]).
    fn lead(&self, slot: &SharedSlot, key: (u64, usize), a: &Csr, k: usize, on_execute: &dyn Fn(usize)) {
        let mut guard = AbdicateOnUnwind { slot: Arc::clone(slot), armed: true };
        let mut rounds = 0;
        loop {
            let batch = {
                let mut st = lock_slot(slot);
                if st.pending.is_empty() {
                    st.leader_active = false;
                    break;
                }
                if rounds >= MAX_LEADER_BATCHES {
                    // Tenure over: promote a parked follower (its channel
                    // is alive — it is blocked in recv — so the send only
                    // fails for an abandoned request; then try the next).
                    let mut handed = false;
                    for p in &st.pending {
                        if p.tx.send(Msg::Lead).is_ok() {
                            handed = true;
                            break;
                        }
                    }
                    if handed {
                        // leader_active stays true: leadership moved, the
                        // slot is never left attended-but-leaderless.
                        break;
                    }
                    // Every parked peer is gone; keep draining (nobody is
                    // waiting on the extra batches).
                }
                std::mem::take(&mut st.pending)
            };
            rounds += 1;
            let width = batch.len();
            let cols: Vec<Vec<f64>> = batch.iter().map(|p| p.x.clone()).collect();
            let y = block_power(a, &MultiVec::from_columns(&cols), k);
            on_execute(width);
            for (v, p) in batch.into_iter().enumerate() {
                // A follower that gave up (disconnected) is fine.
                let _ = p.tx.send(Msg::Done(PowerOutcome { y: y.column(v), width }));
            }
        }
        guard.armed = false;
        self.collect_idle(key);
    }

    /// Removes `key`'s slot if it is idle, bounding the map by the set
    /// of concurrently active keys. A racing request that already cloned
    /// the `Arc` keeps working on the orphaned slot (it only loses the
    /// chance to coalesce with arrivals that allocate a fresh one).
    fn collect_idle(&self, key: (u64, usize)) {
        let mut slots = self.slots.lock().expect("batch slots");
        if let Some(slot) = slots.get(&key) {
            let idle = {
                let st = lock_slot(slot);
                st.pending.is_empty() && !st.leader_active
            };
            if idle {
                slots.remove(&key);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbmpk::tune::fingerprint;
    use fbmpk_gen::poisson::grid2d_5pt;
    use std::sync::atomic::{AtomicUsize, Ordering};

    const NOOP: &dyn Fn(usize) = &|_| {};

    #[test]
    fn solo_power_matches_direct_block_power() {
        let a = grid2d_5pt(8, 8);
        let fp = fingerprint(&a);
        let x: Vec<f64> = (0..a.nrows()).map(|i| (i as f64).sin()).collect();
        let b = PowerBatcher::new();
        let execs = AtomicUsize::new(0);
        let out = b.power(fp, 3, &a, x.clone(), &|w| {
            assert_eq!(w, 1);
            execs.fetch_add(1, Ordering::Relaxed);
        });
        let out = out.unwrap();
        assert_eq!(out.width, 1);
        assert_eq!(execs.load(Ordering::Relaxed), 1, "one solo call, one execution");
        let want = block_power(&a, &MultiVec::from_columns(&[x]), 3).column(0);
        assert_eq!(out.y, want, "solo batch must be the direct result");
    }

    #[test]
    fn concurrent_same_matrix_requests_coalesce_bit_identically() {
        let a = Arc::new(grid2d_5pt(12, 12));
        let fp = fingerprint(&a);
        let batcher = Arc::new(PowerBatcher::new());
        let n = a.nrows();
        let handles: Vec<_> = (0..16)
            .map(|r| {
                let (a, batcher) = (Arc::clone(&a), Arc::clone(&batcher));
                std::thread::spawn(move || {
                    let x: Vec<f64> = (0..n).map(|i| ((i + 7 * r) as f64).cos()).collect();
                    let out = batcher.power(fp, 4, &a, x.clone(), NOOP).unwrap();
                    (r, x, out)
                })
            })
            .collect();
        let mut widths = Vec::new();
        for h in handles {
            let (r, x, out) = h.join().unwrap();
            let solo = block_power(&a, &MultiVec::from_columns(&[x]), 4).column(0);
            assert_eq!(out.y, solo, "request {r}: batched must be bit-identical to sequential");
            widths.push(out.width);
        }
        assert!(widths.iter().all(|&w| w >= 1));
    }

    #[test]
    fn distinct_k_do_not_share_a_batch() {
        let a = grid2d_5pt(6, 6);
        let fp = fingerprint(&a);
        let b = PowerBatcher::new();
        let x = vec![1.0; a.nrows()];
        let y1 = b.power(fp, 1, &a, x.clone(), NOOP).unwrap().y;
        let y2 = b.power(fp, 2, &a, x.clone(), NOOP).unwrap().y;
        assert_ne!(y1, y2);
        assert_eq!(y2, block_power(&a, &MultiVec::from_columns(&[x]), 2).column(0));
    }

    /// A panicking leader must not wedge the slot: the guard reopens it,
    /// so the next request for the same `(fp, k)` elects a fresh leader
    /// and succeeds.
    #[test]
    fn leader_panic_reopens_the_slot() {
        let a = grid2d_5pt(6, 6);
        let fp = fingerprint(&a);
        let b = PowerBatcher::new();
        // A wrong-length x trips the SpMM dimension assert inside the
        // leader's execution — the shape of any kernel panic.
        let bad = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = b.power(fp, 2, &a, vec![1.0; 3], NOOP);
        }));
        assert!(bad.is_err(), "wrong-length x must panic in the kernel");
        let out = b.power(fp, 2, &a, vec![1.0; a.nrows()], NOOP);
        let out = out.expect("slot must serve again after a leader panic");
        assert_eq!(out.width, 1);
        assert_eq!(out.y, block_power(&a, &MultiVec::from_columns(&[vec![1.0; a.nrows()]]), 2).column(0));
    }

    /// Sustained hammering of one `(fp, k)` must never deadlock or
    /// starve a request: leadership hands off after the tenure cap and
    /// every call completes with the right bits.
    #[test]
    fn sustained_arrivals_hand_off_leadership_and_all_complete() {
        let a = Arc::new(grid2d_5pt(10, 10));
        let fp = fingerprint(&a);
        let batcher = Arc::new(PowerBatcher::new());
        let n = a.nrows();
        let handles: Vec<_> = (0..8)
            .map(|r| {
                let (a, batcher) = (Arc::clone(&a), Arc::clone(&batcher));
                std::thread::spawn(move || {
                    for i in 0..6 {
                        let x: Vec<f64> =
                            (0..n).map(|j| ((j + 13 * r + i) as f64).sin()).collect();
                        let out = batcher.power(fp, 3, &a, x.clone(), NOOP).unwrap();
                        let solo = block_power(&a, &MultiVec::from_columns(&[x]), 3).column(0);
                        assert_eq!(out.y, solo, "request {r}.{i}");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no request may starve or deadlock");
        }
    }

    /// Idle slots are collected: after traffic drains, the map does not
    /// retain one entry per `(fp, k)` ever seen.
    #[test]
    fn idle_slots_are_collected() {
        let a = grid2d_5pt(5, 5);
        let fp = fingerprint(&a);
        let b = PowerBatcher::new();
        for k in 1..=5 {
            b.power(fp, k, &a, vec![1.0; a.nrows()], NOOP).unwrap();
        }
        assert_eq!(b.slot_count(), 0, "drained slots must be removed");
    }
}
