//! A resilient multi-tenant serving layer over the FBMPK kernels.
//!
//! The inspector-executor premise of the paper (and the OSKI line of
//! work it builds on) only pays off when the cost of tuning is amortized
//! over many executions. This crate turns the library into a
//! long-running service where that amortization actually happens:
//! concurrent tenants POST power/SpMV/MPK requests over the same
//! hand-rolled HTTP/1.1 machinery the metrics endpoint uses, and tuned
//! plans are cached, shared, and defended against every hostile scenario
//! a fleet of requests can produce.
//!
//! The pieces, bottom-up:
//!
//! * [`spec`] — the request wire format: a matrix described by a
//!   deterministic generator spec (`grid:NX:NY`, `banded:…`, `rmat:…`),
//!   a power `k`, and an input vector (explicit values, `ones`, or a
//!   deterministic `seed:S`). Bounds-checked so a request cannot ask the
//!   server to allocate unbounded memory.
//! * [`plancache`] — a single-flight plan cache keyed by the
//!   structure+value fingerprint from [`fbmpk::tune::fingerprint`]:
//!   concurrent requests for the same matrix block on one inspection,
//!   and a failed or panicking inspection is *negatively* cached with a
//!   decaying TTL so a crashing tenant cannot wedge the cache by
//!   re-triggering the same doomed build.
//! * [`admission`] — bounded-queue admission control with explicit
//!   rejection (HTTP 429 + `Retry-After` derived from observed service
//!   times), per-tenant concurrency quotas, and a three-rung
//!   load-shedding ladder: under moderate pressure untuned matrices get
//!   a probe-free scalar plan; under high pressure unknown tenants are
//!   rejected; near saturation only already-cached work is admitted.
//! * [`batch`] — same-matrix coalescing: power requests for an
//!   identical fingerprint that queue up behind an in-flight execution
//!   are folded into one multi-vector SpMM ([`fbmpk_sparse::spmm`]),
//!   which reads the matrix once for all of them. Column `v` of a
//!   width-`m` SpMM performs exactly the per-row operation sequence of a
//!   width-1 run, so batched results are bit-identical to sequential
//!   execution — asserted in `tests/serve_props.rs`.
//! * [`metrics`] — every admission, shed, fault, deadline, cache and
//!   batch decision counted, mirrored into the live telemetry registry
//!   ([`fbmpk_obs::live`]) for the exposition endpoint.
//! * [`server`] — the listener/handler threads tying it together.
//!   Per-request deadlines re-arm the watchdog of the shared plan
//!   ([`fbmpk::FbmpkPlan::try_power_deadline`]); expiry maps to a typed
//!   503 carrying the partial-progress dump, a worker panic to a typed
//!   500 for that request only — the pool, plan, and cache stay healthy.

pub mod admission;
pub mod batch;
pub mod client;
pub mod http;
pub mod metrics;
pub mod plancache;
pub mod server;
pub mod spec;

pub use admission::{Admission, Decision, Rejection, ShedReason};
pub use metrics::ServeMetrics;
pub use server::{PlanEntry, ServeConfig, Server};
pub use spec::{MatrixSpec, RequestSpec, XSpec};
