//! Minimal HTTP/1.1 request/response plumbing, shared by the serving
//! listener — same hand-rolled pattern as the metrics endpoint
//! (`fbmpk_obs::serve`), extended with bounded header/body sizes and a
//! body reader, so a slow-loris or oversized request maps to a typed
//! 400/413 instead of a wedged handler.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Upper bound on the request line + headers.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Upper bound on a request body.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// Path without the query string.
    pub path: String,
    /// Lower-cased header names with trimmed values.
    pub headers: Vec<(String, String)>,
    /// The body (`Content-Length` bytes).
    pub body: String,
}

impl Request {
    /// First value of header `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read (each maps to a typed response).
#[derive(Debug)]
pub enum ReadError {
    /// Syntactically broken request → 400.
    Malformed(&'static str),
    /// Head or body over the bound → 400/413.
    TooLarge(&'static str),
    /// Transport error (peer vanished); nothing to respond to.
    Io(std::io::Error),
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Reads and parses one request from `stream` with bounded head and
/// body sizes. The stream's read timeout (set by the caller) bounds how
/// long a slow client can hold the reader.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, ReadError> {
    let mut buf = vec![0u8; MAX_HEAD_BYTES];
    let mut len = 0;
    let head_end = loop {
        if let Some(pos) = find_terminator(&buf[..len]) {
            break pos;
        }
        if len == buf.len() {
            return Err(ReadError::TooLarge("request head exceeds the size bound"));
        }
        let n = stream.read(&mut buf[len..])?;
        if n == 0 {
            return Err(ReadError::Malformed("connection closed before the header terminator"));
        }
        len += n;
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| ReadError::Malformed("request head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, path, version) =
        (parts.next().unwrap_or(""), parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method.is_empty()
        || !method.bytes().all(|b| b.is_ascii_uppercase())
        || !path.starts_with('/')
        || !version.starts_with("HTTP/")
        || parts.next().is_some()
    {
        return Err(ReadError::Malformed("bad request line"));
    }
    let mut headers = Vec::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::Malformed("bad header line"));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| v.parse::<usize>().map_err(|_| ReadError::Malformed("bad Content-Length")))
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(ReadError::TooLarge("request body exceeds the size bound"));
    }
    // Body bytes already read past the terminator, then the remainder.
    let mut body = buf[head_end + 4..len].to_vec();
    while body.len() < content_length {
        let mut chunk = vec![0u8; (content_length - body.len()).min(64 * 1024)];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(ReadError::Malformed("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    let body =
        String::from_utf8(body).map_err(|_| ReadError::Malformed("request body is not UTF-8"))?;
    let path = path.split('?').next().unwrap_or(path).to_string();
    Ok(Request { method: method.to_string(), path, headers, body })
}

fn find_terminator(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// A response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers beyond `Content-Type`/`Content-Length`/`Connection`.
    pub headers: Vec<(&'static str, String)>,
    /// Plain-text body.
    pub body: String,
}

impl Response {
    /// A plain-text response with no extra headers.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response { status, headers: Vec::new(), body: body.into() }
    }

    /// Appends an extra header.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.headers.push((name, value.into()));
        self
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Writes the response (`Connection: close` — one request per
    /// connection, like the metrics endpoint).
    pub fn write(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            self.reason(),
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()
    }
}

/// Renders a result vector as the 200 body: one `f64` per line via
/// `Display`, whose shortest-round-trip formatting preserves the exact
/// bits — the batching bit-identity guarantee survives the wire.
pub fn render_vector(y: &[f64]) -> String {
    let mut out = String::with_capacity(y.len() * 20);
    for v in y {
        out.push_str(&v.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn roundtrip(raw: &[u8]) -> Result<Request, ReadError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            // The server may reject and close mid-write (oversized input),
            // so transport errors on this side are expected.
            let _ = s.write_all(&raw);
            let _ = s.shutdown(std::net::Shutdown::Write);
            // Hold the read side open until the server is done.
            let mut sink = Vec::new();
            let _ = s.read_to_end(&mut sink);
        });
        let (mut stream, _) = listener.accept().unwrap();
        let req = read_request(&mut stream);
        drop(stream);
        client.join().unwrap();
        req
    }

    #[test]
    fn parses_post_with_body() {
        let req = roundtrip(
            b"POST /v1/power HTTP/1.1\r\nHost: x\r\nX-Tenant: alice\r\nContent-Length: 5\r\n\r\nhello",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/power");
        assert_eq!(req.header("x-tenant"), Some("alice"));
        assert_eq!(req.header("X-Tenant"), Some("alice"));
        assert_eq!(req.body, "hello");
    }

    #[test]
    fn strips_query_string() {
        let req = roundtrip(b"GET /v1/stats?verbose=1 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.path, "/v1/stats");
    }

    #[test]
    fn rejects_garbage_and_oversize() {
        assert!(matches!(roundtrip(b"not http at all\r\n\r\n"), Err(ReadError::Malformed(_))));
        assert!(matches!(roundtrip(b"\x00\x01\x02\xff\r\n\r\n"), Err(ReadError::Malformed(_))));
        let huge = vec![b'A'; MAX_HEAD_BYTES + 1];
        assert!(matches!(roundtrip(&huge), Err(ReadError::TooLarge(_))));
        assert!(matches!(
            roundtrip(b"POST / HTTP/1.1\r\nContent-Length: 999999999999\r\n\r\n"),
            Err(ReadError::TooLarge(_))
        ));
        assert!(matches!(
            roundtrip(b"POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn vector_rendering_round_trips_bits() {
        let values = [1.0, -0.1, std::f64::consts::PI, 1e-300, -2.5e17, 0.0];
        let body = render_vector(&values);
        let parsed: Vec<f64> = body.lines().map(|l| l.parse().unwrap()).collect();
        for (a, b) in values.iter().zip(&parsed) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} must survive the wire exactly");
        }
    }
}
