//! Admission control: bounded queueing, tenant quotas, and the
//! load-shedding ladder.
//!
//! The server's request queue is a bounded channel; when it is full the
//! acceptor rejects *explicitly* (HTTP 429 with a `Retry-After` derived
//! from observed service times) instead of buffering without bound —
//! under sustained overload an unbounded queue only converts every
//! request into a timeout. Before the queue fills, pressure is shed in
//! rungs that each give up a little quality to protect what matters
//! most (cached tenants' latency):
//!
//! 1. **Degrade** (≥ 50% occupancy): requests for *untuned* matrices get
//!    a probe-free scalar plan instead of the full inspection — the
//!    expensive variant probe is exactly the work a loaded server cannot
//!    afford, and a scalar plan is still correct.
//! 2. **Reject new tenants** (≥ 75%): tenants without prior admitted
//!    work are turned away; established tenants keep their throughput.
//! 3. **Reject uncached work** (≥ 90%): only requests whose plan is
//!    already resident are admitted — the server spends its last
//!    capacity where the amortization premise actually holds.
//!
//! Every decision is explicit and counted; nothing is silently dropped.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Occupancy thresholds for the three ladder rungs.
const DEGRADE_OCCUPANCY: f64 = 0.5;
const NEW_TENANT_OCCUPANCY: f64 = 0.75;
const UNCACHED_OCCUPANCY: f64 = 0.9;

/// Bound on the known-tenant set (rung 2's allowlist). A trickle of
/// distinct `X-Tenant` names must not grow memory without bound; at the
/// cap an arbitrary established tenant is forgotten (it merely counts
/// as "new" again under rung 2 until its next idle-time admission).
const KNOWN_TENANT_CAP: usize = 4096;

/// Why a request was shed (the `X-Fbmpk-Shed` response header).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The bounded request queue was full.
    QueueFull,
    /// The tenant hit its in-flight concurrency quota.
    TenantQuota,
    /// Ladder rung 2: not a previously admitted tenant.
    NewTenant,
    /// Ladder rung 3: the plan is not resident and pressure is critical.
    Uncached,
}

impl ShedReason {
    /// Stable wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue-full",
            ShedReason::TenantQuota => "tenant-quota",
            ShedReason::NewTenant => "new-tenant",
            ShedReason::Uncached => "uncached",
        }
    }
}

/// A typed rejection: always a 429, never a dropped connection.
#[derive(Debug, Clone, Copy)]
pub struct Rejection {
    /// What was shed.
    pub reason: ShedReason,
    /// Suggested client backoff in whole seconds (the `Retry-After`
    /// header), from the service-time EWMA × queue depth.
    pub retry_after_s: u64,
}

/// The admission verdict for one request.
#[derive(Debug)]
pub enum Decision {
    /// Run it. `degrade` asks the plan builder for the probe-free scalar
    /// plan (ladder rung 1); `ticket` releases the tenant slot on drop.
    Admit {
        /// Build degraded if the plan is not yet cached.
        degrade: bool,
        /// Tenant concurrency slot (RAII).
        ticket: TenantTicket,
    },
    /// Shed, with the typed reason and backoff hint.
    Reject(Rejection),
}

/// Admission state shared by the acceptor and handler threads.
pub struct Admission {
    queue_cap: usize,
    tenant_cap: usize,
    handlers: usize,
    /// Requests currently in the bounded queue (acceptor increments,
    /// handlers decrement) — the ladder's pressure signal.
    depth: AtomicUsize,
    /// In-flight (admitted, not yet completed) requests per tenant.
    /// `Arc`-shared with the tickets so a slot is released even when the
    /// holding handler unwinds.
    inflight: Arc<Mutex<HashMap<String, usize>>>,
    /// Tenants that have ever been admitted (rung 2's allowlist).
    known: Mutex<HashSet<String>>,
    /// EWMA of observed service milliseconds, stored as `f64` bits.
    ewma_ms_bits: AtomicU64,
}

impl Admission {
    /// New admission state for a queue of `queue_cap`, `tenant_cap`
    /// in-flight requests per tenant, and `handlers` handler threads
    /// (the drain rate behind `Retry-After`).
    pub fn new(queue_cap: usize, tenant_cap: usize, handlers: usize) -> Self {
        Admission {
            queue_cap: queue_cap.max(1),
            tenant_cap: tenant_cap.max(1),
            handlers: handlers.max(1),
            depth: AtomicUsize::new(0),
            inflight: Arc::new(Mutex::new(HashMap::new())),
            known: Mutex::new(HashSet::new()),
            ewma_ms_bits: AtomicU64::new(10.0f64.to_bits()),
        }
    }

    /// Acceptor-side: a request entered the bounded queue.
    pub fn enqueued(&self) {
        self.depth.fetch_add(1, Ordering::Relaxed);
    }

    /// Handler-side: a request left the queue.
    pub fn dequeued(&self) {
        let prev = self.depth.fetch_sub(1, Ordering::Relaxed);
        debug_assert!(prev > 0, "queue depth underflow");
    }

    /// Current queued-request count.
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Queue occupancy in `[0, ∞)` (can exceed 1 transiently: the depth
    /// counter includes the request a handler just popped).
    pub fn occupancy(&self) -> f64 {
        self.depth() as f64 / self.queue_cap as f64
    }

    /// Folds an observed service time into the `Retry-After` EWMA.
    pub fn observe_service_ms(&self, ms: f64) {
        // Benign read-modify-write race: concurrent observers may drop an
        // update; the EWMA is a hint, not an invariant.
        let prev = f64::from_bits(self.ewma_ms_bits.load(Ordering::Relaxed));
        let next = 0.9 * prev + 0.1 * ms.max(0.0);
        self.ewma_ms_bits.store(next.to_bits(), Ordering::Relaxed);
    }

    /// The current service-time estimate in milliseconds.
    pub fn service_ewma_ms(&self) -> f64 {
        f64::from_bits(self.ewma_ms_bits.load(Ordering::Relaxed))
    }

    /// Backoff hint for a rejection issued at queue depth `depth`:
    /// roughly how long the queue needs to drain at the observed service
    /// rate, in whole seconds, clamped to `[1, 60]`.
    pub fn retry_after_s(&self, depth: usize) -> u64 {
        let drain_ms = self.service_ewma_ms() * (depth + 1) as f64 / self.handlers as f64;
        (drain_ms / 1000.0).ceil().clamp(1.0, 60.0) as u64
    }

    /// The queue-full rejection the acceptor writes inline when the
    /// bounded channel refuses a request.
    pub fn reject_queue_full(&self) -> Rejection {
        Rejection { reason: ShedReason::QueueFull, retry_after_s: self.retry_after_s(self.depth()) }
    }

    /// Runs the ladder and tenant quota for a parsed request.
    /// `plan_cached` is whether the matrix's plan is already resident.
    pub fn decide(&self, tenant: &str, plan_cached: bool) -> Decision {
        let occupancy = self.occupancy();
        let reject = |reason| {
            Decision::Reject(Rejection { reason, retry_after_s: self.retry_after_s(self.depth()) })
        };
        if occupancy >= UNCACHED_OCCUPANCY && !plan_cached {
            return reject(ShedReason::Uncached);
        }
        if occupancy >= NEW_TENANT_OCCUPANCY
            && !self.known.lock().expect("known tenants").contains(tenant)
        {
            return reject(ShedReason::NewTenant);
        }
        {
            let mut inflight = self.inflight.lock().expect("tenant inflight");
            let count = inflight.entry(tenant.to_string()).or_insert(0);
            if *count >= self.tenant_cap {
                return reject(ShedReason::TenantQuota);
            }
            *count += 1;
        }
        {
            let mut known = self.known.lock().expect("known tenants");
            if !known.contains(tenant) && known.len() >= KNOWN_TENANT_CAP {
                if let Some(victim) = known.iter().next().cloned() {
                    known.remove(&victim);
                }
            }
            known.insert(tenant.to_string());
        }
        Decision::Admit {
            degrade: occupancy >= DEGRADE_OCCUPANCY && !plan_cached,
            ticket: TenantTicket {
                tenant: tenant.to_string(),
                inflight: Arc::clone(&self.inflight),
            },
        }
    }

    /// In-flight count for `tenant` (tests and stats).
    pub fn tenant_inflight(&self, tenant: &str) -> usize {
        self.inflight.lock().expect("tenant inflight").get(tenant).copied().unwrap_or(0)
    }

    /// Size of the known-tenant allowlist (tests assert the bound).
    pub fn known_tenants(&self) -> usize {
        self.known.lock().expect("known tenants").len()
    }
}

/// RAII tenant-concurrency slot: dropping it releases the quota, even
/// when the holding handler unwinds past it (a faulting request must not
/// permanently consume its tenant's concurrency budget).
#[derive(Debug)]
pub struct TenantTicket {
    tenant: String,
    inflight: Arc<Mutex<HashMap<String, usize>>>,
}

impl Drop for TenantTicket {
    fn drop(&mut self) {
        let mut inflight = self.inflight.lock().expect("tenant inflight");
        if let Some(count) = inflight.get_mut(&self.tenant) {
            *count = count.saturating_sub(1);
            if *count == 0 {
                inflight.remove(&self.tenant);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn admit_ok(a: &Admission, tenant: &str, cached: bool) -> Option<(bool, TenantTicket)> {
        match a.decide(tenant, cached) {
            Decision::Admit { degrade, ticket } => Some((degrade, ticket)),
            Decision::Reject(_) => None,
        }
    }

    #[test]
    fn idle_admissions_are_full_quality() {
        let a = Admission::new(10, 2, 2);
        let (degrade, t) = admit_ok(&a, "alice", false).expect("admit");
        assert!(!degrade, "no degradation when idle");
        assert_eq!(a.tenant_inflight("alice"), 1);
        drop(t);
        assert_eq!(a.tenant_inflight("alice"), 0);
    }

    #[test]
    fn tenant_quota_rejects_typed() {
        let a = Admission::new(100, 2, 2);
        let t1 = admit_ok(&a, "bob", true).unwrap().1;
        let t2 = admit_ok(&a, "bob", true).unwrap().1;
        match a.decide("bob", true) {
            Decision::Reject(r) => {
                assert_eq!(r.reason, ShedReason::TenantQuota);
                assert!(r.retry_after_s >= 1);
            }
            Decision::Admit { .. } => panic!("quota must reject"),
        }
        // Other tenants are unaffected.
        let t3 = admit_ok(&a, "carol", true).unwrap().1;
        drop(t1);
        let t4 = admit_ok(&a, "bob", true).unwrap().1;
        drop((t2, t3, t4));
    }

    #[test]
    fn ladder_rungs_engage_with_occupancy() {
        let a = Admission::new(10, 8, 2);
        // Establish "vet" as a known tenant while idle.
        let t = admit_ok(&a, "vet", false).unwrap().1;
        drop(t);
        // Rung 1 (50%): degrade uncached work, cached work untouched.
        for _ in 0..5 {
            a.enqueued();
        }
        let (degrade, t) = admit_ok(&a, "vet", false).unwrap();
        assert!(degrade, "rung 1 degrades uncached plans");
        drop(t);
        let (degrade, t) = admit_ok(&a, "vet", true).unwrap();
        assert!(!degrade, "cached plans never degrade");
        drop(t);
        // Rung 2 (75%): new tenants rejected, known tenants admitted.
        for _ in 0..3 {
            a.enqueued();
        }
        match a.decide("stranger", false) {
            Decision::Reject(r) => assert_eq!(r.reason, ShedReason::NewTenant),
            Decision::Admit { .. } => panic!("rung 2 must reject new tenants"),
        }
        let t = admit_ok(&a, "vet", true).unwrap().1;
        drop(t);
        // Rung 3 (90%): only cached work admitted, even for known tenants.
        a.enqueued();
        match a.decide("vet", false) {
            Decision::Reject(r) => assert_eq!(r.reason, ShedReason::Uncached),
            Decision::Admit { .. } => panic!("rung 3 must reject uncached work"),
        }
        let t = admit_ok(&a, "vet", true).unwrap().1;
        drop(t);
        for _ in 0..9 {
            a.dequeued();
        }
        assert_eq!(a.depth(), 0);
    }

    #[test]
    fn known_tenant_set_is_bounded() {
        let a = Admission::new(10, 2, 2);
        for i in 0..(KNOWN_TENANT_CAP + 50) {
            let t = admit_ok(&a, &format!("tenant-{i}"), true).expect("idle admission").1;
            drop(t);
        }
        assert!(
            a.known_tenants() <= KNOWN_TENANT_CAP,
            "allowlist grew to {} entries",
            a.known_tenants()
        );
    }

    #[test]
    fn retry_after_tracks_service_times_and_depth() {
        let a = Admission::new(10, 2, 2);
        for _ in 0..20 {
            a.observe_service_ms(2000.0);
        }
        let shallow = a.retry_after_s(0);
        let deep = a.retry_after_s(9);
        assert!(deep > shallow, "deeper queues advise longer backoff");
        assert!((1..=60).contains(&shallow) && (1..=60).contains(&deep));
        let r = a.reject_queue_full();
        assert_eq!(r.reason, ShedReason::QueueFull);
    }
}
