//! The request wire format.
//!
//! A kernel request is a plain-text body of `key=value` lines:
//!
//! ```text
//! matrix=grid:32:32
//! k=4
//! x=seed:7
//! ```
//!
//! Matrices are described by *generator specs* rather than uploaded:
//! every spec is deterministic, so two tenants naming the same spec get
//! the same matrix (and therefore the same fingerprint and the same
//! cached plan), and a load generator can replay a scenario exactly.
//! All parameters are bounds-checked at parse time — a request must not
//! be able to ask the server for an unbounded allocation.

use fbmpk_gen::banded::{banded_symmetric, BandedParams};
use fbmpk_gen::poisson::grid2d_5pt;
use fbmpk_gen::rmat::{rmat, RmatParams};
use fbmpk_sparse::Csr;

/// Largest matrix dimension a request may name (2²² rows ≈ 100 MB of
/// CSR at typical densities — generous, but bounded).
pub const MAX_N: usize = 1 << 22;
/// Largest power `k` a request may ask for.
pub const MAX_K: usize = 64;

/// A deterministic matrix-generator spec.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MatrixSpec {
    /// `grid:NX:NY` — 2-D 5-point Poisson stencil.
    Grid { nx: usize, ny: usize },
    /// `banded:N:NNZ:BW:SEED` — banded symmetric random matrix with
    /// `NNZ` mean nonzeros per row inside half-bandwidth `BW`.
    Banded { n: usize, nnz_per_row: u32, bandwidth: usize, seed: u64 },
    /// `rmat:SCALE:EF:SEED` — power-law R-MAT graph, `n = 2^SCALE`,
    /// `EF` edges per vertex, symmetric pattern.
    Rmat { scale: u32, edge_factor: usize, seed: u64 },
}

impl MatrixSpec {
    /// Parses `grid:32:32`-style specs; the error is a client-facing
    /// message (the 400 body).
    pub fn parse(s: &str) -> Result<Self, String> {
        let fields: Vec<&str> = s.split(':').collect();
        let num = |f: &str, what: &str| -> Result<u64, String> {
            f.parse::<u64>().map_err(|_| format!("bad {what} in matrix spec {s:?}"))
        };
        let spec = match fields.as_slice() {
            ["grid", nx, ny] => MatrixSpec::Grid {
                nx: num(nx, "nx")? as usize,
                ny: num(ny, "ny")? as usize,
            },
            ["banded", n, nnz, bw, seed] => MatrixSpec::Banded {
                n: num(n, "n")? as usize,
                nnz_per_row: num(nnz, "nnz_per_row")? as u32,
                bandwidth: num(bw, "bandwidth")? as usize,
                seed: num(seed, "seed")?,
            },
            ["rmat", scale, ef, seed] => MatrixSpec::Rmat {
                scale: num(scale, "scale")? as u32,
                edge_factor: num(ef, "edge_factor")? as usize,
                seed: num(seed, "seed")?,
            },
            _ => return Err(format!("unknown matrix spec {s:?} (grid:NX:NY | banded:N:NNZ:BW:SEED | rmat:SCALE:EF:SEED)")),
        };
        spec.validate()?;
        Ok(spec)
    }

    fn validate(&self) -> Result<(), String> {
        let ok = match *self {
            MatrixSpec::Grid { nx, ny } => {
                nx >= 1 && ny >= 1 && nx <= MAX_N && ny <= MAX_N && nx.saturating_mul(ny) <= MAX_N
            }
            MatrixSpec::Banded { n, nnz_per_row, bandwidth, .. } => {
                (1..=MAX_N).contains(&n) && (1..=256).contains(&nnz_per_row) && bandwidth <= n
            }
            MatrixSpec::Rmat { scale, edge_factor, .. } => {
                scale >= 1 && (1usize << scale.min(63)) <= MAX_N && (1..=64).contains(&edge_factor)
            }
        };
        if ok {
            Ok(())
        } else {
            Err(format!("matrix spec out of bounds: {}", self.canonical()))
        }
    }

    /// The normalized spec string — the key of the spec → fingerprint
    /// map (parsing then canonicalizing is idempotent).
    pub fn canonical(&self) -> String {
        match *self {
            MatrixSpec::Grid { nx, ny } => format!("grid:{nx}:{ny}"),
            MatrixSpec::Banded { n, nnz_per_row, bandwidth, seed } => {
                format!("banded:{n}:{nnz_per_row}:{bandwidth}:{seed}")
            }
            MatrixSpec::Rmat { scale, edge_factor, seed } => {
                format!("rmat:{scale}:{edge_factor}:{seed}")
            }
        }
    }

    /// Runs the generator. Deterministic: the same spec always yields a
    /// bit-identical matrix.
    pub fn build(&self) -> Csr {
        match *self {
            MatrixSpec::Grid { nx, ny } => grid2d_5pt(nx, ny),
            MatrixSpec::Banded { n, nnz_per_row, bandwidth, seed } => {
                banded_symmetric(BandedParams {
                    n,
                    nnz_per_row: nnz_per_row as f64,
                    bandwidth,
                    seed,
                })
            }
            MatrixSpec::Rmat { scale, edge_factor, seed } => {
                rmat(RmatParams { scale, edge_factor, symmetric: true, seed, ..Default::default() })
            }
        }
    }
}

/// How the input vector is supplied.
#[derive(Debug, Clone, PartialEq)]
pub enum XSpec {
    /// `x=ones` — all-ones vector.
    Ones,
    /// `x=seed:S` — deterministic pseudo-random values in `[-1, 1)`
    /// (splitmix64; platform-independent, so replays are bit-exact).
    Seed(u64),
    /// `x=v0,v1,…` — explicit values; the length must match the matrix.
    Values(Vec<f64>),
}

impl XSpec {
    fn parse(s: &str) -> Result<Self, String> {
        if s == "ones" {
            return Ok(XSpec::Ones);
        }
        if let Some(seed) = s.strip_prefix("seed:") {
            let seed = seed.parse::<u64>().map_err(|_| format!("bad x seed {seed:?}"))?;
            return Ok(XSpec::Seed(seed));
        }
        let values: Result<Vec<f64>, _> = s.split(',').map(|v| v.trim().parse::<f64>()).collect();
        match values {
            Ok(v) if !v.is_empty() => Ok(XSpec::Values(v)),
            _ => Err(format!("bad x spec {s:?} (ones | seed:S | comma-separated values)")),
        }
    }

    /// Materializes the vector for dimension `n`; explicit values of the
    /// wrong length are a client error.
    pub fn materialize(&self, n: usize) -> Result<Vec<f64>, String> {
        match self {
            XSpec::Ones => Ok(vec![1.0; n]),
            XSpec::Seed(seed) => {
                let mut state = *seed;
                Ok((0..n)
                    .map(|_| {
                        let z = splitmix64(&mut state);
                        ((z >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
                    })
                    .collect())
            }
            XSpec::Values(v) => {
                if v.len() == n {
                    Ok(v.clone())
                } else {
                    Err(format!("x has {} values, matrix dimension is {n}", v.len()))
                }
            }
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A parsed kernel request body.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestSpec {
    /// The matrix to run against.
    pub matrix: MatrixSpec,
    /// Number of SpMV applications (`k=0` is the identity).
    pub k: usize,
    /// The input vector.
    pub x: XSpec,
}

impl RequestSpec {
    /// Parses a `key=value`-lines body; the error is the 400 body.
    pub fn parse(body: &str) -> Result<Self, String> {
        let (mut matrix, mut k, mut x) = (None, None, None);
        for line in body.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("bad request line {line:?} (want key=value)"));
            };
            match key.trim() {
                "matrix" => matrix = Some(MatrixSpec::parse(value.trim())?),
                "k" => {
                    let v = value
                        .trim()
                        .parse::<usize>()
                        .map_err(|_| format!("bad k {:?}", value.trim()))?;
                    if v > MAX_K {
                        return Err(format!("k={v} exceeds the limit of {MAX_K}"));
                    }
                    k = Some(v);
                }
                "x" => x = Some(XSpec::parse(value.trim())?),
                other => return Err(format!("unknown request key {other:?}")),
            }
        }
        Ok(RequestSpec {
            matrix: matrix.ok_or("missing matrix=")?,
            k: k.unwrap_or(1),
            x: x.unwrap_or(XSpec::Ones),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_canonicalizes() {
        let s = RequestSpec::parse("matrix=grid:8:4\nk=3\nx=seed:9\n").unwrap();
        assert_eq!(s.matrix, MatrixSpec::Grid { nx: 8, ny: 4 });
        assert_eq!(s.matrix.canonical(), "grid:8:4");
        assert_eq!(s.k, 3);
        assert_eq!(s.x, XSpec::Seed(9));
        let m = MatrixSpec::parse("banded:100:8:12:3").unwrap();
        assert_eq!(MatrixSpec::parse(&m.canonical()).unwrap(), m);
    }

    #[test]
    fn defaults_and_explicit_values() {
        let s = RequestSpec::parse("matrix=grid:2:2\nx=1.5, 2.5,3,4").unwrap();
        assert_eq!(s.k, 1);
        assert_eq!(s.x.materialize(4).unwrap(), vec![1.5, 2.5, 3.0, 4.0]);
        assert!(s.x.materialize(3).is_err());
    }

    #[test]
    fn seed_vector_is_deterministic_and_bounded() {
        let a = XSpec::Seed(42).materialize(100).unwrap();
        let b = XSpec::Seed(42).materialize(100).unwrap();
        assert_eq!(a, b);
        assert!(a.iter().all(|v| (-1.0..1.0).contains(v)));
        assert_ne!(a, XSpec::Seed(43).materialize(100).unwrap());
    }

    #[test]
    fn rejects_malformed_and_oversized() {
        assert!(RequestSpec::parse("matrix=grid:0:4").is_err());
        assert!(RequestSpec::parse("matrix=grid:9999999:9999999").is_err());
        assert!(RequestSpec::parse("matrix=mystery:1").is_err());
        assert!(RequestSpec::parse("matrix=grid:2:2\nk=1000").is_err());
        assert!(RequestSpec::parse("matrix=grid:2:2\nbogus=1").is_err());
        assert!(RequestSpec::parse("k=1").is_err(), "matrix is required");
        assert!(MatrixSpec::parse("rmat:40:8:1").is_err(), "scale bound");
    }

    #[test]
    fn specs_build_square_matrices() {
        for spec in ["grid:6:5", "banded:64:6:8:1", "rmat:5:4:2"] {
            let a = MatrixSpec::parse(spec).unwrap().build();
            assert_eq!(a.nrows(), a.ncols(), "{spec}");
            assert!(a.nrows() > 0, "{spec}");
        }
    }
}
