//! A raw-`TcpStream` client for the serving endpoint — the consumer
//! half used by the load generator and the property tests (the same
//! role `fbmpk_obs::serve::scrape` plays for the metrics endpoint).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Lower-cased header names with trimmed values.
    pub headers: Vec<(String, String)>,
    /// The body.
    pub body: String,
}

impl ClientResponse {
    /// First value of header `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }
}

/// Sends one request and reads the full response. An `Err` is an
/// *untyped* failure (connect refused, reset, timeout, unparseable
/// response) — the load generator counts those separately because the
/// server promises typed rejections, never dropped connections.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
    timeout: Duration,
) -> std::io::Result<ClientResponse> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n");
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    parse_response(&response)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "unparseable response"))
}

fn parse_response(raw: &str) -> Option<ClientResponse> {
    let (head, body) = raw.split_once("\r\n\r\n")?;
    let mut lines = head.lines();
    let status_line = lines.next()?;
    let status = status_line.split(' ').nth(1)?.parse::<u16>().ok()?;
    let headers = lines
        .filter_map(|l| {
            let (n, v) = l.split_once(':')?;
            Some((n.trim().to_ascii_lowercase(), v.trim().to_string()))
        })
        .collect();
    Some(ClientResponse { status, headers, body: body.to_string() })
}

/// Builds a kernel-request body.
pub fn kernel_body(matrix: &str, k: usize, x: &str) -> String {
    format!("matrix={matrix}\nk={k}\nx={x}\n")
}

/// Parses a 200 body back into the result vector.
pub fn parse_vector(body: &str) -> Result<Vec<f64>, String> {
    body.lines()
        .map(|l| l.trim().parse::<f64>().map_err(|_| format!("bad value line {l:?}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response() {
        let r = parse_response(
            "HTTP/1.1 429 Too Many Requests\r\nRetry-After: 3\r\nX-Fbmpk-Shed: queue-full\r\n\r\nqueue full\n",
        )
        .unwrap();
        assert_eq!(r.status, 429);
        assert_eq!(r.header("retry-after"), Some("3"));
        assert_eq!(r.header("X-Fbmpk-Shed"), Some("queue-full"));
        assert_eq!(r.body, "queue full\n");
    }

    #[test]
    fn vector_parse_round_trip() {
        let v = parse_vector("1\n-2.5\n3.25e-4\n").unwrap();
        assert_eq!(v, vec![1.0, -2.5, 3.25e-4]);
        assert!(parse_vector("1\nnope\n").is_err());
    }
}
