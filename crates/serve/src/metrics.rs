//! Serving-layer accounting.
//!
//! Every admission, shed, degradation, deadline expiry, fault, cache
//! and batch decision increments exactly one counter here. The counters
//! are plain atomics (readable in-process via [`ServeMetrics::snapshot`]
//! and the `/v1/stats` endpoint) and are mirrored into the process-wide
//! live telemetry registry ([`fbmpk_obs::live`]) so the exposition
//! endpoint and `repro top` see the serving families next to the kernel
//! families.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::admission::ShedReason;

macro_rules! serve_metrics {
    ($( $field:ident => ($name:literal, $help:literal) ),+ $(,)?) => {
        /// Counter block for one server instance.
        #[derive(Debug, Default)]
        pub struct ServeMetrics {
            $(
                #[doc = $help]
                pub $field: AtomicU64,
            )+
        }

        /// A point-in-time copy of every counter.
        #[derive(Debug, Clone, Default, PartialEq, Eq)]
        pub struct StatsSnapshot {
            $(
                #[doc = $help]
                pub $field: u64,
            )+
        }

        impl ServeMetrics {
            /// Copies every counter.
            pub fn snapshot(&self) -> StatsSnapshot {
                StatsSnapshot {
                    $( $field: self.$field.load(Ordering::Relaxed), )+
                }
            }

            /// Renders `name value` lines (the `/v1/stats` body; also the
            /// load generator's scrape format).
            pub fn render(&self) -> String {
                let mut out = String::new();
                $(
                    out.push_str(concat!($name, " "));
                    out.push_str(&self.$field.load(Ordering::Relaxed).to_string());
                    out.push('\n');
                )+
                out
            }

            fn live_name(field: &str) -> Option<&'static str> {
                match field {
                    $( stringify!($field) => Some($name), )+
                    _ => None,
                }
            }

            fn live_help(field: &str) -> Option<&'static str> {
                match field {
                    $( stringify!($field) => Some($help), )+
                    _ => None,
                }
            }
        }

        impl StatsSnapshot {
            /// Parses the `/v1/stats` body back into a snapshot (missing
            /// lines stay zero; unknown lines are ignored).
            pub fn parse(body: &str) -> StatsSnapshot {
                let mut s = StatsSnapshot::default();
                for line in body.lines() {
                    let Some((name, value)) = line.rsplit_once(' ') else { continue };
                    let Ok(value) = value.parse::<u64>() else { continue };
                    match name {
                        $( $name => s.$field = value, )+
                        _ => {}
                    }
                }
                s
            }
        }
    };
}

serve_metrics! {
    requests => ("fbmpk_serve_requests_total", "Requests received (any route)"),
    ok => ("fbmpk_serve_ok_total", "Requests answered 200"),
    bad_request => ("fbmpk_serve_bad_request_total", "Malformed requests answered 400"),
    not_found => ("fbmpk_serve_not_found_total", "Unknown routes answered 404"),
    shed_queue_full => ("fbmpk_serve_shed_queue_full_total", "429s from the bounded queue refusing a request"),
    shed_tenant_quota => ("fbmpk_serve_shed_tenant_quota_total", "429s from the per-tenant concurrency quota"),
    shed_new_tenant => ("fbmpk_serve_shed_new_tenant_total", "429s from ladder rung 2 (new tenants rejected)"),
    shed_uncached => ("fbmpk_serve_shed_uncached_total", "429s from ladder rung 3 (only cached work admitted)"),
    degraded => ("fbmpk_serve_degraded_total", "Requests served off a probe-free scalar plan (ladder rung 1)"),
    deadline_expired => ("fbmpk_serve_deadline_expired_total", "503s from per-request deadline expiry (queue or watchdog)"),
    worker_fault => ("fbmpk_serve_worker_fault_total", "500s from a worker fault isolated to one request"),
    plan_unavailable => ("fbmpk_serve_plan_unavailable_total", "503s from failed or negatively-cached plan builds"),
    cache_hits => ("fbmpk_serve_cache_hits_total", "Plan-cache lookups served from a resident plan"),
    cache_misses => ("fbmpk_serve_cache_misses_total", "Plan-cache lookups that ran an inspection"),
    cache_singleflight_waits => ("fbmpk_serve_cache_singleflight_waits_total", "Lookups that waited on another caller's in-flight build"),
    cache_negative_hits => ("fbmpk_serve_cache_negative_hits_total", "Lookups refused by a live negative-cache entry"),
    cache_build_failures => ("fbmpk_serve_cache_build_failures_total", "Plan builds that failed or panicked (and were negatively cached)"),
    batched => ("fbmpk_serve_batched_total", "Power requests that shared an SpMM batch of width > 1"),
    batch_executions => ("fbmpk_serve_batch_executions_total", "Coalesced SpMM executions run on behalf of >= 1 request"),
}

impl ServeMetrics {
    /// Increments `field`'s counter and mirrors it into the live
    /// registry (lane 0 — serving counters are not per-thread).
    pub fn inc(&self, counter: &AtomicU64, field: &'static str) {
        counter.fetch_add(1, Ordering::Relaxed);
        if let (Some(name), Some(help)) = (Self::live_name(field), Self::live_help(field)) {
            if fbmpk_obs::live::enabled() {
                fbmpk_obs::live::global().counter(name, help, 1).inc(0);
            }
        }
    }

    /// The shed counter for `reason`.
    pub fn count_shed(&self, reason: ShedReason) {
        match reason {
            ShedReason::QueueFull => self.inc(&self.shed_queue_full, "shed_queue_full"),
            ShedReason::TenantQuota => self.inc(&self.shed_tenant_quota, "shed_tenant_quota"),
            ShedReason::NewTenant => self.inc(&self.shed_new_tenant, "shed_new_tenant"),
            ShedReason::Uncached => self.inc(&self.shed_uncached, "shed_uncached"),
        }
    }
}

impl StatsSnapshot {
    /// Total typed rejections (every 429).
    pub fn shed_total(&self) -> u64 {
        self.shed_queue_full + self.shed_tenant_quota + self.shed_new_tenant + self.shed_uncached
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trips() {
        let m = ServeMetrics::default();
        m.inc(&m.requests, "requests");
        m.inc(&m.requests, "requests");
        m.inc(&m.ok, "ok");
        m.count_shed(ShedReason::QueueFull);
        m.count_shed(ShedReason::Uncached);
        let snap = StatsSnapshot::parse(&m.render());
        assert_eq!(snap, m.snapshot());
        assert_eq!(snap.requests, 2);
        assert_eq!(snap.shed_total(), 2);
    }

    #[test]
    fn shed_reasons_hit_distinct_counters() {
        let m = ServeMetrics::default();
        for r in [
            ShedReason::QueueFull,
            ShedReason::TenantQuota,
            ShedReason::NewTenant,
            ShedReason::Uncached,
        ] {
            m.count_shed(r);
        }
        let s = m.snapshot();
        assert_eq!(
            (s.shed_queue_full, s.shed_tenant_quota, s.shed_new_tenant, s.shed_uncached),
            (1, 1, 1, 1)
        );
    }

    #[test]
    fn live_registry_mirrors_when_enabled() {
        fbmpk_obs::live::set_enabled(true);
        let m = ServeMetrics::default();
        let before =
            fbmpk_obs::live::global().snapshot().counter_total("fbmpk_serve_worker_fault_total");
        m.inc(&m.worker_fault, "worker_fault");
        let after =
            fbmpk_obs::live::global().snapshot().counter_total("fbmpk_serve_worker_fault_total");
        assert_eq!(after, before + 1, "shed/fault decisions must reach the live registry");
    }
}
