//! Traffic attribution: reconciling the modeled, simulated and measured
//! byte ledgers at (block × power) granularity.
//!
//! The paper's §III-B model prices the bytes each sweep *must* stream;
//! `fbmpk-memsim` replays what a cache hierarchy *would* move; and
//! `perf_event` counters report what the hardware *did* move. Each ledger
//! decomposes per block (the point-to-point schedule's unit of work), so
//! their disagreement localizes: a block whose measured/modeled ratio is
//! high is where the streaming assumption breaks — typically a partition
//! boundary block whose cut edges gather remote vector entries.
//!
//! This module owns the ledger-merge types ([`AttributionReport`]) and
//! the measured ledger's collector ([`HwAttributionProbe`]): a [`Probe`]
//! implementation that samples per-thread hardware counters at the block
//! boundaries the kernels already instrument, attributing LLC-miss deltas
//! to the block that just executed. The modeled and simulated ledgers are
//! computed by `fbmpk-core` and `fbmpk-memsim`; the bench harness feeds
//! all three here as plain numbers (this crate depends on neither).

use crate::perf::{HwSample, HwSession};
use crate::recorder::{Span, SpanKind};
use crate::Probe;
use std::cell::UnsafeCell;

/// Estimated bytes per LLC miss: one cache line.
pub const LINE_BYTES: u64 = 64;

/// One (block × power) cell with all three ledgers side by side.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellLedger {
    /// Global block id.
    pub block: u32,
    /// The block's ABMC color.
    pub color: u32,
    /// Power `x_p` the traversal was billed to (1-based).
    pub power: u32,
    /// §III-B modeled bytes.
    pub modeled_bytes: u64,
    /// Cache-simulated DRAM bytes.
    pub simulated_bytes: u64,
    /// Hardware-counter estimate (LLC misses × line), `None` when the
    /// measured ledger is unavailable.
    pub measured_bytes: Option<u64>,
}

/// One block's ledgers aggregated over every power, plus the structural
/// context (rows, cut edges) the excess-traffic correlation uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockLedger {
    /// Global block id.
    pub block: u32,
    /// The block's ABMC color.
    pub color: u32,
    /// Rows in the block.
    pub rows: u64,
    /// Matrix entries of this block whose column lies outside the block —
    /// the partition's cut edges through it.
    pub cut_edges: u64,
    /// §III-B modeled bytes.
    pub modeled_bytes: u64,
    /// Cache-simulated DRAM bytes.
    pub simulated_bytes: u64,
    /// Hardware-counter estimate, `None` when unavailable.
    pub measured_bytes: Option<u64>,
}

impl BlockLedger {
    /// Simulated / modeled ratio (`None` when the model predicts zero).
    pub fn sim_over_model(&self) -> Option<f64> {
        (self.modeled_bytes > 0).then(|| self.simulated_bytes as f64 / self.modeled_bytes as f64)
    }

    /// Measured / modeled ratio (`None` without hardware counters or a
    /// nonzero model).
    pub fn measured_over_model(&self) -> Option<f64> {
        let m = self.measured_bytes?;
        (self.modeled_bytes > 0).then(|| m as f64 / self.modeled_bytes as f64)
    }

    /// The ratio used for ranking: measured/modeled when hardware
    /// counters ran, simulated/modeled otherwise.
    pub fn ranking_ratio(&self) -> f64 {
        self.measured_over_model().or_else(|| self.sim_over_model()).unwrap_or(0.0)
    }
}

/// The merged three-ledger report.
#[derive(Debug, Clone, Default)]
pub struct AttributionReport {
    /// Per-(block × power) cells, block-major then power-ascending.
    pub cells: Vec<CellLedger>,
    /// Per-block aggregates, block-ascending.
    pub blocks: Vec<BlockLedger>,
    /// Whole-run modeled bytes (Σ cells, exactly).
    pub modeled_total: u64,
    /// Whole-run simulated DRAM bytes attributed to blocks.
    pub simulated_total: u64,
    /// Whole-run measured byte estimate.
    pub measured_total: Option<u64>,
}

impl AttributionReport {
    /// Builds the report, deriving the totals from the inputs.
    pub fn new(cells: Vec<CellLedger>, blocks: Vec<BlockLedger>) -> Self {
        let modeled_total = blocks.iter().map(|b| b.modeled_bytes).sum();
        let simulated_total = blocks.iter().map(|b| b.simulated_bytes).sum();
        let measured_total =
            blocks.iter().map(|b| b.measured_bytes).try_fold(0u64, |acc, m| m.map(|v| acc + v));
        AttributionReport { cells, blocks, modeled_total, simulated_total, measured_total }
    }

    /// The `n` blocks with the highest [`BlockLedger::ranking_ratio`] —
    /// where the streaming model is most wrong.
    pub fn worst_blocks(&self, n: usize) -> Vec<BlockLedger> {
        let mut sorted = self.blocks.clone();
        sorted.sort_by(|a, b| {
            b.ranking_ratio().partial_cmp(&a.ranking_ratio()).unwrap_or(std::cmp::Ordering::Equal)
        });
        sorted.truncate(n);
        sorted
    }

    /// Pearson correlation between a block's cut edges per row and its
    /// excess bytes per row (achieved − modeled, measured when available,
    /// simulated otherwise). Positive means boundary blocks with many cut
    /// edges move disproportionately many bytes beyond the streaming
    /// model — the partition-quality signal the multilevel partitioner
    /// optimizes for. Per-row normalization keeps the signal about
    /// boundaries: the achieved/modeled *ratio* instead rewards sparse
    /// blocks (whose per-row vector traffic dwarfs their few modeled
    /// matrix bytes) and anti-correlates with cut on power-law graphs.
    pub fn excess_cut_correlation(&self) -> Option<f64> {
        let pairs: Vec<(f64, f64)> = self
            .blocks
            .iter()
            .filter_map(|b| {
                if b.rows == 0 {
                    return None;
                }
                let achieved = b.measured_bytes.unwrap_or(b.simulated_bytes) as f64;
                let excess = achieved - b.modeled_bytes as f64;
                Some((b.cut_edges as f64 / b.rows as f64, excess / b.rows as f64))
            })
            .collect();
        let (xs, ys): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        pearson(&xs, &ys)
    }
}

/// Sample Pearson correlation coefficient; `None` when fewer than two
/// points or either series is constant.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// One hardware-counter delta attributed to a recorded span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HwEntry {
    /// The span kind the delta was attributed to.
    pub kind: SpanKind,
    /// ABMC color (or [`Span::NO_ID`]).
    pub color: u32,
    /// Global block id (or [`Span::NO_ID`] for flat stages and
    /// barrier-mode sweeps).
    pub block: u32,
    /// Cycles since the previous attributed entry on this thread.
    pub cycles: u64,
    /// Retired instructions over the same window.
    pub instructions: u64,
    /// LLC misses over the same window — ×[`LINE_BYTES`] is the measured
    /// byte estimate.
    pub llc_misses: u64,
}

/// Per-lane collector state. Padded so adjacent lanes never share a
/// cache line (same discipline as `Recorder`'s lanes).
#[repr(align(64))]
struct HwLane {
    state: UnsafeCell<HwLaneState>,
}

struct HwLaneState {
    /// Whether the lazy session open already ran (even if it failed).
    started: bool,
    /// The per-thread counter session; `None` when `perf_event_open` is
    /// unavailable. Opened from the owning worker's first `record`, so
    /// `pid == 0` binds the counters to that worker's task.
    session: Option<HwSession>,
    /// Counter values at the previous record call.
    last: HwSample,
    /// Delta carried from wait spans, folded into the next compute span
    /// (the kernels record wait and compute spans back-to-back, so the
    /// wait record's delta covers the spin *and* the block's compute).
    pending: HwSample,
    entries: Vec<HwEntry>,
}

/// A [`Probe`] that samples per-thread hardware counters at every span
/// boundary the kernels already instrument, producing the measured
/// attribution ledger.
///
/// Sessions open lazily on each worker's first `record` call, so the
/// counters are per-task (thread), not process-wide. Run one warmup
/// invocation before the measured one: the first delta on each lane only
/// covers work after its session opened.
///
/// When `perf_event_open` is denied (containers, CI) every lane's session
/// stays `None`, [`HwAttributionProbe::available`] reports `false`, and
/// the entries carry zero deltas — callers emit a null measured ledger.
pub struct HwAttributionProbe {
    lanes: Box<[HwLane]>,
}

// SAFETY: each lane is only mutated through `record(t, ..)` by the worker
// owning lane `t` (the Probe contract), or through `&mut self` accessors
// when no kernel is running.
unsafe impl Sync for HwAttributionProbe {}

impl HwAttributionProbe {
    /// A collector for `nthreads` worker lanes.
    pub fn new(nthreads: usize) -> Self {
        let lanes = (0..nthreads.max(1))
            .map(|_| HwLane {
                state: UnsafeCell::new(HwLaneState {
                    started: false,
                    session: None,
                    last: HwSample::default(),
                    pending: HwSample::default(),
                    entries: Vec::with_capacity(4096),
                }),
            })
            .collect();
        HwAttributionProbe { lanes }
    }

    /// Whether the measured ledger is usable: at least one lane opened a
    /// counter session that includes the LLC-miss event. Meaningful after
    /// a run (sessions open lazily).
    pub fn available(&mut self) -> bool {
        self.lanes
            .iter_mut()
            .any(|l| l.state.get_mut().session.as_ref().is_some_and(|s| s.has_llc()))
    }

    /// Takes every lane's entries (lane index = worker id), leaving the
    /// sessions open for a subsequent run.
    pub fn drain(&mut self) -> Vec<Vec<HwEntry>> {
        self.lanes.iter_mut().map(|l| std::mem::take(&mut l.state.get_mut().entries)).collect()
    }
}

impl Probe for HwAttributionProbe {
    const ENABLED: bool = true;

    #[inline]
    fn now(&self) -> u64 {
        0
    }

    unsafe fn record(&self, t: usize, span: Span) {
        let Some(lane) = self.lanes.get(t) else { return };
        // SAFETY: `t` is the calling worker's own lane (caller contract).
        let st = unsafe { &mut *lane.state.get() };
        if !st.started {
            st.started = true;
            st.session = HwSession::start();
            if let Some(s) = &st.session {
                st.last = s.sample().unwrap_or_default();
            }
        }
        let now = match &st.session {
            Some(s) => s.sample().unwrap_or(st.last),
            None => st.last,
        };
        let delta = HwSample {
            cycles: now.cycles.wrapping_sub(st.last.cycles),
            instructions: now.instructions.wrapping_sub(st.last.instructions),
            llc_misses: now.llc_misses.wrapping_sub(st.last.llc_misses),
        };
        st.last = now;
        if span.kind.is_wait() {
            // Wait spans are recorded immediately before their block's
            // compute span; their delta (spin + compute) belongs to the
            // compute entry that follows.
            st.pending.cycles += delta.cycles;
            st.pending.instructions += delta.instructions;
            st.pending.llc_misses += delta.llc_misses;
            return;
        }
        let carried = std::mem::take(&mut st.pending);
        st.entries.push(HwEntry {
            kind: span.kind,
            color: span.color,
            block: span.block,
            cycles: delta.cycles + carried.cycles,
            instructions: delta.instructions + carried.instructions,
            llc_misses: delta.llc_misses + carried.llc_misses,
        });
    }
}

/// Assigns each entry of one lane the power its sweep completes,
/// reconstructed from the entry order: head → 1, the `i`-th forward
/// sweep → `2i − 1`, the `i`-th backward sweep → `2i`, tail → `k`.
/// Non-sweep kinds get 0 (unattributed).
pub fn assign_powers(entries: &[HwEntry], k: usize) -> Vec<u32> {
    let mut round = 0u32;
    let mut prev: Option<SpanKind> = None;
    entries
        .iter()
        .map(|e| {
            let p = match e.kind {
                SpanKind::Head => 1,
                SpanKind::Forward => {
                    if prev != Some(SpanKind::Forward) {
                        round += 1;
                    }
                    2 * round - 1
                }
                SpanKind::Backward => {
                    if prev != Some(SpanKind::Backward) {
                        round = round.max(1);
                    }
                    2 * round
                }
                SpanKind::Tail => k as u32,
                _ => 0,
            };
            if !e.kind.is_wait() {
                prev = Some(e.kind);
            }
            p
        })
        .collect()
}

/// The measured ledger distilled from drained probe lanes: LLC-miss byte
/// estimates per (block, power), plus the share that carried no block id
/// (flat head/tail stages, barrier-mode sweeps).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MeasuredLedger {
    /// Bytes per (block, power), deterministic order.
    pub cells: std::collections::BTreeMap<(u32, u32), u64>,
    /// Bytes from entries without a block id.
    pub unattributed_bytes: u64,
    /// All measured bytes (cells + unattributed).
    pub total_bytes: u64,
}

impl MeasuredLedger {
    /// Aggregates drained lanes (from [`HwAttributionProbe::drain`]) for
    /// a power-`k` run.
    pub fn from_lanes(lanes: &[Vec<HwEntry>], k: usize) -> Self {
        let mut ledger = MeasuredLedger::default();
        for entries in lanes {
            let powers = assign_powers(entries, k);
            for (e, &p) in entries.iter().zip(&powers) {
                let bytes = e.llc_misses * LINE_BYTES;
                ledger.total_bytes += bytes;
                if e.block == Span::NO_ID || p == 0 {
                    ledger.unattributed_bytes += bytes;
                } else {
                    *ledger.cells.entry((e.block, p)).or_insert(0) += bytes;
                }
            }
        }
        ledger
    }

    /// Bytes aggregated per block over every power.
    pub fn block_bytes(&self) -> std::collections::BTreeMap<u32, u64> {
        let mut out = std::collections::BTreeMap::new();
        for (&(b, _), &v) in &self.cells {
            *out.entry(b).or_insert(0) += v;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(kind: SpanKind, block: u32, llc: u64) -> HwEntry {
        HwEntry { kind, color: 0, block, cycles: 10, instructions: 10, llc_misses: llc }
    }

    #[test]
    fn pearson_basics() {
        assert_eq!(pearson(&[1.0], &[1.0]), None);
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), None);
        let r = pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]).unwrap();
        assert!((r - 1.0).abs() < 1e-12);
        let r = pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]).unwrap();
        assert!((r + 1.0).abs() < 1e-12);
    }

    #[test]
    fn power_reconstruction_matches_pipeline_order() {
        // k = 5: head, (fwd, bwd) × 2, tail — with several blocks per
        // sweep and interleaved wait entries never reaching the output.
        let entries = vec![
            entry(SpanKind::Head, Span::NO_ID, 1),
            entry(SpanKind::Forward, 0, 1),
            entry(SpanKind::Forward, 1, 1),
            entry(SpanKind::Backward, 1, 1),
            entry(SpanKind::Backward, 0, 1),
            entry(SpanKind::Forward, 0, 1),
            entry(SpanKind::Forward, 1, 1),
            entry(SpanKind::Backward, 1, 1),
            entry(SpanKind::Backward, 0, 1),
            entry(SpanKind::Tail, Span::NO_ID, 1),
        ];
        let powers = assign_powers(&entries, 5);
        assert_eq!(powers, vec![1, 1, 1, 2, 2, 3, 3, 4, 4, 5]);
    }

    #[test]
    fn measured_ledger_conserves_and_buckets_flat_stages() {
        let lanes = vec![vec![
            entry(SpanKind::Head, Span::NO_ID, 2),
            entry(SpanKind::Forward, 0, 3),
            entry(SpanKind::Forward, 1, 5),
            entry(SpanKind::Backward, 1, 7),
            entry(SpanKind::Backward, 0, 11),
            entry(SpanKind::Tail, Span::NO_ID, 13),
        ]];
        let ledger = MeasuredLedger::from_lanes(&lanes, 3);
        let cell_sum: u64 = ledger.cells.values().sum();
        assert_eq!(cell_sum + ledger.unattributed_bytes, ledger.total_bytes);
        assert_eq!(ledger.total_bytes, (2 + 3 + 5 + 7 + 11 + 13) * LINE_BYTES);
        assert_eq!(ledger.unattributed_bytes, (2 + 13) * LINE_BYTES);
        assert_eq!(ledger.cells[&(0, 1)], 3 * LINE_BYTES);
        assert_eq!(ledger.cells[&(1, 2)], 7 * LINE_BYTES);
        assert_eq!(ledger.block_bytes()[&0], (3 + 11) * LINE_BYTES);
    }

    #[test]
    fn probe_collects_entries_and_folds_waits_into_compute() {
        let probe = HwAttributionProbe::new(2);
        let span = |kind, block| Span { kind, color: 0, block, detail: 0, start_ns: 0, end_ns: 0 };
        // SAFETY: single-threaded test; lanes 0 and 1 are disjoint.
        unsafe {
            probe.record(0, span(SpanKind::Head, Span::NO_ID));
            probe.record(0, span(SpanKind::FlagWait, 0));
            probe.record(0, span(SpanKind::Forward, 0));
            probe.record(1, span(SpanKind::Head, Span::NO_ID));
        }
        let mut probe = probe;
        let lanes = probe.drain();
        assert_eq!(lanes.len(), 2);
        // Wait entries never surface; the forward entry absorbed them.
        assert_eq!(
            lanes[0].iter().map(|e| e.kind).collect::<Vec<_>>(),
            vec![SpanKind::Head, SpanKind::Forward]
        );
        assert_eq!(lanes[1].len(), 1);
        // Out-of-range lanes are ignored, not a panic.
        unsafe { probe.record(99, span(SpanKind::Head, Span::NO_ID)) };
    }

    #[test]
    fn report_ranks_and_correlates() {
        let blocks: Vec<BlockLedger> = (0..8)
            .map(|b| BlockLedger {
                block: b,
                color: b % 2,
                rows: 100,
                cut_edges: (b as u64) * 10,
                modeled_bytes: 1000,
                // Excess traffic grows with cut edges.
                simulated_bytes: 1000 + (b as u64) * 50,
                measured_bytes: None,
            })
            .collect();
        let report = AttributionReport::new(Vec::new(), blocks);
        assert_eq!(report.modeled_total, 8000);
        assert_eq!(report.measured_total, None);
        let worst = report.worst_blocks(2);
        assert_eq!(worst[0].block, 7);
        assert_eq!(worst[1].block, 6);
        let r = report.excess_cut_correlation().unwrap();
        assert!(r > 0.99, "perfectly linear excess should correlate: {r}");
    }

    #[test]
    fn measured_total_is_none_when_any_block_lacks_counters() {
        let mk = |measured| BlockLedger {
            block: 0,
            color: 0,
            rows: 1,
            cut_edges: 0,
            modeled_bytes: 10,
            simulated_bytes: 10,
            measured_bytes: measured,
        };
        let all = AttributionReport::new(Vec::new(), vec![mk(Some(5)), mk(Some(7))]);
        assert_eq!(all.measured_total, Some(12));
        let partial = AttributionReport::new(Vec::new(), vec![mk(Some(5)), mk(None)]);
        assert_eq!(partial.measured_total, None);
    }
}
