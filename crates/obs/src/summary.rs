//! Cross-run summaries of recorded kernel executions.
//!
//! A [`Recorder`] holds raw per-thread spans; everything downstream of a
//! single run (the perf database, regression gating, HTML reports) wants
//! a small, owned digest instead of the span buffers. [`ObsSummary`]
//! captures exactly the numbers the `fbmpk-bench` perf records persist,
//! so the extraction logic lives next to the recorder rather than being
//! re-derived by every consumer.

use crate::recorder::{Recorder, SpanKind};

/// Aggregate of one kind of span across every lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KindSummary {
    /// Which span kind this row aggregates.
    pub kind: SpanKind,
    /// Number of spans recorded.
    pub count: u64,
    /// Total recorded nanoseconds.
    pub total_ns: u64,
}

/// Owned digest of everything a [`Recorder`] captured in one run.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsSummary {
    /// Lanes (pool workers) the recorder served.
    pub nthreads: usize,
    /// Spans recorded across all lanes.
    pub spans: u64,
    /// Spans lost to lane overflow.
    pub dropped_spans: u64,
    /// Total recorded span nanoseconds across all lanes.
    pub total_ns: u64,
    /// Nanoseconds of that total spent in synchronization waits.
    pub wait_ns: u64,
    /// `wait_ns / total_ns` (0.0 when nothing was recorded).
    pub wait_fraction: f64,
    /// Per-kind aggregates in [`SpanKind::ALL`] order.
    pub kinds: Vec<KindSummary>,
}

impl ObsSummary {
    /// Digests `rec`'s currently published spans.
    pub fn from_recorder(rec: &Recorder) -> Self {
        let kinds: Vec<KindSummary> = rec
            .kind_totals()
            .into_iter()
            .map(|(kind, count, total_ns)| KindSummary { kind, count, total_ns })
            .collect();
        let spans = kinds.iter().map(|k| k.count).sum();
        let total_ns = kinds.iter().map(|k| k.total_ns).sum();
        let wait_ns = kinds.iter().filter(|k| k.kind.is_wait()).map(|k| k.total_ns).sum();
        ObsSummary {
            nthreads: rec.nthreads(),
            spans,
            dropped_spans: rec.total_dropped(),
            total_ns,
            wait_ns,
            wait_fraction: if total_ns == 0 { 0.0 } else { wait_ns as f64 / total_ns as f64 },
            kinds,
        }
    }

    /// Total nanoseconds recorded for one span kind.
    pub fn kind_ns(&self, kind: SpanKind) -> u64 {
        self.kinds.iter().find(|k| k.kind == kind).map_or(0, |k| k.total_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Span;

    #[test]
    fn summary_matches_recorder_aggregates() {
        let rec = Recorder::new(2, 8);
        // SAFETY: single-threaded test, distinct lanes.
        unsafe {
            rec.record(
                0,
                Span { kind: SpanKind::Forward, start_ns: 0, end_ns: 300, ..Span::zeroed() },
            );
            rec.record(
                1,
                Span { kind: SpanKind::BarrierWait, start_ns: 0, end_ns: 100, ..Span::zeroed() },
            );
        }
        let s = ObsSummary::from_recorder(&rec);
        assert_eq!(s.nthreads, 2);
        assert_eq!(s.spans, 2);
        assert_eq!(s.dropped_spans, 0);
        assert_eq!(s.total_ns, 400);
        assert_eq!(s.wait_ns, 100);
        assert!((s.wait_fraction - 0.25).abs() < 1e-12);
        assert_eq!(s.kind_ns(SpanKind::Forward), 300);
        assert_eq!(s.kind_ns(SpanKind::BarrierWait), 100);
        assert_eq!(s.kind_ns(SpanKind::Tail), 0);
        assert!((s.wait_fraction - rec.wait_fraction()).abs() < 1e-15);
    }

    #[test]
    fn empty_recorder_summarizes_to_zeroes() {
        let rec = Recorder::new(1, 4);
        let s = ObsSummary::from_recorder(&rec);
        assert_eq!(s.spans, 0);
        assert_eq!(s.total_ns, 0);
        assert_eq!(s.wait_fraction, 0.0);
    }

    #[test]
    fn dropped_spans_surface_in_summary() {
        let rec = Recorder::new(1, 1);
        // SAFETY: single-threaded test.
        unsafe {
            rec.record(0, Span { start_ns: 0, end_ns: 1, ..Span::zeroed() });
            rec.record(0, Span { start_ns: 1, end_ns: 2, ..Span::zeroed() });
        }
        let s = ObsSummary::from_recorder(&rec);
        assert_eq!(s.spans, 1);
        assert_eq!(s.dropped_spans, 1);
    }
}
