//! Hardware counters via a raw `perf_event_open` syscall wrapper.
//!
//! Same no-libc idiom as `crates/parallel/src/affinity.rs`: the syscalls
//! (`perf_event_open`, `read`, `close`) are issued with inline assembly on
//! Linux x86_64/aarch64 and stubbed to "unavailable" everywhere else.
//! Availability is probed at runtime — containers and CI commonly set
//! `perf_event_paranoid` so high that the syscall fails with `EACCES`, and
//! the whole module then degrades to [`HwSession::start`] returning
//! `None` rather than erroring.
//!
//! Counters are opened per-process (`pid == 0`, `cpu == -1`), user-space
//! only (`exclude_kernel | exclude_hv`), enabled on open; a sample is the
//! delta between two 8-byte reads.

/// One sample of the hardware counters over a measured region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HwSample {
    /// CPU cycles (`PERF_COUNT_HW_CPU_CYCLES`).
    pub cycles: u64,
    /// Retired instructions (`PERF_COUNT_HW_INSTRUCTIONS`).
    pub instructions: u64,
    /// Last-level cache misses (`PERF_COUNT_HW_CACHE_MISSES`), when the
    /// event is supported; 0 otherwise.
    pub llc_misses: u64,
}

impl HwSample {
    /// Instructions per cycle, or 0.0 when no cycles were counted.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

/// An open set of hardware counters measuring the current process.
///
/// Dropping the session closes the file descriptors.
#[derive(Debug)]
pub struct HwSession {
    cycles: HwCounter,
    instructions: HwCounter,
    llc: Option<HwCounter>,
    base: HwSample,
}

impl HwSession {
    /// Opens cycle + instruction counters (and LLC misses when available)
    /// for the calling process across all CPUs.
    ///
    /// Returns `None` when `perf_event_open` is unavailable or denied —
    /// callers must treat hardware counters as strictly optional.
    pub fn start() -> Option<HwSession> {
        let cycles = HwCounter::open(PERF_COUNT_HW_CPU_CYCLES)?;
        let instructions = HwCounter::open(PERF_COUNT_HW_INSTRUCTIONS)?;
        // LLC-miss support is spottier (some VMs expose cycles but not
        // cache events); its absence does not sink the session.
        let llc = HwCounter::open(PERF_COUNT_HW_CACHE_MISSES);
        let mut session = HwSession { cycles, instructions, llc, base: HwSample::default() };
        session.base = session.read_raw()?;
        Some(session)
    }

    /// Whether the LLC-miss event opened. When `false`, every sample's
    /// `llc_misses` is 0 and byte estimates derived from it are
    /// meaningless — attribution treats the measured ledger as absent.
    pub fn has_llc(&self) -> bool {
        self.llc.is_some()
    }

    /// Counter values accumulated since [`HwSession::start`] (or the last
    /// successful `sample` is *not* a reset — deltas are against start).
    pub fn sample(&self) -> Option<HwSample> {
        let now = self.read_raw()?;
        Some(HwSample {
            cycles: now.cycles.wrapping_sub(self.base.cycles),
            instructions: now.instructions.wrapping_sub(self.base.instructions),
            llc_misses: now.llc_misses.wrapping_sub(self.base.llc_misses),
        })
    }

    fn read_raw(&self) -> Option<HwSample> {
        Some(HwSample {
            cycles: self.cycles.read()?,
            instructions: self.instructions.read()?,
            llc_misses: match &self.llc {
                Some(c) => c.read().unwrap_or(0),
                None => 0,
            },
        })
    }
}

const PERF_COUNT_HW_CPU_CYCLES: u64 = 0;
const PERF_COUNT_HW_INSTRUCTIONS: u64 = 1;
const PERF_COUNT_HW_CACHE_MISSES: u64 = 3;

/// One perf event file descriptor.
#[derive(Debug)]
struct HwCounter {
    fd: i32,
}

impl HwCounter {
    fn open(config: u64) -> Option<HwCounter> {
        let fd = sys::perf_event_open(config)?;
        Some(HwCounter { fd })
    }

    fn read(&self) -> Option<u64> {
        sys::read_u64(self.fd)
    }
}

impl Drop for HwCounter {
    fn drop(&mut self) {
        sys::close(self.fd);
    }
}

#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
mod sys {
    //! Raw syscalls; numbers per arch from the kernel's syscall tables.

    /// `struct perf_event_attr` size for ABI version 7 — old kernels
    /// accept any size whose trailing bytes are zero, so the newest
    /// well-known size is the safe choice.
    const PERF_ATTR_SIZE: usize = 120;
    const PERF_TYPE_HARDWARE: u32 = 0;
    /// `exclude_kernel | exclude_hv` in the attr flags bitfield.
    const ATTR_FLAGS: u64 = (1 << 5) | (1 << 6);

    pub fn perf_event_open(config: u64) -> Option<i32> {
        let mut attr = [0u8; PERF_ATTR_SIZE];
        attr[0..4].copy_from_slice(&PERF_TYPE_HARDWARE.to_ne_bytes());
        attr[4..8].copy_from_slice(&(PERF_ATTR_SIZE as u32).to_ne_bytes());
        attr[8..16].copy_from_slice(&config.to_ne_bytes());
        attr[40..48].copy_from_slice(&ATTR_FLAGS.to_ne_bytes());
        // pid = 0 (this process), cpu = -1 (any), group_fd = -1, flags = 0.
        let ret = unsafe {
            syscall5(
                SYS_PERF_EVENT_OPEN,
                attr.as_ptr() as usize,
                0,
                (-1isize) as usize,
                (-1isize) as usize,
                0,
            )
        };
        if ret < 0 {
            None
        } else {
            Some(ret as i32)
        }
    }

    pub fn read_u64(fd: i32) -> Option<u64> {
        let mut buf = [0u8; 8];
        let ret = unsafe { syscall5(SYS_READ, fd as usize, buf.as_mut_ptr() as usize, 8, 0, 0) };
        if ret == 8 {
            Some(u64::from_ne_bytes(buf))
        } else {
            None
        }
    }

    pub fn close(fd: i32) {
        unsafe { syscall5(SYS_CLOSE, fd as usize, 0, 0, 0, 0) };
    }

    #[cfg(target_arch = "x86_64")]
    const SYS_PERF_EVENT_OPEN: usize = 298;
    #[cfg(target_arch = "x86_64")]
    const SYS_READ: usize = 0;
    #[cfg(target_arch = "x86_64")]
    const SYS_CLOSE: usize = 3;

    #[cfg(target_arch = "aarch64")]
    const SYS_PERF_EVENT_OPEN: usize = 241;
    #[cfg(target_arch = "aarch64")]
    const SYS_READ: usize = 63;
    #[cfg(target_arch = "aarch64")]
    const SYS_CLOSE: usize = 57;

    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall5(nr: usize, a1: usize, a2: usize, a3: usize, a4: usize, a5: usize) -> isize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") nr as isize => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall5(nr: usize, a1: usize, a2: usize, a3: usize, a4: usize, a5: usize) -> isize {
        let ret: isize;
        core::arch::asm!(
            "svc #0",
            in("x8") nr,
            inlateout("x0") a1 as isize => ret,
            in("x1") a2,
            in("x2") a3,
            in("x3") a4,
            in("x4") a5,
            options(nostack),
        );
        ret
    }
}

#[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
mod sys {
    //! Non-Linux / other-arch fallback: counters are never available.

    pub fn perf_event_open(_config: u64) -> Option<i32> {
        None
    }

    pub fn read_u64(_fd: i32) -> Option<u64> {
        None
    }

    pub fn close(_fd: i32) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The session must either open and produce monotone, plausible
    /// samples, or be cleanly absent — both are valid outcomes, on any
    /// host (bare metal, container with perf disabled, non-Linux).
    #[test]
    fn start_succeeds_or_degrades_gracefully() {
        match HwSession::start() {
            Some(session) => {
                // Burn a few instructions so the deltas are nonzero.
                let mut acc = 0u64;
                for i in 0..100_000u64 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                }
                std::hint::black_box(acc);
                let s = session.sample().expect("open session must be readable");
                assert!(s.instructions > 0, "expected some retired instructions");
                assert!(s.cycles > 0, "expected some cycles");
                assert!(s.ipc() > 0.0);
            }
            None => {
                // Graceful degradation: no panic, no error — exactly what
                // the profile harness relies on in CI.
            }
        }
    }

    #[test]
    fn ipc_of_empty_sample_is_zero() {
        assert_eq!(HwSample::default().ipc(), 0.0);
    }
}
