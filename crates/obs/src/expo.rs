//! Prometheus text exposition (format 0.0.4): render and strict parse.
//!
//! [`render`] turns a [`Snapshot`] into the classic text format —
//! `# HELP` / `# TYPE` headers, one line per labeled sample, log₂
//! histograms expanded into cumulative `_bucket{le="…"}` lines plus
//! `_sum` / `_count`. [`parse`] is the inverse used by the conformance
//! tests and the `repro top` scraper: a strict recursive-descent reader
//! in the style of the in-tree `Json::parse` that rejects malformed
//! names, unterminated label strings and bad escapes instead of guessing.

use std::collections::BTreeMap;

use crate::live::{SampleValue, Snapshot};
use crate::metrics::Histogram;

/// The `Content-Type` a 0.0.4 exposition response must carry.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Renders a snapshot as Prometheus text exposition.
pub fn render(snap: &Snapshot) -> String {
    let mut out = String::with_capacity(4096);
    for fam in &snap.families {
        out.push_str("# HELP ");
        out.push_str(&fam.name);
        out.push(' ');
        escape_help(&fam.help, &mut out);
        out.push('\n');
        out.push_str("# TYPE ");
        out.push_str(&fam.name);
        out.push(' ');
        out.push_str(fam.kind.as_str());
        out.push('\n');
        for sample in &fam.samples {
            match &sample.value {
                SampleValue::Counter(c) => {
                    push_sample(&mut out, &fam.name, &sample.labels, None, &c.to_string());
                }
                SampleValue::Gauge(g) => {
                    push_sample(&mut out, &fam.name, &sample.labels, None, &fmt_f64(*g));
                }
                SampleValue::Histogram(h) => push_histogram(&mut out, &fam.name, &sample.labels, h),
            }
        }
    }
    out
}

/// Cumulative `_bucket{le=…}` lines + `_sum` + `_count` for one
/// log₂ histogram.
fn push_histogram(out: &mut String, name: &str, labels: &[(String, String)], h: &Histogram) {
    let bucket_name = format!("{name}_bucket");
    let mut cumulative = 0u64;
    for (hi, c) in h.nonzero_buckets() {
        cumulative += c;
        // The top bucket's inclusive bound is u64::MAX — fold it into
        // the mandatory +Inf line instead of printing 2^64-1.
        if hi == u64::MAX {
            continue;
        }
        push_sample(
            out,
            &bucket_name,
            labels,
            Some(("le", &hi.to_string())),
            &cumulative.to_string(),
        );
    }
    push_sample(out, &bucket_name, labels, Some(("le", "+Inf")), &h.count().to_string());
    push_sample(out, &format!("{name}_sum"), labels, None, &h.sum().to_string());
    push_sample(out, &format!("{name}_count"), labels, None, &h.count().to_string());
}

/// One `name{labels} value` line.
fn push_sample(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    extra: Option<(&str, &str)>,
    value: &str,
) {
    out.push_str(name);
    if !labels.is_empty() || extra.is_some() {
        out.push('{');
        let mut first = true;
        for (k, v) in labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).chain(extra) {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            escape_label(v, out);
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

/// HELP text escaping: `\` and newline.
fn escape_help(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Label-value escaping: `\`, `"` and newline.
fn escape_label(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// A float in exposition syntax (`+Inf` / `-Inf` / `NaN` spellings).
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 {
            "+Inf".to_string()
        } else {
            "-Inf".to_string()
        }
    } else {
        format!("{v}")
    }
}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedSample {
    /// Metric name (already charset-validated).
    pub name: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

/// A parsed exposition document.
#[derive(Debug, Clone, Default)]
pub struct ParsedExposition {
    /// `name → (help, type)` from the `#` header lines.
    pub families: BTreeMap<String, (String, String)>,
    /// Every sample line in document order.
    pub samples: Vec<ParsedSample>,
}

impl ParsedExposition {
    /// The first sample matching `name` and every given label pair.
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| {
                s.name == name
                    && labels
                        .iter()
                        .all(|(k, v)| s.labels.iter().any(|(sk, sv)| sk == k && sv == v))
            })
            .map(|s| s.value)
    }

    /// Sum over every sample of `name` (e.g. across `thread` labels).
    pub fn sum(&self, name: &str) -> f64 {
        self.samples.iter().filter(|s| s.name == name).map(|s| s.value).sum()
    }

    /// All samples of `name`.
    pub fn samples_of(&self, name: &str) -> Vec<&ParsedSample> {
        self.samples.iter().filter(|s| s.name == name).collect()
    }
}

fn is_name_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c == b':'
}

fn is_name_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c == b':'
}

fn is_label_name_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Strictly parses a 0.0.4 text exposition document. `Err` carries the
/// 1-based line number and what went wrong.
pub fn parse(text: &str) -> Result<ParsedExposition, String> {
    let mut doc = ParsedExposition::default();
    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim_end_matches('\r');
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            parse_comment(rest.trim_start(), &mut doc)
                .map_err(|e| format!("line {lineno}: {e}"))?;
            continue;
        }
        let sample = parse_sample(line).map_err(|e| format!("line {lineno}: {e}"))?;
        doc.samples.push(sample);
    }
    Ok(doc)
}

/// `HELP name text` / `TYPE name kind` after the leading `#`; any other
/// comment is ignored per the format spec.
fn parse_comment(rest: &str, doc: &mut ParsedExposition) -> Result<(), String> {
    let (keyword, tail) = match rest.split_once(' ') {
        Some(x) => x,
        None => return Ok(()), // bare comment
    };
    if keyword != "HELP" && keyword != "TYPE" {
        return Ok(());
    }
    let (name, text) = tail.split_once(' ').unwrap_or((tail, ""));
    validate_metric_name(name)?;
    let entry = doc.families.entry(name.to_string()).or_default();
    if keyword == "HELP" {
        entry.0 = unescape_help(text);
    } else {
        match text {
            "counter" | "gauge" | "histogram" | "summary" | "untyped" => {}
            other => return Err(format!("unknown TYPE '{other}' for '{name}'")),
        }
        entry.1 = text.to_string();
    }
    Ok(())
}

fn validate_metric_name(name: &str) -> Result<(), String> {
    let b = name.as_bytes();
    if b.is_empty() || !is_name_start(b[0]) || !b.iter().all(|&c| is_name_char(c)) {
        return Err(format!("invalid metric name '{name}'"));
    }
    Ok(())
}

/// `name{k="v",…} value` with strict charset/escape checking.
fn parse_sample(line: &str) -> Result<ParsedSample, String> {
    let b = line.as_bytes();
    let mut i = 0;
    while i < b.len() && is_name_char(b[i]) {
        i += 1;
    }
    let name = &line[..i];
    validate_metric_name(name)?;
    let mut labels = Vec::new();
    if i < b.len() && b[i] == b'{' {
        i += 1;
        loop {
            while i < b.len() && b[i] == b' ' {
                i += 1;
            }
            if i < b.len() && b[i] == b'}' {
                i += 1;
                break;
            }
            let start = i;
            while i < b.len() && is_label_name_char(b[i]) {
                i += 1;
            }
            let lname = &line[start..i];
            if lname.is_empty() || lname.as_bytes()[0].is_ascii_digit() {
                return Err(format!("invalid label name at byte {start}"));
            }
            if i >= b.len() || b[i] != b'=' {
                return Err(format!("expected '=' after label '{lname}'"));
            }
            i += 1;
            if i >= b.len() || b[i] != b'"' {
                return Err(format!("expected '\"' opening value of '{lname}'"));
            }
            i += 1;
            let mut value = String::new();
            loop {
                if i >= b.len() {
                    return Err(format!("unterminated label value for '{lname}'"));
                }
                match b[i] {
                    b'"' => {
                        i += 1;
                        break;
                    }
                    b'\\' => {
                        i += 1;
                        match b.get(i) {
                            Some(b'\\') => value.push('\\'),
                            Some(b'"') => value.push('"'),
                            Some(b'n') => value.push('\n'),
                            other => {
                                return Err(format!(
                                    "bad escape {:?} in label '{lname}'",
                                    other.map(|&c| c as char)
                                ));
                            }
                        }
                        i += 1;
                    }
                    _ => {
                        // Consume one UTF-8 scalar, not one byte.
                        let c = line[i..].chars().next().unwrap();
                        value.push(c);
                        i += c.len_utf8();
                    }
                }
            }
            labels.push((lname.to_string(), value));
            if i < b.len() && b[i] == b',' {
                i += 1;
                continue;
            }
            if i < b.len() && b[i] == b'}' {
                i += 1;
                break;
            }
            return Err("expected ',' or '}' after label pair".to_string());
        }
    }
    let rest = line[i..].trim();
    if rest.is_empty() {
        return Err(format!("missing value for '{name}'"));
    }
    // Value then optional timestamp; we only keep the value.
    let value_str = rest.split_whitespace().next().unwrap();
    let value = match value_str {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        s => s.parse::<f64>().map_err(|_| format!("bad value '{s}' for '{name}'"))?,
    };
    Ok(ParsedSample { name: name.to_string(), labels, value })
}

fn unescape_help(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::live::LiveRegistry;

    #[test]
    fn render_parse_roundtrip() {
        let reg = LiveRegistry::new();
        let c = reg.counter("fbmpk_events_total", "events so far", 2);
        c.add(0, 3);
        c.add(1, 4);
        let g = reg.gauge("fbmpk_ratio", "a ratio", 1);
        g.set(0, 0.75);
        let h = reg.histogram("fbmpk_lat_ns", "latency", 1);
        h.observe(0, 5);
        h.observe(0, 1000);
        let text = render(&reg.snapshot());
        let doc = parse(&text).expect("rendered text must parse");
        assert_eq!(doc.families["fbmpk_events_total"].1, "counter");
        assert_eq!(doc.families["fbmpk_lat_ns"].1, "histogram");
        assert_eq!(doc.value("fbmpk_events_total", &[("thread", "0")]), Some(3.0));
        assert_eq!(doc.sum("fbmpk_events_total"), 7.0);
        assert_eq!(doc.value("fbmpk_ratio", &[]), Some(0.75));
        assert_eq!(doc.value("fbmpk_lat_ns_count", &[]), Some(2.0));
        assert_eq!(doc.value("fbmpk_lat_ns_sum", &[]), Some(1005.0));
        assert_eq!(doc.value("fbmpk_lat_ns_bucket", &[("le", "+Inf")]), Some(2.0));
        // Cumulative: the 1000 sample lands in [512, 1024), le="1023".
        assert_eq!(doc.value("fbmpk_lat_ns_bucket", &[("le", "1023")]), Some(2.0));
        assert_eq!(doc.value("fbmpk_lat_ns_bucket", &[("le", "7")]), Some(1.0));
    }

    #[test]
    fn label_escaping_roundtrips() {
        use crate::live::{FamilySnapshot, LiveSample, MetricKind, SampleValue, Snapshot};
        let snap = Snapshot {
            families: vec![FamilySnapshot {
                name: "fbmpk_esc".to_string(),
                help: "line1\nline2 \\ tail".to_string(),
                kind: MetricKind::Gauge,
                samples: vec![LiveSample {
                    labels: vec![("path".to_string(), "a\"b\\c\nd".to_string())],
                    value: SampleValue::Gauge(1.0),
                }],
            }],
        };
        let text = render(&snap);
        let doc = parse(&text).expect("escaped text must parse");
        assert_eq!(doc.families["fbmpk_esc"].0, "line1\nline2 \\ tail");
        assert_eq!(doc.samples[0].labels[0], ("path".to_string(), "a\"b\\c\nd".to_string()));
    }

    #[test]
    fn strict_parser_rejects_malformed() {
        assert!(parse("1bad 3\n").is_err());
        assert!(parse("ok{l=\"unterminated} 3\n").is_err());
        assert!(parse("ok{l=\"x\\q\"} 3\n").is_err());
        assert!(parse("ok{9l=\"x\"} 3\n").is_err());
        assert!(parse("ok nope\n").is_err());
        assert!(parse("ok\n").is_err());
        assert!(parse("# TYPE ok widget\n").is_err());
        assert!(parse("ok 3\n# a plain comment\nother_ok 4\n").is_ok());
        assert!(parse("inf_ok +Inf\nnan_ok NaN\n").is_ok());
    }
}
