//! chrome://tracing ("Trace Event Format") exporter.
//!
//! Turns harvested [`Recorder`] lanes into the JSON object format
//! (`{"traceEvents": [...]}`) that chrome://tracing and Perfetto load
//! directly: one "complete" event (`ph: "X"`) per span with microsecond
//! timestamps, one row per thread, one process per (matrix, sync-mode)
//! profile so ColorBarrier and PointToPoint timelines sit side by side.
//!
//! JSON is emitted by hand — the workspace is offline and carries no
//! serde; the format here is flat enough that string building is clearer
//! than a dependency anyway. Span names come from [`SpanKind::name`],
//! which contains no characters needing escaping; process names are
//! escaped minimally (quotes and backslashes).

use crate::recorder::{Recorder, Span};
use std::fmt::Write as _;

/// Incrementally builds a chrome://tracing JSON document.
#[derive(Debug, Default)]
pub struct TraceBuilder {
    events: Vec<String>,
}

impl TraceBuilder {
    /// An empty trace.
    pub fn new() -> Self {
        TraceBuilder::default()
    }

    /// Number of events added so far (metadata + spans).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events have been added.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Names process `pid` in the timeline (one process per profiled
    /// configuration, e.g. `"poisson2d / point-to-point"`).
    pub fn add_process(&mut self, pid: u32, name: &str) {
        self.events.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(name)
        ));
    }

    /// Adds every span from every lane of `rec` under process `pid`,
    /// thread `t` becoming tid `t`. Returns the number of spans added.
    pub fn add_recorder(&mut self, pid: u32, rec: &Recorder) -> usize {
        let mut added = 0;
        for t in 0..rec.nthreads() {
            for span in rec.thread_spans(t) {
                self.add_span(pid, t as u32, &span);
                added += 1;
            }
        }
        added
    }

    /// Adds one span as a complete (`ph: "X"`) event.
    pub fn add_span(&mut self, pid: u32, tid: u32, span: &Span) {
        let ts_us = span.start_ns as f64 / 1000.0;
        let dur_us = span.duration_ns() as f64 / 1000.0;
        let cat = if span.kind.is_wait() { "wait" } else { "compute" };
        let mut args = String::new();
        if span.color != Span::NO_ID {
            let _ = write!(args, "\"color\":{}", span.color);
        }
        if span.block != Span::NO_ID {
            if !args.is_empty() {
                args.push(',');
            }
            let _ = write!(args, "\"block\":{}", span.block);
        }
        if !args.is_empty() {
            args.push(',');
        }
        let detail_key = if span.kind.is_wait() { "snoozes" } else { "rows" };
        let _ = write!(args, "\"{detail_key}\":{}", span.detail);
        self.events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"ts\":{ts_us},\
             \"dur\":{dur_us},\"pid\":{pid},\"tid\":{tid},\"args\":{{{args}}}}}",
            span.kind.name()
        ));
    }

    /// Adds one setup-phase span (tuner inspection, partitioner pass,
    /// solver iteration) as a complete event on tid 0 of `pid`, category
    /// `"phase"`. Phase names are dotted lowercase literals and need no
    /// escaping, but escape anyway for uniformity.
    pub fn add_phase_span(&mut self, pid: u32, span: &crate::phases::PhaseSpan) {
        let ts_us = span.start_ns as f64 / 1000.0;
        let dur_us = span.duration_ns() as f64 / 1000.0;
        self.events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":{ts_us},\
             \"dur\":{dur_us},\"pid\":{pid},\"tid\":0,\"args\":{{}}}}",
            escape(span.name)
        ));
    }

    /// Renders the full document: `{"traceEvents": [...]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        for (i, ev) in self.events.iter().enumerate() {
            out.push_str(ev);
            if i + 1 < self.events.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]}\n");
        out
    }

    /// Writes the document to `path`.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Span, SpanKind};

    #[test]
    fn emits_process_metadata_and_complete_events() {
        let rec = Recorder::new(2, 16);
        // SAFETY: single-threaded test — each lane index used once at a time.
        unsafe {
            rec.record(
                0,
                Span {
                    kind: SpanKind::Forward,
                    color: 3,
                    block: Span::NO_ID,
                    detail: 100,
                    start_ns: 1000,
                    end_ns: 2500,
                },
            );
            rec.record(
                1,
                Span {
                    kind: SpanKind::BarrierWait,
                    color: 3,
                    block: Span::NO_ID,
                    detail: 7,
                    start_ns: 2000,
                    end_ns: 2200,
                },
            );
        }
        let mut tb = TraceBuilder::new();
        tb.add_process(1, "tiny / barrier");
        let added = tb.add_recorder(1, &rec);
        assert_eq!(added, 2);
        let json = tb.to_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"process_name\""));
        assert!(json.contains("\"name\":\"forward\""));
        assert!(json.contains("\"cat\":\"compute\""));
        assert!(json.contains("\"name\":\"barrier-wait\""));
        assert!(json.contains("\"cat\":\"wait\""));
        assert!(json.contains("\"ts\":1"));
        assert!(json.contains("\"dur\":1.5"));
        assert!(json.contains("\"snoozes\":7"));
        assert!(json.contains("\"rows\":100"));
        assert!(json.contains("\"tid\":1"));
    }

    #[test]
    fn process_names_are_escaped() {
        let mut tb = TraceBuilder::new();
        tb.add_process(1, "a\"b\\c");
        assert!(tb.to_json().contains("a\\\"b\\\\c"));
    }

    #[test]
    fn empty_trace_is_valid_json_shape() {
        let tb = TraceBuilder::new();
        assert!(tb.is_empty());
        assert_eq!(tb.len(), 0);
        assert_eq!(tb.to_json(), "{\"traceEvents\":[\n]}\n");
    }
}
