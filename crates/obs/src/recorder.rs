//! The per-thread span recorder.
//!
//! One [`Recorder`] serves one thread pool: lane `t` belongs to worker
//! `t`, is cache-line aligned so neighbouring lanes never share a line,
//! and is preallocated so the record path never allocates. A span is 32
//! bytes; recording one is two monotonic-clock reads (taken by the
//! caller), one bounds check, one array store and one release store of
//! the lane length. When a lane fills up further spans are counted as
//! dropped instead of reallocating — timing fidelity beats completeness.
//!
//! Harvesting ([`Recorder::thread_spans`]) acquires the lane length and
//! copies the prefix, which is race-free even against a concurrently
//! recording owner: entries below the acquired length were published by
//! the owner's release store, entries above it are never read.

use crate::Probe;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// What a span measured. Wait kinds and compute kinds partition a
/// thread's timeline, so `Σ wait / Σ all` is the thread's wait fraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum SpanKind {
    /// The head stage (`tmp = U·x₀`), flat partition.
    Head,
    /// One forward unit: a color's rows (barrier mode) or one block
    /// (point-to-point mode).
    Forward,
    /// One backward unit, mirror of [`SpanKind::Forward`].
    Backward,
    /// The odd-`k` tail stage, flat partition.
    Tail,
    /// Arrival-to-release time inside a [`fbmpk-parallel`] sense barrier.
    BarrierWait,
    /// Epoch-flag spin time waiting on predecessor blocks
    /// (point-to-point mode).
    FlagWait,
    /// One tuned standalone SpMV (a thread's row range).
    Spmv,
    /// A worker fault was latched (panic isolation fired). Zero-duration
    /// marker recorded after the run by the runtime, not by workers.
    Poison,
    /// A stall watchdog expired (and, under the `ColorBarrier` fallback
    /// policy, the invocation was re-executed on the barrier schedule).
    /// Zero-duration marker; `detail` holds the milliseconds waited.
    Watchdog,
    /// One level-blocked wavefront stage: a thread's share of advancing
    /// the BFS-shell tiles through a band of powers. `color` holds the
    /// stage index, `detail` the number of powers in the band.
    Tile,
}

impl SpanKind {
    /// Stable lowercase name (used as the chrome-trace event name).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Head => "head",
            SpanKind::Forward => "forward",
            SpanKind::Backward => "backward",
            SpanKind::Tail => "tail",
            SpanKind::BarrierWait => "barrier-wait",
            SpanKind::FlagWait => "flag-wait",
            SpanKind::Spmv => "spmv",
            SpanKind::Poison => "poison",
            SpanKind::Watchdog => "watchdog",
            SpanKind::Tile => "tile",
        }
    }

    /// `true` for the synchronization-wait kinds.
    pub fn is_wait(self) -> bool {
        matches!(self, SpanKind::BarrierWait | SpanKind::FlagWait)
    }

    /// Every kind, in declaration order.
    pub const ALL: [SpanKind; 10] = [
        SpanKind::Head,
        SpanKind::Forward,
        SpanKind::Backward,
        SpanKind::Tail,
        SpanKind::BarrierWait,
        SpanKind::FlagWait,
        SpanKind::Spmv,
        SpanKind::Poison,
        SpanKind::Watchdog,
        SpanKind::Tile,
    ];
}

/// One recorded interval on one thread's timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// What was measured.
    pub kind: SpanKind,
    /// ABMC color, or [`Span::NO_ID`] for flat stages.
    pub color: u32,
    /// Global block id (point-to-point units), or [`Span::NO_ID`].
    pub block: u32,
    /// Kind-specific payload: backoff snoozes for wait spans, rows
    /// processed for compute spans.
    pub detail: u32,
    /// Start, nanoseconds since the recorder epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the recorder epoch.
    pub end_ns: u64,
}

impl Span {
    /// Sentinel for "no color / no block".
    pub const NO_ID: u32 = u32::MAX;

    /// A filler span (lane preallocation).
    pub fn zeroed() -> Span {
        Span { kind: SpanKind::Head, color: 0, block: 0, detail: 0, start_ns: 0, end_ns: 0 }
    }

    /// Span length in nanoseconds (saturating).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// One worker's lane, padded to a cache line so adjacent lanes' length
/// counters never false-share.
#[repr(align(64))]
struct Lane {
    /// Preallocated span storage; written only by the owning worker.
    spans: UnsafeCell<Box<[Span]>>,
    /// Published span count: release-stored by the owner after the span
    /// write, acquire-loaded by harvesters.
    len: AtomicUsize,
    /// Spans discarded after the lane filled.
    dropped: AtomicU64,
}

/// Per-thread span storage for one pool.
pub struct Recorder {
    epoch: Instant,
    lanes: Box<[Lane]>,
    capacity: usize,
}

// SAFETY: `spans` is written only through `record`, whose contract gives
// each lane index a single owning thread (the pool worker with that id);
// cross-thread reads go through the acquire/release `len` publication and
// only touch fully-published entries.
unsafe impl Sync for Recorder {}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("nthreads", &self.lanes.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl Recorder {
    /// A recorder with `nthreads` lanes of `capacity` spans each.
    ///
    /// # Panics
    /// Panics when `nthreads == 0`.
    pub fn new(nthreads: usize, capacity: usize) -> Self {
        assert!(nthreads > 0, "recorder needs at least one lane");
        let lanes = (0..nthreads)
            .map(|_| Lane {
                spans: UnsafeCell::new(vec![Span::zeroed(); capacity].into_boxed_slice()),
                len: AtomicUsize::new(0),
                dropped: AtomicU64::new(0),
            })
            .collect();
        Recorder { epoch: Instant::now(), lanes, capacity }
    }

    /// Number of lanes (pool workers).
    pub fn nthreads(&self) -> usize {
        self.lanes.len()
    }

    /// Per-lane span capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Monotonic nanoseconds since this recorder was created.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Appends `span` to lane `t`, or counts it as dropped when full.
    ///
    /// # Safety
    /// `t` must be the calling worker's own lane; no two threads may pass
    /// the same `t` concurrently.
    #[inline]
    pub unsafe fn record(&self, t: usize, span: Span) {
        let lane = &self.lanes[t];
        let len = lane.len.load(Ordering::Relaxed);
        // SAFETY: exclusive lane ownership per the function contract.
        let spans = unsafe { &mut *lane.spans.get() };
        if len < spans.len() {
            spans[len] = span;
            lane.len.store(len + 1, Ordering::Release);
        } else {
            lane.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Clears every lane. Must not run concurrently with recording (call
    /// it between kernel invocations, never inside one).
    pub fn reset(&self) {
        for lane in self.lanes.iter() {
            lane.len.store(0, Ordering::Release);
            lane.dropped.store(0, Ordering::Relaxed);
        }
    }

    /// Copies lane `t`'s published spans.
    pub fn thread_spans(&self, t: usize) -> Vec<Span> {
        let lane = &self.lanes[t];
        let len = lane.len.load(Ordering::Acquire);
        // SAFETY: entries below the acquired `len` were published by the
        // owner's release store; entries at or above it are not read.
        let spans = unsafe { &*lane.spans.get() };
        spans[..len].to_vec()
    }

    /// Spans dropped from lane `t` after it filled.
    pub fn dropped(&self, t: usize) -> u64 {
        self.lanes[t].dropped.load(Ordering::Relaxed)
    }

    /// Total dropped spans across lanes.
    pub fn total_dropped(&self) -> u64 {
        (0..self.nthreads()).map(|t| self.dropped(t)).sum()
    }

    /// `(wait_ns, total_ns)` for lane `t`: synchronization-wait time and
    /// total recorded span time.
    pub fn thread_wait_total_ns(&self, t: usize) -> (u64, u64) {
        let mut wait = 0u64;
        let mut total = 0u64;
        for s in self.thread_spans(t) {
            let d = s.duration_ns();
            total += d;
            if s.kind.is_wait() {
                wait += d;
            }
        }
        (wait, total)
    }

    /// Fraction of all recorded span time spent in synchronization waits,
    /// aggregated over every lane (0.0 when nothing was recorded).
    pub fn wait_fraction(&self) -> f64 {
        let (mut wait, mut total) = (0u64, 0u64);
        for t in 0..self.nthreads() {
            let (w, tot) = self.thread_wait_total_ns(t);
            wait += w;
            total += tot;
        }
        if total == 0 {
            0.0
        } else {
            wait as f64 / total as f64
        }
    }

    /// `(count, total_ns)` per [`SpanKind`] across every lane, in
    /// [`SpanKind::ALL`] order.
    pub fn kind_totals(&self) -> [(SpanKind, u64, u64); 10] {
        let mut out = SpanKind::ALL.map(|k| (k, 0u64, 0u64));
        for t in 0..self.nthreads() {
            for s in self.thread_spans(t) {
                let slot = &mut out[s.kind as usize];
                slot.1 += 1;
                slot.2 += s.duration_ns();
            }
        }
        out
    }
}

/// The enabled probe: borrows a [`Recorder`] and forwards spans to it.
#[derive(Debug, Clone, Copy)]
pub struct SpanProbe<'a> {
    rec: &'a Recorder,
}

impl<'a> SpanProbe<'a> {
    /// A probe writing into `rec`.
    pub fn new(rec: &'a Recorder) -> Self {
        SpanProbe { rec }
    }
}

impl Probe for SpanProbe<'_> {
    const ENABLED: bool = true;

    #[inline]
    fn now(&self) -> u64 {
        self.rec.now_ns()
    }

    #[inline]
    unsafe fn record(&self, t: usize, span: Span) {
        // SAFETY: forwarded contract — `t` is the caller's own lane.
        unsafe { self.rec.record(t, span) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_harvest_roundtrip() {
        let rec = Recorder::new(2, 8);
        let span = Span {
            kind: SpanKind::Forward,
            color: 3,
            block: 17,
            detail: 5,
            start_ns: 100,
            end_ns: 250,
        };
        // SAFETY: single-threaded test, lane indices used exclusively.
        unsafe {
            rec.record(0, span);
            rec.record(1, Span { kind: SpanKind::BarrierWait, ..span });
        }
        assert_eq!(rec.thread_spans(0), vec![span]);
        assert_eq!(rec.thread_spans(0)[0].duration_ns(), 150);
        assert_eq!(rec.thread_spans(1)[0].kind, SpanKind::BarrierWait);
        assert_eq!(rec.total_dropped(), 0);
        rec.reset();
        assert!(rec.thread_spans(0).is_empty());
    }

    #[test]
    fn overflow_drops_instead_of_reallocating() {
        let rec = Recorder::new(1, 2);
        for i in 0..5u64 {
            // SAFETY: single-threaded test.
            unsafe {
                rec.record(0, Span { start_ns: i, end_ns: i + 1, ..Span::zeroed() });
            }
        }
        assert_eq!(rec.thread_spans(0).len(), 2);
        assert_eq!(rec.dropped(0), 3);
        assert_eq!(rec.capacity(), 2);
    }

    #[test]
    fn wait_fraction_separates_kinds() {
        let rec = Recorder::new(1, 8);
        // SAFETY: single-threaded test.
        unsafe {
            rec.record(
                0,
                Span { kind: SpanKind::Forward, start_ns: 0, end_ns: 300, ..Span::zeroed() },
            );
            rec.record(
                0,
                Span { kind: SpanKind::BarrierWait, start_ns: 300, end_ns: 400, ..Span::zeroed() },
            );
        }
        assert!((rec.wait_fraction() - 0.25).abs() < 1e-12);
        let totals = rec.kind_totals();
        assert_eq!(totals[SpanKind::Forward as usize].1, 1);
        assert_eq!(totals[SpanKind::Forward as usize].2, 300);
        assert_eq!(totals[SpanKind::BarrierWait as usize].2, 100);
    }

    #[test]
    fn concurrent_lanes_do_not_interfere() {
        let rec = std::sync::Arc::new(Recorder::new(4, 1024));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let rec = std::sync::Arc::clone(&rec);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        // SAFETY: each thread uses its own lane index.
                        unsafe {
                            rec.record(
                                t,
                                Span {
                                    detail: t as u32,
                                    start_ns: i,
                                    end_ns: i + 1,
                                    ..Span::zeroed()
                                },
                            );
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for t in 0..4 {
            let spans = rec.thread_spans(t);
            assert_eq!(spans.len(), 1000);
            assert!(spans.iter().all(|s| s.detail == t as u32));
        }
    }

    #[test]
    fn clock_is_monotonic() {
        let rec = Recorder::new(1, 1);
        let a = rec.now_ns();
        let b = rec.now_ns();
        assert!(b >= a);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_rejected() {
        Recorder::new(0, 16);
    }
}
