//! # fbmpk-obs
//!
//! In-kernel observability for the FBMPK sweeps: a near-zero-overhead
//! span recorder, a metrics registry, an optional `perf_event_open`
//! hardware-counter wrapper, and a chrome://tracing exporter.
//!
//! The paper's headline claim is a memory-traffic one — ⌈(k+1)/2⌉
//! effective reads of `A` per power sequence — and the point-to-point
//! synchronization win is a wall-clock one. Neither can be diagnosed from
//! end-to-end timings alone. This crate makes both visible on every run:
//!
//! * [`recorder::Recorder`] — per-thread, cache-line-padded, preallocated
//!   span buffers with monotonic timestamps. Threads record compute spans
//!   (head, per-color forward/backward, tail) and wait spans (barrier
//!   arrivals, per-block epoch-flag spins) into their own lane; no atomics
//!   on the span path beyond one release store of the lane length.
//! * [`Probe`] — the compile-time on/off switch. Kernels are generic over
//!   `P: Probe`; the [`NoopProbe`] instantiation has `ENABLED == false`,
//!   so every instrumentation branch is a constant `if false` and the
//!   monomorphized kernel is the uninstrumented loop, byte for byte.
//! * [`metrics::Registry`] — counters, gauges and log₂-bucketed
//!   histograms for modeled-vs-measured traffic accounting.
//! * [`perf`] — raw-syscall `perf_event_open` counters (cycles,
//!   instructions, LLC misses) that degrade to `None` wherever the
//!   syscall is unavailable (containers, CI, non-Linux).
//! * [`trace::TraceBuilder`] — per-thread timelines in the chrome://tracing
//!   "trace event" JSON format.
//! * [`live`] / [`expo`] / [`serve`] / [`phases`] — the *live* half:
//!   per-lane atomic metric cells coalesced into consistent snapshots,
//!   rendered as Prometheus text exposition by a zero-dependency
//!   `TcpListener` endpoint, plus coarse setup-phase spans (tuner,
//!   partitioner, leveling, solver iterations) feeding both the endpoint
//!   and the chrome trace. All of it is off (one relaxed bool) until an
//!   endpoint or dashboard attaches.

pub mod attribution;
pub mod expo;
pub mod live;
pub mod metrics;
pub mod perf;
pub mod phases;
pub mod recorder;
pub mod serve;
pub mod summary;
pub mod trace;

pub use attribution::{
    AttributionReport, BlockLedger, CellLedger, HwAttributionProbe, HwEntry, MeasuredLedger,
};
pub use live::{
    FamilySnapshot, LiveCounter, LiveGauge, LiveHistogram, LiveRegistry, LiveSample, LiveSource,
    MetricKind, SampleValue, Snapshot,
};
pub use metrics::{Histogram, MetricValue, Registry};
pub use perf::{HwSample, HwSession};
pub use recorder::{Recorder, Span, SpanKind, SpanProbe};
pub use serve::MetricsServer;
pub use summary::{KindSummary, ObsSummary};
pub use trace::TraceBuilder;

/// Default per-thread span capacity: 64 Ki spans ≈ 2 MiB per thread,
/// enough for hundreds of power iterations on 100-color schedules.
pub const DEFAULT_SPAN_CAPACITY: usize = 1 << 16;

/// The kernels' observability hook, resolved at monomorphization time.
///
/// Implementations with `ENABLED == false` (the [`NoopProbe`]) make every
/// instrumentation site a dead branch the optimizer removes; the compiled
/// kernel is identical to one with no instrumentation at all. With
/// `ENABLED == true` ([`SpanProbe`]) the sites take two monotonic
/// timestamps and one lane write per span.
pub trait Probe: Sync {
    /// Compile-time switch — gate *every* call to [`Probe::now`] /
    /// [`Probe::record`] behind `if P::ENABLED`.
    const ENABLED: bool;

    /// Nanoseconds since the recorder's epoch (0 for the no-op probe).
    fn now(&self) -> u64;

    /// Appends `span` to thread `t`'s lane.
    ///
    /// # Safety
    /// `t` must identify the calling worker's own lane: two threads must
    /// never pass the same `t` concurrently (the same disjoint-ownership
    /// contract as `SharedSlice` writes in the sweeps).
    unsafe fn record(&self, t: usize, span: Span);
}

/// The disabled probe: zero-sized, `ENABLED == false`, compiles to
/// nothing on the hot path.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopProbe;

impl Probe for NoopProbe {
    const ENABLED: bool = false;

    #[inline(always)]
    fn now(&self) -> u64 {
        0
    }

    #[inline(always)]
    unsafe fn record(&self, _t: usize, _span: Span) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_probe_is_zero_sized_and_disabled() {
        assert_eq!(std::mem::size_of::<NoopProbe>(), 0);
        const { assert!(!NoopProbe::ENABLED) };
        assert_eq!(NoopProbe.now(), 0);
        // SAFETY: the no-op probe touches no lane.
        unsafe { NoopProbe.record(usize::MAX, Span::zeroed()) };
    }
}
