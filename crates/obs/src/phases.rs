//! Setup-phase spans: coarse wall-time accounting for everything that
//! happens *around* the sweep kernels — tuner inspection, multilevel
//! partitioning, BFS leveling, solver outer iterations.
//!
//! The span recorder deliberately lives inside the worker pool and knows
//! nothing about single-threaded setup code; this module is its coarse
//! counterpart. A [`span`] guard measures one named phase RAII-style and,
//! on drop, feeds two consumers:
//!
//! * a process-global bounded log of `(name, start_ns, end_ns)` triples
//!   for the chrome://tracing exporter (enabled with [`set_recording`]);
//! * per-name `(count, total_ns)` aggregates surfaced through the live
//!   registry as `fbmpk_phase_seconds_total` / `fbmpk_phase_runs_total`
//!   with a `phase` label (enabled whenever [`crate::live::enabled`]).
//!
//! With both consumers off (the default), [`span`] returns an inert guard
//! without reading the clock — setup phases stay exactly as cheap as
//! before this module existed. Phase names must be `'static` literals in
//! `dotted.lowercase` form, e.g. `"tune.inspect"`, `"partition.coarsen"`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::live::{self, FamilySnapshot, LiveSample, LiveSource, MetricKind, SampleValue};

/// One completed phase, relative to the process phase epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSpan {
    /// Dotted phase name (`"tune.inspect"`, `"solver.bicgstab.iter"`, …).
    pub name: &'static str,
    /// Start, ns since [`epoch_ns`]'s zero.
    pub start_ns: u64,
    /// End, ns since the same zero.
    pub end_ns: u64,
}

impl PhaseSpan {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Cap on the detailed log: phases are coarse (tens per plan build), so
/// 64 Ki spans is hours of activity; beyond it we count drops instead.
const LOG_CAPACITY: usize = 1 << 16;

static RECORDING: AtomicBool = AtomicBool::new(false);

struct PhaseState {
    epoch: Instant,
    log: Mutex<LogState>,
    totals: Mutex<BTreeMap<&'static str, (u64, u64)>>,
}

#[derive(Default)]
struct LogState {
    spans: Vec<PhaseSpan>,
    dropped: u64,
}

fn state() -> &'static PhaseState {
    static STATE: OnceLock<PhaseState> = OnceLock::new();
    STATE.get_or_init(|| PhaseState {
        epoch: Instant::now(),
        log: Mutex::new(LogState::default()),
        totals: Mutex::new(BTreeMap::new()),
    })
}

/// Nanoseconds since the process phase epoch (first phases-API use).
pub fn now_ns() -> u64 {
    state().epoch.elapsed().as_nanos() as u64
}

/// Turns detailed span logging on or off (aggregates follow the live
/// gate independently).
pub fn set_recording(on: bool) {
    RECORDING.store(on, Ordering::Relaxed);
}

/// Is the detailed log collecting?
pub fn recording() -> bool {
    RECORDING.load(Ordering::Relaxed)
}

/// Measures one phase; the span is recorded when the guard drops.
/// Inert (clock never read) when both consumers are off.
pub fn span(name: &'static str) -> PhaseGuard {
    let active = recording() || live::enabled();
    if active {
        ensure_source();
    }
    PhaseGuard { name, start: active.then(|| (now_ns(), Instant::now())) }
}

/// RAII guard from [`span`].
#[must_use = "the phase is measured when this guard drops"]
pub struct PhaseGuard {
    name: &'static str,
    start: Option<(u64, Instant)>,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        let Some((start_ns, start)) = self.start else { return };
        let dur_ns = start.elapsed().as_nanos() as u64;
        let st = state();
        if recording() {
            let mut log = st.log.lock().expect("phase log lock");
            if log.spans.len() < LOG_CAPACITY {
                let span = PhaseSpan { name: self.name, start_ns, end_ns: start_ns + dur_ns };
                log.spans.push(span);
            } else {
                log.dropped += 1;
            }
        }
        if live::enabled() {
            let mut totals = st.totals.lock().expect("phase totals lock");
            let entry = totals.entry(self.name).or_insert((0, 0));
            entry.0 += 1;
            entry.1 = entry.1.saturating_add(dur_ns);
        }
    }
}

/// Clones the detailed log (chrome-trace export path).
pub fn log_snapshot() -> Vec<PhaseSpan> {
    state().log.lock().expect("phase log lock").spans.clone()
}

/// Takes and clears the detailed log, returning `(spans, dropped)`.
pub fn drain_log() -> (Vec<PhaseSpan>, u64) {
    let mut log = state().log.lock().expect("phase log lock");
    let dropped = log.dropped;
    log.dropped = 0;
    (std::mem::take(&mut log.spans), dropped)
}

/// Per-phase `(name, runs, total_ns)` aggregates, sorted by name.
pub fn totals() -> Vec<(&'static str, u64, u64)> {
    state()
        .totals
        .lock()
        .expect("phase totals lock")
        .iter()
        .map(|(&name, &(runs, ns))| (name, runs, ns))
        .collect()
}

/// The live-registry collector: turns [`totals`] into two labeled
/// counter families at scrape time.
struct PhaseTotalsSource;

impl LiveSource for PhaseTotalsSource {
    fn collect(&self) -> Vec<FamilySnapshot> {
        let totals = totals();
        if totals.is_empty() {
            return Vec::new();
        }
        let label = |name: &str| vec![("phase".to_string(), name.to_string())];
        vec![
            FamilySnapshot {
                name: "fbmpk_phase_runs_total".to_string(),
                help: "Completed setup/solver phases by name".to_string(),
                kind: MetricKind::Counter,
                samples: totals
                    .iter()
                    .map(|&(name, runs, _)| LiveSample {
                        labels: label(name),
                        value: SampleValue::Counter(runs),
                    })
                    .collect(),
            },
            FamilySnapshot {
                name: "fbmpk_phase_seconds_total".to_string(),
                help: "Wall time spent in setup/solver phases by name".to_string(),
                kind: MetricKind::Counter,
                samples: totals
                    .iter()
                    .map(|&(name, _, ns)| LiveSample {
                        labels: label(name),
                        value: SampleValue::Gauge(ns as f64 / 1e9),
                    })
                    .collect(),
            },
        ]
    }
}

/// Registers the totals collector with the global live registry once.
fn ensure_source() {
    static SOURCE: OnceLock<Arc<PhaseTotalsSource>> = OnceLock::new();
    let mut fresh = false;
    let arc = SOURCE.get_or_init(|| {
        fresh = true;
        Arc::new(PhaseTotalsSource)
    });
    if fresh {
        let dyn_arc: Arc<dyn LiveSource> = Arc::clone(arc) as Arc<dyn LiveSource>;
        live::global().register_source(Arc::downgrade(&dyn_arc));
        // Keep one strong reference alive for process lifetime.
        std::mem::forget(dyn_arc);
    }
}

/// Adds every logged phase span to `tb` under process `pid` (tid 0) —
/// the setup-phase twin of `TraceBuilder::add_recorder`.
pub fn add_to_trace(tb: &mut crate::trace::TraceBuilder, pid: u32) -> usize {
    let spans = log_snapshot();
    for span in &spans {
        tb.add_phase_span(pid, span);
    }
    spans.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_guard_records_nothing() {
        set_recording(false);
        live::set_enabled(false);
        let before = log_snapshot().len();
        drop(span("test.inert"));
        assert_eq!(log_snapshot().len(), before);
    }

    #[test]
    fn recording_appends_spans_and_totals() {
        set_recording(true);
        live::set_enabled(true);
        {
            let _g = span("test.phase_a");
            std::hint::black_box(0);
        }
        set_recording(false);
        live::set_enabled(false);
        let log = log_snapshot();
        assert!(log.iter().any(|s| s.name == "test.phase_a"));
        let t = totals();
        let (_, runs, ns) = t.iter().find(|(n, _, _)| *n == "test.phase_a").unwrap();
        assert!(*runs >= 1);
        // Duration can legitimately round to 0ns on coarse clocks; the
        // aggregate just must exist and be consistent.
        assert!(*ns < u64::MAX);
        let _ = runs;
    }
}
