//! A small metrics registry: counters, gauges, log₂-bucketed histograms.
//!
//! The profiling harness uses it to put modeled bytes-of-`A` streamed per
//! sweep next to measured wall time and the cache simulator's
//! `TrafficReport`, so effective bandwidth and traffic-vs-model ratios
//! come out of one uniform table instead of ad-hoc locals. Metrics are
//! named, insertion-agnostic (stored sorted) and cheap enough to update
//! from harvest loops; they are *not* meant for the kernel hot path —
//! that is the span recorder's job.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Exponential (log₂) histogram of `u64` samples: bucket `i` holds
/// samples whose highest set bit is `i`, i.e. values in `[2^i, 2^{i+1})`
/// (bucket 0 additionally holds zero).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; 64], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Rebuilds a histogram from raw cell state (the live-telemetry
    /// snapshot path). `min` uses the `u64::MAX`-when-empty sentinel.
    pub(crate) fn from_raw(buckets: [u64; 64], count: u64, sum: u64, min: u64, max: u64) -> Self {
        Histogram { buckets, count, sum, min, max }
    }

    /// Folds `other` into `self` (bucket-wise add; used to coalesce
    /// per-thread live cells into one process-wide distribution).
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Records one sample.
    pub fn observe(&mut self, v: u64) {
        let bucket = if v == 0 { 0 } else { 63 - v.leading_zeros() as usize };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) by locating the bucket
    /// holding the target rank and interpolating linearly *within* it,
    /// instead of reporting the bucket's upper bound. The interpolation
    /// range is clamped by the observed `min`/`max` so single-bucket
    /// histograms and the extreme quantiles stay exact; 0.0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based: q=0 → first, q=1 → last.
        let rank = (q * self.count as f64).max(1.0).min(self.count as f64);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if (seen + c) as f64 >= rank {
                // Bucket i spans [2^i, 2^{i+1}) (bucket 0 also holds zero).
                let lo = if i == 0 { 0.0 } else { (1u64 << i) as f64 };
                let hi = if i >= 63 { u64::MAX as f64 } else { (2u64 << i) as f64 };
                let lo = lo.max(self.min() as f64).min(hi);
                let hi = hi.min(self.max as f64 + 1.0).max(lo);
                // Fraction of the way through this bucket's samples.
                let frac = if c == 1 { 0.5 } else { (rank - seen as f64 - 1.0) / (c - 1) as f64 };
                return lo + frac * (hi - lo);
            }
            seen += c;
        }
        self.max as f64
    }

    /// Non-empty buckets as `(inclusive upper bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let hi = if i >= 63 { u64::MAX } else { (2u64 << i) - 1 };
                (hi, c)
            })
            .collect()
    }
}

/// One metric's current value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonically increasing count.
    Counter(u64),
    /// Last-set value.
    Gauge(f64),
    /// Sample distribution (boxed: the bucket array dwarfs the other
    /// variants).
    Histogram(Box<Histogram>),
}

/// A named-metric registry. Thread-safe; lookups are by name.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, MetricValue>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds `delta` to counter `name` (created at 0).
    ///
    /// # Panics
    /// Panics when `name` already holds a non-counter metric.
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut map = self.inner.lock().expect("metrics registry lock");
        match map.entry(name.to_string()).or_insert(MetricValue::Counter(0)) {
            MetricValue::Counter(c) => *c += delta,
            other => panic!("metric '{name}' is not a counter: {other:?}"),
        }
    }

    /// Sets gauge `name` to `v`.
    ///
    /// # Panics
    /// Panics when `name` already holds a non-gauge metric.
    pub fn gauge_set(&self, name: &str, v: f64) {
        let mut map = self.inner.lock().expect("metrics registry lock");
        match map.entry(name.to_string()).or_insert(MetricValue::Gauge(0.0)) {
            MetricValue::Gauge(g) => *g = v,
            other => panic!("metric '{name}' is not a gauge: {other:?}"),
        }
    }

    /// Records `v` into histogram `name` (created empty).
    ///
    /// # Panics
    /// Panics when `name` already holds a non-histogram metric.
    pub fn observe(&self, name: &str, v: u64) {
        let mut map = self.inner.lock().expect("metrics registry lock");
        match map
            .entry(name.to_string())
            .or_insert_with(|| MetricValue::Histogram(Box::new(Histogram::new())))
        {
            MetricValue::Histogram(h) => h.observe(v),
            other => panic!("metric '{name}' is not a histogram: {other:?}"),
        }
    }

    /// Snapshot of every metric, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        self.inner
            .lock()
            .expect("metrics registry lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let reg = Registry::new();
        reg.counter_add("bytes", 10);
        reg.counter_add("bytes", 5);
        reg.gauge_set("ratio", 1.5);
        reg.gauge_set("ratio", 2.5);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0], ("bytes".to_string(), MetricValue::Counter(15)));
        assert_eq!(snap[1], ("ratio".to_string(), MetricValue::Gauge(2.5)));
    }

    #[test]
    fn histogram_log2_buckets() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1010);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        let buckets = h.nonzero_buckets();
        // 0 and 1 land in bucket 0 (hi=1), 2 and 3 in bucket 1 (hi=3),
        // 4 in bucket 2 (hi=7), 1000 in bucket 9 (hi=1023).
        assert_eq!(buckets, vec![(1, 2), (3, 2), (7, 1), (1023, 1)]);
        assert!((h.mean() - 1010.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn registry_histograms() {
        let reg = Registry::new();
        reg.observe("wait_ns", 100);
        reg.observe("wait_ns", 200);
        match &reg.snapshot()[0].1 {
            MetricValue::Histogram(h) => {
                assert_eq!(h.count(), 2);
                assert_eq!(h.sum(), 300);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_mismatch_rejected() {
        let reg = Registry::new();
        reg.gauge_set("x", 1.0);
        reg.counter_add("x", 1);
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        let mut h = Histogram::new();
        // 100 samples spread across [1024, 2048): all in bucket 10.
        for i in 0..100u64 {
            h.observe(1024 + i * 10);
        }
        let p50 = h.quantile(0.5);
        // Upper-bound reporting would say 2047 regardless of q; the
        // interpolated estimate must sit near the middle of the bucket.
        assert!(p50 > 1200.0 && p50 < 1900.0, "p50 = {p50}");
        assert!(h.quantile(0.0) >= 1024.0);
        assert!(h.quantile(1.0) <= 2048.0);
        assert!(h.quantile(0.1) < h.quantile(0.9));
    }

    #[test]
    fn quantile_single_sample_and_clamps() {
        let mut h = Histogram::new();
        h.observe(700);
        // One sample: every quantile collapses to (near) the sample,
        // clamped by min/max, never the bucket bound 1023.
        for q in [0.0, 0.5, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!((700.0..=701.0).contains(&v), "q={q} → {v}");
        }
        assert_eq!(Histogram::new().quantile(0.5), 0.0);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.nonzero_buckets().is_empty());
    }
}
