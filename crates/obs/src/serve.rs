//! The metrics endpoint: a tiny blocking HTTP/1.1 listener over
//! [`std::net::TcpListener`] — zero dependencies, one named thread,
//! one connection at a time. That is deliberate: a scrape every second
//! from one Prometheus (or one `repro top`) is the design load, and a
//! single-threaded accept loop cannot amplify into anything that
//! perturbs the sweep workers it is observing.
//!
//! Lifecycle: [`MetricsServer::start`] binds (port 0 picks a free port,
//! see [`MetricsServer::local_addr`]), flips the [`crate::live`] gate on,
//! and serves `GET /metrics` until [`MetricsServer::shutdown`] or process
//! exit. Shutdown sets a flag and self-connects to unblock `accept`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::expo;
use crate::live::{self, LiveRegistry};

/// A running exposition endpoint.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` and serves `registry` on a background thread. Flips
    /// the live-telemetry gate on so instrumentation sites start feeding
    /// the cells. `addr` may name port 0 to pick any free port.
    pub fn start(addr: SocketAddr, registry: &'static LiveRegistry) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        live::set_enabled(true);
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("fbmpk-metrics".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if thread_stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    // A stuck scraper must not wedge the endpoint.
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
                    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
                    let _ = serve_one(stream, registry);
                }
            })
            .expect("spawn metrics thread");
        Ok(MetricsServer { addr, stop, handle: Some(handle) })
    }

    /// The bound address (the resolved port when 0 was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the thread. Does not flip the
    /// live gate back off: cells may still have other consumers (an
    /// in-process dashboard) and stale `true` only costs the counters.
    pub fn shutdown(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::Release);
            // Unblock accept() with a throwaway connection.
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Handles one connection: parse the request line, route, respond, close
/// (`Connection: close` — scrapers reconnect per poll). Every failure
/// mode gets a typed answer before the close: an oversized head is 413,
/// a request that never completes (EOF or read timeout before the
/// header terminator) or has a broken request line is 400 — never a
/// silently dropped connection the client has to time out against.
fn serve_one(mut stream: TcpStream, registry: &LiveRegistry) -> std::io::Result<()> {
    let mut buf = [0u8; 4096];
    let mut len = 0;
    let (mut complete, mut oversize) = (false, false);
    // Read until the header terminator; anything longer than 4 KiB of
    // headers is not a scraper we care about.
    loop {
        if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") {
            complete = true;
            break;
        }
        if len == buf.len() {
            oversize = true;
            break;
        }
        match stream.read(&mut buf[len..]) {
            Ok(0) => break,
            Ok(n) => len += n,
            // Timed out mid-head: still answer before closing.
            Err(_) => break,
        }
    }

    let (status, ctype, body) = if oversize {
        ("413 Payload Too Large", "text/plain", "request head exceeds 4 KiB\n".to_string())
    } else if !complete {
        ("400 Bad Request", "text/plain", "malformed request: no header terminator\n".to_string())
    } else {
        let request = String::from_utf8_lossy(&buf[..len]);
        let mut parts = request.lines().next().unwrap_or("").split(' ');
        let (method, path, version) =
            (parts.next().unwrap_or(""), parts.next().unwrap_or(""), parts.next().unwrap_or(""));
        let path = path.split('?').next().unwrap_or(path);
        if method.is_empty()
            || !method.bytes().all(|b| b.is_ascii_uppercase())
            || !path.starts_with('/')
            || !version.starts_with("HTTP/")
        {
            ("400 Bad Request", "text/plain", "malformed request line\n".to_string())
        } else {
            match (method, path) {
                ("GET", "/metrics") => {
                    ("200 OK", expo::CONTENT_TYPE, expo::render(&registry.snapshot()))
                }
                ("GET", "/") => (
                    "200 OK",
                    "text/plain",
                    "fbmpk metrics endpoint; scrape /metrics\n".to_string(),
                ),
                ("GET", _) => ("404 Not Found", "text/plain", "not found\n".to_string()),
                _ => ("405 Method Not Allowed", "text/plain", "GET only\n".to_string()),
            }
        }
    };
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

/// Fetches `http://addr/metrics` over a raw [`TcpStream`] and returns the
/// body — the scraper half used by `repro top` and the smoke tests.
pub fn scrape(addr: SocketAddr, timeout: Duration) -> std::io::Result<String> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    write!(stream, "GET /metrics HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let Some((head, body)) = response.split_once("\r\n\r\n") else {
        return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, "no header terminator"));
    };
    let status = head.lines().next().unwrap_or("");
    if !status.contains("200") {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("scrape failed: {status}"),
        ));
    }
    Ok(body.to_string())
}

/// Starts the process-global endpoint on `addr` exactly once and leaks it
/// for process lifetime (plans come and go; the endpoint stays). Returns
/// the bound address, or the first call's address on later calls.
pub fn ensure_global(addr: SocketAddr) -> std::io::Result<SocketAddr> {
    use std::sync::OnceLock;
    static GLOBAL: OnceLock<std::io::Result<SocketAddr>> = OnceLock::new();
    let res = GLOBAL.get_or_init(|| {
        let server = MetricsServer::start(addr, live::global())?;
        let bound = server.local_addr();
        // Deliberate leak: serve until process exit.
        std::mem::forget(server);
        eprintln!("fbmpk: serving metrics on {bound}");
        Ok(bound)
    });
    match res {
        Ok(a) => Ok(*a),
        Err(e) => Err(std::io::Error::new(e.kind(), e.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_and_scrape() {
        // A local registry, an ephemeral port, one scrape.
        static REG: std::sync::OnceLock<LiveRegistry> = std::sync::OnceLock::new();
        let reg = REG.get_or_init(LiveRegistry::new);
        reg.counter("fbmpk_serve_test_total", "t", 1).add(0, 42);
        let mut server = MetricsServer::start("127.0.0.1:0".parse().unwrap(), reg).expect("bind");
        let body = scrape(server.local_addr(), Duration::from_secs(5)).expect("scrape");
        let doc = expo::parse(&body).expect("valid exposition");
        assert_eq!(doc.value("fbmpk_serve_test_total", &[]), Some(42.0));
        server.shutdown();
    }

    #[test]
    fn unknown_path_is_404() {
        static REG: std::sync::OnceLock<LiveRegistry> = std::sync::OnceLock::new();
        let reg = REG.get_or_init(LiveRegistry::new);
        let server = MetricsServer::start("127.0.0.1:0".parse().unwrap(), reg).expect("bind");
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 404"), "{response}");
    }

    /// Sends raw bytes (optionally closing the write side early) and
    /// returns the raw response — the server may reject mid-request, so
    /// the client half tolerates transport errors.
    fn send_raw(addr: SocketAddr, raw: &[u8], close_write: bool) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        let _ = stream.write_all(raw);
        if close_write {
            let _ = stream.shutdown(std::net::Shutdown::Write);
        }
        let mut response = String::new();
        let _ = stream.read_to_string(&mut response);
        response
    }

    #[test]
    fn malformed_requests_get_a_typed_400() {
        static REG: std::sync::OnceLock<LiveRegistry> = std::sync::OnceLock::new();
        let reg = REG.get_or_init(LiveRegistry::new);
        let server = MetricsServer::start("127.0.0.1:0".parse().unwrap(), reg).expect("bind");
        let addr = server.local_addr();
        // Garbage request line: answered, not dropped.
        let r = send_raw(addr, b"not http at all\r\n\r\n", false);
        assert!(r.starts_with("HTTP/1.1 400"), "{r}");
        // Incomplete head, then EOF: still a typed 400.
        let r = send_raw(addr, b"GET /metrics HTTP/1.1\r\n", true);
        assert!(r.starts_with("HTTP/1.1 400"), "{r}");
    }

    #[test]
    fn oversized_head_gets_413() {
        static REG: std::sync::OnceLock<LiveRegistry> = std::sync::OnceLock::new();
        let reg = REG.get_or_init(LiveRegistry::new);
        let server = MetricsServer::start("127.0.0.1:0".parse().unwrap(), reg).expect("bind");
        let huge = vec![b'A'; 8192];
        let r = send_raw(server.local_addr(), &huge, true);
        assert!(r.starts_with("HTTP/1.1 413"), "{r}");
    }
}
