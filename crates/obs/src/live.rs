//! Live telemetry: per-lane atomic metric cells and consistent snapshots.
//!
//! The post-mortem stack ([`crate::recorder`], [`crate::metrics`]) answers
//! "what happened" after a run finishes; this module answers "what is
//! happening" while sweep workers are still in flight. The design reuses
//! the recorder's lane discipline: every metric family owns one
//! cache-line-padded cell per lane, each lane has a single designated
//! writer (worker thread `t` writes lane `t`), and a sampler thread reads
//! all lanes without taking any lock the writers can contend on.
//!
//! * Counters and gauges are plain relaxed [`AtomicU64`] cells — a lane
//!   write is one `fetch_add`/`store`, never an RMW loop, never a lock.
//! * Histograms are multi-word (count, sum, min, max, 64 log₂ buckets),
//!   so each lane cell carries a seqlock: the writer brackets its relaxed
//!   field updates with two sequence increments (odd = write in progress),
//!   the reader retries until it sees the same even sequence on both sides
//!   of its field reads. Every field is itself an atomic, so even a lost
//!   race is defined behavior; the seqlock only upgrades "defined" to
//!   "consistent point-in-time".
//! * Snapshot-time computed metrics (wait fractions, roofline utilization)
//!   come from [`LiveSource`] collectors registered as `Weak` references —
//!   a dropped plan silently unregisters itself.
//!
//! Everything is gated behind [`enabled`]: when no exposition endpoint or
//! dashboard is attached (the default), instrumentation sites short-circuit
//! on one relaxed bool load and the kernels keep their monomorphized
//! uninstrumented form.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};

use crate::metrics::Histogram;

/// Process-wide switch for the live pipeline. Off by default; flipped on
/// when a metrics endpoint or live dashboard attaches.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is live telemetry on? One relaxed load — cheap enough for setup-phase
/// and per-invocation (not per-row) call sites.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the live pipeline on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// The process-global registry the exposition endpoint serves.
pub fn global() -> &'static LiveRegistry {
    static REG: OnceLock<LiveRegistry> = OnceLock::new();
    REG.get_or_init(LiveRegistry::new)
}

/// One padded counter lane: a single relaxed atomic on its own cache line
/// so lane writers never false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
struct CounterCell {
    v: AtomicU64,
}

/// One padded gauge lane (f64 stored as bits).
#[repr(align(64))]
#[derive(Debug, Default)]
struct GaugeCell {
    bits: AtomicU64,
}

/// One padded histogram lane with a seqlock over its multi-word state.
#[repr(align(64))]
struct HistCell {
    /// Even = stable, odd = lane writer mid-update.
    seq: AtomicU64,
    count: AtomicU64,
    sum: AtomicU64,
    /// `u64::MAX` sentinel when empty, mirroring [`Histogram`].
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; 64],
}

impl Default for HistCell {
    fn default() -> Self {
        HistCell {
            seq: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl HistCell {
    /// Lane-writer observe. Single writer per cell: the seqlock brackets
    /// make concurrent reader snapshots consistent, they do not arbitrate
    /// between two writers.
    fn observe(&self, v: u64) {
        // AcqRel: the acquire half keeps the relaxed field updates from
        // sinking above the odd transition, the release half orders the
        // increment itself.
        self.seq.fetch_add(1, Ordering::AcqRel);
        let bucket = if v == 0 { 0 } else { 63 - v.leading_zeros() as usize };
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        // Release: field updates become visible no later than the even
        // transition the reader checks for.
        self.seq.fetch_add(1, Ordering::Release);
    }

    /// Sampler-side consistent read: retry while the writer is mid-update
    /// or finished an update during our field reads (the Linux/crossbeam
    /// seqlock recipe).
    fn read(&self) -> Histogram {
        loop {
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let count = self.count.load(Ordering::Relaxed);
            let sum = self.sum.load(Ordering::Relaxed);
            let min = self.min.load(Ordering::Relaxed);
            let max = self.max.load(Ordering::Relaxed);
            let mut buckets = [0u64; 64];
            for (b, cell) in buckets.iter_mut().zip(self.buckets.iter()) {
                *b = cell.load(Ordering::Relaxed);
            }
            std::sync::atomic::fence(Ordering::Acquire);
            if self.seq.load(Ordering::Relaxed) == s1 {
                return Histogram::from_raw(buckets, count, sum, min, max);
            }
            std::hint::spin_loop();
        }
    }
}

/// A registered counter family: one monotone cell per lane.
#[derive(Debug)]
pub struct CounterFamily {
    cells: Box<[CounterCell]>,
}

/// A registered gauge family.
#[derive(Debug)]
pub struct GaugeFamily {
    cells: Box<[GaugeCell]>,
}

/// A registered histogram family.
pub struct HistogramFamily {
    cells: Box<[HistCell]>,
}

/// Writer handle for a counter family. Clones share the cells; writes
/// never touch the registry lock.
#[derive(Debug, Clone)]
pub struct LiveCounter(Arc<CounterFamily>);

impl LiveCounter {
    /// Adds `delta` to lane `lane` (wrapped modulo the lane count, so a
    /// plan with more threads than the family was registered with folds
    /// the extras instead of panicking).
    #[inline]
    pub fn add(&self, lane: usize, delta: u64) {
        let cells = &self.0.cells;
        cells[lane % cells.len()].v.fetch_add(delta, Ordering::Relaxed);
    }

    /// `add(lane, 1)`.
    #[inline]
    pub fn inc(&self, lane: usize) {
        self.add(lane, 1);
    }

    /// Current per-lane sum (sampler-side).
    pub fn total(&self) -> u64 {
        self.0.cells.iter().map(|c| c.v.load(Ordering::Relaxed)).sum()
    }
}

/// Writer handle for a gauge family.
#[derive(Debug, Clone)]
pub struct LiveGauge(Arc<GaugeFamily>);

impl LiveGauge {
    /// Sets lane `lane` to `v` (lane wrapped like [`LiveCounter::add`]).
    #[inline]
    pub fn set(&self, lane: usize, v: f64) {
        let cells = &self.0.cells;
        cells[lane % cells.len()].bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Lane `lane`'s current value.
    pub fn get(&self, lane: usize) -> f64 {
        let cells = &self.0.cells;
        f64::from_bits(cells[lane % cells.len()].bits.load(Ordering::Relaxed))
    }
}

/// Writer handle for a histogram family.
#[derive(Clone)]
pub struct LiveHistogram(Arc<HistogramFamily>);

impl LiveHistogram {
    /// Records `v` into lane `lane`'s cell (lane wrapped like
    /// [`LiveCounter::add`]). Each lane must have a single writer.
    #[inline]
    pub fn observe(&self, lane: usize, v: u64) {
        let cells = &self.0.cells;
        cells[lane % cells.len()].observe(v);
    }
}

/// Metric kind tag for snapshots and exposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone count.
    Counter,
    /// Last-set value.
    Gauge,
    /// Log₂-bucketed distribution.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One sample value inside a family snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(f64),
    /// Full distribution reading. Boxed: a `Histogram` is ~550 bytes of
    /// buckets, and most samples in a snapshot are counters or gauges.
    Histogram(Box<Histogram>),
}

/// One labeled sample of a family.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveSample {
    /// Label pairs (possibly empty), e.g. `[("thread", "3")]`.
    pub labels: Vec<(String, String)>,
    /// The reading.
    pub value: SampleValue,
}

/// A point-in-time reading of one metric family.
#[derive(Debug, Clone)]
pub struct FamilySnapshot {
    /// Metric name (validated against the Prometheus charset at
    /// registration).
    pub name: String,
    /// `# HELP` text.
    pub help: String,
    /// Family kind.
    pub kind: MetricKind,
    /// Labeled samples, in lane order / collector order.
    pub samples: Vec<LiveSample>,
}

/// A consistent point-in-time snapshot of the whole registry.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Families sorted by name.
    pub families: Vec<FamilySnapshot>,
}

impl Snapshot {
    /// Finds a family by name.
    pub fn family(&self, name: &str) -> Option<&FamilySnapshot> {
        self.families.iter().find(|f| f.name == name)
    }

    /// Sum of a counter family's samples (0 when absent).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.family(name).map_or(0, |f| {
            f.samples
                .iter()
                .map(|s| match s.value {
                    SampleValue::Counter(c) => c,
                    _ => 0,
                })
                .sum()
        })
    }

    /// First gauge sample of a family.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.family(name)?.samples.iter().find_map(|s| match s.value {
            SampleValue::Gauge(g) => Some(g),
            _ => None,
        })
    }
}

/// A scrape-time collector: computes metrics that only make sense as a
/// function of live state (wait fractions, roofline utilization,
/// per-thread progress) rather than as accumulating cells.
pub trait LiveSource: Send + Sync {
    /// Returns this source's families for one snapshot.
    fn collect(&self) -> Vec<FamilySnapshot>;
}

enum FamilyHandle {
    Counter { help: String, fam: Arc<CounterFamily> },
    Gauge { help: String, fam: Arc<GaugeFamily> },
    Histogram { help: String, fam: Arc<HistogramFamily> },
}

#[derive(Default)]
struct RegistryInner {
    families: BTreeMap<String, FamilyHandle>,
    sources: Vec<Weak<dyn LiveSource>>,
}

/// The live-metric registry: family registration, collector registration,
/// and coalescing snapshots. Registration takes a lock; *writes never do*
/// — handles hold the cells directly.
#[derive(Default)]
pub struct LiveRegistry {
    inner: Mutex<RegistryInner>,
}

/// Panics unless `name` matches the Prometheus metric-name charset
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn validate_name(name: &str) {
    let mut chars = name.chars();
    let ok_head = chars.next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':');
    let ok_tail = name.chars().skip(1).all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':');
    assert!(ok_head && ok_tail, "invalid metric name '{name}'");
}

impl LiveRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        LiveRegistry::default()
    }

    /// Registers (or re-opens) counter family `name` with `lanes` padded
    /// cells. Re-opening returns the existing cells regardless of `lanes`.
    ///
    /// # Panics
    /// Panics on an invalid metric name or a kind mismatch with an
    /// existing family.
    pub fn counter(&self, name: &str, help: &str, lanes: usize) -> LiveCounter {
        validate_name(name);
        let mut inner = self.inner.lock().expect("live registry lock");
        match inner.families.entry(name.to_string()).or_insert_with(|| FamilyHandle::Counter {
            help: help.to_string(),
            fam: Arc::new(CounterFamily {
                cells: (0..lanes.max(1)).map(|_| CounterCell::default()).collect(),
            }),
        }) {
            FamilyHandle::Counter { fam, .. } => LiveCounter(Arc::clone(fam)),
            _ => panic!("live metric '{name}' is not a counter"),
        }
    }

    /// Registers (or re-opens) gauge family `name`.
    ///
    /// # Panics
    /// Panics on an invalid metric name or a kind mismatch.
    pub fn gauge(&self, name: &str, help: &str, lanes: usize) -> LiveGauge {
        validate_name(name);
        let mut inner = self.inner.lock().expect("live registry lock");
        match inner.families.entry(name.to_string()).or_insert_with(|| FamilyHandle::Gauge {
            help: help.to_string(),
            fam: Arc::new(GaugeFamily {
                cells: (0..lanes.max(1)).map(|_| GaugeCell::default()).collect(),
            }),
        }) {
            FamilyHandle::Gauge { fam, .. } => LiveGauge(Arc::clone(fam)),
            _ => panic!("live metric '{name}' is not a gauge"),
        }
    }

    /// Registers (or re-opens) histogram family `name`.
    ///
    /// # Panics
    /// Panics on an invalid metric name or a kind mismatch.
    pub fn histogram(&self, name: &str, help: &str, lanes: usize) -> LiveHistogram {
        validate_name(name);
        let mut inner = self.inner.lock().expect("live registry lock");
        match inner.families.entry(name.to_string()).or_insert_with(|| FamilyHandle::Histogram {
            help: help.to_string(),
            fam: Arc::new(HistogramFamily {
                cells: (0..lanes.max(1)).map(|_| HistCell::default()).collect(),
            }),
        }) {
            FamilyHandle::Histogram { fam, .. } => LiveHistogram(Arc::clone(fam)),
            _ => panic!("live metric '{name}' is not a histogram"),
        }
    }

    /// Registers a scrape-time collector. Held as `Weak`: when the last
    /// strong reference drops (plan goes out of scope) the source falls
    /// out of subsequent snapshots automatically.
    pub fn register_source(&self, src: Weak<dyn LiveSource>) {
        let mut inner = self.inner.lock().expect("live registry lock");
        inner.sources.retain(|w| w.strong_count() > 0);
        inner.sources.push(src);
    }

    /// Takes a consistent snapshot: per-lane cell reads (seqlocked for
    /// histograms) plus every live collector's families, sorted by name.
    /// Collectors run *outside* the registry lock so they may themselves
    /// register metrics.
    pub fn snapshot(&self) -> Snapshot {
        // Phase 1: clone handles under the lock, prune dead sources.
        let (families, sources) = {
            let mut inner = self.inner.lock().expect("live registry lock");
            inner.sources.retain(|w| w.strong_count() > 0);
            let fams: Vec<(String, String, FamilyClone)> = inner
                .families
                .iter()
                .map(|(name, h)| match h {
                    FamilyHandle::Counter { help, fam } => {
                        (name.clone(), help.clone(), FamilyClone::Counter(Arc::clone(fam)))
                    }
                    FamilyHandle::Gauge { help, fam } => {
                        (name.clone(), help.clone(), FamilyClone::Gauge(Arc::clone(fam)))
                    }
                    FamilyHandle::Histogram { help, fam } => {
                        (name.clone(), help.clone(), FamilyClone::Histogram(Arc::clone(fam)))
                    }
                })
                .collect();
            let srcs: Vec<Arc<dyn LiveSource>> =
                inner.sources.iter().filter_map(Weak::upgrade).collect();
            (fams, srcs)
        };

        // Phase 2: read cells and run collectors lock-free.
        let mut out = Vec::with_capacity(families.len());
        for (name, help, clone) in families {
            let (kind, samples) = match clone {
                FamilyClone::Counter(fam) => (
                    MetricKind::Counter,
                    lane_samples(fam.cells.len(), |i| {
                        SampleValue::Counter(fam.cells[i].v.load(Ordering::Relaxed))
                    }),
                ),
                FamilyClone::Gauge(fam) => (
                    MetricKind::Gauge,
                    lane_samples(fam.cells.len(), |i| {
                        SampleValue::Gauge(f64::from_bits(
                            fam.cells[i].bits.load(Ordering::Relaxed),
                        ))
                    }),
                ),
                FamilyClone::Histogram(fam) => {
                    let lanes: Vec<Histogram> = fam.cells.iter().map(HistCell::read).collect();
                    let mut merged = Histogram::new();
                    for h in &lanes {
                        merged.merge(h);
                    }
                    // Histograms expose only the merged distribution: a
                    // 64-bucket family per thread would swamp a scrape.
                    (
                        MetricKind::Histogram,
                        vec![LiveSample {
                            labels: Vec::new(),
                            value: SampleValue::Histogram(Box::new(merged)),
                        }],
                    )
                }
            };
            out.push(FamilySnapshot { name, help, kind, samples });
        }
        for src in sources {
            out.extend(src.collect());
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        // Several collectors may emit the same family (one PlanTelemetry
        // per live plan): coalesce same-name same-kind runs so the
        // exposition carries exactly one HELP/TYPE pair per family and
        // `Snapshot::family` sees every sample.
        let mut merged: Vec<FamilySnapshot> = Vec::with_capacity(out.len());
        for fam in out {
            match merged.last_mut() {
                Some(prev) if prev.name == fam.name && prev.kind == fam.kind => {
                    prev.samples.extend(fam.samples);
                }
                _ => merged.push(fam),
            }
        }
        Snapshot { families: merged }
    }
}

enum FamilyClone {
    Counter(Arc<CounterFamily>),
    Gauge(Arc<GaugeFamily>),
    Histogram(Arc<HistogramFamily>),
}

/// Lane readings as samples: a single-lane family is one unlabeled
/// sample; a multi-lane family gets `thread="i"` labels with all-zero
/// trailing lanes kept (so scrape diffs line up across samples).
fn lane_samples(lanes: usize, read: impl Fn(usize) -> SampleValue) -> Vec<LiveSample> {
    if lanes == 1 {
        return vec![LiveSample { labels: Vec::new(), value: read(0) }];
    }
    (0..lanes)
        .map(|i| LiveSample { labels: vec![("thread".to_string(), i.to_string())], value: read(i) })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_lanes_accumulate_and_wrap() {
        let reg = LiveRegistry::new();
        let c = reg.counter("fbmpk_test_total", "t", 4);
        c.add(0, 5);
        c.add(3, 7);
        c.add(4, 1); // wraps to lane 0
        assert_eq!(c.total(), 13);
        let snap = reg.snapshot();
        let fam = snap.family("fbmpk_test_total").unwrap();
        assert_eq!(fam.kind, MetricKind::Counter);
        assert_eq!(fam.samples.len(), 4);
        assert_eq!(fam.samples[0].labels, vec![("thread".to_string(), "0".to_string())]);
        assert_eq!(snap.counter_total("fbmpk_test_total"), 13);
    }

    #[test]
    fn histogram_cell_roundtrip() {
        let reg = LiveRegistry::new();
        let h = reg.histogram("fbmpk_test_ns", "t", 2);
        h.observe(0, 100);
        h.observe(1, 200);
        h.observe(1, 0);
        let snap = reg.snapshot();
        let fam = snap.family("fbmpk_test_ns").unwrap();
        assert_eq!(fam.samples.len(), 1);
        match &fam.samples[0].value {
            SampleValue::Histogram(hist) => {
                assert_eq!(hist.count(), 3);
                assert_eq!(hist.sum(), 300);
                assert_eq!(hist.min(), 0);
                assert_eq!(hist.max(), 200);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn sources_are_weak() {
        let reg = LiveRegistry::new();
        struct One;
        impl LiveSource for One {
            fn collect(&self) -> Vec<FamilySnapshot> {
                vec![FamilySnapshot {
                    name: "fbmpk_src_gauge".to_string(),
                    help: "h".to_string(),
                    kind: MetricKind::Gauge,
                    samples: vec![LiveSample { labels: vec![], value: SampleValue::Gauge(1.0) }],
                }]
            }
        }
        let src: Arc<dyn LiveSource> = Arc::new(One);
        reg.register_source(Arc::downgrade(&src));
        assert_eq!(reg.snapshot().gauge("fbmpk_src_gauge"), Some(1.0));
        drop(src);
        assert!(reg.snapshot().family("fbmpk_src_gauge").is_none());
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_names_rejected() {
        LiveRegistry::new().counter("1bad-name", "t", 1);
    }

    #[test]
    #[should_panic(expected = "is not a counter")]
    fn kind_mismatch_rejected() {
        let reg = LiveRegistry::new();
        reg.gauge("fbmpk_x", "t", 1);
        reg.counter("fbmpk_x", "t", 1);
    }

    #[test]
    fn enabled_gate_toggles() {
        // Not asserting the initial state: other tests in the process may
        // have flipped the global switch already.
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }
}
