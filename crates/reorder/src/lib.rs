//! # fbmpk-reorder
//!
//! Matrix reordering substrate for FBMPK's parallelization (paper §II-C,
//! §III-D).
//!
//! The centerpiece is the **algebraic block multi-color ordering** (ABMC,
//! Iwashita et al., IPDPS 2012): rows are aggregated into blocks, the block
//! quotient graph is greedily distance-1 colored (our Colpack substitute),
//! and rows are renumbered block-by-block with blocks sorted by color. After
//! this symmetric permutation, same-color blocks share no matrix entry, so
//! the forward/backward sweeps can process all blocks of one color in
//! parallel with barriers only at color boundaries.
//!
//! Also provided: reverse Cuthill–McKee (the locality baseline the paper
//! cites), level scheduling (the alternative the paper's §VII discusses),
//! multilevel edge-cut partitioning ([`partition`], the cut-minimizing
//! third blocking strategy), and the undirected adjacency/quotient-graph
//! machinery they share.

pub mod abmc;
pub mod blocking;
pub mod coloring;
pub mod deps;
pub mod graph;
pub mod levels;
pub mod partition;
pub mod rcm;

pub use abmc::{Abmc, AbmcParams, BlockingStrategy};
pub use coloring::{greedy_coloring, validate_coloring, ColoringOrdering};
pub use deps::{BlockDeps, DepStats};
pub use graph::Graph;
pub use partition::{balance_ratio, cut_edges, multilevel_blocks};
pub use rcm::rcm;
