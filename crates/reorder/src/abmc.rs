//! Algebraic Block Multi-Color ordering (Iwashita et al., IPDPS 2012) —
//! the reordering FBMPK uses to expose parallelism (paper §III-D).
//!
//! Pipeline: aggregate rows into blocks → color the block quotient graph →
//! renumber rows block-by-block with blocks sorted by color. In the
//! permuted matrix, two blocks of the same color share no entry, so all
//! blocks of one color can be processed concurrently; the forward sweep
//! walks colors in ascending order, the backward sweep descending, with a
//! barrier at every color boundary.

use crate::blocking::{aggregated_blocks, block_size_for_count, contiguous_blocks, Blocking};
use crate::coloring::{greedy_coloring, validate_coloring, Coloring, ColoringOrdering};
use crate::graph::Graph;
use crate::partition::multilevel_blocks;
use fbmpk_sparse::{Csr, Permutation};

/// How rows are aggregated into blocks before coloring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BlockingStrategy {
    /// Contiguous index ranges (cheap; good when the input numbering is
    /// already local, e.g. banded FEM).
    Contiguous,
    /// Greedy BFS aggregation over the structure graph (the "algebraic"
    /// blocking; re-groups irregular matrices).
    #[default]
    Aggregated,
    /// Multilevel edge-cut partitioning ([`crate::partition`]): minimizes
    /// cross-block entries, i.e. the dependency edges the barrier-free
    /// point-to-point sweep waits on. Costs more at plan time than the
    /// other two; pays off on irregular structure.
    Multilevel,
}

/// Parameters for [`Abmc::new`].
#[derive(Debug, Clone, Copy)]
pub struct AbmcParams {
    /// Target number of blocks (the paper defaults to 512 or 1024).
    pub nblocks: usize,
    /// Blocking strategy.
    pub strategy: BlockingStrategy,
    /// Vertex ordering for the greedy quotient coloring.
    pub ordering: ColoringOrdering,
}

impl Default for AbmcParams {
    fn default() -> Self {
        AbmcParams {
            nblocks: 512,
            strategy: BlockingStrategy::default(),
            ordering: ColoringOrdering::default(),
        }
    }
}

/// The result of ABMC reordering.
///
/// All row indices below refer to the *new* (permuted) numbering: rows are
/// laid out block after block, blocks sorted by color. The colored sweep
/// structure is fully described by two offset arrays:
///
/// * block `b` covers rows `block_row_start[b] .. block_row_start[b+1]`,
/// * color `c` owns blocks
///   `color_block_start[c] .. color_block_start[c+1]`.
#[derive(Debug, Clone)]
pub struct Abmc {
    perm: Permutation,
    block_row_start: Vec<usize>,
    color_block_start: Vec<usize>,
}

impl Abmc {
    /// Computes the ABMC ordering of a square matrix.
    ///
    /// ```
    /// use fbmpk_reorder::{Abmc, AbmcParams};
    /// let a = fbmpk_sparse::Csr::from_dense(&[
    ///     &[2.0, -1.0, 0.0, 0.0],
    ///     &[-1.0, 2.0, -1.0, 0.0],
    ///     &[0.0, -1.0, 2.0, -1.0],
    ///     &[0.0, 0.0, -1.0, 2.0],
    /// ]);
    /// let abmc = Abmc::new(&a, AbmcParams { nblocks: 2, ..Default::default() });
    /// let permuted = abmc.apply(&a);
    /// // Soundness: no entry joins two same-color blocks.
    /// abmc.validate_against(&permuted).unwrap();
    /// ```
    ///
    /// # Panics
    /// Panics for non-square input or `nblocks == 0`.
    pub fn new(a: &Csr, params: AbmcParams) -> Self {
        assert_eq!(a.nrows(), a.ncols(), "ABMC needs a square matrix");
        assert!(params.nblocks > 0, "need at least one block");
        let n = a.nrows();
        let g = Graph::from_matrix(a);
        let blocking = match params.strategy {
            BlockingStrategy::Contiguous => contiguous_blocks(n, params.nblocks),
            BlockingStrategy::Aggregated => {
                aggregated_blocks(&g, block_size_for_count(n, params.nblocks))
            }
            BlockingStrategy::Multilevel => multilevel_blocks(&g, params.nblocks),
        };
        let quotient = g.quotient(&blocking.block_of, blocking.nblocks);
        let coloring = greedy_coloring(&quotient, params.ordering);
        // The parallel sweeps' memory safety rests on this property, so it
        // is checked in release builds too (O(blocks + block edges), a
        // rounding error next to the quotient construction itself).
        validate_coloring(&quotient, &coloring)
            .expect("greedy coloring violated the distance-1 property (internal bug)");
        Self::assemble(n, &blocking, &coloring)
    }

    /// Builds the permutation and offset arrays from a blocking + coloring.
    fn assemble(n: usize, blocking: &Blocking, coloring: &Coloring) -> Self {
        let nblocks = blocking.nblocks;
        let ncolors = coloring.ncolors;
        // Sort block ids by (color, id) — stable within a color so block
        // interiors keep their relative order.
        let mut block_order: Vec<u32> = (0..nblocks as u32).collect();
        block_order.sort_by_key(|&b| (coloring.colors[b as usize], b));
        // Gather members per block (ascending old index).
        let members = blocking.members();
        let mut order: Vec<u32> = Vec::with_capacity(n);
        let mut block_row_start = Vec::with_capacity(nblocks + 1);
        let mut color_block_start = vec![0usize; ncolors + 1];
        block_row_start.push(0);
        let mut current_color = 0usize;
        for (k, &b) in block_order.iter().enumerate() {
            let c = coloring.colors[b as usize] as usize;
            while current_color < c {
                current_color += 1;
                color_block_start[current_color] = k;
            }
            order.extend_from_slice(&members[b as usize]);
            block_row_start.push(order.len());
        }
        while current_color < ncolors {
            current_color += 1;
            color_block_start[current_color] = nblocks;
        }
        let perm = Permutation::from_order(&order).expect("blocking covers all rows exactly once");
        Abmc { perm, block_row_start, color_block_start }
    }

    /// The symmetric row/column permutation (old → new).
    pub fn permutation(&self) -> &Permutation {
        &self.perm
    }

    /// Number of blocks.
    pub fn nblocks(&self) -> usize {
        self.block_row_start.len() - 1
    }

    /// Number of colors.
    pub fn ncolors(&self) -> usize {
        self.color_block_start.len() - 1
    }

    /// Row range (new numbering) of block `b`.
    #[inline]
    pub fn block_rows(&self, b: usize) -> std::ops::Range<usize> {
        self.block_row_start[b]..self.block_row_start[b + 1]
    }

    /// Block-id range of color `c`.
    #[inline]
    pub fn color_blocks(&self, c: usize) -> std::ops::Range<usize> {
        self.color_block_start[c]..self.color_block_start[c + 1]
    }

    /// Number of blocks in the largest color class — the available
    /// within-color parallelism (the paper's `cant` analysis counts "only
    /// 77 blocks in one color").
    pub fn max_color_width(&self) -> usize {
        (0..self.ncolors()).map(|c| self.color_blocks(c).len()).max().unwrap_or(0)
    }

    /// Applies the ordering to the matrix: returns `P A Pᵀ`.
    pub fn apply(&self, a: &Csr) -> Csr {
        self.perm.permute_symmetric(a).expect("ABMC permutation matches matrix dimension")
    }

    /// Verifies the schedule-soundness property on a permuted matrix: no
    /// entry of `PAPᵀ` may join two different blocks of the same color.
    pub fn validate_against(&self, permuted: &Csr) -> Result<(), String> {
        if permuted.nrows() != self.perm.len() {
            return Err("matrix size does not match ordering".into());
        }
        // Map each (new) row to its block, each block to its color.
        let n = permuted.nrows();
        let mut block_of_row = vec![0u32; n];
        for b in 0..self.nblocks() {
            for r in self.block_rows(b) {
                block_of_row[r] = b as u32;
            }
        }
        let mut color_of_block = vec![0u32; self.nblocks()];
        for c in 0..self.ncolors() {
            for b in self.color_blocks(c) {
                color_of_block[b] = c as u32;
            }
        }
        for (r, c, _) in permuted.iter() {
            let (br, bc) = (block_of_row[r], block_of_row[c]);
            if br != bc && color_of_block[br as usize] == color_of_block[bc as usize] {
                return Err(format!(
                    "entry ({r}, {c}) joins blocks {br} and {bc} of color {}",
                    color_of_block[br as usize]
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbmpk_sparse::spmv::spmv;

    fn tridiag(n: usize) -> Csr {
        let mut coo = fbmpk_sparse::Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
            if i > 0 {
                coo.push(i, i - 1, -1.0).unwrap();
                coo.push(i - 1, i, -1.0).unwrap();
            }
        }
        coo.to_csr()
    }

    #[test]
    fn offsets_partition_rows_and_blocks() {
        let a = tridiag(100);
        for strategy in [
            BlockingStrategy::Contiguous,
            BlockingStrategy::Aggregated,
            BlockingStrategy::Multilevel,
        ] {
            let abmc = Abmc::new(
                &a,
                AbmcParams { nblocks: 10, strategy, ordering: ColoringOrdering::Natural },
            );
            assert_eq!(abmc.block_rows(0).start, 0);
            assert_eq!(abmc.block_rows(abmc.nblocks() - 1).end, 100);
            let total_rows: usize = (0..abmc.nblocks()).map(|b| abmc.block_rows(b).len()).sum();
            assert_eq!(total_rows, 100);
            let total_blocks: usize = (0..abmc.ncolors()).map(|c| abmc.color_blocks(c).len()).sum();
            assert_eq!(total_blocks, abmc.nblocks());
        }
    }

    #[test]
    fn same_color_blocks_share_no_entries() {
        for (n, nblocks) in [(100, 10), (64, 8), (37, 5)] {
            let a = tridiag(n);
            let abmc = Abmc::new(&a, AbmcParams { nblocks, ..Default::default() });
            let b = abmc.apply(&a);
            abmc.validate_against(&b).unwrap();
        }
    }

    #[test]
    fn tridiagonal_contiguous_needs_two_colors() {
        // Contiguous blocks of a path quotient to a path; greedy colors a
        // path with 2 colors.
        let a = tridiag(64);
        let abmc = Abmc::new(
            &a,
            AbmcParams {
                nblocks: 8,
                strategy: BlockingStrategy::Contiguous,
                ordering: ColoringOrdering::Natural,
            },
        );
        assert_eq!(abmc.ncolors(), 2);
        assert!(abmc.max_color_width() >= 4);
    }

    #[test]
    fn permuted_spmv_consistent() {
        let a = tridiag(50);
        let abmc = Abmc::new(&a, AbmcParams { nblocks: 7, ..Default::default() });
        let b = abmc.apply(&a);
        let x: Vec<f64> = (0..50).map(|i| (i as f64).sin()).collect();
        let mut ax = vec![0.0; 50];
        spmv(&a, &x, &mut ax);
        let px = abmc.permutation().apply_vec_alloc(&x);
        let mut bpx = vec![0.0; 50];
        spmv(&b, &px, &mut bpx);
        let pax = abmc.permutation().apply_vec_alloc(&ax);
        for (u, v) in bpx.iter().zip(&pax) {
            assert!((u - v).abs() < 1e-14);
        }
    }

    #[test]
    fn single_block_single_color() {
        let a = tridiag(10);
        let abmc = Abmc::new(&a, AbmcParams { nblocks: 1, ..Default::default() });
        assert_eq!(abmc.nblocks(), 1);
        assert_eq!(abmc.ncolors(), 1);
        // One block means identity-like grouping: all rows in block 0.
        assert_eq!(abmc.block_rows(0), 0..10);
    }

    #[test]
    fn validate_rejects_wrong_matrix() {
        let a = tridiag(20);
        let abmc = Abmc::new(&a, AbmcParams { nblocks: 4, ..Default::default() });
        // Unpermuted matrix of the wrong size:
        let wrong = tridiag(10);
        assert!(abmc.validate_against(&wrong).is_err());
    }

    #[test]
    fn dense_matrix_each_block_its_own_color() {
        // A dense 8x8 matrix: every pair of blocks is adjacent, so the
        // quotient is complete and every block needs its own color.
        let rows: Vec<Vec<f64>> = (0..8).map(|_| vec![1.0; 8]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let a = Csr::from_dense(&refs);
        let abmc = Abmc::new(
            &a,
            AbmcParams {
                nblocks: 4,
                strategy: BlockingStrategy::Contiguous,
                ordering: ColoringOrdering::Natural,
            },
        );
        assert_eq!(abmc.ncolors(), abmc.nblocks());
        abmc.validate_against(&abmc.apply(&a)).unwrap();
    }
}
