//! Greedy distance-1 graph coloring — the Colpack substitute.
//!
//! The paper colors ABMC blocks with the Colpack library. Colpack's
//! distance-1 algorithm is greedy first-fit over a vertex ordering; we
//! implement the same algorithm with its three standard orderings. Any
//! *valid* distance-1 coloring makes the parallel schedule correct (same
//! color ⇒ no shared edge ⇒ no cross-thread dependency); the ordering only
//! affects the number of colors and hence barrier count.

use crate::graph::Graph;

/// Vertex orderings for greedy coloring (Colpack's standard menu).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ColoringOrdering {
    /// Vertices in index order. Fast, often good on banded structures.
    #[default]
    Natural,
    /// Descending degree (Welsh–Powell): colors high-degree vertices while
    /// many colors are still available.
    LargestDegreeFirst,
    /// Smallest-last (Matula–Beck): repeatedly remove a minimum-degree
    /// vertex; color in reverse removal order. Strongest bound
    /// (χ ≤ degeneracy + 1), highest preprocessing cost.
    SmallestLast,
}

/// A distance-1 coloring: `colors[v]` in `0..ncolors`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coloring {
    /// Per-vertex color ids.
    pub colors: Vec<u32>,
    /// Number of colors used.
    pub ncolors: usize,
}

impl Coloring {
    /// Class sizes: how many vertices carry each color.
    pub fn class_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.ncolors];
        for &c in &self.colors {
            sizes[c as usize] += 1;
        }
        sizes
    }
}

/// Greedy first-fit distance-1 coloring under the given vertex ordering.
pub fn greedy_coloring(g: &Graph, ordering: ColoringOrdering) -> Coloring {
    let n = g.n();
    let order = match ordering {
        ColoringOrdering::Natural => (0..n as u32).collect::<Vec<_>>(),
        ColoringOrdering::LargestDegreeFirst => {
            let mut o: Vec<u32> = (0..n as u32).collect();
            o.sort_by_key(|&v| std::cmp::Reverse(g.degree(v as usize)));
            o
        }
        ColoringOrdering::SmallestLast => smallest_last_order(g),
    };
    let mut colors = vec![u32::MAX; n];
    // `forbidden[c] == v` marks color c as used by a neighbor of the vertex
    // currently being colored (timestamp trick avoids clearing).
    let mut forbidden = vec![u32::MAX; g.max_degree() + 1];
    let mut ncolors = 0usize;
    for &v in &order {
        let v = v as usize;
        for &w in g.neighbors(v) {
            let cw = colors[w as usize];
            if cw != u32::MAX && (cw as usize) < forbidden.len() {
                forbidden[cw as usize] = v as u32;
            }
        }
        let mut c = 0u32;
        while (c as usize) < forbidden.len() && forbidden[c as usize] == v as u32 {
            c += 1;
        }
        colors[v] = c;
        ncolors = ncolors.max(c as usize + 1);
    }
    Coloring { colors, ncolors }
}

/// Computes the smallest-last vertex order: repeatedly remove a vertex of
/// minimum degree in the remaining graph; return vertices in reverse
/// removal order.
fn smallest_last_order(g: &Graph) -> Vec<u32> {
    let n = g.n();
    let mut deg: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    let maxdeg = g.max_degree();
    // Bucket queue over degrees.
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); maxdeg + 1];
    let mut removed = vec![false; n];
    for v in 0..n {
        buckets[deg[v]].push(v as u32);
    }
    let mut removal = Vec::with_capacity(n);
    let mut floor = 0usize;
    for _ in 0..n {
        // Find a live vertex of minimum current degree. Entries in buckets
        // may be stale; skip them.
        let v = loop {
            while floor < buckets.len() && buckets[floor].is_empty() {
                floor += 1;
            }
            let cand = buckets[floor].pop().expect("bucket scan found nonempty bucket");
            if !removed[cand as usize] && deg[cand as usize] == floor {
                break cand;
            }
        };
        removed[v as usize] = true;
        removal.push(v);
        for &w in g.neighbors(v as usize) {
            let w = w as usize;
            if !removed[w] {
                deg[w] -= 1;
                buckets[deg[w]].push(w as u32);
                floor = floor.min(deg[w]);
            }
        }
    }
    removal.reverse();
    removal
}

/// Verifies the distance-1 property: no edge joins two vertices of the same
/// color, and all colors are `< ncolors`. This is exactly the soundness
/// condition the parallel colored sweep relies on.
pub fn validate_coloring(g: &Graph, coloring: &Coloring) -> Result<(), String> {
    if coloring.colors.len() != g.n() {
        return Err(format!("coloring covers {} of {} vertices", coloring.colors.len(), g.n()));
    }
    for (v, &cv) in coloring.colors.iter().enumerate() {
        if cv as usize >= coloring.ncolors {
            return Err(format!("vertex {v} has color {cv} >= ncolors {}", coloring.ncolors));
        }
        for &w in g.neighbors(v) {
            if coloring.colors[w as usize] == cv {
                return Err(format!("edge ({v}, {w}) joins two color-{cv} vertices"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Graph {
        let lists: Vec<Vec<u32>> =
            (0..n).map(|i| vec![((i + n - 1) % n) as u32, ((i + 1) % n) as u32]).collect();
        Graph::from_neighbor_lists(&lists)
    }

    fn complete(n: usize) -> Graph {
        let lists: Vec<Vec<u32>> =
            (0..n).map(|i| (0..n as u32).filter(|&j| j as usize != i).collect()).collect();
        Graph::from_neighbor_lists(&lists)
    }

    #[test]
    fn all_orderings_produce_valid_colorings() {
        for g in [cycle(10), cycle(11), complete(6), Graph::from_neighbor_lists(&[])] {
            for ord in [
                ColoringOrdering::Natural,
                ColoringOrdering::LargestDegreeFirst,
                ColoringOrdering::SmallestLast,
            ] {
                let c = greedy_coloring(&g, ord);
                validate_coloring(&g, &c).unwrap();
            }
        }
    }

    #[test]
    fn even_cycle_two_colors() {
        let c = greedy_coloring(&cycle(10), ColoringOrdering::Natural);
        assert_eq!(c.ncolors, 2);
    }

    #[test]
    fn odd_cycle_three_colors() {
        let c = greedy_coloring(&cycle(11), ColoringOrdering::Natural);
        assert_eq!(c.ncolors, 3);
    }

    #[test]
    fn complete_graph_needs_n_colors() {
        let c = greedy_coloring(&complete(5), ColoringOrdering::SmallestLast);
        assert_eq!(c.ncolors, 5);
        assert_eq!(c.class_sizes(), vec![1; 5]);
    }

    #[test]
    fn greedy_bound_max_degree_plus_one() {
        // Greedy never exceeds Δ + 1 colors.
        let g = cycle(7);
        for ord in [ColoringOrdering::Natural, ColoringOrdering::LargestDegreeFirst] {
            let c = greedy_coloring(&g, ord);
            assert!(c.ncolors <= g.max_degree() + 1);
        }
    }

    #[test]
    fn smallest_last_optimal_on_star() {
        // Star graph: hub degree n-1, leaves degree 1; degeneracy 1, so
        // smallest-last colors it with 2 colors.
        let n = 8;
        let mut lists = vec![(1..n as u32).collect::<Vec<_>>()];
        lists.extend((1..n).map(|_| vec![0u32]));
        let g = Graph::from_neighbor_lists(&lists);
        let c = greedy_coloring(&g, ColoringOrdering::SmallestLast);
        assert_eq!(c.ncolors, 2);
        validate_coloring(&g, &c).unwrap();
    }

    #[test]
    fn validate_rejects_bad_coloring() {
        let g = cycle(4);
        let bad = Coloring { colors: vec![0, 0, 1, 1], ncolors: 2 };
        assert!(validate_coloring(&g, &bad).is_err());
        let short = Coloring { colors: vec![0, 1], ncolors: 2 };
        assert!(validate_coloring(&g, &short).is_err());
        let overflow = Coloring { colors: vec![0, 1, 0, 5], ncolors: 2 };
        assert!(validate_coloring(&g, &overflow).is_err());
    }

    #[test]
    fn isolated_vertices_one_color() {
        let g = Graph::from_neighbor_lists(&[vec![], vec![], vec![]]);
        let c = greedy_coloring(&g, ColoringOrdering::Natural);
        assert_eq!(c.ncolors, 1);
    }
}
