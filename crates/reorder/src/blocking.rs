//! Row blocking — the "algebraic block" half of ABMC.
//!
//! ABMC aggregates rows into blocks before coloring; the block size trades
//! parallelism (many small blocks → more concurrency, more colors) against
//! locality and scheduling overhead (the paper defaults to 512 or 1024
//! blocks total). Two strategies:
//!
//! * [`contiguous_blocks`] — consecutive index ranges, the cheap choice for
//!   matrices whose numbering is already locality-friendly (banded FEM);
//! * [`aggregated_blocks`] — greedy BFS aggregation over the structure
//!   graph, the "algebraic" blocking of Iwashita et al. that re-groups rows
//!   of irregular matrices so blocks are graph-compact.

use crate::graph::Graph;

/// A block assignment: `block_of[v]` maps a vertex to its block id; blocks
/// are numbered `0..nblocks`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Blocking {
    /// Per-vertex block ids.
    pub block_of: Vec<u32>,
    /// Number of blocks.
    pub nblocks: usize,
}

impl Blocking {
    /// Members of each block, in ascending vertex order.
    ///
    /// Block sizes are counted first so every member list is allocated at
    /// its exact final capacity — on large matrices the old grow-as-you-go
    /// version spent most of its time reallocating the big blocks.
    pub fn members(&self) -> Vec<Vec<u32>> {
        let sizes = self.sizes();
        let mut m: Vec<Vec<u32>> = sizes.iter().map(|&s| Vec::with_capacity(s)).collect();
        for (v, &b) in self.block_of.iter().enumerate() {
            m[b as usize].push(v as u32);
        }
        m
    }

    /// Size of each block.
    pub fn sizes(&self) -> Vec<usize> {
        let mut s = vec![0usize; self.nblocks];
        for &b in &self.block_of {
            s[b as usize] += 1;
        }
        s
    }

    /// Checks that every vertex belongs to a block `< nblocks` and every
    /// block is nonempty.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen = vec![false; self.nblocks];
        for (v, &b) in self.block_of.iter().enumerate() {
            if b as usize >= self.nblocks {
                return Err(format!("vertex {v} in block {b} >= {}", self.nblocks));
            }
            seen[b as usize] = true;
        }
        if let Some(b) = seen.iter().position(|&s| !s) {
            return Err(format!("block {b} is empty"));
        }
        Ok(())
    }
}

/// Splits `n` vertices into `nblocks` contiguous index blocks of near-equal
/// size (the paper's default configuration: the user picks the number of
/// blocks, e.g. 512 or 1024).
///
/// # Panics
/// Panics if `nblocks == 0`. When `nblocks > n`, the count is clamped to
/// `n.max(1)`.
pub fn contiguous_blocks(n: usize, nblocks: usize) -> Blocking {
    assert!(nblocks > 0, "need at least one block");
    let nblocks = nblocks.min(n).max(1);
    let base = n / nblocks;
    let extra = n % nblocks;
    let mut block_of = vec![0u32; n];
    let mut v = 0usize;
    for b in 0..nblocks {
        let len = base + usize::from(b < extra);
        for _ in 0..len {
            block_of[v] = b as u32;
            v += 1;
        }
    }
    Blocking { block_of, nblocks }
}

/// Greedy BFS aggregation: grow each block from an unassigned seed by
/// absorbing unassigned neighbors breadth-first until `block_size` vertices
/// are collected (Iwashita et al.'s algebraic blocking). Produces graph-
/// compact blocks on irregular matrices where index blocks would scatter.
///
/// Deterministic by construction: seeds are taken in ascending vertex
/// order, and every BFS tie (which neighbor to absorb next) breaks by
/// vertex order because [`Graph::neighbors`] lists are sorted — the same
/// graph always yields the same `Blocking`, so plans and their
/// fingerprint-keyed caches are reproducible across runs.
///
/// # Panics
/// Panics if `block_size == 0`.
pub fn aggregated_blocks(g: &Graph, block_size: usize) -> Blocking {
    assert!(block_size > 0, "block size must be positive");
    let n = g.n();
    let mut block_of = vec![u32::MAX; n];
    let mut nblocks = 0u32;
    let mut queue = std::collections::VecDeque::new();
    for seed in 0..n {
        if block_of[seed] != u32::MAX {
            continue;
        }
        let b = nblocks;
        nblocks += 1;
        let mut count = 0usize;
        queue.clear();
        queue.push_back(seed as u32);
        block_of[seed] = b;
        while let Some(v) = queue.pop_front() {
            count += 1;
            if count >= block_size {
                break;
            }
            for &w in g.neighbors(v as usize) {
                if count + queue.len() >= block_size {
                    break;
                }
                if block_of[w as usize] == u32::MAX {
                    block_of[w as usize] = b;
                    queue.push_back(w);
                }
            }
        }
        // Vertices still queued are already assigned to b and count toward
        // its size even though they were not expanded.
    }
    Blocking { block_of, nblocks: nblocks as usize }
}

/// Derives the block size that yields approximately `nblocks` blocks for an
/// `n`-vertex graph (the paper parameterizes by block *count*).
pub fn block_size_for_count(n: usize, nblocks: usize) -> usize {
    assert!(nblocks > 0);
    n.div_ceil(nblocks).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_graph(nx: usize, ny: usize) -> Graph {
        let lists: Vec<Vec<u32>> = (0..nx * ny)
            .map(|i| {
                let (x, y) = (i % nx, i / nx);
                let mut l = Vec::new();
                if x > 0 {
                    l.push((i - 1) as u32);
                }
                if x + 1 < nx {
                    l.push((i + 1) as u32);
                }
                if y > 0 {
                    l.push((i - nx) as u32);
                }
                if y + 1 < ny {
                    l.push((i + nx) as u32);
                }
                l
            })
            .collect();
        Graph::from_neighbor_lists(&lists)
    }

    #[test]
    fn contiguous_blocks_balanced() {
        let b = contiguous_blocks(10, 3);
        assert_eq!(b.nblocks, 3);
        b.validate().unwrap();
        let sizes = b.sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 3 || s == 4));
        // Contiguity: block ids are non-decreasing.
        assert!(b.block_of.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn contiguous_blocks_clamps_count() {
        let b = contiguous_blocks(3, 10);
        assert_eq!(b.nblocks, 3);
        b.validate().unwrap();
    }

    #[test]
    fn aggregated_blocks_cover_all_vertices() {
        let g = grid_graph(8, 8);
        let b = aggregated_blocks(&g, 8);
        b.validate().unwrap();
        assert!(b.block_of.iter().all(|&x| x != u32::MAX));
        let sizes = b.sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 64);
        // No block exceeds the cap... aggregation may slightly exceed due to
        // queued-but-unexpanded vertices, bounded by block_size + degree.
        assert!(sizes.iter().all(|&s| s <= 8 + 4));
    }

    #[test]
    fn aggregated_blocks_handle_disconnected_graph() {
        let g = Graph::from_neighbor_lists(&[vec![1], vec![0], vec![3], vec![2], vec![]]);
        let b = aggregated_blocks(&g, 2);
        b.validate().unwrap();
        // Components {0,1}, {2,3}, {4} -> three blocks of sizes 2,2,1.
        assert_eq!(b.nblocks, 3);
    }

    #[test]
    fn aggregated_blocks_are_graph_compact_on_grid() {
        // On a grid, BFS blocks should mostly contain vertices within a
        // small graph distance: verify each block is connected.
        let g = grid_graph(10, 10);
        let b = aggregated_blocks(&g, 10);
        for members in b.members() {
            if members.len() <= 1 {
                continue;
            }
            // BFS within the block from its first member must reach all.
            let inset: std::collections::HashSet<u32> = members.iter().copied().collect();
            let mut seen = std::collections::HashSet::new();
            let mut q = std::collections::VecDeque::new();
            q.push_back(members[0]);
            seen.insert(members[0]);
            while let Some(v) = q.pop_front() {
                for &w in g.neighbors(v as usize) {
                    if inset.contains(&w) && seen.insert(w) {
                        q.push_back(w);
                    }
                }
            }
            assert_eq!(seen.len(), members.len(), "block not connected");
        }
    }

    #[test]
    fn aggregated_blocks_are_deterministic() {
        // Same graph -> identical assignment, including when the graph is
        // rebuilt from scratch (exercises the sorted-neighbor tie-break,
        // not accidental allocator/iteration-order stability).
        let g1 = grid_graph(9, 7);
        let g2 = grid_graph(9, 7);
        let a = aggregated_blocks(&g1, 6);
        let b = aggregated_blocks(&g2, 6);
        assert_eq!(a.block_of, b.block_of);
        assert_eq!(a.nblocks, b.nblocks);
    }

    #[test]
    fn members_match_block_of_and_preallocate_exactly() {
        let g = grid_graph(12, 5);
        let blocking = aggregated_blocks(&g, 7);
        let members = blocking.members();
        assert_eq!(members.len(), blocking.nblocks);
        for (b, list) in members.iter().enumerate() {
            assert_eq!(list.len(), blocking.sizes()[b]);
            assert!(list.windows(2).all(|w| w[0] < w[1]), "ascending vertex order");
            for &v in list {
                assert_eq!(blocking.block_of[v as usize], b as u32);
            }
        }
        assert_eq!(members.iter().map(Vec::len).sum::<usize>(), g.n());
    }

    #[test]
    fn block_size_for_count_inverts() {
        assert_eq!(block_size_for_count(1000, 512), 2);
        assert_eq!(block_size_for_count(100, 512), 1);
        assert_eq!(block_size_for_count(1024, 2), 512);
    }
}
