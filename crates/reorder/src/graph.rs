//! Undirected adjacency graphs of sparse matrices and their block
//! quotients.
//!
//! Reordering algorithms operate on the *symmetrized structure*
//! `G(A) = pattern(A) ∪ pattern(Aᵀ)` without self-loops: an edge `{i, j}`
//! means rows `i` and `j` constrain each other in the sweeps regardless of
//! which triangle the entry sits in.

use fbmpk_sparse::Csr;

/// An undirected graph in CSR-style adjacency storage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    /// Neighbor list offsets, length `n + 1`.
    xadj: Vec<usize>,
    /// Concatenated sorted neighbor lists (no self-loops, no duplicates).
    adj: Vec<u32>,
}

impl Graph {
    /// Builds the symmetrized structure graph of a square matrix.
    ///
    /// # Panics
    /// Panics for non-square input.
    pub fn from_matrix(a: &Csr) -> Self {
        assert_eq!(a.nrows(), a.ncols(), "structure graph needs a square matrix");
        let n = a.nrows();
        // Count degree upper bounds: every off-diagonal entry contributes an
        // edge end at its row and column.
        let mut deg = vec![0usize; n];
        for r in 0..n {
            for &c in a.row_cols(r) {
                let c = c as usize;
                if c != r {
                    deg[r] += 1;
                    deg[c] += 1;
                }
            }
        }
        let mut xadj = vec![0usize; n + 1];
        for i in 0..n {
            xadj[i + 1] = xadj[i] + deg[i];
        }
        let mut adj = vec![0u32; xadj[n]];
        let mut next = xadj.clone();
        for r in 0..n {
            for &c in a.row_cols(r) {
                let c = c as usize;
                if c != r {
                    adj[next[r]] = c as u32;
                    next[r] += 1;
                    adj[next[c]] = r as u32;
                    next[c] += 1;
                }
            }
        }
        // Sort and dedup each neighbor list in place.
        let mut out_adj = Vec::with_capacity(adj.len());
        let mut out_xadj = vec![0usize; n + 1];
        for i in 0..n {
            let mut nbrs: Vec<u32> = adj[xadj[i]..xadj[i + 1]].to_vec();
            nbrs.sort_unstable();
            nbrs.dedup();
            out_adj.extend_from_slice(&nbrs);
            out_xadj[i + 1] = out_adj.len();
        }
        Graph { xadj: out_xadj, adj: out_adj }
    }

    /// Builds a graph directly from neighbor lists (for tests and quotient
    /// construction). Lists are sorted and deduped; self-loops are removed.
    pub fn from_neighbor_lists(lists: &[Vec<u32>]) -> Self {
        let mut xadj = vec![0usize; lists.len() + 1];
        let mut adj = Vec::new();
        for (i, l) in lists.iter().enumerate() {
            let mut nbrs: Vec<u32> = l.iter().copied().filter(|&j| j as usize != i).collect();
            nbrs.sort_unstable();
            nbrs.dedup();
            adj.extend_from_slice(&nbrs);
            xadj[i + 1] = adj.len();
        }
        Graph { xadj, adj }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.xadj.len() - 1
    }

    /// Number of undirected edges.
    pub fn nedges(&self) -> usize {
        self.adj.len() / 2
    }

    /// Neighbors of vertex `v` (sorted, deduped, no self-loop).
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.adj[self.xadj[v]..self.xadj[v + 1]]
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.xadj[v + 1] - self.xadj[v]
    }

    /// Maximum degree over all vertices.
    pub fn max_degree(&self) -> usize {
        (0..self.n()).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Whether `{u, v}` is an edge.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.neighbors(u).binary_search(&(v as u32)).is_ok()
    }

    /// Builds the quotient graph under a vertex-to-block assignment: block
    /// `B1` and `B2` are adjacent iff some edge joins a vertex of `B1` to a
    /// vertex of `B2`. `block_of[v]` must be `< nblocks` for all `v`.
    pub fn quotient(&self, block_of: &[u32], nblocks: usize) -> Graph {
        assert_eq!(block_of.len(), self.n());
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); nblocks];
        for v in 0..self.n() {
            let bv = block_of[v] as usize;
            assert!(bv < nblocks, "block id out of range");
            for &w in self.neighbors(v) {
                let bw = block_of[w as usize];
                if bw as usize != bv {
                    lists[bv].push(bw);
                }
            }
        }
        Graph::from_neighbor_lists(&lists)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Graph {
        // 0 - 1 - 2 - 3
        Graph::from_neighbor_lists(&[vec![1], vec![0, 2], vec![1, 3], vec![2]])
    }

    #[test]
    fn from_matrix_symmetrizes_and_drops_diagonal() {
        // Unsymmetric pattern: entry (0,2) only.
        let a = Csr::from_dense(&[&[1.0, 0.0, 5.0], &[0.0, 1.0, 0.0], &[0.0, 0.0, 1.0]]);
        let g = Graph::from_matrix(&a);
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(0, 0));
        assert_eq!(g.nedges(), 1);
    }

    #[test]
    fn duplicate_edges_fold() {
        // Both (0,1) and (1,0) stored.
        let a = Csr::from_dense(&[&[0.0, 2.0], &[3.0, 0.0]]);
        let g = Graph::from_matrix(&a);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 1);
        assert_eq!(g.nedges(), 1);
    }

    #[test]
    fn path_graph_properties() {
        let g = path4();
        assert_eq!(g.n(), 4);
        assert_eq!(g.nedges(), 3);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn quotient_of_path() {
        let g = path4();
        // Blocks {0,1} and {2,3}: one inter-block edge (1-2).
        let q = g.quotient(&[0, 0, 1, 1], 2);
        assert_eq!(q.n(), 2);
        assert!(q.has_edge(0, 1));
        assert_eq!(q.nedges(), 1);
        // Whole graph in one block: no self-loop.
        let q1 = g.quotient(&[0, 0, 0, 0], 1);
        assert_eq!(q1.nedges(), 0);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_matrix(&Csr::identity(3));
        assert_eq!(g.n(), 3);
        assert_eq!(g.nedges(), 0);
        assert_eq!(g.max_degree(), 0);
    }
}
