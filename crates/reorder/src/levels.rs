//! Level scheduling for triangular sweeps (paper §II-C / §VII).
//!
//! An alternative to multi-coloring: rows of a lower-triangular system are
//! grouped by their longest-dependency depth; all rows of one level can run
//! in parallel, and levels execute in order. The paper lists this as a
//! complementary parallelization strategy for FBMPK's SYMGS-like sweeps.

use fbmpk_sparse::Csr;

/// A level schedule over the rows of a triangular factor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelSchedule {
    /// Rows sorted by level (rows of level `l` are
    /// `order[level_ptr[l]..level_ptr[l+1]]`).
    pub order: Vec<u32>,
    /// Level offsets, length `nlevels + 1`.
    pub level_ptr: Vec<usize>,
}

impl LevelSchedule {
    /// Number of levels.
    pub fn nlevels(&self) -> usize {
        self.level_ptr.len() - 1
    }

    /// Rows of level `l`.
    pub fn level_rows(&self, l: usize) -> &[u32] {
        &self.order[self.level_ptr[l]..self.level_ptr[l + 1]]
    }

    /// Width of the widest level — the available parallelism.
    pub fn max_width(&self) -> usize {
        (0..self.nlevels()).map(|l| self.level_rows(l).len()).max().unwrap_or(0)
    }
}

/// Builds the level schedule of a *strictly lower* triangular matrix:
/// `level(r) = 1 + max(level(c) for c in row r)`, `level = 0` for rows with
/// no strict-lower entries. Rows within a level are emitted in ascending
/// index order.
///
/// # Panics
/// Panics if `l` has entries on or above the diagonal.
pub fn level_schedule_lower(l: &Csr) -> LevelSchedule {
    let n = l.nrows();
    let mut level = vec![0u32; n];
    let mut maxlevel = 0u32;
    for r in 0..n {
        let mut lv = 0u32;
        for &c in l.row_cols(r) {
            assert!((c as usize) < r, "level_schedule_lower needs strictly lower input");
            lv = lv.max(level[c as usize] + 1);
        }
        level[r] = lv;
        maxlevel = maxlevel.max(lv);
    }
    let nlevels = if n == 0 { 0 } else { maxlevel as usize + 1 };
    let mut level_ptr = vec![0usize; nlevels + 1];
    for &lv in &level {
        level_ptr[lv as usize + 1] += 1;
    }
    for i in 0..nlevels {
        level_ptr[i + 1] += level_ptr[i];
    }
    let mut order = vec![0u32; n];
    let mut next = level_ptr.clone();
    for (r, &lv) in level.iter().enumerate() {
        order[next[lv as usize]] = r as u32;
        next[lv as usize] += 1;
    }
    LevelSchedule { order, level_ptr }
}

/// Builds the level schedule of a *strictly upper* triangular matrix for a
/// bottom-up sweep: `level(r) = 1 + max(level(c) for c in row r)` with
/// dependencies pointing at *larger* indices.
///
/// # Panics
/// Panics if `u` has entries on or below the diagonal.
pub fn level_schedule_upper(u: &Csr) -> LevelSchedule {
    let n = u.nrows();
    let mut level = vec![0u32; n];
    let mut maxlevel = 0u32;
    for r in (0..n).rev() {
        let mut lv = 0u32;
        for &c in u.row_cols(r) {
            assert!((c as usize) > r, "level_schedule_upper needs strictly upper input");
            lv = lv.max(level[c as usize] + 1);
        }
        level[r] = lv;
        maxlevel = maxlevel.max(lv);
    }
    let nlevels = if n == 0 { 0 } else { maxlevel as usize + 1 };
    let mut level_ptr = vec![0usize; nlevels + 1];
    for &lv in &level {
        level_ptr[lv as usize + 1] += 1;
    }
    for i in 0..nlevels {
        level_ptr[i + 1] += level_ptr[i];
    }
    let mut order = vec![0u32; n];
    let mut next = level_ptr.clone();
    for (r, &lv) in level.iter().enumerate() {
        order[next[lv as usize]] = r as u32;
        next[lv as usize] += 1;
    }
    LevelSchedule { order, level_ptr }
}

/// Groups rows into breadth-first-search shells of the *symmetrized*
/// sparsity pattern, starting from row 0 (unreached components seed new
/// searches). Every edge of `A` (and of `Aᵀ`) connects rows in the same or
/// adjacent shells, so computing `(A x)[r]` for rows of shell `j` touches
/// only `x` entries of shells `j−1..=j+1` — the containment property the
/// level-blocked matrix-power schedule relies on to advance a shell through
/// multiple powers while its neighborhood is cache-resident.
///
/// Returns the shells as a [`LevelSchedule`]; rows within a shell keep
/// ascending index order.
pub fn bfs_level_schedule(a: &Csr) -> LevelSchedule {
    let n = a.nrows();
    assert_eq!(n, a.ncols(), "bfs_level_schedule needs a square matrix");
    // Symmetrize the pattern: BFS must follow edges both ways or a directed
    // edge could jump shells in the unexplored direction.
    let at = a.transpose();
    let mut level = vec![u32::MAX; n];
    let mut maxlevel = 0u32;
    let mut queue = std::collections::VecDeque::new();
    for seed in 0..n {
        if level[seed] != u32::MAX {
            continue;
        }
        level[seed] = 0;
        queue.push_back(seed);
        while let Some(r) = queue.pop_front() {
            let lv = level[r];
            maxlevel = maxlevel.max(lv);
            for &c in a.row_cols(r).iter().chain(at.row_cols(r)) {
                let c = c as usize;
                if level[c] == u32::MAX {
                    level[c] = lv + 1;
                    queue.push_back(c);
                }
            }
        }
    }
    let nlevels = if n == 0 { 0 } else { maxlevel as usize + 1 };
    let mut level_ptr = vec![0usize; nlevels + 1];
    for &lv in &level {
        level_ptr[lv as usize + 1] += 1;
    }
    for i in 0..nlevels {
        level_ptr[i + 1] += level_ptr[i];
    }
    let mut order = vec![0u32; n];
    let mut next = level_ptr.clone();
    for (r, &lv) in level.iter().enumerate() {
        order[next[lv as usize]] = r as u32;
        next[lv as usize] += 1;
    }
    LevelSchedule { order, level_ptr }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbmpk_sparse::TriangularSplit;

    #[test]
    fn diagonal_only_is_one_level() {
        let l = Csr::zero(5, 5);
        let s = level_schedule_lower(&l);
        assert_eq!(s.nlevels(), 1);
        assert_eq!(s.max_width(), 5);
    }

    #[test]
    fn chain_is_fully_sequential() {
        // L with entries (i, i-1): every row depends on the previous.
        let mut coo = fbmpk_sparse::Coo::new(4, 4);
        for i in 1..4 {
            coo.push(i, i - 1, 1.0).unwrap();
        }
        let s = level_schedule_lower(&coo.to_csr());
        assert_eq!(s.nlevels(), 4);
        assert_eq!(s.max_width(), 1);
        assert_eq!(s.level_rows(0), &[0]);
        assert_eq!(s.level_rows(3), &[3]);
    }

    #[test]
    fn levels_respect_dependencies() {
        let a = fbmpk_gen::poisson::grid2d_5pt(5, 5);
        let split = TriangularSplit::split(&a).unwrap();
        let s = level_schedule_lower(&split.lower);
        // Each row's level strictly exceeds its dependencies' levels.
        let mut level_of = [0usize; 25];
        for l in 0..s.nlevels() {
            for &r in s.level_rows(l) {
                level_of[r as usize] = l;
            }
        }
        for (r, c, _) in split.lower.iter() {
            assert!(level_of[r] > level_of[c]);
        }
        // All rows scheduled exactly once.
        let mut sorted = s.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..25).collect::<Vec<u32>>());
    }

    #[test]
    fn upper_schedule_mirrors_lower() {
        let a = fbmpk_gen::poisson::grid2d_5pt(5, 5);
        let split = TriangularSplit::split(&a).unwrap();
        let s = level_schedule_upper(&split.upper);
        let mut level_of = [0usize; 25];
        for l in 0..s.nlevels() {
            for &r in s.level_rows(l) {
                level_of[r as usize] = l;
            }
        }
        for (r, c, _) in split.upper.iter() {
            assert!(level_of[r] > level_of[c]);
        }
    }

    #[test]
    #[should_panic(expected = "strictly lower")]
    fn rejects_upper_entries() {
        let bad = Csr::from_dense(&[&[0.0, 1.0], &[0.0, 0.0]]);
        level_schedule_lower(&bad);
    }

    #[test]
    fn empty_matrix_zero_levels() {
        let s = level_schedule_lower(&Csr::zero(0, 0));
        assert_eq!(s.nlevels(), 0);
        assert_eq!(s.max_width(), 0);
    }

    #[test]
    fn bfs_shells_span_at_most_one_level() {
        let a = fbmpk_gen::poisson::grid2d_5pt(7, 9);
        let s = bfs_level_schedule(&a);
        let n = a.nrows();
        let mut level_of = vec![usize::MAX; n];
        for l in 0..s.nlevels() {
            for &r in s.level_rows(l) {
                level_of[r as usize] = l;
            }
        }
        // Every row scheduled exactly once.
        let mut sorted = s.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n as u32).collect::<Vec<u32>>());
        // The containment property: every edge connects adjacent shells.
        for (r, c, _) in a.iter() {
            let (lr, lc) = (level_of[r], level_of[c]);
            assert!(lr.abs_diff(lc) <= 1, "edge ({r}, {c}) spans shells {lr} -> {lc}");
        }
    }

    #[test]
    fn bfs_covers_disconnected_components() {
        // Two disjoint 2-chains: 0-1 and 2-3.
        let mut coo = fbmpk_sparse::Coo::new(4, 4);
        coo.push(0, 1, 1.0).unwrap();
        coo.push(1, 0, 1.0).unwrap();
        coo.push(2, 3, 1.0).unwrap();
        coo.push(3, 2, 1.0).unwrap();
        let s = bfs_level_schedule(&coo.to_csr());
        assert_eq!(s.nlevels(), 2);
        let mut sorted = s.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn bfs_empty_matrix() {
        let s = bfs_level_schedule(&Csr::zero(0, 0));
        assert_eq!(s.nlevels(), 0);
    }

    #[test]
    fn bfs_follows_directed_edges_both_ways() {
        // Strictly lower chain: edges only point backwards, but the BFS
        // symmetrizes, so shells advance one hop per level anyway.
        let mut coo = fbmpk_sparse::Coo::new(4, 4);
        for i in 1..4 {
            coo.push(i, i - 1, 1.0).unwrap();
        }
        let s = bfs_level_schedule(&coo.to_csr());
        assert_eq!(s.nlevels(), 4);
        assert_eq!(s.level_rows(0), &[0]);
        assert_eq!(s.level_rows(3), &[3]);
    }
}
