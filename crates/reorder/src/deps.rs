//! Per-block dependency lists for barrier-free colored sweeps.
//!
//! The ABMC barrier schedule over-synchronizes: after color `c`, *every*
//! thread waits for *every* block of `c`, although a block's forward
//! update only reads the earlier-color blocks its `L` entries actually
//! reference (and symmetrically for `U` in the backward sweep). This
//! module derives, from the quotient structure of the permuted triangular
//! split, the exact per-block wait lists a point-to-point runtime needs
//! (the level/color-blocking argument of Alappat et al.,
//! arXiv:2205.01598).
//!
//! # What the lists must contain
//!
//! For epoch-counted sweeps (one epoch per sweep, same-epoch waits), each
//! direction needs the union of a *flow* and an *anti* list:
//!
//! * forward flow: earlier-color blocks holding columns of `b`'s `L`
//!   entries — their current-sweep values feed `b`'s update;
//! * forward anti: earlier-color blocks with `U` entries *into* `b` —
//!   they read `b`'s rows during the previous backward sweep (FBMPK) or
//!   the pre-sweep iterate (in-place SymGS), so `b` must not overwrite
//!   those rows before the readers' current sweep has begun `b`-ward of
//!   them; waiting for the reader's same-epoch flag is the cheapest
//!   sufficient condition, and for FBMPK it is implied by program order
//!   on the reader's owning thread;
//! * backward flow / anti: the mirror images over `U` / `L`.
//!
//! By construction every dependency edge is recorded symmetrically:
//! `d ∈ fwd(b)  ⇔  b ∈ bwd(d)`. For structurally symmetric matrices flow
//! and anti coincide and the lists are exactly the quotient-graph
//! neighbourhoods split by color order.

use crate::abmc::Abmc;
use fbmpk_sparse::{Csr, TriangularSplit};

/// Per-block wait lists for the forward (ascending colors) and backward
/// (descending colors) sweeps, in the ABMC block numbering (blocks sorted
/// by color, ids dense in `0..nblocks`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockDeps {
    /// `fwd[b]` = blocks (all of strictly earlier color) the forward
    /// sweep of `b` must wait for, sorted ascending, deduplicated.
    fwd: Vec<Vec<u32>>,
    /// `bwd[b]` = blocks (all of strictly later color) the backward
    /// sweep of `b` must wait for, sorted ascending, deduplicated.
    bwd: Vec<Vec<u32>>,
    /// Color of each block.
    color_of: Vec<u32>,
}

impl BlockDeps {
    /// Derives the wait lists from an ABMC ordering and the triangular
    /// split of the **permuted** matrix (the pair every colored
    /// [`crate::Abmc::validate_against`]-checked schedule is built from).
    ///
    /// # Panics
    /// Panics when the split's dimension disagrees with the ordering.
    pub fn build(abmc: &Abmc, split: &TriangularSplit) -> Self {
        let n = split.n();
        assert_eq!(n, abmc.permutation().len(), "split/ordering dimension mismatch");
        let nblocks = abmc.nblocks();
        let mut block_of = vec![0u32; n];
        for b in 0..nblocks {
            for r in abmc.block_rows(b) {
                block_of[r] = b as u32;
            }
        }
        let mut color_of = vec![0u32; nblocks];
        for c in 0..abmc.ncolors() {
            for b in abmc.color_blocks(c) {
                color_of[b] = c as u32;
            }
        }
        let mut fwd: Vec<Vec<u32>> = vec![Vec::new(); nblocks];
        let mut bwd: Vec<Vec<u32>> = vec![Vec::new(); nblocks];
        // CSR rows visit each block's rows consecutively, so most
        // duplicates are adjacent; the tail check keeps the lists short
        // before the final sort+dedup.
        let push = |list: &mut Vec<u32>, d: u32| {
            if list.last() != Some(&d) {
                list.push(d);
            }
        };
        // L entry (r, c), c < r: under ABMC a cross-block entry joins
        // strictly ordered colors, so block(c) is earlier-color than
        // block(r). Forward flow for block(r); backward anti for
        // block(c) (its backward overwrite must wait for the reader).
        for_each_entry(&split.lower, |r, c| {
            let (br, bc) = (block_of[r], block_of[c]);
            if br != bc {
                push(&mut fwd[br as usize], bc);
                push(&mut bwd[bc as usize], br);
            }
        });
        // U entry (r, c), c > r: block(c) is later-color. Backward flow
        // for block(r); forward anti for block(c).
        for_each_entry(&split.upper, |r, c| {
            let (br, bc) = (block_of[r], block_of[c]);
            if br != bc {
                push(&mut bwd[br as usize], bc);
                push(&mut fwd[bc as usize], br);
            }
        });
        for list in fwd.iter_mut().chain(bwd.iter_mut()) {
            list.sort_unstable();
            list.dedup();
        }
        BlockDeps { fwd, bwd, color_of }
    }

    /// Wait lists for an unordered (single block, single color) schedule:
    /// every list is empty.
    pub fn trivial(nblocks: usize) -> Self {
        BlockDeps {
            fwd: vec![Vec::new(); nblocks],
            bwd: vec![Vec::new(); nblocks],
            color_of: vec![0; nblocks],
        }
    }

    /// Number of blocks.
    pub fn nblocks(&self) -> usize {
        self.fwd.len()
    }

    /// Blocks the forward sweep of `b` waits for (strictly earlier
    /// colors).
    #[inline]
    pub fn fwd(&self, b: usize) -> &[u32] {
        &self.fwd[b]
    }

    /// Blocks the backward sweep of `b` waits for (strictly later
    /// colors).
    #[inline]
    pub fn bwd(&self, b: usize) -> &[u32] {
        &self.bwd[b]
    }

    /// Color of block `b`.
    #[inline]
    pub fn color_of(&self, b: usize) -> u32 {
        self.color_of[b]
    }

    /// Total dependency-edge count `Σ_b |fwd(b)|` (== `Σ_b |bwd(b)|`) —
    /// what each point-to-point sweep inspects, versus the barrier
    /// schedule's `threads × colors` global waits.
    pub fn nedges(&self) -> usize {
        self.fwd.iter().map(Vec::len).sum()
    }

    /// Cut/wait statistics of the dependency structure — the evidence a
    /// blocking strategy is judged by: fewer and shorter wait lists mean
    /// fewer flag spins per point-to-point sweep.
    pub fn stats(&self) -> DepStats {
        let nblocks = self.nblocks();
        let nedges = self.nedges();
        let max_fwd_waits = self.fwd.iter().map(Vec::len).max().unwrap_or(0);
        let max_bwd_waits = self.bwd.iter().map(Vec::len).max().unwrap_or(0);
        let waiting_blocks = self.fwd.iter().filter(|l| !l.is_empty()).count();
        DepStats {
            nblocks,
            nedges,
            mean_waits: if nblocks == 0 { 0.0 } else { nedges as f64 / nblocks as f64 },
            max_fwd_waits,
            max_bwd_waits,
            waiting_blocks,
        }
    }

    /// Structural soundness check, the deps-level analogue of
    /// [`Abmc::validate_against`]: forward waits point strictly to
    /// earlier colors and backward waits strictly to later colors (which
    /// is what makes the point-to-point sweeps deadlock-free: every wait
    /// targets a block scheduled earlier in that sweep's direction), no
    /// self-dependencies, lists sorted and duplicate-free, and the two
    /// directions mutually consistent (`d ∈ fwd(b) ⇔ b ∈ bwd(d)`).
    pub fn validate(&self) -> Result<(), String> {
        let nblocks = self.nblocks();
        if self.bwd.len() != nblocks || self.color_of.len() != nblocks {
            return Err("inconsistent table lengths".into());
        }
        for b in 0..nblocks {
            for (list, earlier) in [(&self.fwd[b], true), (&self.bwd[b], false)] {
                if !list.windows(2).all(|w| w[0] < w[1]) {
                    return Err(format!("block {b}: wait list not sorted/deduplicated"));
                }
                for &d in list.iter() {
                    if d as usize >= nblocks {
                        return Err(format!("block {b}: dependency {d} out of range"));
                    }
                    let (cd, cb) = (self.color_of[d as usize], self.color_of[b]);
                    if earlier && cd >= cb {
                        return Err(format!(
                            "block {b} (color {cb}) forward-waits on block {d} (color {cd})"
                        ));
                    }
                    if !earlier && cd <= cb {
                        return Err(format!(
                            "block {b} (color {cb}) backward-waits on block {d} (color {cd})"
                        ));
                    }
                    let mirror =
                        if earlier { &self.bwd[d as usize] } else { &self.fwd[d as usize] };
                    if mirror.binary_search(&(b as u32)).is_err() {
                        return Err(format!("block {b}: dependency on {d} has no mirror edge"));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Summary statistics of a [`BlockDeps`] wait structure (see
/// [`BlockDeps::stats`]): how much point-to-point synchronization a
/// blocking strategy left in the schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DepStats {
    /// Number of blocks.
    pub nblocks: usize,
    /// Total directed dependency edges (`Σ_b |fwd(b)|`).
    pub nedges: usize,
    /// Mean forward wait-list length per block.
    pub mean_waits: f64,
    /// Longest forward wait list (the worst single block's fan-in).
    pub max_fwd_waits: usize,
    /// Longest backward wait list.
    pub max_bwd_waits: usize,
    /// Blocks with at least one forward wait (the rest start instantly).
    pub waiting_blocks: usize,
}

/// Visits every structural entry `(row, col)` of a CSR matrix.
fn for_each_entry(m: &Csr, mut f: impl FnMut(usize, usize)) {
    let ptr = m.row_ptr();
    let col = m.col_idx();
    for r in 0..m.nrows() {
        for &c in &col[ptr[r]..ptr[r + 1]] {
            f(r, c as usize);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abmc::{AbmcParams, BlockingStrategy};
    use std::collections::BTreeSet;

    fn tridiag(n: usize) -> Csr {
        let mut coo = fbmpk_sparse::Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
            if i > 0 {
                coo.push(i, i - 1, -1.0).unwrap();
                coo.push(i - 1, i, -1.0).unwrap();
            }
        }
        coo.to_csr()
    }

    /// Brute-force reference: the union of flow and anti dependencies
    /// gathered entry-by-entry with sets.
    fn reference(abmc: &Abmc, split: &TriangularSplit) -> (Vec<BTreeSet<u32>>, Vec<BTreeSet<u32>>) {
        let n = split.n();
        let mut block_of = vec![0u32; n];
        for b in 0..abmc.nblocks() {
            for r in abmc.block_rows(b) {
                block_of[r] = b as u32;
            }
        }
        let mut fwd = vec![BTreeSet::new(); abmc.nblocks()];
        let mut bwd = vec![BTreeSet::new(); abmc.nblocks()];
        for_each_entry(&split.lower, |r, c| {
            if block_of[r] != block_of[c] {
                fwd[block_of[r] as usize].insert(block_of[c]);
                bwd[block_of[c] as usize].insert(block_of[r]);
            }
        });
        for_each_entry(&split.upper, |r, c| {
            if block_of[r] != block_of[c] {
                bwd[block_of[r] as usize].insert(block_of[c]);
                fwd[block_of[c] as usize].insert(block_of[r]);
            }
        });
        (fwd, bwd)
    }

    fn check(a: &Csr, params: AbmcParams) -> BlockDeps {
        let abmc = Abmc::new(a, params);
        let permuted = abmc.apply(a);
        // Precondition of the whole construction: the coloring is sound.
        abmc.validate_against(&permuted).unwrap();
        let split = TriangularSplit::split(&permuted).unwrap();
        let deps = BlockDeps::build(&abmc, &split);
        deps.validate().unwrap();
        let (fwd, bwd) = reference(&abmc, &split);
        for b in 0..abmc.nblocks() {
            assert_eq!(deps.fwd(b), fwd[b].iter().copied().collect::<Vec<_>>().as_slice(), "b={b}");
            assert_eq!(deps.bwd(b), bwd[b].iter().copied().collect::<Vec<_>>().as_slice(), "b={b}");
        }
        deps
    }

    #[test]
    fn matches_reference_on_suite_of_shapes() {
        for (n, nblocks) in [(60, 8), (100, 10), (37, 5)] {
            let a = tridiag(n);
            for strategy in [
                BlockingStrategy::Contiguous,
                BlockingStrategy::Aggregated,
                BlockingStrategy::Multilevel,
            ] {
                check(&a, AbmcParams { nblocks, strategy, ..Default::default() });
            }
        }
    }

    #[test]
    fn unsymmetric_structure_includes_anti_deps() {
        // cage-like matrices are structurally unsymmetric, so flow-only
        // lists would differ between directions; the mirror property of
        // validate() plus the reference comparison pins the union.
        let a = crate::abmc::Abmc::new(
            &fbmpk_gen_free_cage(64, 6, 3),
            AbmcParams { nblocks: 8, ..Default::default() },
        );
        let permuted = a.apply(&fbmpk_gen_free_cage(64, 6, 3));
        a.validate_against(&permuted).unwrap();
        let split = TriangularSplit::split(&permuted).unwrap();
        let deps = BlockDeps::build(&a, &split);
        deps.validate().unwrap();
        assert!(deps.nedges() > 0);
    }

    /// A small deterministic unsymmetric matrix (fbmpk-gen is not a
    /// dependency of this crate).
    fn fbmpk_gen_free_cage(n: usize, fanout: usize, seed: u64) -> Csr {
        let mut coo = fbmpk_sparse::Coo::new(n, n);
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for r in 0..n {
            coo.push(r, r, 4.0).unwrap();
            for _ in 0..fanout {
                let c = (next() as usize) % n;
                if c != r {
                    let _ = coo.push(r, c, -1.0);
                }
            }
        }
        coo.to_csr()
    }

    #[test]
    fn tridiagonal_contiguous_deps_are_neighbors() {
        // Contiguous blocks of a path: block b touches exactly b-1 and
        // b+1; the forward list keeps only earlier colors, the backward
        // list only later ones, and their union is the neighbourhood.
        let a = tridiag(64);
        let deps = check(
            &a,
            AbmcParams { nblocks: 8, strategy: BlockingStrategy::Contiguous, ..Default::default() },
        );
        for b in 0..deps.nblocks() {
            let both: Vec<u32> = deps.fwd(b).iter().chain(deps.bwd(b)).copied().collect();
            assert!(both.len() <= 2, "path block {b} has {} deps", both.len());
            assert!(!both.contains(&(b as u32)));
        }
    }

    #[test]
    fn trivial_deps_are_empty_and_valid() {
        let d = BlockDeps::trivial(1);
        d.validate().unwrap();
        assert_eq!(d.nblocks(), 1);
        assert!(d.fwd(0).is_empty() && d.bwd(0).is_empty());
        assert_eq!(d.nedges(), 0);
        let s = d.stats();
        assert_eq!((s.nedges, s.max_fwd_waits, s.waiting_blocks), (0, 0, 0));
    }

    #[test]
    fn stats_summarize_wait_lists() {
        let a = tridiag(64);
        let deps = check(
            &a,
            AbmcParams { nblocks: 8, strategy: BlockingStrategy::Contiguous, ..Default::default() },
        );
        let s = deps.stats();
        assert_eq!(s.nblocks, 8);
        assert_eq!(s.nedges, deps.nedges());
        assert!(s.mean_waits > 0.0);
        assert!(s.max_fwd_waits >= 1 && s.max_bwd_waits >= 1);
        assert!(s.waiting_blocks >= 1 && s.waiting_blocks <= s.nblocks);
        assert!((s.mean_waits - s.nedges as f64 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn validate_rejects_color_order_violation() {
        let mut d = BlockDeps::trivial(2);
        // Forge a forward wait on a same-color block.
        d.fwd[1].push(0);
        d.bwd[0].push(1);
        assert!(d.validate().is_err());
    }
}
