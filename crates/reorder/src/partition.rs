//! Multilevel edge-cut partitioning of the row structure graph.
//!
//! The blocking strategies in [`crate::blocking`] optimize for locality
//! (contiguous ranges) or compactness (BFS aggregation), but neither
//! minimizes the number of matrix entries that *cross* block boundaries —
//! and in the barrier-free point-to-point sweep mode every cross-block
//! entry becomes a dependency edge in [`crate::deps::BlockDeps`], i.e. a
//! flag another block must wait on. Hypergraph/graph-partitioning models
//! for SpMV locality (Akbudak et al., arXiv 1202.3856) show that cut
//! minimization during row aggregation is the right objective.
//!
//! This module implements the classic multilevel heuristic on the
//! symmetric row structure graph:
//!
//! 1. **Coarsening** — heavy-edge matching: repeatedly merge matched
//!    vertex pairs, preferring the heaviest incident edge, until the
//!    graph is small relative to the requested block count. Merged
//!    multi-edges accumulate weight, so a heavy coarse edge stands for
//!    many fine cut candidates.
//! 2. **Initial partition** — greedy graph growing on the coarsest
//!    graph: grow each part by BFS from a fresh seed until it reaches
//!    its weight target, preferring frontier vertices with the most
//!    connectivity to the growing part.
//! 3. **Refinement** — boundary Fiduccia–Mattheyses-style passes at
//!    every level while projecting the partition back to the original
//!    graph: move boundary vertices to the neighboring part with the
//!    best cut gain, subject to a row/nnz balance constraint.
//!
//! Everything is deterministic: ties break by vertex order, so the same
//! matrix always produces the same [`Blocking`] (plans are reproducible
//! across runs and the fingerprint-keyed plan cache stays honest).

use crate::blocking::Blocking;
use crate::graph::Graph;

/// Allowed imbalance: no part may exceed `(1 + BALANCE_EPS)` times the
/// average part weight (weight = rows + adjacency degree, a proxy for
/// the nnz each block owns).
const BALANCE_EPS: f64 = 0.10;

/// Coarsening stops once the graph has at most this many vertices per
/// requested block — small enough that graph growing sees real structure,
/// large enough that refinement still has freedom.
const COARSEN_VERTS_PER_BLOCK: usize = 20;

/// Coarsening also stops when a matching pass shrinks the graph by less
/// than this fraction (star-like graphs stop matching early).
const MIN_SHRINK: f64 = 0.05;

/// Boundary-refinement passes per level (each pass is a full sweep over
/// boundary vertices; gains shrink fast after two).
const REFINE_PASSES: usize = 4;

/// Internal weighted graph carried through the multilevel hierarchy.
///
/// [`Graph`] is unweighted (one edge per structural adjacency), which is
/// exactly right at the finest level, but coarse vertices stand for
/// merged row sets and coarse edges for bundles of fine edges — the
/// weights are what heavy-edge matching and gain computation act on.
#[derive(Debug, Clone)]
struct WeightedGraph {
    /// CSR offsets, `nvertices + 1` entries.
    xadj: Vec<usize>,
    /// Neighbor vertex ids.
    adj: Vec<u32>,
    /// Weight of each adjacency entry (number of merged fine edges).
    ewgt: Vec<u64>,
    /// Vertex weights (merged fine rows + their degrees: the row/nnz
    /// balance proxy).
    vwgt: Vec<u64>,
}

impl WeightedGraph {
    fn n(&self) -> usize {
        self.vwgt.len()
    }

    fn neighbors(&self, v: usize) -> impl Iterator<Item = (u32, u64)> + '_ {
        (self.xadj[v]..self.xadj[v + 1]).map(move |e| (self.adj[e], self.ewgt[e]))
    }

    /// Unit-weight lift of the structural graph; vertex weight is
    /// `1 + degree(v)` so balancing accounts for both rows and nnz.
    fn from_graph(g: &Graph) -> WeightedGraph {
        let n = g.n();
        let mut xadj = Vec::with_capacity(n + 1);
        xadj.push(0usize);
        let mut adj = Vec::new();
        let mut vwgt = Vec::with_capacity(n);
        for v in 0..n {
            adj.extend_from_slice(g.neighbors(v));
            xadj.push(adj.len());
            vwgt.push(1 + g.degree(v) as u64);
        }
        let ewgt = vec![1u64; adj.len()];
        WeightedGraph { xadj, adj, ewgt, vwgt }
    }

    /// One heavy-edge matching pass: visits vertices in index order and
    /// matches each unmatched vertex with its unmatched neighbor of
    /// maximum edge weight (ties broken by smallest neighbor id).
    /// Returns `match_of` where unmatched vertices map to themselves.
    fn heavy_edge_matching(&self) -> Vec<u32> {
        let n = self.n();
        let mut match_of: Vec<u32> = (0..n as u32).collect();
        let mut matched = vec![false; n];
        for v in 0..n {
            if matched[v] {
                continue;
            }
            let mut best: Option<(u64, u32)> = None;
            for (w, ew) in self.neighbors(v) {
                if matched[w as usize] || w as usize == v {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((bw, bid)) => ew > bw || (ew == bw && w < bid),
                };
                if better {
                    best = Some((ew, w));
                }
            }
            if let Some((_, w)) = best {
                matched[v] = true;
                matched[w as usize] = true;
                match_of[v] = w;
                match_of[w as usize] = v as u32;
            }
        }
        match_of
    }

    /// Contracts a matching into the coarser graph. Returns the coarse
    /// graph and the fine→coarse vertex map.
    fn contract(&self, match_of: &[u32]) -> (WeightedGraph, Vec<u32>) {
        let n = self.n();
        let mut coarse_of = vec![u32::MAX; n];
        let mut nc = 0u32;
        for v in 0..n {
            if coarse_of[v] != u32::MAX {
                continue;
            }
            coarse_of[v] = nc;
            let m = match_of[v] as usize;
            if m != v {
                coarse_of[m] = nc;
            }
            nc += 1;
        }
        let ncoarse = nc as usize;
        let mut vwgt = vec![0u64; ncoarse];
        for v in 0..n {
            vwgt[coarse_of[v] as usize] += self.vwgt[v];
        }
        // Accumulate coarse adjacencies with a dense scatter buffer:
        // `slot[c]` points at the in-progress adjacency entry for coarse
        // neighbor `c` while building one coarse vertex's list.
        let mut xadj = Vec::with_capacity(ncoarse + 1);
        xadj.push(0usize);
        let mut adj: Vec<u32> = Vec::new();
        let mut ewgt: Vec<u64> = Vec::new();
        let mut slot = vec![usize::MAX; ncoarse];
        // Representative fine vertices per coarse vertex, in coarse order.
        let mut rep = vec![(u32::MAX, u32::MAX); ncoarse];
        for (v, &c) in coarse_of.iter().enumerate() {
            let c = c as usize;
            if rep[c].0 == u32::MAX {
                rep[c].0 = v as u32;
            } else if rep[c].1 == u32::MAX {
                rep[c].1 = v as u32;
            }
        }
        for (c, &(r0, r1)) in rep.iter().enumerate() {
            let start = adj.len();
            for &fv in [r0, r1].iter().filter(|&&fv| fv != u32::MAX) {
                for (w, ew) in self.neighbors(fv as usize) {
                    let cw = coarse_of[w as usize] as usize;
                    if cw == c {
                        continue; // internal edge disappears
                    }
                    if slot[cw] >= start && slot[cw] < adj.len() && adj[slot[cw]] == cw as u32 {
                        ewgt[slot[cw]] += ew;
                    } else {
                        slot[cw] = adj.len();
                        adj.push(cw as u32);
                        ewgt.push(ew);
                    }
                }
            }
            xadj.push(adj.len());
        }
        (WeightedGraph { xadj, adj, ewgt, vwgt }, coarse_of)
    }
}

/// Greedy graph-growing initial partition of the (coarsest) graph into
/// `nparts` parts with weights near `total / nparts`.
///
/// Parts are grown one at a time: seed at the first unassigned vertex,
/// then repeatedly absorb the frontier vertex with the strongest
/// connectivity to the part (ties by smallest id) until the part reaches
/// its weight target. Vertices stranded after the last part is grown are
/// attached to their most-connected neighboring part.
fn grow_initial_partition(g: &WeightedGraph, nparts: usize) -> Vec<u32> {
    let n = g.n();
    let total: u64 = g.vwgt.iter().sum();
    let target = total.div_ceil(nparts as u64).max(1);
    let mut part_of = vec![u32::MAX; n];
    let mut conn = vec![0u64; n]; // connectivity of frontier vertices to the growing part
    let mut in_frontier = vec![false; n];
    let mut next_seed = 0usize;
    for p in 0..nparts as u32 {
        // Last part absorbs everything left so no vertex is stranded by
        // rounding; empty-part repair below rebalances if needed.
        while next_seed < n && part_of[next_seed] != u32::MAX {
            next_seed += 1;
        }
        if next_seed >= n {
            break;
        }
        let mut frontier: Vec<u32> = Vec::new();
        let mut weight = 0u64;
        let grab = |v: usize,
                    part_of: &mut Vec<u32>,
                    frontier: &mut Vec<u32>,
                    conn: &mut Vec<u64>,
                    in_frontier: &mut Vec<bool>| {
            part_of[v] = p;
            in_frontier[v] = false;
            for (w, ew) in g.neighbors(v) {
                let w = w as usize;
                if part_of[w] != u32::MAX {
                    continue;
                }
                conn[w] += ew;
                if !in_frontier[w] {
                    in_frontier[w] = true;
                    frontier.push(w as u32);
                }
            }
        };
        weight += g.vwgt[next_seed];
        grab(next_seed, &mut part_of, &mut frontier, &mut conn, &mut in_frontier);
        while weight < target && p + 1 < nparts as u32 {
            // Strongest-connection frontier vertex; ties by smallest id.
            let mut best: Option<(u64, u32)> = None;
            frontier.retain(|&f| part_of[f as usize] == u32::MAX);
            for &f in &frontier {
                let better = match best {
                    None => true,
                    Some((bc, bid)) => conn[f as usize] > bc || (conn[f as usize] == bc && f < bid),
                };
                if better {
                    best = Some((conn[f as usize], f));
                }
            }
            let Some((_, v)) = best else { break };
            weight += g.vwgt[v as usize];
            grab(v as usize, &mut part_of, &mut frontier, &mut conn, &mut in_frontier);
        }
        // Reset frontier connectivity for the next part.
        for &f in &frontier {
            conn[f as usize] = 0;
            in_frontier[f as usize] = false;
        }
    }
    // Attach any stranded vertices (disconnected components discovered
    // after the last seed) to their most-connected part, else part 0.
    for v in 0..n {
        if part_of[v] != u32::MAX {
            continue;
        }
        let mut best: Option<(u64, u32)> = None;
        let mut local = std::collections::BTreeMap::new();
        for (w, ew) in g.neighbors(v) {
            if part_of[w as usize] != u32::MAX {
                *local.entry(part_of[w as usize]).or_insert(0u64) += ew;
            }
        }
        for (&pp, &c) in &local {
            let better = match best {
                None => true,
                Some((bc, bid)) => c > bc || (c == bc && pp < bid),
            };
            if better {
                best = Some((c, pp));
            }
        }
        part_of[v] = best.map_or(0, |(_, pp)| pp);
    }
    part_of
}

/// One boundary FM-style refinement pass over `g`: every boundary vertex
/// is offered its best-gain move (cut-weight decrease, ties by smallest
/// target part), applied immediately when the gain is positive — or
/// zero-gain when it improves balance — and the move respects the
/// balance ceiling. Returns the number of moves applied.
fn refine_pass(g: &WeightedGraph, part_of: &mut [u32], part_wgt: &mut [u64], ceil: u64) -> usize {
    let n = g.n();
    let mut moves = 0usize;
    let mut conn: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
    for v in 0..n {
        let home = part_of[v];
        conn.clear();
        let mut internal = 0u64;
        for (w, ew) in g.neighbors(v) {
            let pw = part_of[w as usize];
            if pw == home {
                internal += ew;
            } else {
                *conn.entry(pw).or_insert(0) += ew;
            }
        }
        if conn.is_empty() {
            continue; // not a boundary vertex
        }
        let mut best: Option<(u64, u32)> = None;
        for (&p, &c) in &conn {
            let better = match best {
                None => true,
                Some((bc, bid)) => c > bc || (c == bc && p < bid),
            };
            if better {
                best = Some((c, p));
            }
        }
        let (ext, target) = best.expect("nonempty conn");
        let w = g.vwgt[v];
        // Never empty the home part; never overflow the target's ceiling.
        if part_wgt[home as usize] <= w || part_wgt[target as usize] + w > ceil {
            continue;
        }
        let gain = ext as i64 - internal as i64;
        let balance_gain = part_wgt[home as usize] > part_wgt[target as usize] + w;
        if gain > 0 || (gain == 0 && balance_gain) {
            part_of[v] = target;
            part_wgt[home as usize] -= w;
            part_wgt[target as usize] += w;
            moves += 1;
        }
    }
    moves
}

/// Repairs empty parts by moving the weakest-attached vertex out of the
/// heaviest part (a part with one vertex cannot donate). `Blocking`
/// requires every block nonempty.
fn repair_empty_parts(g: &WeightedGraph, part_of: &mut [u32], part_wgt: &mut [u64]) {
    let nparts = part_wgt.len();
    let mut count = vec![0usize; nparts];
    for &p in part_of.iter() {
        count[p as usize] += 1;
    }
    for empty in 0..nparts {
        if count[empty] > 0 {
            continue;
        }
        // Donor: the part with the most vertices (ties by smallest id).
        let donor = (0..nparts).max_by_key(|&p| (count[p], std::cmp::Reverse(p))).unwrap();
        if count[donor] < 2 {
            continue; // nothing can donate; caller clamps nparts <= n so unreachable
        }
        // Weakest-attached vertex of the donor: least internal edge weight.
        let mut best: Option<(u64, usize)> = None;
        for v in 0..g.n() {
            if part_of[v] != donor as u32 {
                continue;
            }
            let internal: u64 = g
                .neighbors(v)
                .filter(|&(w, _)| part_of[w as usize] == donor as u32)
                .map(|(_, e)| e)
                .sum();
            let better = match best {
                None => true,
                Some((bi, bv)) => internal < bi || (internal == bi && v < bv),
            };
            if better {
                best = Some((internal, v));
            }
        }
        let (_, v) = best.expect("donor has vertices");
        part_of[v] = empty as u32;
        part_wgt[donor] -= g.vwgt[v];
        part_wgt[empty] += g.vwgt[v];
        count[donor] -= 1;
        count[empty] += 1;
    }
}

/// Partitions the row structure graph into `nblocks` blocks by multilevel
/// edge-cut minimization (coarsen → grow → refine while uncoarsening).
///
/// The result satisfies [`Blocking::validate`]: every block id in range
/// and every block nonempty (`nblocks` is clamped to `g.n()`). The
/// balance constraint bounds each block's rows + adjacency weight by
/// `(1 + 10%)` of the average. Fully deterministic for a given graph.
pub fn multilevel_blocks(g: &Graph, nblocks: usize) -> Blocking {
    let n = g.n();
    let nblocks = nblocks.min(n).max(1);
    if nblocks == 1 || n <= nblocks {
        // One block, or one vertex per block: nothing to optimize.
        return Blocking { block_of: (0..n).map(|v| (v % nblocks) as u32).collect(), nblocks };
    }
    let _span = fbmpk_obs::phases::span("partition.multilevel");
    let finest = WeightedGraph::from_graph(g);

    // Coarsening: stack of (graph, fine→coarse map of the *next* level).
    let mut levels: Vec<(WeightedGraph, Vec<u32>)> = Vec::new();
    let mut cur = finest;
    let stop_at = (nblocks * COARSEN_VERTS_PER_BLOCK).max(nblocks * 2);
    {
        let _coarsen = fbmpk_obs::phases::span("partition.coarsen");
        while cur.n() > stop_at {
            let match_of = cur.heavy_edge_matching();
            let (coarse, coarse_of) = cur.contract(&match_of);
            let shrink = 1.0 - coarse.n() as f64 / cur.n() as f64;
            if shrink < MIN_SHRINK {
                break;
            }
            levels.push((cur, coarse_of));
            cur = coarse;
        }
    }

    // Initial partition + refinement on the coarsest graph.
    let total: u64 = cur.vwgt.iter().sum();
    let ceil = (((total as f64 / nblocks as f64) * (1.0 + BALANCE_EPS)).ceil() as u64)
        .max(cur.vwgt.iter().copied().max().unwrap_or(1));
    let mut part_of;
    {
        let _initial = fbmpk_obs::phases::span("partition.initial");
        part_of = grow_initial_partition(&cur, nblocks);
        let mut part_wgt = vec![0u64; nblocks];
        for (v, &p) in part_of.iter().enumerate() {
            part_wgt[p as usize] += cur.vwgt[v];
        }
        repair_empty_parts(&cur, &mut part_of, &mut part_wgt);
        for _ in 0..REFINE_PASSES {
            if refine_pass(&cur, &mut part_of, &mut part_wgt, ceil) == 0 {
                break;
            }
        }
    }

    // Uncoarsen: project and refine at every finer level.
    let _refine = fbmpk_obs::phases::span("partition.refine");
    let mut part_wgt = vec![0u64; nblocks];
    while let Some((fine, coarse_of)) = levels.pop() {
        let mut fine_part = vec![0u32; fine.n()];
        for (v, p) in fine_part.iter_mut().enumerate() {
            *p = part_of[coarse_of[v] as usize];
        }
        part_of = fine_part;
        part_wgt.iter_mut().for_each(|w| *w = 0);
        for (v, &p) in part_of.iter().enumerate() {
            part_wgt[p as usize] += fine.vwgt[v];
        }
        repair_empty_parts(&fine, &mut part_of, &mut part_wgt);
        for _ in 0..REFINE_PASSES {
            if refine_pass(&fine, &mut part_of, &mut part_wgt, ceil) == 0 {
                break;
            }
        }
        cur = fine;
    }
    part_wgt.iter_mut().for_each(|w| *w = 0);
    for (v, &p) in part_of.iter().enumerate() {
        part_wgt[p as usize] += cur.vwgt[v];
    }
    repair_empty_parts(&cur, &mut part_of, &mut part_wgt);

    let blocking = Blocking { block_of: part_of, nblocks };
    debug_assert!(blocking.validate().is_ok());
    blocking
}

/// Counts undirected structural edges of `g` whose endpoints land in
/// different blocks — the edge-cut objective, and (up to the L/U
/// direction doubling) the number of cross-block dependency edges the
/// point-to-point sweep must wait on.
pub fn cut_edges(g: &Graph, blocking: &Blocking) -> usize {
    let mut cut = 0usize;
    for v in 0..g.n() {
        for &w in g.neighbors(v) {
            if (w as usize) > v && blocking.block_of[v] != blocking.block_of[w as usize] {
                cut += 1;
            }
        }
    }
    cut
}

/// The maximum block weight (rows + degrees) divided by the average —
/// 1.0 is perfect balance; [`multilevel_blocks`] targets ≤ 1.1 plus the
/// one-vertex granularity floor.
pub fn balance_ratio(g: &Graph, blocking: &Blocking) -> f64 {
    let mut wgt = vec![0u64; blocking.nblocks];
    for v in 0..g.n() {
        wgt[blocking.block_of[v] as usize] += 1 + g.degree(v) as u64;
    }
    let total: u64 = wgt.iter().sum();
    let avg = total as f64 / blocking.nblocks as f64;
    wgt.iter().copied().max().unwrap_or(0) as f64 / avg.max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::{aggregated_blocks, block_size_for_count, contiguous_blocks};

    fn grid_graph(nx: usize, ny: usize) -> Graph {
        let idx = |x: usize, y: usize| (y * nx + x) as u32;
        let mut nbrs = vec![Vec::new(); nx * ny];
        for y in 0..ny {
            for x in 0..nx {
                let v = idx(x, y) as usize;
                if x + 1 < nx {
                    nbrs[v].push(idx(x + 1, y));
                    nbrs[idx(x + 1, y) as usize].push(v as u32);
                }
                if y + 1 < ny {
                    nbrs[v].push(idx(x, y + 1));
                    nbrs[idx(x, y + 1) as usize].push(v as u32);
                }
            }
        }
        Graph::from_neighbor_lists(&nbrs)
    }

    /// Irregular graph: ring + xorshift chords (mimics circuit/rmat
    /// structure without a generator dependency).
    fn chordal_ring(n: usize, chords: usize, seed: u64) -> Graph {
        let mut s = seed.max(1);
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut nbrs = vec![Vec::new(); n];
        for v in 0..n {
            let w = (v + 1) % n;
            nbrs[v].push(w as u32);
            nbrs[w].push(v as u32);
        }
        for _ in 0..chords {
            let a = (rng() as usize) % n;
            let b = (rng() as usize) % n;
            if a != b {
                nbrs[a].push(b as u32);
                nbrs[b].push(a as u32);
            }
        }
        Graph::from_neighbor_lists(&nbrs)
    }

    #[test]
    fn covers_all_vertices_and_validates() {
        for (nx, ny, nb) in [(8, 8, 4), (16, 12, 8), (5, 3, 4), (30, 30, 16)] {
            let g = grid_graph(nx, ny);
            let b = multilevel_blocks(&g, nb);
            assert_eq!(b.block_of.len(), g.n());
            assert_eq!(b.nblocks, nb.min(g.n()));
            b.validate().expect("valid blocking");
        }
    }

    #[test]
    fn respects_balance_on_regular_grids() {
        let g = grid_graph(32, 32);
        let b = multilevel_blocks(&g, 8);
        // 10% target + one-vertex granularity; grids should be close.
        assert!(balance_ratio(&g, &b) < 1.5, "balance {}", balance_ratio(&g, &b));
    }

    #[test]
    fn grid_cut_beats_striped_contiguous() {
        // A 32x32 grid numbered row-major but partitioned into 8 parts:
        // contiguous gives 4-row strips (cut 32 per boundary); multilevel
        // should find compact patches with smaller total cut — and must
        // never lose to it on this textbook case.
        let g = grid_graph(32, 32);
        let ml = multilevel_blocks(&g, 8);
        let cont = contiguous_blocks(g.n(), 8);
        assert!(
            cut_edges(&g, &ml) <= cut_edges(&g, &cont),
            "multilevel {} vs contiguous {}",
            cut_edges(&g, &ml),
            cut_edges(&g, &cont)
        );
    }

    #[test]
    fn irregular_cut_beats_bfs_aggregation() {
        let g = chordal_ring(600, 900, 42);
        let nb = 12;
        let ml = multilevel_blocks(&g, nb);
        let bfs = aggregated_blocks(&g, block_size_for_count(g.n(), nb));
        assert!(
            cut_edges(&g, &ml) < cut_edges(&g, &bfs),
            "multilevel {} vs bfs {}",
            cut_edges(&g, &ml),
            cut_edges(&g, &bfs)
        );
    }

    #[test]
    fn deterministic_across_calls() {
        let g = chordal_ring(400, 500, 7);
        let a = multilevel_blocks(&g, 8);
        let b = multilevel_blocks(&g, 8);
        assert_eq!(a.block_of, b.block_of);
    }

    #[test]
    fn degenerate_sizes() {
        let g = grid_graph(4, 1);
        let one = multilevel_blocks(&g, 1);
        assert_eq!(one.nblocks, 1);
        one.validate().unwrap();
        let many = multilevel_blocks(&g, 64); // clamped to n
        assert_eq!(many.nblocks, 4);
        many.validate().unwrap();
        let empty = multilevel_blocks(&Graph::from_neighbor_lists(&[]), 4);
        assert_eq!(empty.nblocks, 1);
    }

    #[test]
    fn cut_edges_counts_undirected_once() {
        let g = grid_graph(2, 2); // 4 edges
        let b = Blocking { block_of: vec![0, 0, 1, 1], nblocks: 2 };
        // Edges: (0,1) same, (2,3) same, (0,2) cut, (1,3) cut.
        assert_eq!(cut_edges(&g, &b), 2);
    }
}
