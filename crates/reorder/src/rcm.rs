//! Reverse Cuthill–McKee ordering (George & Liu 1981) — the classic
//! bandwidth-reducing reordering the paper cites as the standard locality
//! baseline (§II-C).

use crate::graph::Graph;
use fbmpk_sparse::{Csr, Permutation};

/// Computes the RCM permutation of a square matrix's structure graph.
///
/// BFS from a minimum-degree vertex of each connected component, visiting
/// neighbors in ascending degree order; the concatenated order is reversed.
/// The result tends to cluster entries near the diagonal (small bandwidth).
pub fn rcm(a: &Csr) -> Permutation {
    rcm_graph(&Graph::from_matrix(a))
}

/// RCM on an explicit graph.
pub fn rcm_graph(g: &Graph) -> Permutation {
    let n = g.n();
    let mut visited = vec![false; n];
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut queue = std::collections::VecDeque::new();
    let mut nbrs: Vec<u32> = Vec::new();
    // Seed order: ascending degree so each component starts at a
    // pseudo-peripheral-ish low-degree vertex.
    let mut seeds: Vec<u32> = (0..n as u32).collect();
    seeds.sort_by_key(|&v| g.degree(v as usize));
    for &seed in &seeds {
        if visited[seed as usize] {
            continue;
        }
        visited[seed as usize] = true;
        queue.push_back(seed);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            nbrs.clear();
            nbrs.extend(g.neighbors(v as usize).iter().copied().filter(|&w| !visited[w as usize]));
            nbrs.sort_by_key(|&w| g.degree(w as usize));
            for &w in &nbrs {
                visited[w as usize] = true;
                queue.push_back(w);
            }
        }
    }
    order.reverse();
    Permutation::from_order(&order).expect("BFS visits each vertex exactly once")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbmpk_sparse::Coo;
    use rand::Rng;

    #[test]
    fn rcm_is_a_valid_permutation() {
        let a = fbmpk_gen::poisson::grid2d_5pt(6, 6);
        let p = rcm(&a);
        assert_eq!(p.len(), 36);
        // from_order already validates bijectivity; applying round-trips.
        let b = p.permute_symmetric(&a).unwrap();
        let back = p.inverse().permute_symmetric(&b).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn rcm_reduces_bandwidth_of_scrambled_matrix() {
        // Take a tridiagonal matrix and scramble it with a random
        // permutation; RCM must substantially restore the small bandwidth.
        let n = 200;
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
            if i > 0 {
                coo.push(i, i - 1, -1.0).unwrap();
                coo.push(i - 1, i, -1.0).unwrap();
            }
        }
        let a = coo.to_csr();
        // Scramble deterministically (Fisher-Yates).
        let mut rng = fbmpk_gen::rng(99);
        let mut order: Vec<u32> = (0..n as u32).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let scramble = Permutation::from_order(&order).unwrap();
        let scrambled = scramble.permute_symmetric(&a).unwrap();
        assert!(scrambled.bandwidth() > 20);
        let p = rcm(&scrambled);
        let restored = p.permute_symmetric(&scrambled).unwrap();
        assert!(
            restored.bandwidth() <= 3,
            "RCM bandwidth {} (scrambled {})",
            restored.bandwidth(),
            scrambled.bandwidth()
        );
    }

    #[test]
    fn rcm_handles_disconnected_components() {
        // Two disjoint edges + isolated vertex.
        let g = Graph::from_neighbor_lists(&[vec![1], vec![0], vec![3], vec![2], vec![]]);
        let p = rcm_graph(&g);
        assert_eq!(p.len(), 5);
    }

    #[test]
    fn rcm_on_identity_is_some_permutation() {
        let a = Csr::identity(5);
        let p = rcm(&a);
        assert_eq!(p.len(), 5);
    }
}
