//! Deterministic fault injection for the fault-tolerance test suite.
//!
//! The recovery paths in this crate — poison propagation, the stall
//! watchdog, barrier reset — only matter when something goes wrong, and
//! "something goes wrong" never happens in an ordinary test run. This
//! module makes faults reproducible: a [`FaultPlan`] names exact injection
//! sites (worker × color for panics, block × epoch for publish faults) and
//! the kernel sweeps call the two hook functions at those sites.
//!
//! The hooks compile to empty `#[inline(always)]` stubs unless the
//! `fault-inject` feature is enabled, so production builds carry zero
//! cost and zero attack surface. With the feature on, a plan is installed
//! either programmatically ([`install`]) or from the `FBMPK_FAULT`
//! environment variable ([`install_from_env`]).
//!
//! # `FBMPK_FAULT` grammar
//!
//! `;`-separated fault specs, each one of:
//!
//! * `panic:T:C` — worker `T` panics on starting color `C`,
//! * `delay:B:E:MS` — the publish of block `B`'s epoch-`E` flag is delayed
//!   by `MS` milliseconds,
//! * `skip:B:E` — the publish of block `B`'s epoch-`E` flag never happens
//!   (downstream waiters stall until the watchdog fires).
//!
//! Example: `FBMPK_FAULT="panic:1:2;delay:0:3:50"`.

/// Times an installed fault actually triggered at a matching site (panic
/// fired, publish delayed or dropped) since process start. Always
/// compiled so telemetry consumers need no feature gate; stays 0 without
/// `fault-inject`.
pub fn injection_hits() -> u64 {
    HITS.load(std::sync::atomic::Ordering::Relaxed)
}

static HITS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

#[allow(dead_code)] // only the fault-inject hooks fire it
fn count_hit() {
    HITS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
}

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Worker `thread` panics when it starts color `color`.
    PanicAt {
        /// Worker id to kill.
        thread: usize,
        /// Color index whose start triggers the panic.
        color: usize,
    },
    /// The epoch-`epoch` flag publish of block `block` is delayed.
    DelayMark {
        /// Block whose publish is delayed.
        block: usize,
        /// Epoch of the delayed publish.
        epoch: u64,
        /// Delay in milliseconds.
        ms: u64,
    },
    /// The epoch-`epoch` flag publish of block `block` is dropped.
    SkipMark {
        /// Block whose publish is dropped.
        block: usize,
        /// Epoch of the dropped publish.
        epoch: u64,
    },
}

/// A parsed set of faults to inject into one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The faults, applied independently (a site matching several faults
    /// applies all of them).
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// Parses the `FBMPK_FAULT` grammar (see the module docs).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        fn num<T: std::str::FromStr>(
            part: Option<&str>,
            what: &str,
            spec: &str,
        ) -> Result<T, String> {
            part.ok_or_else(|| format!("fault spec '{spec}': missing {what}"))?
                .trim()
                .parse()
                .map_err(|_| format!("fault spec '{spec}': bad {what}"))
        }
        let mut faults = Vec::new();
        for part in spec.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let mut fields = part.split(':');
            let kind = fields.next().unwrap_or("");
            let fault = match kind {
                "panic" => Fault::PanicAt {
                    thread: num(fields.next(), "thread", part)?,
                    color: num(fields.next(), "color", part)?,
                },
                "delay" => Fault::DelayMark {
                    block: num(fields.next(), "block", part)?,
                    epoch: num(fields.next(), "epoch", part)?,
                    ms: num(fields.next(), "delay ms", part)?,
                },
                "skip" => Fault::SkipMark {
                    block: num(fields.next(), "block", part)?,
                    epoch: num(fields.next(), "epoch", part)?,
                },
                other => return Err(format!("fault spec '{part}': unknown kind '{other}'")),
            };
            if let Some(extra) = fields.next() {
                return Err(format!("fault spec '{part}': trailing field '{extra}'"));
            }
            faults.push(fault);
        }
        Ok(FaultPlan { faults })
    }
}

#[cfg(feature = "fault-inject")]
mod active {
    use super::{Fault, FaultPlan};
    use std::sync::{Mutex, MutexGuard, PoisonError, RwLock};

    // std locks (not the vendored parking_lot subset): the harness needs
    // RwLock, and poisoned guards are recovered explicitly because the
    // whole point of the suite is to panic while holding state.
    static ACTIVE: RwLock<Option<FaultPlan>> = RwLock::new(None);
    static SITE_LOCK: Mutex<()> = Mutex::new(());

    /// Keeps the installed plan alive; dropping it uninstalls the plan and
    /// releases the injection lock so the next test can install its own.
    pub struct FaultGuard {
        _site: MutexGuard<'static, ()>,
    }

    impl Drop for FaultGuard {
        fn drop(&mut self) {
            *ACTIVE.write().unwrap_or_else(PoisonError::into_inner) = None;
        }
    }

    /// Installs `plan` for the duration of the returned guard. Serializes
    /// callers: two concurrent installs (e.g. parallel tests) queue on an
    /// internal lock rather than clobbering each other's plan.
    pub fn install(plan: FaultPlan) -> FaultGuard {
        let site = SITE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        *ACTIVE.write().unwrap_or_else(PoisonError::into_inner) = Some(plan);
        FaultGuard { _site: site }
    }

    /// Installs the plan described by `FBMPK_FAULT`, if the variable is
    /// set and non-empty.
    ///
    /// # Panics
    /// Panics when the variable is set but does not parse — a CI matrix
    /// entry with a typo must fail loudly, not run fault-free.
    pub fn install_from_env() -> Option<FaultGuard> {
        let spec = std::env::var("FBMPK_FAULT").ok()?;
        if spec.trim().is_empty() {
            return None;
        }
        match FaultPlan::parse(&spec) {
            Ok(plan) => Some(install(plan)),
            Err(e) => panic!("FBMPK_FAULT: {e}"),
        }
    }

    /// Kernel hook: worker `thread` is starting color `color`.
    pub fn at_color(thread: usize, color: usize) {
        let guard = ACTIVE.read().unwrap_or_else(PoisonError::into_inner);
        if let Some(plan) = guard.as_ref() {
            for f in &plan.faults {
                if let Fault::PanicAt { thread: t, color: c } = f {
                    if *t == thread && *c == color {
                        super::count_hit();
                        // Real panic (not a sentinel): this is the
                        // original fault the runtime must isolate.
                        panic!("fault-inject: worker {thread} panicked at color {color}");
                    }
                }
            }
        }
    }

    /// Kernel hook: worker `thread` is about to publish block `block` at
    /// `epoch`. Returns `false` when the publish must be dropped; a delay
    /// fault sleeps here before returning.
    pub fn before_mark(_thread: usize, block: usize, epoch: u64) -> bool {
        let guard = ACTIVE.read().unwrap_or_else(PoisonError::into_inner);
        let Some(plan) = guard.as_ref() else { return true };
        let mut publish = true;
        for f in &plan.faults {
            match f {
                Fault::DelayMark { block: b, epoch: e, ms } if *b == block && *e == epoch => {
                    super::count_hit();
                    std::thread::sleep(std::time::Duration::from_millis(*ms));
                }
                Fault::SkipMark { block: b, epoch: e } if *b == block && *e == epoch => {
                    super::count_hit();
                    publish = false;
                }
                _ => {}
            }
        }
        publish
    }
}

#[cfg(feature = "fault-inject")]
pub use active::{at_color, before_mark, install, install_from_env, FaultGuard};

/// Kernel hook: worker `thread` is starting color `color` (no-op without
/// the `fault-inject` feature).
#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
pub fn at_color(_thread: usize, _color: usize) {}

/// Kernel hook: worker `thread` is about to publish block `block` at
/// `epoch`; `true` means "publish" (always, without the `fault-inject`
/// feature).
#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
pub fn before_mark(_thread: usize, _block: usize, _epoch: u64) -> bool {
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_kind() {
        let plan = FaultPlan::parse("panic:1:2; delay:0:3:50 ;skip:4:6").unwrap();
        assert_eq!(
            plan.faults,
            vec![
                Fault::PanicAt { thread: 1, color: 2 },
                Fault::DelayMark { block: 0, epoch: 3, ms: 50 },
                Fault::SkipMark { block: 4, epoch: 6 },
            ]
        );
        assert_eq!(FaultPlan::parse("").unwrap().faults, vec![]);
        assert_eq!(FaultPlan::parse(" ; ").unwrap().faults, vec![]);
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in ["panic:1", "panic:x:2", "delay:0:3", "warp:1:2", "skip:4:6:9", "panic"] {
            assert!(FaultPlan::parse(bad).is_err(), "'{bad}' must not parse");
        }
        assert!(FaultPlan::parse("panic:1:2;warp:3").unwrap_err().contains("warp"));
    }

    #[test]
    fn stubs_or_hooks_default_to_publish() {
        // Without an installed plan the hooks must be inert regardless of
        // whether the feature is compiled in.
        at_color(0, 0);
        assert!(before_mark(0, 0, 1));
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn installed_plan_drives_hooks_and_uninstalls_on_drop() {
        let plan = FaultPlan::parse("panic:1:2;skip:3:4;delay:5:6:1").unwrap();
        {
            let _guard = install(plan);
            at_color(1, 1); // wrong color: no fire
            at_color(0, 2); // wrong thread: no fire
            let err =
                std::panic::catch_unwind(|| at_color(1, 2)).expect_err("matching site must panic");
            assert!(crate::poison::payload_string(err.as_ref()).contains("color 2"));
            assert!(!before_mark(0, 3, 4), "skip site must drop the publish");
            assert!(before_mark(0, 3, 5), "other epochs unaffected");
            assert!(before_mark(0, 5, 6), "delay still publishes");
        }
        // Guard dropped: everything back to inert.
        at_color(1, 2);
        assert!(before_mark(0, 3, 4));
    }
}
