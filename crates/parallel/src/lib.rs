//! # fbmpk-parallel
//!
//! The parallel-execution substrate for FBMPK's colored kernels.
//!
//! The paper parallelizes the forward/backward sweeps with an OpenMP-style
//! schedule: within one ABMC color all blocks run concurrently; colors are
//! separated by barriers (paper §III-D/E). Rayon's fork-join model doesn't
//! express "the *same* long-lived workers iterate colors with barriers in
//! between", so this crate provides the pieces directly:
//!
//! * [`pool::ThreadPool`] — persistent workers that execute one closure per
//!   worker, SPMD-style, exactly like an `omp parallel` region,
//! * [`barrier::SenseBarrier`] — a reusable sense-reversing spin barrier for
//!   the color phase boundaries,
//! * [`partition`] — contiguous weight-balanced range partitioning (rows are
//!   assigned by nnz; the paper's "number of blocks for each thread task are
//!   allocated in advance"),
//! * [`shared::SharedSlice`] — the unsafe shared-output cell with the
//!   disjoint-writes contract the colored schedule guarantees,
//! * [`sync::BlockFlags`] / [`sync::Backoff`] — per-block epoch flags and
//!   the bounded spin-then-yield waiter behind the barrier-free
//!   point-to-point sweep mode,
//! * [`poison`] — the shared fault latch and progress table behind panic
//!   isolation and the stall watchdog ([`ThreadPool::try_run`] returns the
//!   first [`poison::WorkerFault`] instead of hanging or aborting),
//! * [`fault`] — a deterministic fault-injection harness (compiled in only
//!   under the `fault-inject` feature) driving the recovery-path tests,
//! * [`affinity`] — best-effort worker→core pinning for the pool,
//! * [`numa`] — sysfs node-topology detection and the node-major worker
//!   ordering behind NUMA-local pinning and first-touch placement.

pub mod affinity;
pub mod barrier;
pub mod fault;
pub mod numa;
pub mod partition;
pub mod poison;
pub mod pool;
pub mod shared;
pub mod sync;

pub use barrier::SenseBarrier;
pub use numa::NumaTopology;
pub use poison::{FaultCause, Poison, PoisonUnwind, ProgressTable, ThreadProgress, WorkerFault};
pub use pool::ThreadPool;
pub use shared::SharedSlice;
pub use sync::{Backoff, BlockFlags};
