//! A persistent SPMD thread pool.
//!
//! [`ThreadPool::run`] executes one closure on every worker simultaneously —
//! the shape of an `omp parallel` region, which is what the paper's
//! Algorithm 2 is written against. Workers persist across calls so repeated
//! kernel invocations (an MPK is called once per power, per solver
//! iteration) pay no thread-spawn cost.
//!
//! The closure receives the worker id and may borrow the caller's stack:
//! `run` erases the lifetime but does not return until every worker has
//! finished, which is what makes the erasure sound.

use crate::barrier::SenseBarrier;
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

/// Type-erased job pointer. Points at a `&(dyn Fn(usize) + Sync)` that is
/// guaranteed by [`ThreadPool::run`] to outlive its execution.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls from many threads are fine)
// and `run` keeps it alive until all workers are done with it.
unsafe impl Send for JobPtr {}

struct State {
    /// Bumped once per `run`; workers trigger on changes.
    epoch: u64,
    job: Option<JobPtr>,
    /// Workers still executing the current job.
    active: usize,
    shutdown: bool,
}

struct Inner {
    state: Mutex<State>,
    work_cv: Condvar,
    done_cv: Condvar,
}

/// A pool of persistent worker threads executing SPMD regions.
pub struct ThreadPool {
    inner: Arc<Inner>,
    handles: Vec<std::thread::JoinHandle<()>>,
    nthreads: usize,
    barrier: Arc<SenseBarrier>,
    pinned: bool,
}

impl ThreadPool {
    /// Creates a pool with `nthreads` workers (no affinity pinning).
    ///
    /// `nthreads == 1` creates no OS threads: [`ThreadPool::run`] executes
    /// inline, so single-threaded baselines measure pure kernel time.
    ///
    /// # Panics
    /// Panics if `nthreads == 0`.
    pub fn new(nthreads: usize) -> Self {
        Self::with_affinity(nthreads, false)
    }

    /// Creates a pool, optionally pinning worker `t` to core `t mod cores`
    /// at startup (see [`crate::affinity`]). Pinning is best-effort: a
    /// rejected mask leaves the worker floating. The inline single-thread
    /// pool never pins (that would permanently constrain the *caller's*
    /// thread).
    ///
    /// # Panics
    /// Panics if `nthreads == 0`.
    pub fn with_affinity(nthreads: usize, pin: bool) -> Self {
        assert!(nthreads > 0, "pool needs at least one thread");
        let inner = Arc::new(Inner {
            state: Mutex::new(State { epoch: 0, job: None, active: 0, shutdown: false }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let mut handles = Vec::new();
        let pinned = pin && nthreads > 1;
        if nthreads > 1 {
            let cores = crate::affinity::available_cores();
            for tid in 0..nthreads {
                let inner = Arc::clone(&inner);
                handles.push(
                    std::thread::Builder::new()
                        .name(format!("fbmpk-worker-{tid}"))
                        .spawn(move || {
                            if pinned {
                                let _ = crate::affinity::pin_current_thread(tid % cores);
                            }
                            worker_loop(&inner, tid)
                        })
                        .expect("spawning pool worker"),
                );
            }
        }
        ThreadPool {
            inner,
            handles,
            nthreads,
            barrier: Arc::new(SenseBarrier::new(nthreads)),
            pinned,
        }
    }

    /// Number of workers.
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// Whether the workers requested core affinity at startup.
    pub fn pinned(&self) -> bool {
        self.pinned
    }

    /// The pool-wide barrier, sized to `nthreads`. Inside [`ThreadPool::run`]
    /// every worker must participate in each `wait` round (the colored
    /// sweeps call it once per color).
    pub fn barrier(&self) -> &SenseBarrier {
        &self.barrier
    }

    /// Executes `f(thread_id)` on every worker and blocks until all return.
    ///
    /// Calls are serialized: a second `run` waits for the first. Panics in
    /// workers abort the process (they would otherwise deadlock the
    /// barrier); panics in the inline single-thread path propagate normally.
    pub fn run(&self, f: &(dyn Fn(usize) + Sync)) {
        if self.nthreads == 1 {
            f(0);
            return;
        }
        // SAFETY: we erase the lifetime of `f` to store it in the shared
        // state. `run` does not return until `active == 0`, i.e. every
        // worker has finished calling it, so the reference never dangles.
        let ptr: JobPtr = JobPtr(unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(f)
        });
        let mut st = self.inner.state.lock();
        // Serialize concurrent callers: wait until any in-flight job has
        // fully drained before posting ours (the doc promise above).
        while st.active > 0 {
            self.inner.done_cv.wait(&mut st);
        }
        st.job = Some(ptr);
        st.active = self.nthreads;
        st.epoch += 1;
        self.inner.work_cv.notify_all();
        while st.active > 0 {
            self.inner.done_cv.wait(&mut st);
        }
        st.job = None;
        // A concurrent caller may be blocked in the serialization wait
        // above; done_cv woke only one waiter, so pass the baton.
        self.inner.done_cv.notify_one();
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.inner.state.lock();
            st.shutdown = true;
            self.inner.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(inner: &Inner, tid: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = inner.state.lock();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    break st.job.expect("epoch advanced without a job");
                }
                inner.work_cv.wait(&mut st);
            }
        };
        // SAFETY: `run` keeps the closure alive until `active` reaches 0,
        // which we only signal after the call returns.
        let f = unsafe { &*job.0 };
        // A panicking worker can never release its barrier slots, so the
        // only sound recovery is to abort (as documented on `run`).
        if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(tid))).is_err() {
            eprintln!("fbmpk-parallel: worker {tid} panicked; aborting");
            std::process::abort();
        }
        let mut st = inner.state.lock();
        st.active -= 1;
        if st.active == 0 {
            inner.done_cv.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn all_workers_run_once() {
        for t in [1, 2, 4, 7] {
            let pool = ThreadPool::new(t);
            let hits = AtomicUsize::new(0);
            let ids = Mutex::new(Vec::new());
            pool.run(&|tid| {
                hits.fetch_add(1, Ordering::Relaxed);
                ids.lock().push(tid);
            });
            assert_eq!(hits.load(Ordering::Relaxed), t);
            let mut got = ids.into_inner();
            got.sort_unstable();
            assert_eq!(got, (0..t).collect::<Vec<_>>());
        }
    }

    #[test]
    fn run_borrows_stack_data() {
        let pool = ThreadPool::new(3);
        let data = vec![0usize; 3];
        let cell = Mutex::new(data);
        pool.run(&|tid| {
            cell.lock()[tid] = tid * 10;
        });
        assert_eq!(cell.into_inner(), vec![0, 10, 20]);
    }

    #[test]
    fn repeated_runs_reuse_workers() {
        let pool = ThreadPool::new(4);
        let sum = AtomicUsize::new(0);
        for _ in 0..100 {
            pool.run(&|tid| {
                sum.fetch_add(tid + 1, Ordering::Relaxed);
            });
        }
        assert_eq!(sum.load(Ordering::Relaxed), 100 * (1 + 2 + 3 + 4));
    }

    #[test]
    fn barrier_coordinates_inside_run() {
        let pool = ThreadPool::new(4);
        let stage = AtomicUsize::new(0);
        let errors = AtomicUsize::new(0);
        pool.run(&|_tid| {
            stage.fetch_add(1, Ordering::SeqCst);
            pool.barrier().wait();
            // After the barrier every increment must be visible.
            if stage.load(Ordering::SeqCst) != 4 {
                errors.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert_eq!(errors.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn concurrent_run_calls_serialize() {
        // Two threads hammer run() on a shared pool; the per-call counter
        // sum must be exact — lost updates would reveal overlapping jobs.
        let pool = std::sync::Arc::new(ThreadPool::new(3));
        let total = std::sync::Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let pool = std::sync::Arc::clone(&pool);
                let total = std::sync::Arc::clone(&total);
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        pool.run(&|_| {
                            total.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(Ordering::SeqCst), 2 * 50 * 3);
    }

    #[test]
    fn single_thread_runs_inline() {
        let pool = ThreadPool::new(1);
        let mut x = 0;
        let cell = Mutex::new(&mut x);
        pool.run(&|_| {
            **cell.lock() += 1;
        });
        assert_eq!(x, 1);
        assert_eq!(pool.nthreads(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_threads_panics() {
        ThreadPool::new(0);
    }

    #[test]
    fn pinned_pool_runs_correctly() {
        // Affinity is best-effort; whatever the kernel decided, the pool
        // must still execute every worker.
        let pool = ThreadPool::with_affinity(4, true);
        assert!(pool.pinned());
        let hits = AtomicUsize::new(0);
        for _ in 0..10 {
            pool.run(&|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(hits.load(Ordering::Relaxed), 40);
        // The inline single-thread pool never pins the caller.
        assert!(!ThreadPool::with_affinity(1, true).pinned());
        assert!(!ThreadPool::new(3).pinned());
    }
}
