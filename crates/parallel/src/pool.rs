//! A persistent SPMD thread pool.
//!
//! [`ThreadPool::run`] executes one closure on every worker simultaneously —
//! the shape of an `omp parallel` region, which is what the paper's
//! Algorithm 2 is written against. Workers persist across calls so repeated
//! kernel invocations (an MPK is called once per power, per solver
//! iteration) pay no thread-spawn cost.
//!
//! The closure receives the worker id and may borrow the caller's stack:
//! `run` erases the lifetime but does not return until every worker has
//! finished, which is what makes the erasure sound.

use crate::barrier::SenseBarrier;
use crate::poison::{payload_string, FaultCause, Poison, PoisonUnwind, ProgressTable, WorkerFault};
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

/// Type-erased job pointer. Points at a `&(dyn Fn(usize) + Sync)` that is
/// guaranteed by [`ThreadPool::run`] to outlive its execution.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls from many threads are fine)
// and `run` keeps it alive until all workers are done with it.
unsafe impl Send for JobPtr {}

struct State {
    /// Bumped once per `run`; workers trigger on changes.
    epoch: u64,
    job: Option<JobPtr>,
    /// Workers still executing the current job.
    active: usize,
    shutdown: bool,
}

struct Inner {
    state: Mutex<State>,
    work_cv: Condvar,
    done_cv: Condvar,
    /// First-fault latch shared with the barrier and any attached
    /// [`crate::BlockFlags`]: a panicked or stalled worker publishes here,
    /// peers observe it inside their waits and unwind.
    poison: Arc<Poison>,
    /// Per-worker progress slots feeding the stall diagnostic dump.
    progress: Arc<ProgressTable>,
}

/// A pool of persistent worker threads executing SPMD regions.
pub struct ThreadPool {
    inner: Arc<Inner>,
    handles: Vec<std::thread::JoinHandle<()>>,
    nthreads: usize,
    barrier: Arc<SenseBarrier>,
    pinned: bool,
}

impl ThreadPool {
    /// Creates a pool with `nthreads` workers (no affinity pinning).
    ///
    /// `nthreads == 1` creates no OS threads: [`ThreadPool::run`] executes
    /// inline, so single-threaded baselines measure pure kernel time.
    ///
    /// # Panics
    /// Panics if `nthreads == 0`.
    pub fn new(nthreads: usize) -> Self {
        Self::with_affinity(nthreads, false)
    }

    /// Creates a pool, optionally pinning workers at startup (see
    /// [`crate::affinity`]). Workers are assigned cores in the NUMA
    /// node-major order of [`crate::numa::NumaTopology::cpu_order`]:
    /// consecutive worker ids pack onto the same node, so contiguous
    /// per-worker data ranges stay node-local; on a single-node machine
    /// the order degrades to `0..cores` and worker `t` lands on core
    /// `t mod cores`, exactly as before. Pinning is best-effort: a
    /// rejected mask leaves the worker floating. The inline single-thread
    /// pool never pins (that would permanently constrain the *caller's*
    /// thread).
    ///
    /// # Panics
    /// Panics if `nthreads == 0`.
    pub fn with_affinity(nthreads: usize, pin: bool) -> Self {
        assert!(nthreads > 0, "pool needs at least one thread");
        let poison = Arc::new(Poison::new());
        let progress = Arc::new(ProgressTable::new(nthreads));
        let inner = Arc::new(Inner {
            state: Mutex::new(State { epoch: 0, job: None, active: 0, shutdown: false }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            poison: Arc::clone(&poison),
            progress: Arc::clone(&progress),
        });
        let mut handles = Vec::new();
        let pinned = pin && nthreads > 1;
        if nthreads > 1 {
            // One sysfs read per pool; empty when not pinning.
            let cpu_order: Arc<Vec<usize>> = Arc::new(if pinned {
                crate::numa::NumaTopology::detect().cpu_order()
            } else {
                Vec::new()
            });
            for tid in 0..nthreads {
                let inner = Arc::clone(&inner);
                let cpu_order = Arc::clone(&cpu_order);
                handles.push(
                    std::thread::Builder::new()
                        .name(format!("fbmpk-worker-{tid}"))
                        .spawn(move || {
                            if pinned && !cpu_order.is_empty() {
                                let core = cpu_order[tid % cpu_order.len()];
                                let _ = crate::affinity::pin_current_thread(core);
                            }
                            worker_loop(&inner, tid)
                        })
                        .expect("spawning pool worker"),
                );
            }
        }
        ThreadPool {
            inner,
            handles,
            nthreads,
            barrier: Arc::new(SenseBarrier::with_poison(nthreads, Some(poison))),
            pinned,
        }
    }

    /// Number of workers.
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// Whether the workers requested core affinity at startup.
    pub fn pinned(&self) -> bool {
        self.pinned
    }

    /// The pool-wide barrier, sized to `nthreads`. Inside [`ThreadPool::run`]
    /// every worker must participate in each `wait` round (the colored
    /// sweeps call it once per color).
    pub fn barrier(&self) -> &SenseBarrier {
        &self.barrier
    }

    /// The pool's first-fault latch. Plan builders clone it into
    /// [`crate::BlockFlags::attach_runtime`] so point-to-point waits
    /// observe the same poison the barrier does.
    pub fn poison(&self) -> &Arc<Poison> {
        &self.inner.poison
    }

    /// The pool's per-worker progress table (one slot per worker). Kernel
    /// code records compute-unit starts here; the stall watchdog snapshots
    /// it for the diagnostic dump.
    pub fn progress(&self) -> &Arc<ProgressTable> {
        &self.inner.progress
    }

    /// Executes `f(thread_id)` on every worker and blocks until all return.
    ///
    /// Calls are serialized: a second `run` waits for the first. A worker
    /// fault (panic, or watchdog stall) is re-raised here as a panic in
    /// the calling thread; use [`ThreadPool::try_run`] to receive it as a
    /// value instead.
    pub fn run(&self, f: &(dyn Fn(usize) + Sync)) {
        if let Err(fault) = self.try_run(f) {
            match fault.cause {
                FaultCause::Panic { payload } => {
                    panic!("fbmpk-parallel: worker {} panicked: {payload}", fault.thread)
                }
                FaultCause::Stall { block, epoch, waited_ms, dump } => panic!(
                    "fbmpk-parallel: worker {} stalled {waited_ms} ms on block {block} \
                     epoch {epoch}\n{dump}",
                    fault.thread
                ),
            }
        }
    }

    /// Executes `f(thread_id)` on every worker; returns the first worker
    /// fault instead of panicking.
    ///
    /// Fault recovery contract: when any worker panics or a watchdog
    /// deadline expires, the fault is published to the pool's poison latch;
    /// every peer blocked in [`SenseBarrier::wait`] or a runtime-attached
    /// [`crate::BlockFlags`] wait observes it and unwinds, so the region
    /// always drains. `try_run` then clears the poison, resets the barrier,
    /// and returns `Err(fault)` — the pool is immediately reusable. Workers
    /// wedged in non-waiting code (an infinite loop in `f`) are out of
    /// scope: nothing can unwind a thread that never checks.
    pub fn try_run(&self, f: &(dyn Fn(usize) + Sync)) -> Result<(), WorkerFault> {
        if self.nthreads == 1 {
            self.inner.progress.clear();
            return match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(0))) {
                Ok(()) => match self.inner.poison.take() {
                    None => Ok(()),
                    Some(fault) => Err(fault),
                },
                Err(payload) => Err(self.inline_fault(payload)),
            };
        }
        // SAFETY: we erase the lifetime of `f` to store it in the shared
        // state. `try_run` does not return until `active == 0`, i.e. every
        // worker has finished calling it, so the reference never dangles.
        let ptr: JobPtr = JobPtr(unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(f)
        });
        let mut st = self.inner.state.lock();
        // Serialize concurrent callers: wait until any in-flight job has
        // fully drained before posting ours (the doc promise above).
        while st.active > 0 {
            self.inner.done_cv.wait(&mut st);
        }
        // No workers are active and we hold the lock: safe to reset the
        // observation state left by a previous (possibly faulted) run.
        self.inner.progress.clear();
        st.job = Some(ptr);
        st.active = self.nthreads;
        st.epoch += 1;
        self.inner.work_cv.notify_all();
        while st.active > 0 {
            self.inner.done_cv.wait(&mut st);
        }
        st.job = None;
        // Collect any fault and repair the barrier *before* handing the
        // baton to a concurrent caller, so the next run starts clean.
        let fault = self.inner.poison.take();
        if fault.is_some() {
            self.barrier.reset();
        }
        // A concurrent caller may be blocked in the serialization wait
        // above; done_cv woke only one waiter, so pass the baton.
        self.inner.done_cv.notify_one();
        drop(st);
        match fault {
            None => Ok(()),
            Some(fault) => Err(fault),
        }
    }

    /// Converts a payload caught on the inline (single-thread) path into a
    /// [`WorkerFault`]: a [`PoisonUnwind`] sentinel means the detail is in
    /// the poison latch (watchdog stalls publish before unwinding);
    /// anything else is the original panic.
    fn inline_fault(&self, payload: Box<dyn std::any::Any + Send>) -> WorkerFault {
        let latched = self.inner.poison.take();
        if payload.downcast_ref::<PoisonUnwind>().is_some() {
            if let Some(fault) = latched {
                return fault;
            }
        }
        let site = self.inner.progress.snapshot(0).site;
        WorkerFault {
            thread: 0,
            color: site.map(|(c, _)| c),
            block: site.and_then(|(_, b)| b),
            cause: FaultCause::Panic { payload: payload_string(payload.as_ref()) },
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.inner.state.lock();
            st.shutdown = true;
            self.inner.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(inner: &Inner, tid: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = inner.state.lock();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    break st.job.expect("epoch advanced without a job");
                }
                inner.work_cv.wait(&mut st);
            }
        };
        // SAFETY: `try_run` keeps the closure alive until `active` reaches
        // 0, which we only signal after the call returns.
        let f = unsafe { &*job.0 };
        if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(tid))) {
            // A PoisonUnwind sentinel is a peer escaping an already-
            // published fault; anything else is the original panic and
            // must be published so waiting peers unwind too.
            if payload.downcast_ref::<PoisonUnwind>().is_none() {
                let site = inner.progress.snapshot(tid).site;
                inner.poison.publish(WorkerFault {
                    thread: tid,
                    color: site.map(|(c, _)| c),
                    block: site.and_then(|(_, b)| b),
                    cause: FaultCause::Panic { payload: payload_string(payload.as_ref()) },
                });
            }
        }
        let mut st = inner.state.lock();
        st.active -= 1;
        if st.active == 0 {
            inner.done_cv.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn all_workers_run_once() {
        for t in [1, 2, 4, 7] {
            let pool = ThreadPool::new(t);
            let hits = AtomicUsize::new(0);
            let ids = Mutex::new(Vec::new());
            pool.run(&|tid| {
                hits.fetch_add(1, Ordering::Relaxed);
                ids.lock().push(tid);
            });
            assert_eq!(hits.load(Ordering::Relaxed), t);
            let mut got = ids.into_inner();
            got.sort_unstable();
            assert_eq!(got, (0..t).collect::<Vec<_>>());
        }
    }

    #[test]
    fn run_borrows_stack_data() {
        let pool = ThreadPool::new(3);
        let data = vec![0usize; 3];
        let cell = Mutex::new(data);
        pool.run(&|tid| {
            cell.lock()[tid] = tid * 10;
        });
        assert_eq!(cell.into_inner(), vec![0, 10, 20]);
    }

    #[test]
    fn repeated_runs_reuse_workers() {
        let pool = ThreadPool::new(4);
        let sum = AtomicUsize::new(0);
        for _ in 0..100 {
            pool.run(&|tid| {
                sum.fetch_add(tid + 1, Ordering::Relaxed);
            });
        }
        assert_eq!(sum.load(Ordering::Relaxed), 100 * (1 + 2 + 3 + 4));
    }

    #[test]
    fn barrier_coordinates_inside_run() {
        let pool = ThreadPool::new(4);
        let stage = AtomicUsize::new(0);
        let errors = AtomicUsize::new(0);
        pool.run(&|_tid| {
            stage.fetch_add(1, Ordering::SeqCst);
            pool.barrier().wait();
            // After the barrier every increment must be visible.
            if stage.load(Ordering::SeqCst) != 4 {
                errors.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert_eq!(errors.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn concurrent_run_calls_serialize() {
        // Two threads hammer run() on a shared pool; the per-call counter
        // sum must be exact — lost updates would reveal overlapping jobs.
        let pool = std::sync::Arc::new(ThreadPool::new(3));
        let total = std::sync::Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let pool = std::sync::Arc::clone(&pool);
                let total = std::sync::Arc::clone(&total);
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        pool.run(&|_| {
                            total.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(Ordering::SeqCst), 2 * 50 * 3);
    }

    #[test]
    fn single_thread_runs_inline() {
        let pool = ThreadPool::new(1);
        let mut x = 0;
        let cell = Mutex::new(&mut x);
        pool.run(&|_| {
            **cell.lock() += 1;
        });
        assert_eq!(x, 1);
        assert_eq!(pool.nthreads(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_threads_panics() {
        ThreadPool::new(0);
    }

    #[test]
    fn worker_panic_is_isolated_and_pool_reusable() {
        let pool = ThreadPool::new(4);
        let err = pool
            .try_run(&|tid| {
                if tid == 2 {
                    panic!("injected failure");
                }
                // Peers block on the poisoned barrier: they must unwind,
                // not spin forever behind the dead worker.
                pool.barrier().wait();
            })
            .expect_err("the fault must surface");
        assert_eq!(err.thread, 2);
        match err.cause {
            FaultCause::Panic { payload } => assert!(payload.contains("injected failure")),
            other => panic!("expected a panic fault, got {other:?}"),
        }
        // The pool must be immediately reusable, barrier included.
        for _ in 0..3 {
            let hits = AtomicUsize::new(0);
            pool.run(&|_tid| {
                hits.fetch_add(1, Ordering::Relaxed);
                pool.barrier().wait();
                hits.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hits.load(Ordering::Relaxed), 8);
        }
    }

    #[test]
    fn panic_without_waiting_peers_still_drains() {
        // Peers finish without ever waiting: the faulted region must still
        // drain and report, and clean runs must still succeed after.
        let pool = ThreadPool::new(3);
        let err = pool
            .try_run(&|tid| {
                if tid == 0 {
                    panic!("early death");
                }
            })
            .expect_err("fault must surface");
        assert_eq!(err.thread, 0);
        pool.run(&|_| {});
    }

    #[test]
    fn inline_pool_reports_panic_as_fault() {
        let pool = ThreadPool::new(1);
        let err = pool.try_run(&|_| panic!("solo failure")).expect_err("fault must surface");
        assert_eq!(err.thread, 0);
        match err.cause {
            FaultCause::Panic { payload } => assert!(payload.contains("solo failure")),
            other => panic!("expected a panic fault, got {other:?}"),
        }
        let hits = AtomicUsize::new(0);
        pool.run(&|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    #[should_panic(expected = "worker 0 panicked")]
    fn run_repanics_on_worker_fault() {
        ThreadPool::new(1).run(&|_| panic!("boom"));
    }

    #[test]
    fn fault_site_comes_from_progress_table() {
        let pool = ThreadPool::new(2);
        let err = pool
            .try_run(&|tid| {
                pool.progress().set_site(tid, 5, Some(tid as u32));
                if tid == 1 {
                    panic!("sited failure");
                }
                pool.barrier().wait();
            })
            .expect_err("fault must surface");
        assert_eq!(err.thread, 1);
        assert_eq!(err.color, Some(5));
        assert_eq!(err.block, Some(1));
    }

    #[test]
    fn pinned_pool_runs_correctly() {
        // Affinity is best-effort; whatever the kernel decided, the pool
        // must still execute every worker.
        let pool = ThreadPool::with_affinity(4, true);
        assert!(pool.pinned());
        let hits = AtomicUsize::new(0);
        for _ in 0..10 {
            pool.run(&|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(hits.load(Ordering::Relaxed), 40);
        // The inline single-thread pool never pins the caller.
        assert!(!ThreadPool::with_affinity(1, true).pinned());
        assert!(!ThreadPool::new(3).pinned());
    }
}
