//! NUMA node topology detection and node-aware worker→core ordering.
//!
//! On multi-socket machines the sweeps' bandwidth ceiling is per-node:
//! a worker streaming pages resident on the *other* node pays the
//! interconnect. Two pieces make the runtime node-aware without any
//! libnuma dependency:
//!
//! * **Topology** — parsed from sysfs (`/sys/devices/system/node/
//!   node*/cpulist`), the same interface `numactl --hardware` reads.
//!   Anything unexpected (no sysfs, masked nodes, cpu-less memory
//!   nodes, parse errors) degrades to a single node covering
//!   `available_cores()`, which reproduces today's behavior exactly.
//! * **Node-major cpu order** — [`NumaTopology::cpu_order`] lists cpus
//!   node by node, so pinning worker `t` to `order[t % len]` packs
//!   consecutive workers onto the same node. Combined with contiguous
//!   per-worker ranges in the kernels and first-touch initialization of
//!   shared buffers (each worker faults in its own range), pages land on
//!   the node of the worker that sweeps them. On a single node the
//!   order is `0..cores`, bit-identical to the previous `t % cores`
//!   pinning.

use std::path::Path;

/// Per-node cpu inventory (node ids dense in `0..nnodes`, each with at
/// least one cpu).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NumaTopology {
    nodes: Vec<Vec<usize>>,
}

impl NumaTopology {
    /// Detects the topology from the standard sysfs root. Every failure
    /// mode degrades to [`NumaTopology::single_node`].
    pub fn detect() -> Self {
        Self::from_sysfs_root(Path::new("/sys/devices/system/node"))
    }

    /// Detects from an explicit sysfs-style root (`node<N>/cpulist`
    /// files) — the testable entry behind [`NumaTopology::detect`]. A
    /// missing/empty/unparsable tree, or one that yields fewer than two
    /// cpu-bearing nodes, degrades to [`NumaTopology::single_node`].
    pub fn from_sysfs_root(root: &Path) -> Self {
        Self::try_from_sysfs(root).unwrap_or_else(Self::single_node)
    }

    fn try_from_sysfs(root: &Path) -> Option<Self> {
        let mut nodes: Vec<(usize, Vec<usize>)> = Vec::new();
        for entry in std::fs::read_dir(root).ok()? {
            let entry = entry.ok()?;
            let name = entry.file_name();
            let name = name.to_str()?;
            let Some(id) = name.strip_prefix("node").and_then(|s| s.parse::<usize>().ok()) else {
                continue;
            };
            let text = std::fs::read_to_string(entry.path().join("cpulist")).ok()?;
            let cpus = parse_cpulist(&text)?;
            if !cpus.is_empty() {
                nodes.push((id, cpus));
            }
        }
        // Memory-only nodes were dropped above; fewer than two cpu-bearing
        // nodes means placement cannot matter — degrade.
        if nodes.len() < 2 {
            return None;
        }
        nodes.sort_by_key(|&(id, _)| id);
        Some(NumaTopology { nodes: nodes.into_iter().map(|(_, cpus)| cpus).collect() })
    }

    /// The degradation topology: one node holding `0..available_cores()`
    /// — [`NumaTopology::cpu_order`] then reproduces the historical
    /// `tid % cores` pinning exactly.
    pub fn single_node() -> Self {
        NumaTopology { nodes: vec![(0..crate::affinity::available_cores()).collect()] }
    }

    /// An injected topology for tests (multi-node machines are not
    /// available in CI). Nodes with no cpus are rejected.
    ///
    /// # Panics
    /// Panics when `nodes` is empty or any node has no cpus.
    pub fn from_nodes(nodes: Vec<Vec<usize>>) -> Self {
        assert!(!nodes.is_empty(), "need at least one node");
        assert!(nodes.iter().all(|n| !n.is_empty()), "every node needs a cpu");
        NumaTopology { nodes }
    }

    /// Number of cpu-bearing nodes.
    pub fn nnodes(&self) -> usize {
        self.nodes.len()
    }

    /// Whether placement is moot (one node).
    pub fn is_single_node(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Cpus of node `i`.
    pub fn node_cpus(&self, i: usize) -> &[usize] {
        &self.nodes[i]
    }

    /// Total cpus across all nodes.
    pub fn ncpus(&self) -> usize {
        self.nodes.iter().map(Vec::len).sum()
    }

    /// Node-major cpu order: all of node 0's cpus, then node 1's, … —
    /// pin worker `t` to `order[t % order.len()]` and consecutive
    /// workers pack node-locally, so each worker's contiguous data range
    /// is first-touched (and later streamed) on one node.
    pub fn cpu_order(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.ncpus());
        for node in &self.nodes {
            order.extend_from_slice(node);
        }
        order
    }

    /// The node worker `tid` lands on under node-major pinning (workers
    /// beyond the cpu count wrap).
    pub fn node_of_worker(&self, tid: usize) -> usize {
        let mut idx = tid % self.ncpus().max(1);
        for (n, node) in self.nodes.iter().enumerate() {
            if idx < node.len() {
                return n;
            }
            idx -= node.len();
        }
        0
    }
}

/// Page-placement outcome of one memory range: `(node, pages)` pairs,
/// node-ascending, estimated from up to 4096 sampled pages.
pub type PagesPerNode = Vec<(usize, u64)>;

/// Queries which NUMA node each page of `data` actually resides on, via
/// the `move_pages(2)` query mode (a `NULL` nodes array performs no
/// migration — it only reads placement). This is the ground truth for
/// the first-touch placement claim: after workers touch their shares,
/// the pages should sit on the workers' nodes.
///
/// Large ranges are sampled (up to 4096 evenly strided pages) and counts
/// scaled back to the full page count. Returns `None` off Linux, when
/// the syscall is unavailable/denied, or when no sampled page reported a
/// node (e.g. untouched lazy mappings).
pub fn slice_pages_per_node<T>(data: &[T]) -> Option<PagesPerNode> {
    pages_per_node(data.as_ptr() as *const u8, std::mem::size_of_val(data))
}

/// [`slice_pages_per_node`] on a raw base/length range. `base` must point
/// into a live mapping of at least `bytes` bytes.
pub fn pages_per_node(base: *const u8, bytes: usize) -> Option<PagesPerNode> {
    const PAGE: usize = 4096;
    const MAX_SAMPLES: usize = 4096;
    if bytes == 0 {
        return Some(Vec::new());
    }
    let npages = bytes.div_ceil(PAGE);
    let stride = npages.div_ceil(MAX_SAMPLES);
    let addrs: Vec<usize> = (0..npages).step_by(stride).map(|p| base as usize + p * PAGE).collect();
    let status = sys::move_pages_status(&addrs)?;
    let mut counts: std::collections::BTreeMap<usize, u64> = std::collections::BTreeMap::new();
    let mut sampled = 0u64;
    for &s in &status {
        // Negative entries are per-page errors (unmapped, etc.) — skip.
        if s >= 0 {
            *counts.entry(s as usize).or_insert(0) += 1;
            sampled += 1;
        }
    }
    if sampled == 0 {
        return None;
    }
    Some(counts.into_iter().map(|(n, c)| (n, c * npages as u64 / sampled)).collect())
}

#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
mod sys {
    //! Raw `move_pages` syscall, same no-libc idiom as `affinity.rs` and
    //! `fbmpk-obs`'s `perf_event_open` wrapper.

    /// Query mode: `pid = 0` (self), `nodes = NULL` (read placement into
    /// `status`, move nothing), `flags = 0`.
    pub fn move_pages_status(addrs: &[usize]) -> Option<Vec<i32>> {
        if addrs.is_empty() {
            return Some(Vec::new());
        }
        let mut status = vec![i32::MIN; addrs.len()];
        let ret = unsafe {
            syscall6(
                SYS_MOVE_PAGES,
                0,
                addrs.len(),
                addrs.as_ptr() as usize,
                0,
                status.as_mut_ptr() as usize,
                0,
            )
        };
        if ret < 0 {
            None
        } else {
            Some(status)
        }
    }

    #[cfg(target_arch = "x86_64")]
    const SYS_MOVE_PAGES: usize = 279;
    #[cfg(target_arch = "aarch64")]
    const SYS_MOVE_PAGES: usize = 239;

    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall6(
        nr: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") nr as isize => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            in("r9") a6,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall6(
        nr: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        core::arch::asm!(
            "svc #0",
            in("x8") nr,
            inlateout("x0") a1 as isize => ret,
            in("x1") a2,
            in("x2") a3,
            in("x3") a4,
            in("x4") a5,
            in("x5") a6,
            options(nostack),
        );
        ret
    }
}

#[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
mod sys {
    //! Non-Linux fallback: placement is never observable.

    pub fn move_pages_status(_addrs: &[usize]) -> Option<Vec<i32>> {
        None
    }
}

/// Parses a kernel cpulist (`"0-3,8-11,17"`) into ascending cpu ids.
/// Returns `None` on any malformed token; an empty/whitespace list is
/// `Some(vec![])` (cpu-less memory nodes report an empty cpulist).
pub fn parse_cpulist(s: &str) -> Option<Vec<usize>> {
    let s = s.trim();
    let mut cpus = Vec::new();
    if s.is_empty() {
        return Some(cpus);
    }
    for token in s.split(',') {
        let token = token.trim();
        match token.split_once('-') {
            None => cpus.push(token.parse().ok()?),
            Some((lo, hi)) => {
                let (lo, hi) = (lo.trim().parse().ok()?, hi.trim().parse::<usize>().ok()?);
                if hi < lo {
                    return None;
                }
                cpus.extend(lo..=hi);
            }
        }
    }
    cpus.sort_unstable();
    cpus.dedup();
    Some(cpus)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_ranges_and_singletons() {
        assert_eq!(parse_cpulist("0-3,8-11"), Some(vec![0, 1, 2, 3, 8, 9, 10, 11]));
        assert_eq!(parse_cpulist("5"), Some(vec![5]));
        assert_eq!(parse_cpulist(" 0-1 , 4 \n"), Some(vec![0, 1, 4]));
        assert_eq!(parse_cpulist(""), Some(vec![]));
        assert_eq!(parse_cpulist("\n"), Some(vec![]));
        assert_eq!(parse_cpulist("3-1"), None);
        assert_eq!(parse_cpulist("a-b"), None);
        assert_eq!(parse_cpulist("0,,2"), None);
    }

    #[test]
    fn detect_never_panics_and_has_cpus() {
        let t = NumaTopology::detect();
        assert!(t.nnodes() >= 1);
        assert!(t.ncpus() >= 1);
        assert_eq!(t.cpu_order().len(), t.ncpus());
    }

    #[test]
    fn absent_sysfs_degrades_to_single_node() {
        // The satellite degradation test: no sysfs tree at all.
        let t = NumaTopology::from_sysfs_root(Path::new("/nonexistent-sysfs-root-for-sure"));
        assert!(t.is_single_node());
        assert_eq!(t, NumaTopology::single_node());
        // And the degraded order is exactly the historical pinning order.
        let cores = crate::affinity::available_cores();
        assert_eq!(t.cpu_order(), (0..cores).collect::<Vec<_>>());
    }

    #[test]
    fn single_node_sysfs_also_degrades_bit_identically() {
        // A tree with one cpu-bearing node (the common workstation/CI
        // case) must behave exactly like no tree: order = 0..cores.
        let dir = std::env::temp_dir().join("fbmpk-numa-single");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(dir.join("node0")).unwrap();
        std::fs::write(dir.join("node0").join("cpulist"), "0-127\n").unwrap();
        let t = NumaTopology::from_sysfs_root(&dir);
        assert_eq!(t, NumaTopology::single_node());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn two_node_sysfs_yields_node_major_order() {
        let dir = std::env::temp_dir().join("fbmpk-numa-two");
        std::fs::remove_dir_all(&dir).ok();
        for (node, list) in [("node0", "0-3\n"), ("node1", "4-7\n"), ("node9", "")] {
            std::fs::create_dir_all(dir.join(node)).unwrap();
            std::fs::write(dir.join(node).join("cpulist"), list).unwrap();
        }
        // Unrelated entries must be ignored.
        std::fs::create_dir_all(dir.join("possible")).ok();
        let t = NumaTopology::from_sysfs_root(&dir);
        assert_eq!(t.nnodes(), 2, "cpu-less node9 dropped");
        assert_eq!(t.node_cpus(0), &[0, 1, 2, 3]);
        assert_eq!(t.node_cpus(1), &[4, 5, 6, 7]);
        assert_eq!(t.cpu_order(), vec![0, 1, 2, 3, 4, 5, 6, 7]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn interleaved_cpu_ids_pack_by_node() {
        // Real two-socket boxes often interleave: node0 = even, node1 =
        // odd. Node-major order must group them, not zig-zag.
        let t = NumaTopology::from_nodes(vec![vec![0, 2, 4, 6], vec![1, 3, 5, 7]]);
        assert_eq!(t.cpu_order(), vec![0, 2, 4, 6, 1, 3, 5, 7]);
        assert_eq!(t.node_of_worker(0), 0);
        assert_eq!(t.node_of_worker(3), 0);
        assert_eq!(t.node_of_worker(4), 1);
        assert_eq!(t.node_of_worker(7), 1);
        // Oversubscribed workers wrap.
        assert_eq!(t.node_of_worker(8), 0);
        assert_eq!(t.node_of_worker(12), 1);
    }

    #[test]
    #[should_panic(expected = "every node needs a cpu")]
    fn from_nodes_rejects_empty_node() {
        NumaTopology::from_nodes(vec![vec![0], vec![]]);
    }

    #[test]
    fn pages_per_node_is_sane_or_cleanly_absent() {
        // Touched heap memory must either report a plausible placement
        // (page counts close to the allocation size, node ids small) or
        // degrade to None (non-Linux, syscall filtered) — never panic.
        let data = vec![1.0f64; 1 << 16]; // 512 KiB, touched by the write
        if let Some(pn) = slice_pages_per_node(&data) {
            let total: u64 = pn.iter().map(|&(_, c)| c).sum();
            let npages = (data.len() * 8).div_ceil(4096) as u64;
            assert!(total >= npages / 2 && total <= npages + 1, "{total} vs {npages}");
            assert!(pn.iter().all(|&(n, _)| n < 1024));
        }
        assert_eq!(pages_per_node(std::ptr::null(), 0), Some(Vec::new()));
    }
}
