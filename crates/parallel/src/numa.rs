//! NUMA node topology detection and node-aware worker→core ordering.
//!
//! On multi-socket machines the sweeps' bandwidth ceiling is per-node:
//! a worker streaming pages resident on the *other* node pays the
//! interconnect. Two pieces make the runtime node-aware without any
//! libnuma dependency:
//!
//! * **Topology** — parsed from sysfs (`/sys/devices/system/node/
//!   node*/cpulist`), the same interface `numactl --hardware` reads.
//!   Anything unexpected (no sysfs, masked nodes, cpu-less memory
//!   nodes, parse errors) degrades to a single node covering
//!   `available_cores()`, which reproduces today's behavior exactly.
//! * **Node-major cpu order** — [`NumaTopology::cpu_order`] lists cpus
//!   node by node, so pinning worker `t` to `order[t % len]` packs
//!   consecutive workers onto the same node. Combined with contiguous
//!   per-worker ranges in the kernels and first-touch initialization of
//!   shared buffers (each worker faults in its own range), pages land on
//!   the node of the worker that sweeps them. On a single node the
//!   order is `0..cores`, bit-identical to the previous `t % cores`
//!   pinning.

use std::path::Path;

/// Per-node cpu inventory (node ids dense in `0..nnodes`, each with at
/// least one cpu).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NumaTopology {
    nodes: Vec<Vec<usize>>,
}

impl NumaTopology {
    /// Detects the topology from the standard sysfs root. Every failure
    /// mode degrades to [`NumaTopology::single_node`].
    pub fn detect() -> Self {
        Self::from_sysfs_root(Path::new("/sys/devices/system/node"))
    }

    /// Detects from an explicit sysfs-style root (`node<N>/cpulist`
    /// files) — the testable entry behind [`NumaTopology::detect`]. A
    /// missing/empty/unparsable tree, or one that yields fewer than two
    /// cpu-bearing nodes, degrades to [`NumaTopology::single_node`].
    pub fn from_sysfs_root(root: &Path) -> Self {
        Self::try_from_sysfs(root).unwrap_or_else(Self::single_node)
    }

    fn try_from_sysfs(root: &Path) -> Option<Self> {
        let mut nodes: Vec<(usize, Vec<usize>)> = Vec::new();
        for entry in std::fs::read_dir(root).ok()? {
            let entry = entry.ok()?;
            let name = entry.file_name();
            let name = name.to_str()?;
            let Some(id) = name.strip_prefix("node").and_then(|s| s.parse::<usize>().ok()) else {
                continue;
            };
            let text = std::fs::read_to_string(entry.path().join("cpulist")).ok()?;
            let cpus = parse_cpulist(&text)?;
            if !cpus.is_empty() {
                nodes.push((id, cpus));
            }
        }
        // Memory-only nodes were dropped above; fewer than two cpu-bearing
        // nodes means placement cannot matter — degrade.
        if nodes.len() < 2 {
            return None;
        }
        nodes.sort_by_key(|&(id, _)| id);
        Some(NumaTopology { nodes: nodes.into_iter().map(|(_, cpus)| cpus).collect() })
    }

    /// The degradation topology: one node holding `0..available_cores()`
    /// — [`NumaTopology::cpu_order`] then reproduces the historical
    /// `tid % cores` pinning exactly.
    pub fn single_node() -> Self {
        NumaTopology { nodes: vec![(0..crate::affinity::available_cores()).collect()] }
    }

    /// An injected topology for tests (multi-node machines are not
    /// available in CI). Nodes with no cpus are rejected.
    ///
    /// # Panics
    /// Panics when `nodes` is empty or any node has no cpus.
    pub fn from_nodes(nodes: Vec<Vec<usize>>) -> Self {
        assert!(!nodes.is_empty(), "need at least one node");
        assert!(nodes.iter().all(|n| !n.is_empty()), "every node needs a cpu");
        NumaTopology { nodes }
    }

    /// Number of cpu-bearing nodes.
    pub fn nnodes(&self) -> usize {
        self.nodes.len()
    }

    /// Whether placement is moot (one node).
    pub fn is_single_node(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Cpus of node `i`.
    pub fn node_cpus(&self, i: usize) -> &[usize] {
        &self.nodes[i]
    }

    /// Total cpus across all nodes.
    pub fn ncpus(&self) -> usize {
        self.nodes.iter().map(Vec::len).sum()
    }

    /// Node-major cpu order: all of node 0's cpus, then node 1's, … —
    /// pin worker `t` to `order[t % order.len()]` and consecutive
    /// workers pack node-locally, so each worker's contiguous data range
    /// is first-touched (and later streamed) on one node.
    pub fn cpu_order(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.ncpus());
        for node in &self.nodes {
            order.extend_from_slice(node);
        }
        order
    }

    /// The node worker `tid` lands on under node-major pinning (workers
    /// beyond the cpu count wrap).
    pub fn node_of_worker(&self, tid: usize) -> usize {
        let mut idx = tid % self.ncpus().max(1);
        for (n, node) in self.nodes.iter().enumerate() {
            if idx < node.len() {
                return n;
            }
            idx -= node.len();
        }
        0
    }
}

/// Parses a kernel cpulist (`"0-3,8-11,17"`) into ascending cpu ids.
/// Returns `None` on any malformed token; an empty/whitespace list is
/// `Some(vec![])` (cpu-less memory nodes report an empty cpulist).
pub fn parse_cpulist(s: &str) -> Option<Vec<usize>> {
    let s = s.trim();
    let mut cpus = Vec::new();
    if s.is_empty() {
        return Some(cpus);
    }
    for token in s.split(',') {
        let token = token.trim();
        match token.split_once('-') {
            None => cpus.push(token.parse().ok()?),
            Some((lo, hi)) => {
                let (lo, hi) = (lo.trim().parse().ok()?, hi.trim().parse::<usize>().ok()?);
                if hi < lo {
                    return None;
                }
                cpus.extend(lo..=hi);
            }
        }
    }
    cpus.sort_unstable();
    cpus.dedup();
    Some(cpus)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_ranges_and_singletons() {
        assert_eq!(parse_cpulist("0-3,8-11"), Some(vec![0, 1, 2, 3, 8, 9, 10, 11]));
        assert_eq!(parse_cpulist("5"), Some(vec![5]));
        assert_eq!(parse_cpulist(" 0-1 , 4 \n"), Some(vec![0, 1, 4]));
        assert_eq!(parse_cpulist(""), Some(vec![]));
        assert_eq!(parse_cpulist("\n"), Some(vec![]));
        assert_eq!(parse_cpulist("3-1"), None);
        assert_eq!(parse_cpulist("a-b"), None);
        assert_eq!(parse_cpulist("0,,2"), None);
    }

    #[test]
    fn detect_never_panics_and_has_cpus() {
        let t = NumaTopology::detect();
        assert!(t.nnodes() >= 1);
        assert!(t.ncpus() >= 1);
        assert_eq!(t.cpu_order().len(), t.ncpus());
    }

    #[test]
    fn absent_sysfs_degrades_to_single_node() {
        // The satellite degradation test: no sysfs tree at all.
        let t = NumaTopology::from_sysfs_root(Path::new("/nonexistent-sysfs-root-for-sure"));
        assert!(t.is_single_node());
        assert_eq!(t, NumaTopology::single_node());
        // And the degraded order is exactly the historical pinning order.
        let cores = crate::affinity::available_cores();
        assert_eq!(t.cpu_order(), (0..cores).collect::<Vec<_>>());
    }

    #[test]
    fn single_node_sysfs_also_degrades_bit_identically() {
        // A tree with one cpu-bearing node (the common workstation/CI
        // case) must behave exactly like no tree: order = 0..cores.
        let dir = std::env::temp_dir().join("fbmpk-numa-single");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(dir.join("node0")).unwrap();
        std::fs::write(dir.join("node0").join("cpulist"), "0-127\n").unwrap();
        let t = NumaTopology::from_sysfs_root(&dir);
        assert_eq!(t, NumaTopology::single_node());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn two_node_sysfs_yields_node_major_order() {
        let dir = std::env::temp_dir().join("fbmpk-numa-two");
        std::fs::remove_dir_all(&dir).ok();
        for (node, list) in [("node0", "0-3\n"), ("node1", "4-7\n"), ("node9", "")] {
            std::fs::create_dir_all(dir.join(node)).unwrap();
            std::fs::write(dir.join(node).join("cpulist"), list).unwrap();
        }
        // Unrelated entries must be ignored.
        std::fs::create_dir_all(dir.join("possible")).ok();
        let t = NumaTopology::from_sysfs_root(&dir);
        assert_eq!(t.nnodes(), 2, "cpu-less node9 dropped");
        assert_eq!(t.node_cpus(0), &[0, 1, 2, 3]);
        assert_eq!(t.node_cpus(1), &[4, 5, 6, 7]);
        assert_eq!(t.cpu_order(), vec![0, 1, 2, 3, 4, 5, 6, 7]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn interleaved_cpu_ids_pack_by_node() {
        // Real two-socket boxes often interleave: node0 = even, node1 =
        // odd. Node-major order must group them, not zig-zag.
        let t = NumaTopology::from_nodes(vec![vec![0, 2, 4, 6], vec![1, 3, 5, 7]]);
        assert_eq!(t.cpu_order(), vec![0, 2, 4, 6, 1, 3, 5, 7]);
        assert_eq!(t.node_of_worker(0), 0);
        assert_eq!(t.node_of_worker(3), 0);
        assert_eq!(t.node_of_worker(4), 1);
        assert_eq!(t.node_of_worker(7), 1);
        // Oversubscribed workers wrap.
        assert_eq!(t.node_of_worker(8), 0);
        assert_eq!(t.node_of_worker(12), 1);
    }

    #[test]
    #[should_panic(expected = "every node needs a cpu")]
    fn from_nodes_rejects_empty_node() {
        NumaTopology::from_nodes(vec![vec![0], vec![]]);
    }
}
