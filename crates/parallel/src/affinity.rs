//! Best-effort worker→core affinity pinning.
//!
//! The colored sweeps are bandwidth-bound and their point-to-point mode
//! relies on producer→consumer cache-line handoff; a worker migrating
//! between cores mid-sweep invalidates both. Pinning worker `t` to core
//! `t mod cores` keeps the merge-path partition's working sets resident.
//!
//! No libc dependency is available, so on Linux this issues the
//! `sched_setaffinity` syscall directly; everywhere else it is a no-op
//! that reports failure. Pinning is always advisory — callers must work
//! correctly when it fails.

/// Number of logical cores visible to this process (at least 1).
pub fn available_cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Pins the calling thread to `core` (modulo the kernel cpu-set width).
/// Returns `true` when the kernel accepted the mask.
#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
pub fn pin_current_thread(core: usize) -> bool {
    // A fixed 1024-bit cpu set (glibc's cpu_set_t width) as 16 u64 words.
    let mut mask = [0u64; 16];
    let core = core % (mask.len() * 64);
    mask[core / 64] |= 1u64 << (core % 64);
    let ret: isize;
    #[cfg(target_arch = "x86_64")]
    // SAFETY: sched_setaffinity(pid = 0 → current thread, len, mask) reads
    // `len` bytes from `mask`, which outlives the call; no memory is
    // written by the kernel for this syscall.
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") 203isize => ret, // __NR_sched_setaffinity
            in("rdi") 0usize,
            in("rsi") std::mem::size_of_val(&mask),
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    #[cfg(target_arch = "aarch64")]
    // SAFETY: as above; aarch64 passes the syscall number in x8.
    unsafe {
        std::arch::asm!(
            "svc #0",
            in("x8") 122usize, // __NR_sched_setaffinity
            inlateout("x0") 0usize => ret,
            in("x1") std::mem::size_of_val(&mask),
            in("x2") mask.as_ptr(),
            options(nostack),
        );
    }
    ret == 0
}

/// Fallback for platforms without a raw-syscall implementation.
#[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
pub fn pin_current_thread(_core: usize) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_least_one_core() {
        assert!(available_cores() >= 1);
    }

    #[test]
    fn pinning_is_harmless() {
        // Each #[test] runs on its own thread, so pinning here does not
        // leak into other tests. On Linux the raw syscall must succeed;
        // elsewhere the stub reports failure — both are acceptable, the
        // call just must not crash or wedge the thread.
        let ok = pin_current_thread(0);
        if cfg!(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))) {
            assert!(ok, "sched_setaffinity(0, {{cpu0}}) failed");
        } else {
            assert!(!ok);
        }
        // The thread still runs after pinning.
        let s: usize = (0..100).sum();
        assert_eq!(s, 4950);
        // Out-of-range cores wrap instead of faulting.
        let _ = pin_current_thread(usize::MAX);
    }
}
