//! Contiguous weight-balanced partitioning.
//!
//! The paper's schedule assigns each thread a contiguous run of blocks per
//! color, sized "in advance" (Algorithm 2, lines 7/19). Balancing by nonzero
//! count rather than row count matters for skewed inputs (the R-MAT class):
//! a thread with a few heavy rows would otherwise serialize each color.

use std::ops::Range;

/// Splits `0..n` into `parts` contiguous ranges of near-equal length.
/// Trailing ranges may be empty when `parts > n`.
pub fn chunk_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    assert!(parts > 0, "need at least one part");
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Splits items `0..weights.len()` into `parts` contiguous ranges whose
/// total weights are approximately equal (greedy prefix cut at the ideal
/// per-part quota). Every item lands in exactly one range; ranges may be
/// empty.
pub fn balance_by_weight(weights: &[usize], parts: usize) -> Vec<Range<usize>> {
    assert!(parts > 0, "need at least one part");
    let total: usize = weights.iter().sum();
    let n = weights.len();
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    let mut acc = 0usize;
    let mut assigned = 0usize;
    for p in 0..parts {
        let remaining_parts = parts - p;
        let quota = (total - assigned).div_ceil(remaining_parts);
        let mut end = start;
        let mut w = 0usize;
        // Guarantee progress: each non-final part takes at least one item
        // while enough items remain for the rest.
        while end < n && (w < quota || end - start == 0) {
            // Leave at least one item for each later part when possible.
            if n - end < remaining_parts && end > start {
                break;
            }
            w += weights[end];
            end += 1;
            if w >= quota {
                break;
            }
        }
        if p == parts - 1 {
            end = n;
            w = total - assigned;
        }
        out.push(start..end);
        start = end;
        assigned += w;
        acc += w;
    }
    debug_assert_eq!(acc, total);
    debug_assert_eq!(start, n);
    out
}

/// Splits items into `parts` contiguous ranges by 2D merge-path search
/// (the partitioning scheme of merge-based SpMV): conceptually merge the
/// item boundary list with the per-unit work stream and cut the merged
/// sequence at `parts` equally spaced diagonals. Each part then carries a
/// near-equal share of `items + total_weight` combined work, so heavy
/// items cannot serialize a part the way a row-count split can, and —
/// unlike a greedy prefix cut — no part can overshoot its quota by more
/// than the single item straddling its diagonal.
///
/// `prefix` is the cumulative weight array of length `n + 1` with
/// `prefix[0] == 0` (for CSR partitioning this is exactly `row_ptr`).
/// Returned ranges are contiguous, disjoint, cover `0..n`, and are
/// non-decreasing; ranges may be empty when `parts` exceeds the work.
///
/// # Panics
/// Panics when `parts == 0`, `prefix` is empty, or `prefix` decreases.
pub fn merge_path_partition(prefix: &[usize], parts: usize) -> Vec<Range<usize>> {
    assert!(parts > 0, "need at least one part");
    assert!(!prefix.is_empty(), "prefix must have at least one entry");
    debug_assert!(prefix.windows(2).all(|w| w[0] <= w[1]), "prefix must be non-decreasing");
    let n = prefix.len() - 1;
    let total = prefix[n] - prefix[0];
    let merge_len = n + total;
    let mut cuts = Vec::with_capacity(parts + 1);
    cuts.push(0usize);
    for k in 1..parts {
        // Ideal diagonal for cut k, in merged-sequence coordinates.
        let d = (k * merge_len) / parts;
        // Largest r with (prefix[r] - prefix[0]) + r <= d. The key
        // f(r) = prefix[r] - prefix[0] + r is strictly increasing (each
        // step adds weight + 1), so binary search is exact.
        let (mut lo, mut hi) = (cuts[k - 1], n);
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            if prefix[mid] - prefix[0] + mid <= d {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        cuts.push(lo);
    }
    cuts.push(n);
    cuts.windows(2).map(|w| w[0]..w[1]).collect()
}

/// Drop-in replacement for [`balance_by_weight`] that cuts by merge-path
/// diagonals instead of greedy quota filling. Implicitly balances
/// `weight + 1` per item (item traversal itself costs work), matching the
/// `nnz + 1` row-weight convention used by the schedulers.
pub fn merge_balance_by_weight(weights: &[usize], parts: usize) -> Vec<Range<usize>> {
    let mut prefix = Vec::with_capacity(weights.len() + 1);
    let mut acc = 0usize;
    prefix.push(0);
    for &w in weights {
        acc += w;
        prefix.push(acc);
    }
    merge_path_partition(&prefix, parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_exactly() {
        for (n, p) in [(10, 3), (7, 7), (3, 5), (0, 2), (100, 1)] {
            let r = chunk_ranges(n, p);
            assert_eq!(r.len(), p);
            assert_eq!(r.first().unwrap().start, 0);
            assert_eq!(r.last().unwrap().end, n);
            for w in r.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
            // Sizes differ by at most 1.
            let lens: Vec<usize> = r.iter().map(|r| r.len()).collect();
            let (mn, mx) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
            assert!(mx - mn <= 1);
        }
    }

    #[test]
    fn balance_covers_and_balances_uniform() {
        let w = vec![1usize; 100];
        let r = balance_by_weight(&w, 4);
        assert_eq!(r.len(), 4);
        assert_eq!(r[3].end, 100);
        for part in &r {
            assert!(part.len() >= 24 && part.len() <= 26, "{part:?}");
        }
    }

    #[test]
    fn balance_handles_skew() {
        // One huge item followed by many small ones.
        let mut w = vec![1usize; 99];
        w.insert(0, 1000);
        let r = balance_by_weight(&w, 4);
        // The heavy item sits alone in part 0.
        assert_eq!(r[0], 0..1);
        assert_eq!(r.last().unwrap().end, 100);
        // All parts contiguous and disjoint.
        for pair in r.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
    }

    #[test]
    fn balance_more_parts_than_items() {
        let w = vec![5usize, 5];
        let r = balance_by_weight(&w, 4);
        assert_eq!(r.len(), 4);
        assert_eq!(r.iter().map(|r| r.len()).sum::<usize>(), 2);
        assert_eq!(r.last().unwrap().end, 2);
    }

    #[test]
    fn balance_empty_input() {
        let r = balance_by_weight(&[], 3);
        assert_eq!(r.len(), 3);
        assert!(r.iter().all(|r| r.is_empty()));
    }

    #[test]
    fn balance_single_part_takes_all() {
        let w = vec![3usize, 1, 4, 1, 5];
        let r = balance_by_weight(&w, 1);
        assert_eq!(r, vec![0..5]);
    }

    /// Checks the structural invariants shared by all partitions: `parts`
    /// ranges, contiguous, covering `0..n`.
    fn assert_covers(ranges: &[Range<usize>], n: usize, parts: usize) {
        assert_eq!(ranges.len(), parts);
        assert_eq!(ranges.first().unwrap().start, 0);
        assert_eq!(ranges.last().unwrap().end, n);
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn merge_path_covers_uniform() {
        let w = vec![1usize; 100];
        let r = merge_balance_by_weight(&w, 4);
        assert_covers(&r, 100, 4);
        for part in &r {
            assert_eq!(part.len(), 25);
        }
    }

    #[test]
    fn merge_path_bounds_overshoot_by_one_item() {
        // Every cut lands within one item of its ideal diagonal.
        let weights = vec![1000usize, 1, 1, 1, 500, 1, 1, 1, 1, 1];
        let parts = 4;
        let r = merge_balance_by_weight(&weights, parts);
        assert_covers(&r, weights.len(), parts);
        let mut prefix = vec![0usize];
        for &w in &weights {
            prefix.push(prefix.last().unwrap() + w);
        }
        let merge_len = weights.len() + prefix[weights.len()];
        for (k, part) in r.iter().enumerate().take(parts - 1) {
            let d = ((k + 1) * merge_len) / parts;
            let at_cut = prefix[part.end] + part.end;
            assert!(at_cut <= d, "cut {k} overshoots its diagonal");
            // The next item must cross the diagonal — the cut is maximal.
            let next =
                prefix[(part.end + 1).min(weights.len())] + (part.end + 1).min(weights.len());
            assert!(part.end == weights.len() || next > d, "cut {k} not maximal");
        }
    }

    #[test]
    fn merge_path_heavy_head_isolated() {
        // Like balance_handles_skew: one huge item, many small.
        let mut w = vec![1usize; 99];
        w.insert(0, 1000);
        let r = merge_balance_by_weight(&w, 4);
        assert_covers(&r, 100, 4);
        // The heavy item's part must not also absorb a large tail: it ends
        // within one item of the first diagonal.
        assert!(r[0].len() <= 2, "{:?}", r[0]);
    }

    #[test]
    fn merge_path_more_parts_than_items() {
        let r = merge_balance_by_weight(&[5, 5], 4);
        assert_covers(&r, 2, 4);
        assert_eq!(r.iter().map(|r| r.len()).sum::<usize>(), 2);
    }

    #[test]
    fn merge_path_empty_input() {
        let r = merge_balance_by_weight(&[], 3);
        assert_covers(&r, 0, 3);
        assert!(r.iter().all(|r| r.is_empty()));
    }

    #[test]
    fn merge_path_zero_weights() {
        // All-zero weights degrade to an even row split.
        let r = merge_balance_by_weight(&[0; 12], 3);
        assert_covers(&r, 12, 3);
        for part in &r {
            assert_eq!(part.len(), 4);
        }
    }

    #[test]
    fn merge_path_accepts_row_ptr_directly() {
        // A CSR row_ptr array is already a prefix of row nnz counts.
        let row_ptr = vec![0usize, 3, 3, 10, 12];
        let r = merge_path_partition(&row_ptr, 2);
        assert_covers(&r, 4, 2);
    }
}
