//! Contiguous weight-balanced partitioning.
//!
//! The paper's schedule assigns each thread a contiguous run of blocks per
//! color, sized "in advance" (Algorithm 2, lines 7/19). Balancing by nonzero
//! count rather than row count matters for skewed inputs (the R-MAT class):
//! a thread with a few heavy rows would otherwise serialize each color.

use std::ops::Range;

/// Splits `0..n` into `parts` contiguous ranges of near-equal length.
/// Trailing ranges may be empty when `parts > n`.
pub fn chunk_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    assert!(parts > 0, "need at least one part");
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Splits items `0..weights.len()` into `parts` contiguous ranges whose
/// total weights are approximately equal (greedy prefix cut at the ideal
/// per-part quota). Every item lands in exactly one range; ranges may be
/// empty.
pub fn balance_by_weight(weights: &[usize], parts: usize) -> Vec<Range<usize>> {
    assert!(parts > 0, "need at least one part");
    let total: usize = weights.iter().sum();
    let n = weights.len();
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    let mut acc = 0usize;
    let mut assigned = 0usize;
    for p in 0..parts {
        let remaining_parts = parts - p;
        let quota = (total - assigned).div_ceil(remaining_parts);
        let mut end = start;
        let mut w = 0usize;
        // Guarantee progress: each non-final part takes at least one item
        // while enough items remain for the rest.
        while end < n && (w < quota || end - start == 0) {
            // Leave at least one item for each later part when possible.
            if n - end < remaining_parts && end > start {
                break;
            }
            w += weights[end];
            end += 1;
            if w >= quota {
                break;
            }
        }
        if p == parts - 1 {
            end = n;
            w = total - assigned;
        }
        out.push(start..end);
        start = end;
        assigned += w;
        acc += w;
    }
    debug_assert_eq!(acc, total);
    debug_assert_eq!(start, n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_exactly() {
        for (n, p) in [(10, 3), (7, 7), (3, 5), (0, 2), (100, 1)] {
            let r = chunk_ranges(n, p);
            assert_eq!(r.len(), p);
            assert_eq!(r.first().unwrap().start, 0);
            assert_eq!(r.last().unwrap().end, n);
            for w in r.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
            // Sizes differ by at most 1.
            let lens: Vec<usize> = r.iter().map(|r| r.len()).collect();
            let (mn, mx) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
            assert!(mx - mn <= 1);
        }
    }

    #[test]
    fn balance_covers_and_balances_uniform() {
        let w = vec![1usize; 100];
        let r = balance_by_weight(&w, 4);
        assert_eq!(r.len(), 4);
        assert_eq!(r[3].end, 100);
        for part in &r {
            assert!(part.len() >= 24 && part.len() <= 26, "{part:?}");
        }
    }

    #[test]
    fn balance_handles_skew() {
        // One huge item followed by many small ones.
        let mut w = vec![1usize; 99];
        w.insert(0, 1000);
        let r = balance_by_weight(&w, 4);
        // The heavy item sits alone in part 0.
        assert_eq!(r[0], 0..1);
        assert_eq!(r.last().unwrap().end, 100);
        // All parts contiguous and disjoint.
        for pair in r.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
    }

    #[test]
    fn balance_more_parts_than_items() {
        let w = vec![5usize, 5];
        let r = balance_by_weight(&w, 4);
        assert_eq!(r.len(), 4);
        assert_eq!(r.iter().map(|r| r.len()).sum::<usize>(), 2);
        assert_eq!(r.last().unwrap().end, 2);
    }

    #[test]
    fn balance_empty_input() {
        let r = balance_by_weight(&[], 3);
        assert_eq!(r.len(), 3);
        assert!(r.iter().all(|r| r.is_empty()));
    }

    #[test]
    fn balance_single_part_takes_all() {
        let w = vec![3usize, 1, 4, 1, 5];
        let r = balance_by_weight(&w, 1);
        assert_eq!(r, vec![0..5]);
    }
}
