//! Shared mutable slices with externally-proven disjointness.
//!
//! The colored sweeps write `xy[2r]`, `xy[2r+1]` and `tmpvec[r]` for rows
//! `r` in the executing thread's blocks. Rows partition across threads, and
//! the ABMC coloring guarantees no thread *reads* a location another thread
//! of the same color *writes* (that is exactly the distance-1 property the
//! reorder crate validates). Rust cannot see that proof, so the kernels go
//! through [`SharedSlice`], which centralizes the unsafety behind one
//! documented contract instead of scattering raw pointers through kernel
//! code.

use std::cell::UnsafeCell;

/// A slice that may be written concurrently from multiple threads under an
/// external disjointness guarantee.
///
/// # Safety contract
///
/// For the lifetime of the `SharedSlice`:
///
/// * two threads must never write the same index without synchronization,
/// * a thread must not read an index that another thread may be writing in
///   the same synchronization phase (phases are separated by barriers).
///
/// The FBMPK kernels satisfy this via row-partitioning (writes) and valid
/// ABMC colorings (reads); the `fbmpk-reorder` tests verify the coloring
/// property itself.
pub struct SharedSlice<'a, T> {
    data: &'a [UnsafeCell<T>],
}

// SAFETY: all access goes through `get`/`set`, whose callers promise the
// disjointness contract above.
unsafe impl<T: Send + Sync> Sync for SharedSlice<'_, T> {}
unsafe impl<T: Send + Sync> Send for SharedSlice<'_, T> {}

impl<'a, T: Copy> SharedSlice<'a, T> {
    /// Wraps an exclusive slice for shared phase-disciplined access.
    pub fn new(slice: &'a mut [T]) -> Self {
        // SAFETY: `&mut [T]` -> `&[UnsafeCell<T>]` is sound: UnsafeCell<T>
        // has the same layout as T, and we hold the unique borrow.
        let data = unsafe {
            std::slice::from_raw_parts(slice.as_mut_ptr().cast::<UnsafeCell<T>>(), slice.len())
        };
        SharedSlice { data }
    }

    /// Length of the underlying slice.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the underlying slice is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reads element `i`.
    ///
    /// # Safety
    /// No other thread may be writing index `i` in the current phase.
    #[inline]
    pub unsafe fn get(&self, i: usize) -> T {
        debug_assert!(i < self.data.len());
        unsafe { *self.data[i].get() }
    }

    /// Writes element `i`.
    ///
    /// # Safety
    /// No other thread may be reading or writing index `i` in the current
    /// phase.
    #[inline]
    pub unsafe fn set(&self, i: usize, v: T) {
        debug_assert!(i < self.data.len());
        unsafe { *self.data[i].get() = v }
    }

    /// Base pointer of the underlying storage. Obtaining the pointer is
    /// safe; every read or write through it must follow the same
    /// phase-disciplined contract as [`SharedSlice::get`] /
    /// [`SharedSlice::set`]. Used by the SIMD sweep kernels, which process
    /// a whole row per call and therefore cannot go through the
    /// per-element accessors.
    #[inline]
    pub fn base_ptr(&self) -> *const T {
        self.data.as_ptr() as *const T
    }

    /// Returns an exclusive sub-slice for `range`, so a thread can hand its
    /// contiguous partition to an ordinary slice-based kernel instead of
    /// writing element-by-element through [`SharedSlice::set`].
    ///
    /// # Safety
    /// No other thread may read or write any index in `range` for as long
    /// as the returned slice is alive. Callers typically guarantee this by
    /// deriving `range` from a disjoint partition.
    ///
    /// # Panics
    /// Panics when `range` exceeds the slice bounds.
    #[allow(clippy::mut_from_ref)] // the disjointness contract is the point of this type
    #[inline]
    pub unsafe fn slice_mut(&self, range: std::ops::Range<usize>) -> &mut [T] {
        assert!(range.start <= range.end && range.end <= self.data.len(), "range out of bounds");
        // SAFETY: UnsafeCell<T> has T's layout; exclusivity over `range` is
        // the caller's contract.
        unsafe {
            std::slice::from_raw_parts_mut(
                self.data.as_ptr().add(range.start) as *mut T,
                range.len(),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ThreadPool;

    #[test]
    fn disjoint_parallel_writes() {
        let mut v = vec![0usize; 1000];
        {
            let s = SharedSlice::new(&mut v);
            let pool = ThreadPool::new(4);
            let ranges = crate::partition::chunk_ranges(1000, 4);
            pool.run(&|tid| {
                for i in ranges[tid].clone() {
                    // SAFETY: ranges are disjoint per thread.
                    unsafe { s.set(i, i * 2) };
                }
            });
        }
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i * 2);
        }
    }

    #[test]
    fn phase_separated_read_after_write() {
        let mut v = vec![0u64; 64];
        {
            let s = SharedSlice::new(&mut v);
            let pool = ThreadPool::new(2);
            let ranges = crate::partition::chunk_ranges(64, 2);
            let sums = parking_lot::Mutex::new(vec![0u64; 2]);
            pool.run(&|tid| {
                for i in ranges[tid].clone() {
                    unsafe { s.set(i, 1) };
                }
                pool.barrier().wait();
                // After the barrier everyone may read everything.
                let mut sum = 0;
                for i in 0..64 {
                    sum += unsafe { s.get(i) };
                }
                sums.lock()[tid] = sum;
            });
            assert_eq!(sums.into_inner(), vec![64, 64]);
        }
    }

    #[test]
    fn disjoint_subslice_writes() {
        let mut v = vec![0usize; 100];
        {
            let s = SharedSlice::new(&mut v);
            let pool = ThreadPool::new(4);
            let ranges = crate::partition::chunk_ranges(100, 4);
            pool.run(&|tid| {
                let r = ranges[tid].clone();
                // SAFETY: ranges are disjoint per thread.
                let sub = unsafe { s.slice_mut(r.clone()) };
                for (off, x) in sub.iter_mut().enumerate() {
                    *x = (r.start + off) * 3;
                }
            });
        }
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i * 3);
        }
    }

    #[test]
    fn len_and_empty() {
        let mut v = vec![1.0f64; 3];
        let s = SharedSlice::new(&mut v);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        let mut e: Vec<f64> = vec![];
        let s2 = SharedSlice::new(&mut e);
        assert!(s2.is_empty());
    }
}
