//! A reusable sense-reversing spin barrier.
//!
//! The colored sweeps hit a barrier once per color per power iteration —
//! potentially thousands of times per kernel call — so the barrier must be
//! cheap when threads arrive close together. A sense-reversing barrier
//! (see Mara Bos, *Rust Atomics and Locks*, ch. 9 patterns) needs one atomic
//! decrement per arrival and never reallocates; waiters use the shared
//! bounded exponential [`Backoff`] — growing spin bursts first, scheduler
//! yields after — so oversubscribed hosts (more threads than cores) still
//! make progress without burning whole quanta.

use crate::poison::{Poison, PoisonUnwind};
use crate::sync::Backoff;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// A reusable barrier for a fixed set of `n` participants.
pub struct SenseBarrier {
    n: usize,
    remaining: AtomicUsize,
    sense: AtomicBool,
    /// When present, spinners poll this fault latch: a peer that panicked
    /// (or stalled out) will never arrive, so waiters unwind with
    /// [`PoisonUnwind`] instead of spinning forever.
    poison: Option<Arc<Poison>>,
}

impl SenseBarrier {
    /// Creates a barrier for `n` participants.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        Self::with_poison(n, None)
    }

    /// Creates a barrier whose waiters additionally observe `poison`
    /// (see [`SenseBarrier::wait`] for the unwind contract).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn with_poison(n: usize, poison: Option<Arc<Poison>>) -> Self {
        assert!(n > 0, "barrier needs at least one participant");
        SenseBarrier { n, remaining: AtomicUsize::new(n), sense: AtomicBool::new(false), poison }
    }

    /// Number of participants.
    pub fn participants(&self) -> usize {
        self.n
    }

    /// Restores `remaining` to `n` after a faulted phase.
    ///
    /// Only sound once every participant has stopped touching the barrier
    /// (the pool calls this after the parallel region has fully drained).
    /// The sense word is deliberately left alone: a phase's sense only
    /// flips when all `n` arrive, so after a fault it still matches what
    /// the next phase's arrivers will negate against.
    pub fn reset(&self) {
        self.remaining.store(self.n, Ordering::Relaxed);
    }

    /// Blocks until all `n` participants have called `wait` for the current
    /// phase. Returns `true` for exactly one caller per phase (the last
    /// arriver), mirroring `std::sync::Barrier`'s leader flag.
    ///
    /// Each participant must call `wait` exactly once per phase; the barrier
    /// is immediately reusable for the next phase.
    ///
    /// When the barrier was built with a [`Poison`] latch and the latch is
    /// set while waiting, the wait unwinds with [`PoisonUnwind`] — a peer
    /// has faulted and this phase can never complete. The pool's
    /// `catch_unwind` absorbs the sentinel.
    pub fn wait(&self) -> bool {
        self.wait_counted().0
    }

    /// [`SenseBarrier::wait`], additionally reporting how many
    /// [`Backoff::snooze`] calls the wait spent (0 for the last arriver
    /// and for waiters released on their first check). Profiling uses the
    /// count to distinguish "arrived together" from "spun a long time"
    /// without adding clock reads to the uninstrumented path.
    #[inline]
    pub fn wait_counted(&self) -> (bool, u32) {
        let my_sense = !self.sense.load(Ordering::Relaxed);
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last arriver: reset the counter, then flip the sense to
            // release the spinners.
            self.remaining.store(self.n, Ordering::Relaxed);
            self.sense.store(my_sense, Ordering::Release);
            (true, 0)
        } else {
            // Bounded exponential backoff: cheap when the peers arrive
            // within the spin budget, scheduler-friendly when a straggler
            // is descheduled (e.g. 64 logical threads on 1 core).
            let mut backoff = Backoff::new();
            let mut snoozes = 0u32;
            while self.sense.load(Ordering::Acquire) != my_sense {
                if let Some(p) = &self.poison {
                    if p.is_set() {
                        std::panic::resume_unwind(Box::new(PoisonUnwind));
                    }
                }
                backoff.snooze();
                snoozes = snoozes.saturating_add(1);
            }
            (false, snoozes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn single_participant_never_blocks() {
        let b = SenseBarrier::new(1);
        for _ in 0..100 {
            assert!(b.wait());
        }
        // The sole participant is always the leader and never snoozes.
        assert_eq!(b.wait_counted(), (true, 0));
    }

    #[test]
    fn synchronizes_phases() {
        // Each thread increments a per-phase counter before the barrier and
        // asserts after the barrier that everyone's increment is visible.
        const T: usize = 4;
        const PHASES: usize = 50;
        let barrier = Arc::new(SenseBarrier::new(T));
        let counters: Arc<Vec<AtomicU64>> =
            Arc::new((0..PHASES).map(|_| AtomicU64::new(0)).collect());
        let handles: Vec<_> = (0..T)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let counters = Arc::clone(&counters);
                std::thread::spawn(move || {
                    for ph in 0..PHASES {
                        counters[ph].fetch_add(1, Ordering::Relaxed);
                        barrier.wait();
                        assert_eq!(counters[ph].load(Ordering::Relaxed), T as u64);
                        barrier.wait();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn exactly_one_leader_per_phase() {
        const T: usize = 3;
        const PHASES: usize = 20;
        let barrier = Arc::new(SenseBarrier::new(T));
        let leaders = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..T)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let leaders = Arc::clone(&leaders);
                std::thread::spawn(move || {
                    for _ in 0..PHASES {
                        if barrier.wait() {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(leaders.load(Ordering::Relaxed), PHASES as u64);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_participants_panics() {
        SenseBarrier::new(0);
    }

    #[test]
    fn poisoned_wait_unwinds_and_reset_restores_service() {
        use crate::poison::{FaultCause, Poison, PoisonUnwind, WorkerFault};
        let poison = Arc::new(Poison::new());
        let barrier = Arc::new(SenseBarrier::with_poison(2, Some(Arc::clone(&poison))));
        let b2 = Arc::clone(&barrier);
        let h = std::thread::spawn(move || {
            // The peer never arrives; only the poison latch can release us.
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                b2.wait();
            }))
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        poison.publish(WorkerFault {
            thread: 1,
            color: None,
            block: None,
            cause: FaultCause::Panic { payload: "peer died".into() },
        });
        let payload = h.join().unwrap().expect_err("wait must unwind on poison");
        assert!(payload.downcast_ref::<PoisonUnwind>().is_some());
        // After the fault is taken and the barrier reset, a full phase
        // completes normally again.
        assert!(poison.take().is_some());
        barrier.reset();
        let b2 = Arc::clone(&barrier);
        let h = std::thread::spawn(move || b2.wait());
        barrier.wait();
        h.join().unwrap();
    }

    #[test]
    fn oversubscribed_backoff_still_synchronizes() {
        // Far more participants than this host has cores: every phase
        // forces most waiters through the backoff's yield regime. The
        // per-phase counter check fails if any waiter is released early
        // or never released.
        const T: usize = 16;
        const PHASES: usize = 200;
        let barrier = Arc::new(SenseBarrier::new(T));
        let count = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..T)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let count = Arc::clone(&count);
                std::thread::spawn(move || {
                    for ph in 0..PHASES as u64 {
                        count.fetch_add(1, Ordering::Relaxed);
                        barrier.wait();
                        let c = count.load(Ordering::Relaxed);
                        assert!(c >= (ph + 1) * T as u64, "phase {ph}: count {c}");
                        barrier.wait();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(count.load(Ordering::Relaxed), (T * PHASES) as u64);
    }
}
