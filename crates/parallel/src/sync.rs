//! Point-to-point synchronization primitives for barrier-free sweeps.
//!
//! The colored sweeps' baseline synchronization is one pool-wide barrier
//! per color, which charges every thread for the slowest thread of every
//! color even though a block only depends on the handful of predecessor
//! blocks its rows actually reference (Alappat et al., arXiv:2205.01598).
//! This module provides the two pieces a dependency-driven runtime needs:
//!
//! * [`BlockFlags`] — a cache-line-padded table of per-block epoch
//!   counters. A thread publishes "block `b` is done for epoch `e`" with a
//!   release store; a consumer spins with acquire loads until its
//!   predecessors reach the epoch it needs. The release/acquire pair is
//!   what makes the predecessor's writes to the iterate vectors visible.
//! * [`Backoff`] — a bounded exponential spin-then-yield waiter shared by
//!   the flag waits and [`crate::SenseBarrier`], so oversubscribed hosts
//!   (more threads than cores) degrade to scheduler yields instead of
//!   burning a full quantum spinning.

use crate::poison::{FaultCause, Poison, PoisonUnwind, ProgressTable, WorkerFault};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Bounded exponential backoff: spin in growing bursts, then yield.
///
/// The first [`Backoff::snooze`] executes one `spin_loop` hint, the next
/// two, then four, … up to `2^SPIN_LIMIT`; every snooze after that yields
/// to the OS scheduler. Waits that resolve in nanoseconds never leave
/// user space; waits that lose the race to a descheduled predecessor stop
/// thrashing the core the predecessor needs.
#[derive(Debug, Default)]
pub struct Backoff {
    step: u32,
}

impl Backoff {
    /// Snoozes past this step yield to the scheduler instead of spinning.
    pub const SPIN_LIMIT: u32 = 6;

    /// A fresh waiter (starts in the spinning regime).
    pub fn new() -> Self {
        Backoff { step: 0 }
    }

    /// Rearms the waiter for a new wait loop.
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Waits a little longer than last time: `2^step` spin hints while
    /// `step <= SPIN_LIMIT`, a `yield_now` afterwards.
    pub fn snooze(&mut self) {
        if self.step <= Self::SPIN_LIMIT {
            for _ in 0..(1u32 << self.step) {
                std::hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
        self.step = self.step.saturating_add(1);
    }

    /// `true` once the waiter has exhausted its spin budget and fallen
    /// back to yielding.
    pub fn is_yielding(&self) -> bool {
        self.step > Self::SPIN_LIMIT
    }
}

/// One flag per cache line: neighbours in the table must not invalidate
/// each other when different threads mark adjacent blocks.
#[repr(align(64))]
#[derive(Debug)]
struct Slot(AtomicU64);

/// Fault-observation state a [`BlockFlags`] table can carry: the pool's
/// poison latch (peers unwind instead of spinning behind a dead producer),
/// the per-thread progress table (feeds the stall dump), and the watchdog
/// deadline. All checks live on the wait *slow path* only — an
/// already-satisfied flag still costs exactly one acquire load.
#[derive(Debug, Clone)]
pub struct WaitRuntime {
    poison: Arc<Poison>,
    progress: Arc<ProgressTable>,
    /// Milliseconds a wait may sit in the yielding regime before it is
    /// declared a stall. `0` disables the deadline (poison checks only).
    /// Atomic so a serving layer can re-arm the deadline per request
    /// between invocations; waits read it once when they enter the slow
    /// path, so an in-flight wait keeps the deadline it started with.
    deadline_ms: Arc<AtomicU64>,
}

/// A per-block atomic epoch table.
///
/// Epoch `0` means "not yet produced this kernel invocation"; sweeps mark
/// a block with the 1-based epoch of the sweep that finished it. Because
/// every block is owned by one thread for the whole invocation and sweeps
/// run in epoch order on that thread, `flag[b] >= e` also implies every
/// earlier epoch of `b` is complete — one counter subsumes per-sweep
/// ready bits.
#[derive(Debug)]
pub struct BlockFlags {
    slots: Box<[Slot]>,
    runtime: Option<WaitRuntime>,
}

impl BlockFlags {
    /// A table of `nblocks` flags, all at epoch `0`.
    pub fn new(nblocks: usize) -> Self {
        BlockFlags { slots: (0..nblocks).map(|_| Slot(AtomicU64::new(0))).collect(), runtime: None }
    }

    /// Attaches fault-observation state to every wait on this table: the
    /// waits poll `poison` (unwinding with [`PoisonUnwind`] when set),
    /// record themselves in `progress`, and declare a stall after
    /// `deadline_ms` milliseconds in the yielding regime (`0` disables the
    /// deadline). Plan builders call this once, before the table is shared.
    pub fn attach_runtime(
        &mut self,
        poison: Arc<Poison>,
        progress: Arc<ProgressTable>,
        deadline_ms: u64,
    ) {
        self.runtime = Some(WaitRuntime {
            poison,
            progress,
            deadline_ms: Arc::new(AtomicU64::new(deadline_ms)),
        });
    }

    /// Re-arms the stall deadline for *subsequent* waits on this table
    /// (`0` disables it). Waits already in their slow path keep the
    /// deadline they started with. Returns the previous deadline, or
    /// `None` when no runtime is attached (the call is then a no-op).
    /// Callers that share one table across requests must serialize
    /// invocations around the override themselves.
    pub fn set_deadline_ms(&self, ms: u64) -> Option<u64> {
        self.runtime.as_ref().map(|r| r.deadline_ms.swap(ms, Ordering::Relaxed))
    }

    /// The current stall deadline in milliseconds (`None` without an
    /// attached runtime).
    pub fn deadline_ms(&self) -> Option<u64> {
        self.runtime.as_ref().map(|r| r.deadline_ms.load(Ordering::Relaxed))
    }

    /// Number of blocks tracked.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when the table tracks no blocks.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Resets every flag to epoch `0` (single-threaded use, e.g. by the
    /// caller before launching a parallel region).
    pub fn reset(&self) {
        for s in self.slots.iter() {
            s.0.store(0, Ordering::Relaxed);
        }
    }

    /// Resets one flag to epoch `0` (for per-thread resets of owned
    /// blocks; a barrier must separate the resets from the first wait).
    #[inline]
    pub fn reset_one(&self, b: usize) {
        self.slots[b].0.store(0, Ordering::Relaxed);
    }

    /// Publishes "block `b` has finished epoch `epoch`". Release ordering:
    /// pairs with the acquire loads in [`BlockFlags::wait_for`] so the
    /// marker's preceding writes become visible to waiters.
    #[inline]
    pub fn mark(&self, b: usize, epoch: u64) {
        self.slots[b].0.store(epoch, Ordering::Release);
    }

    /// Current epoch of block `b` (acquire).
    #[inline]
    pub fn load(&self, b: usize) -> u64 {
        self.slots[b].0.load(Ordering::Acquire)
    }

    /// Blocks until `flag[b] >= epoch`, spinning with [`Backoff`].
    #[inline]
    pub fn wait_for(&self, b: usize, epoch: u64) {
        self.wait_for_counted(b, epoch);
    }

    /// [`BlockFlags::wait_for`], returning the number of
    /// [`Backoff::snooze`] calls spent (0 when the flag was already
    /// satisfied). Profiling uses the count to separate contended from
    /// immediately-satisfied waits without clock reads on the fast path.
    #[inline]
    pub fn wait_for_counted(&self, b: usize, epoch: u64) -> u32 {
        self.wait_for_counted_from(UNTRACKED, b, epoch)
    }

    /// [`BlockFlags::wait_for_counted`], identifying the waiting worker so
    /// an attached [`WaitRuntime`] can record the wait in the progress
    /// table and attribute a stall to the right thread.
    ///
    /// With a runtime attached, the slow path polls the poison latch
    /// (unwinding with [`PoisonUnwind`] when a peer has faulted) and, once
    /// the deadline expires, publishes a [`FaultCause::Stall`] carrying a
    /// diagnostic dump and unwinds itself.
    #[inline]
    pub fn wait_for_counted_from(&self, t: usize, b: usize, epoch: u64) -> u32 {
        if self.slots[b].0.load(Ordering::Acquire) >= epoch {
            return 0;
        }
        self.wait_slow(t, b, epoch)
    }

    /// Blocks until every block in `deps` has reached `epoch`.
    #[inline]
    pub fn wait_all(&self, deps: &[u32], epoch: u64) {
        for &d in deps {
            self.wait_for(d as usize, epoch);
        }
    }

    /// [`BlockFlags::wait_all`], returning the summed snooze count across
    /// all dependencies.
    #[inline]
    pub fn wait_all_counted(&self, deps: &[u32], epoch: u64) -> u32 {
        self.wait_all_counted_from(UNTRACKED, deps, epoch)
    }

    /// [`BlockFlags::wait_all_counted`] with the waiting worker identified
    /// (see [`BlockFlags::wait_for_counted_from`]).
    #[inline]
    pub fn wait_all_counted_from(&self, t: usize, deps: &[u32], epoch: u64) -> u32 {
        let mut snoozes = 0u32;
        for &d in deps {
            snoozes = snoozes.saturating_add(self.wait_for_counted_from(t, d as usize, epoch));
        }
        snoozes
    }

    /// Contended-wait loop, kept out of the inlined fast path.
    #[cold]
    fn wait_slow(&self, t: usize, b: usize, epoch: u64) -> u32 {
        let slot = &self.slots[b].0;
        let rt = self.runtime.as_ref();
        let tracked = rt.is_some_and(|r| t < r.progress.nthreads());
        if let (true, Some(r)) = (tracked, rt) {
            r.progress.begin_wait(t, b, epoch);
        }
        let mut backoff = Backoff::new();
        let mut snoozes = 0u32;
        // Read once on entry: an in-flight wait keeps the deadline it
        // started with even if a serving layer re-arms the table.
        let deadline_ms = rt.map_or(0, |r| r.deadline_ms.load(Ordering::Relaxed));
        // The deadline clock starts at the first scheduler yield: waits
        // that resolve inside the spin budget never read a clock at all.
        let mut yield_start: Option<Instant> = None;
        while slot.load(Ordering::Acquire) < epoch {
            if let Some(r) = rt {
                if r.poison.is_set() {
                    std::panic::resume_unwind(Box::new(PoisonUnwind));
                }
                if deadline_ms > 0 && backoff.is_yielding() {
                    let start = *yield_start.get_or_insert_with(|| {
                        WATCHDOG_ARMS.fetch_add(1, Ordering::Relaxed);
                        Instant::now()
                    });
                    let waited_ms = start.elapsed().as_millis() as u64;
                    if waited_ms >= deadline_ms {
                        self.declare_stall(r, t, b, epoch, waited_ms);
                    }
                }
            }
            backoff.snooze();
            snoozes = snoozes.saturating_add(1);
        }
        if let (true, Some(r)) = (tracked, rt) {
            r.progress.end_wait(t);
        }
        snoozes
    }

    /// Publishes a stall fault with a diagnostic dump and unwinds. Never
    /// returns.
    fn declare_stall(&self, rt: &WaitRuntime, t: usize, b: usize, epoch: u64, waited_ms: u64) -> ! {
        use std::fmt::Write;
        WATCHDOG_FIRES.fetch_add(1, Ordering::Relaxed);
        let mut dump = String::new();
        let _ = writeln!(
            dump,
            "fbmpk watchdog: thread {t} waited {waited_ms} ms for block {b} epoch {epoch} \
             (flag at {})",
            self.load(b)
        );
        dump.push_str(&rt.progress.dump_lines());
        let site = if t < rt.progress.nthreads() { rt.progress.snapshot(t).site } else { None };
        rt.poison.publish(WorkerFault {
            thread: t,
            color: site.map(|(c, _)| c),
            block: site.and_then(|(_, bl)| bl),
            cause: FaultCause::Stall { block: b, epoch, waited_ms, dump },
        });
        std::panic::resume_unwind(Box::new(PoisonUnwind));
    }
}

/// Thread id passed by the legacy (un-identified) wait entry points; never
/// a valid progress-table index, so such waits are poison-checked but not
/// recorded.
const UNTRACKED: usize = usize::MAX;

/// Process-wide watchdog accounting: how many waits armed a deadline
/// clock (entered the yielding regime with a deadline attached) and how
/// many of those actually fired a stall. Relaxed counters off the spin
/// fast path; the live-telemetry collector and `repro profile` read them.
static WATCHDOG_ARMS: AtomicU64 = AtomicU64::new(0);
static WATCHDOG_FIRES: AtomicU64 = AtomicU64::new(0);

/// `(arms, fires)` since process start.
pub fn watchdog_stats() -> (u64, u64) {
    (WATCHDOG_ARMS.load(Ordering::Relaxed), WATCHDOG_FIRES.load(Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn backoff_spins_then_yields() {
        let mut b = Backoff::new();
        for _ in 0..=Backoff::SPIN_LIMIT {
            assert!(!b.is_yielding());
            b.snooze();
        }
        assert!(b.is_yielding());
        b.snooze(); // stays in the yielding regime without overflowing
        assert!(b.is_yielding());
        b.reset();
        assert!(!b.is_yielding());
    }

    #[test]
    fn flags_mark_and_load() {
        let f = BlockFlags::new(4);
        assert_eq!(f.len(), 4);
        assert!(!f.is_empty());
        for b in 0..4 {
            assert_eq!(f.load(b), 0);
        }
        f.mark(2, 7);
        assert_eq!(f.load(2), 7);
        f.wait_for(2, 7); // already satisfied: returns immediately
        f.wait_all(&[2], 3); // lower epoch also satisfied
        assert_eq!(f.wait_for_counted(2, 7), 0); // satisfied waits cost no snoozes
        assert_eq!(f.wait_all_counted(&[2], 3), 0);
        f.reset();
        assert_eq!(f.load(2), 0);
        f.mark(1, 5);
        f.reset_one(1);
        assert_eq!(f.load(1), 0);
    }

    #[test]
    fn wait_for_observes_cross_thread_mark() {
        let flags = Arc::new(BlockFlags::new(2));
        let data = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let (f2, d2) = (Arc::clone(&flags), Arc::clone(&data));
        let h = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            d2.store(42, Ordering::Relaxed);
            f2.mark(0, 1);
        });
        flags.wait_for(0, 1);
        // Release/acquire: the data store must be visible after the wait.
        assert_eq!(data.load(Ordering::Relaxed), 42);
        h.join().unwrap();
    }

    #[test]
    fn watchdog_declares_stall_with_dump() {
        let poison = Arc::new(Poison::new());
        let progress = Arc::new(ProgressTable::new(2));
        let mut flags = BlockFlags::new(4);
        flags.attach_runtime(Arc::clone(&poison), Arc::clone(&progress), 50);
        progress.set_site(1, 2, Some(3));
        let (arms_before, fires_before) = watchdog_stats();
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            flags.wait_for_counted_from(1, 0, 1); // block 0 is never marked
        }))
        .expect_err("expired deadline must unwind");
        assert!(payload.downcast_ref::<PoisonUnwind>().is_some());
        let fault = poison.take().expect("stall must be published");
        assert_eq!(fault.thread, 1);
        assert_eq!(fault.color, Some(2));
        assert_eq!(fault.block, Some(3));
        match fault.cause {
            FaultCause::Stall { block, epoch, waited_ms, dump } => {
                assert_eq!((block, epoch), (0, 1));
                assert!(waited_ms >= 50, "deadline fired early: {waited_ms} ms");
                assert!(dump.contains("thread 1"), "dump: {dump}");
                assert!(dump.contains("waiting on block 0 epoch 1"), "dump: {dump}");
            }
            other => panic!("expected a stall, got {other:?}"),
        }
        let (arms_after, fires_after) = watchdog_stats();
        assert!(arms_after > arms_before, "arming the deadline must count");
        assert!(fires_after > fires_before, "the fired stall must count");
    }

    #[test]
    fn deadline_rearmed_between_waits_fires() {
        let poison = Arc::new(Poison::new());
        let progress = Arc::new(ProgressTable::new(1));
        let mut flags = BlockFlags::new(1);
        assert_eq!(flags.set_deadline_ms(5), None); // no runtime attached yet
        assert_eq!(flags.deadline_ms(), None);
        flags.attach_runtime(Arc::clone(&poison), progress, 0);
        assert_eq!(flags.deadline_ms(), Some(0));
        assert_eq!(flags.set_deadline_ms(40), Some(0));
        assert_eq!(flags.deadline_ms(), Some(40));
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            flags.wait_for_counted_from(0, 0, 1); // never marked
        }))
        .expect_err("re-armed deadline must fire");
        assert!(payload.downcast_ref::<PoisonUnwind>().is_some());
        let fault = poison.take().expect("stall must be published");
        assert!(matches!(fault.cause, FaultCause::Stall { .. }));
    }

    #[test]
    fn poisoned_flag_wait_unwinds_without_deadline() {
        let poison = Arc::new(Poison::new());
        let progress = Arc::new(ProgressTable::new(1));
        let mut flags = BlockFlags::new(1);
        // deadline 0: poison checks only — the wait must still escape.
        flags.attach_runtime(Arc::clone(&poison), progress, 0);
        let flags = Arc::new(flags);
        let f2 = Arc::clone(&flags);
        let h = std::thread::spawn(move || {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                f2.wait_for_counted_from(0, 0, 1);
            }))
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        poison.publish(crate::poison::WorkerFault {
            thread: 0,
            color: None,
            block: None,
            cause: FaultCause::Panic { payload: "peer".into() },
        });
        let payload = h.join().unwrap().expect_err("poison must release the waiter");
        assert!(payload.downcast_ref::<PoisonUnwind>().is_some());
    }

    #[test]
    fn satisfied_wait_ignores_runtime() {
        let poison = Arc::new(Poison::new());
        let progress = Arc::new(ProgressTable::new(1));
        let mut flags = BlockFlags::new(1);
        flags.attach_runtime(Arc::clone(&poison), Arc::clone(&progress), 1);
        poison.publish(crate::poison::WorkerFault {
            thread: 0,
            color: None,
            block: None,
            cause: FaultCause::Panic { payload: "stale".into() },
        });
        flags.mark(0, 5);
        // Fast path: already-satisfied waits never consult poison.
        assert_eq!(flags.wait_for_counted_from(0, 0, 5), 0);
        assert_eq!(progress.snapshot(0).waiting_on, None);
    }

    #[test]
    fn chained_waits_order_many_threads() {
        // Thread i waits for block i-1 at epoch 1, then marks block i; the
        // chain must complete in order regardless of spawn order.
        const T: usize = 8;
        let flags = Arc::new(BlockFlags::new(T));
        let order = Arc::new(std::sync::Mutex::new(Vec::new()));
        let handles: Vec<_> = (0..T)
            .rev() // spawn in reverse to maximize real waiting
            .map(|i| {
                let flags = Arc::clone(&flags);
                let order = Arc::clone(&order);
                std::thread::spawn(move || {
                    if i > 0 {
                        flags.wait_for(i - 1, 1);
                    }
                    order.lock().unwrap().push(i);
                    flags.mark(i, 1);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock().unwrap(), (0..T).collect::<Vec<_>>());
    }
}
