//! Shared fault state for panic isolation and stall detection.
//!
//! The point-to-point sweeps (see [`crate::sync`]) replace the global
//! barrier with per-block epoch flags — exactly the structure where one
//! panicked or wedged worker leaves every downstream block spinning
//! forever. This module provides the pieces that make such faults
//! *detectable and survivable*:
//!
//! * [`Poison`] — a cache-line-padded fault word every wait loop polls.
//!   The first faulting worker publishes its identity here (first writer
//!   wins); peers observe the word inside [`crate::SenseBarrier::wait`]
//!   and [`crate::BlockFlags::wait_for`] and unwind instead of spinning.
//! * [`PoisonUnwind`] — the sentinel panic payload peers unwind with.
//!   [`crate::ThreadPool`] recognizes it and does not report a secondary
//!   unwind as a fault of its own.
//! * [`ProgressTable`] — one padded slot per worker recording the last
//!   compute unit started and the flag currently waited on; the stall
//!   watchdog snapshots it to build the diagnostic dump.
//!
//! Poison checks live only on wait *slow paths* (a flag already satisfied
//! or a barrier already released costs nothing extra), which is what keeps
//! the zero-fault overhead inside the <2% bound `tests/obs_props.rs`
//! enforces.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Sentinel panic payload used by waiters escaping a poisoned wait.
///
/// Escapes are raised with `std::panic::resume_unwind` so the global panic
/// hook stays silent: only the *primary* fault (a real panic, or the
/// watchdog report) produces output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoisonUnwind;

/// Why a worker faulted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultCause {
    /// The worker's closure panicked; the payload is the stringified
    /// panic message.
    Panic {
        /// Panic payload rendered to a string (`&str`/`String` payloads
        /// verbatim, anything else a placeholder).
        payload: String,
    },
    /// A point-to-point wait exceeded its watchdog deadline.
    Stall {
        /// Block whose epoch flag never arrived.
        block: usize,
        /// Epoch the waiter needed.
        epoch: u64,
        /// Milliseconds spent in the yielding regime before giving up.
        waited_ms: u64,
        /// Preformatted diagnostic dump (per-thread wait/progress state).
        dump: String,
    },
}

/// One worker's fault, as returned by [`crate::ThreadPool::try_run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerFault {
    /// Worker id that faulted first.
    pub thread: usize,
    /// Color of the last compute unit the worker started, if any.
    pub color: Option<u32>,
    /// Block of the last compute unit the worker started (point-to-point
    /// schedules only).
    pub block: Option<u32>,
    /// What happened.
    pub cause: FaultCause,
}

/// Renders a caught panic payload for [`FaultCause::Panic`].
pub fn payload_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// The poison word lives alone on its cache line: every waiter polls it on
/// the slow path, and sharing a line with unrelated hot state would turn
/// each unrelated write into fleet-wide invalidations.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedFlag(AtomicU64);

/// Shared first-fault latch for one [`crate::ThreadPool`].
///
/// `state` is `0` while healthy; a faulting worker CASes it to a nonzero
/// tag (first writer wins) and deposits the full [`WorkerFault`] in
/// `detail`. Waiters poll `state` with relaxed loads — they only need the
/// *fact* of the fault, never the detail — and unwind with
/// [`PoisonUnwind`] when it goes nonzero.
#[derive(Default)]
pub struct Poison {
    state: PaddedFlag,
    detail: Mutex<Option<WorkerFault>>,
}

impl std::fmt::Debug for Poison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poison").field("set", &self.is_set()).finish()
    }
}

impl Poison {
    /// A clean poison latch.
    pub fn new() -> Self {
        Poison::default()
    }

    /// `true` once any worker has faulted (relaxed; pair every positive
    /// answer with an unwind, not with data reads).
    #[inline]
    pub fn is_set(&self) -> bool {
        self.state.0.load(Ordering::Relaxed) != 0
    }

    /// Publishes `fault` if no fault is set yet; later callers lose the
    /// race and their fault is dropped (the first fault is the root cause,
    /// everything after is fallout).
    pub fn publish(&self, fault: WorkerFault) {
        if self.state.0.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Relaxed).is_ok() {
            *self.detail.lock() = Some(fault);
            // Release the detail before flipping to "readable": takers
            // gate on state == 2.
            self.state.0.store(2, Ordering::Release);
        }
    }

    /// Takes the fault and resets the latch to clean (called by the pool
    /// after the parallel region has fully drained — no concurrent
    /// publishers remain).
    pub fn take(&self) -> Option<WorkerFault> {
        if self.state.0.load(Ordering::Acquire) == 0 {
            return None;
        }
        // A publisher may have won the CAS but not yet stored the detail;
        // spin the handful of nanoseconds until state reaches 2.
        while self.state.0.load(Ordering::Acquire) != 2 {
            std::hint::spin_loop();
        }
        let fault = self.detail.lock().take();
        self.state.0.store(0, Ordering::Release);
        fault
    }
}

/// Packs `(color, block)` into one word: `0` means "no unit started yet".
fn pack_site(color: u32, block: Option<u32>) -> u64 {
    let b = block.map_or(0u64, |b| (b as u64) + 1);
    (((color as u64) + 1) << 32) | b
}

fn unpack_site(site: u64) -> Option<(u32, Option<u32>)> {
    if site == 0 {
        return None;
    }
    let color = ((site >> 32) - 1) as u32;
    let block = match site & 0xffff_ffff {
        0 => None,
        b => Some((b - 1) as u32),
    };
    Some((color, block))
}

const WAIT_TAG: u64 = 1 << 63;

/// Per-worker progress slot. Both words are written relaxed by the owning
/// worker only; readers (the watchdog dump, the pool's fault report) take
/// an advisory snapshot — exactness across threads is not required, the
/// dump is diagnostic.
#[repr(align(64))]
#[derive(Debug, Default)]
struct ProgressSlot {
    /// Last compute unit started: [`pack_site`] encoding.
    site: AtomicU64,
    /// Current flag wait: `WAIT_TAG | block << 32 | epoch`, or `0`.
    wait: AtomicU64,
}

/// Advisory snapshot of one worker's progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadProgress {
    /// `(color, block)` of the last compute unit started.
    pub site: Option<(u32, Option<u32>)>,
    /// `(block, epoch)` of the flag wait in progress, if any.
    pub waiting_on: Option<(usize, u64)>,
}

/// One progress slot per pool worker, cache-line padded.
#[derive(Debug)]
pub struct ProgressTable {
    slots: Box<[ProgressSlot]>,
}

impl ProgressTable {
    /// A table for `nthreads` workers, all idle.
    pub fn new(nthreads: usize) -> Self {
        ProgressTable { slots: (0..nthreads).map(|_| ProgressSlot::default()).collect() }
    }

    /// Number of worker slots.
    pub fn nthreads(&self) -> usize {
        self.slots.len()
    }

    /// Records that worker `t` started the compute unit `(color, block)`.
    #[inline]
    pub fn set_site(&self, t: usize, color: u32, block: Option<u32>) {
        self.slots[t].site.store(pack_site(color, block), Ordering::Relaxed);
    }

    /// Records that worker `t` entered the slow path of a wait on
    /// `(block, epoch)`.
    #[inline]
    pub fn begin_wait(&self, t: usize, block: usize, epoch: u64) {
        self.slots[t].wait.store(WAIT_TAG | ((block as u64) << 32) | epoch, Ordering::Relaxed);
    }

    /// Clears worker `t`'s wait record.
    #[inline]
    pub fn end_wait(&self, t: usize) {
        self.slots[t].wait.store(0, Ordering::Relaxed);
    }

    /// Advisory snapshot of worker `t`.
    pub fn snapshot(&self, t: usize) -> ThreadProgress {
        let site = unpack_site(self.slots[t].site.load(Ordering::Relaxed));
        let w = self.slots[t].wait.load(Ordering::Relaxed);
        let waiting_on = if w & WAIT_TAG != 0 {
            Some((((w & !WAIT_TAG) >> 32) as usize, w & 0xffff_ffff))
        } else {
            None
        };
        ThreadProgress { site, waiting_on }
    }

    /// Resets every slot to idle (single-threaded use between runs).
    pub fn clear(&self) {
        for s in self.slots.iter() {
            s.site.store(0, Ordering::Relaxed);
            s.wait.store(0, Ordering::Relaxed);
        }
    }

    /// Renders the table as the per-thread lines of a stall dump.
    pub fn dump_lines(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for t in 0..self.nthreads() {
            let p = self.snapshot(t);
            let _ = write!(out, "  thread {t}: ");
            match p.site {
                Some((c, Some(b))) => {
                    let _ = write!(out, "last started color {c} block {b}");
                }
                Some((c, None)) => {
                    let _ = write!(out, "last started color {c}");
                }
                None => {
                    let _ = write!(out, "no compute unit started");
                }
            }
            match p.waiting_on {
                Some((b, e)) => {
                    let _ = writeln!(out, "; waiting on block {b} epoch {e}");
                }
                None => {
                    let _ = writeln!(out, "; not waiting");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_fault_wins_and_take_resets() {
        let p = Poison::new();
        assert!(!p.is_set());
        assert!(p.take().is_none());
        let f1 = WorkerFault {
            thread: 1,
            color: Some(3),
            block: None,
            cause: FaultCause::Panic { payload: "boom".into() },
        };
        let f2 = WorkerFault {
            thread: 2,
            color: None,
            block: None,
            cause: FaultCause::Panic { payload: "later".into() },
        };
        p.publish(f1.clone());
        p.publish(f2);
        assert!(p.is_set());
        assert_eq!(p.take(), Some(f1));
        assert!(!p.is_set());
        assert!(p.take().is_none());
    }

    #[test]
    fn progress_roundtrip() {
        let t = ProgressTable::new(3);
        assert_eq!(t.nthreads(), 3);
        assert_eq!(t.snapshot(0), ThreadProgress { site: None, waiting_on: None });
        t.set_site(0, 4, Some(7));
        t.set_site(1, 0, None);
        t.begin_wait(2, 9, 5);
        assert_eq!(t.snapshot(0).site, Some((4, Some(7))));
        assert_eq!(t.snapshot(1).site, Some((0, None)));
        assert_eq!(t.snapshot(2).waiting_on, Some((9, 5)));
        t.end_wait(2);
        assert_eq!(t.snapshot(2).waiting_on, None);
        let dump = t.dump_lines();
        assert!(dump.contains("thread 0: last started color 4 block 7"));
        assert!(dump.contains("thread 2: no compute unit started"));
        t.clear();
        assert_eq!(t.snapshot(0), ThreadProgress { site: None, waiting_on: None });
    }

    #[test]
    fn payload_strings() {
        let s: Box<dyn std::any::Any + Send> = Box::new("static str");
        assert_eq!(payload_string(s.as_ref()), "static str");
        let s: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(payload_string(s.as_ref()), "owned");
        let s: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(payload_string(s.as_ref()), "<non-string panic payload>");
    }

    #[test]
    fn concurrent_publish_keeps_exactly_one() {
        let p = std::sync::Arc::new(Poison::new());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let p = std::sync::Arc::clone(&p);
                std::thread::spawn(move || {
                    p.publish(WorkerFault {
                        thread: t,
                        color: None,
                        block: None,
                        cause: FaultCause::Panic { payload: format!("t{t}") },
                    });
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let got = p.take().expect("one fault must survive");
        assert!(got.thread < 8);
        assert!(!p.is_set());
    }
}
