//! Stable fingerprints for matrices and plan configurations.
//!
//! The performance database (`fbmpk-bench`) keys every recorded run by a
//! *configuration fingerprint* so runs of the same (matrix, kernel,
//! schedule, thread count) can be compared across git revisions and
//! machines. The hashes here are deliberately hand-rolled FNV-1a rather
//! than `std::hash`: `DefaultHasher` is documented to be unstable across
//! Rust releases, which would silently split one configuration's history
//! into disjoint keys after a toolchain upgrade.

use crate::levelblock::BlockingMode;
use crate::plan::{FallbackPolicy, FbmpkOptions, VectorLayout};
use crate::schedule::SyncMode;
use fbmpk_reorder::{AbmcParams, BlockingStrategy, ColoringOrdering};

/// Incremental 64-bit FNV-1a hasher with a stable byte protocol.
///
/// Every `write_*` method folds a fixed-width little-endian encoding into
/// the state, so a fingerprint is a pure function of the logical field
/// sequence — independent of platform, toolchain, and process.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A hasher at the standard FNV offset basis.
    pub fn new() -> Self {
        Fnv64(Self::OFFSET)
    }

    /// Folds raw bytes into the state.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
        self
    }

    /// Folds a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Folds a `usize` widened to 64 bits, so 32- and 64-bit hosts agree.
    pub fn write_usize(&mut self, v: usize) -> &mut Self {
        self.write_u64(v as u64)
    }

    /// Folds an `f64` by bit pattern (distinguishes `-0.0` from `0.0` and
    /// every NaN payload — exactness beats prettiness for cache keys).
    pub fn write_f64(&mut self, v: f64) -> &mut Self {
        self.write_u64(v.to_bits())
    }

    /// Folds a length-prefixed UTF-8 string (the prefix prevents
    /// concatenation collisions between adjacent string fields).
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_u64(s.len() as u64).write_bytes(s.as_bytes())
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// Stable discriminant for [`SyncMode`] (independent of declaration
/// order changes, unlike `as u8`).
fn sync_tag(mode: SyncMode) -> u64 {
    match mode {
        SyncMode::ColorBarrier => 1,
        SyncMode::PointToPoint => 2,
    }
}

fn layout_tag(layout: VectorLayout) -> u64 {
    match layout {
        VectorLayout::BackToBack => 1,
        VectorLayout::Split => 2,
    }
}

fn fallback_tag(policy: FallbackPolicy) -> u64 {
    match policy {
        FallbackPolicy::Error => 1,
        FallbackPolicy::ColorBarrier => 2,
    }
}

fn blocking_tag(strategy: BlockingStrategy) -> u64 {
    match strategy {
        BlockingStrategy::Contiguous => 1,
        BlockingStrategy::Aggregated => 2,
        BlockingStrategy::Multilevel => 3,
    }
}

/// Stable `(mode, tile_powers)` encoding for [`BlockingMode`]
/// (`u64::MAX` = auto-sized band; the field is meaningless for
/// streaming but still folded so the protocol stays fixed-width).
fn blocking_mode_tag(mode: BlockingMode) -> (u64, u64) {
    match mode {
        BlockingMode::Streaming => (1, u64::MAX),
        BlockingMode::LevelBlocked { tile_powers } => {
            (2, tile_powers.map_or(u64::MAX, |t| t as u64))
        }
    }
}

fn ordering_tag(ordering: ColoringOrdering) -> u64 {
    match ordering {
        ColoringOrdering::Natural => 1,
        ColoringOrdering::LargestDegreeFirst => 2,
        ColoringOrdering::SmallestLast => 3,
    }
}

/// Folds the performance-relevant ABMC parameters.
fn write_abmc(h: &mut Fnv64, params: &AbmcParams) {
    h.write_usize(params.nblocks)
        .write_u64(blocking_tag(params.strategy))
        .write_u64(ordering_tag(params.ordering));
}

impl FbmpkOptions {
    /// Stable fingerprint of every option that shapes the executed
    /// kernel: thread count, reorder parameters, layout, pre-RCM,
    /// synchronization mode, and cache-blocking mode. Observability and
    /// pinning flags are *included* too — a recording run and a pinned
    /// run are different measurement configurations and must not share a
    /// history key. The runtime-detected SIMD lane width is folded as
    /// well: the same options executed with AVX2 lanes and with the
    /// scalar fallback are different kernels.
    pub fn config_fingerprint(&self) -> u64 {
        let (blocking, tile_powers) = blocking_mode_tag(self.blocking);
        let mut h = Fnv64::new();
        // v3 adds the NUMA first-touch placement axis (and the multilevel
        // partitioner as blocking tag 3); the version bump keeps v2-keyed
        // histories from silently mixing with differently-shaped configs.
        h.write_str("fbmpk-options-v3")
            .write_usize(self.nthreads)
            .write_u64(blocking)
            .write_u64(tile_powers)
            .write_u64(fbmpk_sparse::simd::detect().width() as u64)
            .write_u64(layout_tag(self.layout))
            .write_u64(self.pre_rcm as u64)
            .write_u64(sync_tag(self.sync))
            .write_u64(self.pin_threads as u64)
            .write_u64(self.numa_first_touch as u64)
            .write_u64(self.obs.record as u64)
            .write_u64(fallback_tag(self.fallback))
            // Watchdog deadline: a run that can time out and fall back is
            // a different measurement configuration than one that can't.
            .write_u64(self.watchdog_ms.unwrap_or(u64::MAX));
        match &self.reorder {
            None => {
                h.write_u64(0);
            }
            Some(params) => {
                h.write_u64(1);
                write_abmc(&mut h, params);
            }
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_order_sensitive_and_deterministic() {
        let mut a = Fnv64::new();
        a.write_u64(1).write_u64(2);
        let mut b = Fnv64::new();
        b.write_u64(2).write_u64(1);
        assert_ne!(a.finish(), b.finish());
        let mut c = Fnv64::new();
        c.write_u64(1).write_u64(2);
        assert_eq!(a.finish(), c.finish());
    }

    #[test]
    fn strings_are_length_prefixed() {
        let mut a = Fnv64::new();
        a.write_str("ab").write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a").write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn options_fingerprint_distinguishes_configs() {
        let base = FbmpkOptions::default();
        let threads = FbmpkOptions { nthreads: 4, ..base };
        let sync = FbmpkOptions { sync: SyncMode::PointToPoint, ..base };
        let layout = FbmpkOptions { layout: VectorLayout::Split, ..base };
        let reorder = FbmpkOptions { reorder: Some(AbmcParams::default()), ..base };
        let numa = FbmpkOptions { numa_first_touch: true, ..base };
        let fps = [
            base.config_fingerprint(),
            threads.config_fingerprint(),
            sync.config_fingerprint(),
            layout.config_fingerprint(),
            reorder.config_fingerprint(),
            numa.config_fingerprint(),
        ];
        for (i, a) in fps.iter().enumerate() {
            for b in &fps[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert_eq!(base.config_fingerprint(), FbmpkOptions::default().config_fingerprint());
    }

    #[test]
    fn blocking_mode_changes_fingerprint() {
        let base = FbmpkOptions::default();
        let auto =
            FbmpkOptions { blocking: BlockingMode::LevelBlocked { tile_powers: None }, ..base };
        let fixed =
            FbmpkOptions { blocking: BlockingMode::LevelBlocked { tile_powers: Some(3) }, ..base };
        assert_ne!(base.config_fingerprint(), auto.config_fingerprint());
        assert_ne!(auto.config_fingerprint(), fixed.config_fingerprint());
        assert_ne!(base.config_fingerprint(), fixed.config_fingerprint());
    }

    #[test]
    fn blocking_strategy_changes_fingerprint() {
        let mk = |strategy| FbmpkOptions {
            reorder: Some(AbmcParams { strategy, ..Default::default() }),
            ..Default::default()
        };
        let fps = [
            mk(BlockingStrategy::Contiguous).config_fingerprint(),
            mk(BlockingStrategy::Aggregated).config_fingerprint(),
            mk(BlockingStrategy::Multilevel).config_fingerprint(),
        ];
        assert_ne!(fps[0], fps[1]);
        assert_ne!(fps[1], fps[2]);
        assert_ne!(fps[0], fps[2]);
    }

    #[test]
    fn nblocks_changes_fingerprint() {
        let a = FbmpkOptions { reorder: Some(AbmcParams::default()), ..Default::default() };
        let b = FbmpkOptions {
            reorder: Some(AbmcParams { nblocks: 1024, ..Default::default() }),
            ..Default::default()
        };
        assert_ne!(a.config_fingerprint(), b.config_fingerprint());
    }
}
