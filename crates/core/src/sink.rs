//! Iterate sinks: what to do with each computed entry `x_i[r]`.
//!
//! The FB sweeps produce every entry of every iterate exactly once. A
//! [`Sink`] observes those entries as they are written, which lets the
//! three MPK use cases share one kernel with zero overhead for the plain
//! power case:
//!
//! * [`NullSink`] — `Aᵏx` only; the result is read from the layout buffers,
//! * [`CollectSink`] — Krylov-basis mode: store all iterates `x₁..x_k`,
//! * [`AccumSink`] — generic SSpMV: fold `y[r] += αᵢ·x_i[r]` into the sweep
//!   so the linear combination costs no extra pass over memory.
//!
//! Sinks are called under the kernel's row-ownership discipline: entry
//! `(i, r)` is emitted by the thread that owns row `r` in the current
//! phase, so sink writes indexed by `r` are race-free.

use fbmpk_parallel::SharedSlice;

/// Observer of computed iterate entries.
pub trait Sink: Sync {
    /// Called once per (iterate `i` in `1..=k`, row `r`) with `x_i[r]`.
    ///
    /// # Safety
    /// The caller (kernel) guarantees `(i, r)` is emitted by the unique
    /// owner of row `r` in the current barrier phase; implementations may
    /// write to row-indexed shared storage without synchronization.
    unsafe fn emit(&self, i: usize, r: usize, v: f64);
}

/// Discards all entries (plain `Aᵏx`).
pub struct NullSink;

impl Sink for NullSink {
    #[inline]
    unsafe fn emit(&self, _i: usize, _r: usize, _v: f64) {}
}

/// Collects all iterates into a dense row-major `k x n` matrix
/// (`basis[(i-1) * n + r] = x_i[r]`) — the Krylov-basis mode.
pub struct CollectSink<'a> {
    basis: SharedSlice<'a, f64>,
    n: usize,
}

impl<'a> CollectSink<'a> {
    /// Wraps a buffer for exactly `k` iterates of length `n`.
    ///
    /// # Panics
    /// Panics unless `basis.len() == k * n` — an undersized buffer would
    /// otherwise be written out of bounds by the kernel's emissions.
    pub fn new(basis: &'a mut [f64], n: usize, k: usize) -> Self {
        assert!(n > 0, "iterate length must be positive");
        assert_eq!(
            basis.len(),
            k * n,
            "basis must hold exactly k = {k} iterates of length n = {n}"
        );
        CollectSink { basis: SharedSlice::new(basis), n }
    }
}

impl Sink for CollectSink<'_> {
    #[inline]
    unsafe fn emit(&self, i: usize, r: usize, v: f64) {
        debug_assert!(i >= 1);
        unsafe { self.basis.set((i - 1) * self.n + r, v) }
    }
}

/// Accumulates `y[r] += coeffs[i] * x_i[r]` — the SSpMV fold.
///
/// `coeffs[0]` (the `α₀ x₀` term) is *not* applied here; the plan seeds `y`
/// with it before launching the kernel.
pub struct AccumSink<'a> {
    y: SharedSlice<'a, f64>,
    coeffs: &'a [f64],
}

impl<'a> AccumSink<'a> {
    /// Wraps the output vector and the coefficient table (indexed by
    /// iterate number, so `coeffs.len() == k + 1`).
    pub fn new(y: &'a mut [f64], coeffs: &'a [f64]) -> Self {
        AccumSink { y: SharedSlice::new(y), coeffs }
    }
}

impl Sink for AccumSink<'_> {
    #[inline]
    unsafe fn emit(&self, i: usize, r: usize, v: f64) {
        let c = self.coeffs[i];
        if c != 0.0 {
            unsafe { self.y.set(r, self.y.get(r) + c * v) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_sink_places_iterates() {
        let mut basis = vec![0.0; 6]; // k=2, n=3
        {
            let s = CollectSink::new(&mut basis, 3, 2);
            unsafe {
                s.emit(1, 0, 10.0);
                s.emit(1, 2, 12.0);
                s.emit(2, 1, 21.0);
            }
        }
        assert_eq!(basis, vec![10.0, 0.0, 12.0, 0.0, 21.0, 0.0]);
    }

    #[test]
    fn accum_sink_folds_coefficients() {
        let mut y = vec![1.0; 2];
        let coeffs = [9.0, 2.0, 0.5];
        {
            let s = AccumSink::new(&mut y, &coeffs);
            unsafe {
                s.emit(1, 0, 3.0); // y[0] += 2*3
                s.emit(2, 0, 4.0); // y[0] += 0.5*4
                s.emit(2, 1, 2.0); // y[1] += 0.5*2
            }
        }
        assert_eq!(y, vec![9.0, 2.0]);
    }

    #[test]
    fn accum_sink_skips_zero_coefficients() {
        let mut y = vec![0.0; 1];
        let coeffs = [0.0, 0.0];
        {
            let s = AccumSink::new(&mut y, &coeffs);
            unsafe { s.emit(1, 0, f64::NAN) }; // would poison if applied
        }
        assert_eq!(y[0], 0.0);
    }

    #[test]
    fn null_sink_is_noop() {
        unsafe { NullSink.emit(1, 0, 42.0) };
    }

    #[test]
    #[should_panic(expected = "exactly k")]
    fn collect_sink_checks_shape() {
        let mut b = vec![0.0; 5];
        CollectSink::new(&mut b, 3, 2);
    }
}
