//! Symmetric Gauss–Seidel (SYMGS) on the FBMPK infrastructure.
//!
//! The paper notes (§III-A, §VII) that FBMPK's forward/backward sweeps have
//! the same shape as SYMGS — the smoother at the heart of HPCG — and that
//! the same `A = L + D + U` split and multi-color parallelization apply.
//! This module delivers that: one SYMGS sweep
//!
//! ```text
//! forward :  x[r] ← (b[r] − Σ_{c<r} L[r,c]·x[c] − Σ_{c>r} U[r,c]·x[c]) / d[r]   (top-down)
//! backward:  the same update, bottom-up
//! ```
//!
//! runs serially or on the ABMC-colored schedule, reusing the plan's split,
//! schedule and thread pool. In-place updates are safe under the coloring
//! for exactly the FBMPK argument: a neighbor is either in another color
//! (stable during this color's phase) or in the same block (processed
//! sequentially by the owning thread).

use crate::kernel::{backward_sweep, forward_sweep, reset_own_flags};
use crate::schedule::{Schedule, SyncCtx};
use fbmpk_obs::{NoopProbe, Probe};
use fbmpk_parallel::{SharedSlice, ThreadPool};
use fbmpk_sparse::TriangularSplit;

/// Runs one symmetric Gauss–Seidel sweep (forward then backward) in place.
///
/// `x` holds the current iterate on entry and the updated iterate on exit;
/// `b` is the right-hand side. The sweep order is the (permuted) row order
/// encoded by the schedule.
///
/// `sync` selects barrier-per-color or point-to-point block
/// synchronization. SYMGS updates `x` in place, which is exactly why the
/// dependency lists carry anti-dependencies: in point-to-point mode a
/// block may not overwrite its rows until every earlier-color reader of
/// those rows has passed (forward), and symmetrically backward — the
/// same-epoch flag wait on the union list guarantees both.
///
/// # Errors
/// Returns [`crate::FbmpkError::WorkerPanicked`] or
/// [`crate::FbmpkError::Stalled`] when a worker dies or a point-to-point
/// wait times out; `x` may then hold a partially updated iterate.
///
/// # Panics
/// Panics on length mismatches or a zero diagonal entry.
pub fn run_symgs(
    pool: &ThreadPool,
    sched: &Schedule,
    split: &TriangularSplit,
    b: &[f64],
    x: &mut [f64],
    sync: &SyncCtx,
) -> crate::Result<()> {
    run_symgs_probed(pool, sched, split, b, x, sync, &NoopProbe)
}

/// [`run_symgs`] with an observability probe threaded through both
/// sweeps; the [`NoopProbe`] monomorphization (what [`run_symgs`]
/// passes) is the uninstrumented kernel.
pub fn run_symgs_probed<P: Probe>(
    pool: &ThreadPool,
    sched: &Schedule,
    split: &TriangularSplit,
    b: &[f64],
    x: &mut [f64],
    sync: &SyncCtx,
    probe: &P,
) -> crate::Result<()> {
    let n = split.n();
    assert_eq!(sched.n, n, "schedule dimension mismatch");
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);
    assert_eq!(pool.nthreads(), sched.nthreads, "pool/schedule thread count mismatch");
    assert!(split.diag.iter().all(|&d| d != 0.0), "SYMGS requires a nonzero diagonal");
    if let SyncCtx::PointToPoint { deps, flags } = sync {
        assert_eq!(deps.nblocks(), sched.nblocks(), "dependency/schedule block count mismatch");
        assert_eq!(flags.len(), sched.nblocks(), "flag/schedule block count mismatch");
    }
    let x = SharedSlice::new(x);
    let lower = &split.lower;
    let upper = &split.upper;
    let diag = &split.diag;
    let barrier = pool.barrier();
    let p2p = matches!(sync, SyncCtx::PointToPoint { .. });

    pool.try_run(&|t| {
        let l_ptr = lower.row_ptr();
        let l_col = lower.col_idx();
        let l_val = lower.values();
        let u_ptr = upper.row_ptr();
        let u_col = upper.col_idx();
        let u_val = upper.values();
        let update = |r: usize| {
            // SAFETY: row r is owned by this thread in this phase; L-cols
            // are finished (earlier color / earlier in block), U-cols are
            // untouched this phase (later color / later in block) — the
            // multi-color GS invariant validated by fbmpk-reorder, enforced
            // per color by the barrier or per block by the flag waits.
            unsafe {
                let mut s = b[r];
                for j in l_ptr[r]..l_ptr[r + 1] {
                    s -= l_val[j] * x.get(l_col[j] as usize);
                }
                for j in u_ptr[r]..u_ptr[r + 1] {
                    s -= u_val[j] * x.get(u_col[j] as usize);
                }
                x.set(r, s / diag[r]);
            }
        };
        if p2p {
            // Unlike FBMPK there is no head stage ahead of the first
            // sweep, so publish the flag resets explicitly before anyone
            // starts waiting on them.
            reset_own_flags(sched, sync, t);
            barrier.wait();
        }
        // Forward (epoch 1) then backward (epoch 2); the anti-dependency
        // halves of the wait lists order the two sweeps against each
        // other, so no barrier separates them in point-to-point mode.
        forward_sweep(sched, sync, pool, t, 1, probe, update);
        backward_sweep(sched, sync, pool, t, 2, probe, update);
    })
    .map_err(crate::FbmpkError::from)
}

impl crate::plan::FbmpkPlan {
    /// One SYMGS sweep on this plan's (possibly reordered) system.
    ///
    /// `b` and `x` are in the *original* numbering; the plan permutes in
    /// and out. Repeated sweeps form the classic SYMGS stationary
    /// iteration / HPCG smoother.
    ///
    /// # Panics
    /// Panics on length mismatches, a zero diagonal, or a worker fault
    /// (use [`FbmpkPlan::try_symgs_sweep`](crate::plan::FbmpkPlan::try_symgs_sweep)
    /// for the fallible form).
    pub fn symgs_sweep(&self, b: &[f64], x: &mut [f64]) {
        self.try_symgs_sweep(b, x).unwrap_or_else(|e| panic!("fbmpk: SYMGS sweep failed: {e}"));
    }

    /// Fallible [`symgs_sweep`](Self::symgs_sweep): worker panics and
    /// watchdog stalls come back as typed errors instead of panicking.
    /// Under [`crate::FallbackPolicy::ColorBarrier`] a stalled
    /// point-to-point sweep is transparently re-executed on the barrier
    /// schedule; `x` is only committed when an attempt succeeds.
    pub fn try_symgs_sweep(&self, b: &[f64], x: &mut [f64]) -> crate::Result<()> {
        // Same probe dispatch as `power` et al.: recording plans trace
        // SYMGS sweeps too, everyone else runs the uninstrumented kernel.
        match self.recorder() {
            Some(rec) => self.try_symgs_sweep_probed(b, x, &fbmpk_obs::SpanProbe::new(rec)),
            None => self.try_symgs_sweep_probed(b, x, &NoopProbe),
        }
    }

    fn try_symgs_sweep_probed<P: Probe>(
        &self,
        b: &[f64],
        x: &mut [f64],
        probe: &P,
    ) -> crate::Result<()> {
        let n = self.n();
        assert_eq!(b.len(), n);
        assert_eq!(x.len(), n);
        match self.permutation() {
            Some(p) => {
                let bp = p.apply_vec_alloc(b);
                // Each attempt rebuilds xp from the untouched caller `x`,
                // so a fallback retry restarts from the pristine iterate.
                let xp = self.with_fallback(|sync| {
                    let mut xp = p.apply_vec_alloc(x);
                    run_symgs_probed(
                        self.pool(),
                        self.schedule(),
                        self.split(),
                        &bp,
                        &mut xp,
                        sync,
                        probe,
                    )?;
                    Ok(xp)
                })?;
                p.unapply_vec(&xp, x);
                Ok(())
            }
            None if self.can_fallback() => {
                // In-place sweep, but a retry needs the pristine iterate:
                // work on a scratch copy and commit on success only.
                let xn = self.with_fallback(|sync| {
                    let mut xn = x.to_vec();
                    run_symgs_probed(
                        self.pool(),
                        self.schedule(),
                        self.split(),
                        b,
                        &mut xn,
                        sync,
                        probe,
                    )?;
                    Ok(xn)
                })?;
                x.copy_from_slice(&xn);
                Ok(())
            }
            None => {
                // No fallback possible: sweep in place, zero extra copies
                // (an error leaves x partially updated, as documented on
                // `run_symgs`).
                let sync = self.sync_ctx();
                let r = run_symgs_probed(
                    self.pool(),
                    self.schedule(),
                    self.split(),
                    b,
                    x,
                    &sync,
                    probe,
                );
                self.note_outcome(&r);
                r
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::plan::{FbmpkOptions, FbmpkPlan};
    use fbmpk_reorder::AbmcParams;
    use fbmpk_sparse::spmv::spmv_alloc;
    use fbmpk_sparse::vecops::{max_abs_diff, norm2};
    use fbmpk_sparse::Csr;

    /// Dense reference SYMGS sweep in natural order.
    fn dense_symgs(a: &Csr, b: &[f64], x: &mut [f64]) {
        let n = a.nrows();
        let d = a.to_dense();
        let row = |x: &[f64], r: usize| -> f64 {
            let mut s = b[r];
            for c in 0..n {
                if c != r {
                    s -= d[r][c] * x[c];
                }
            }
            s / d[r][r]
        };
        for r in 0..n {
            x[r] = row(x, r);
        }
        for r in (0..n).rev() {
            x[r] = row(x, r);
        }
    }

    fn spd() -> Csr {
        fbmpk_gen::poisson::grid2d_5pt(7, 6)
    }

    #[test]
    fn serial_sweep_matches_dense_reference() {
        let a = spd();
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| ((i % 5) as f64) - 2.0).collect();
        let plan = FbmpkPlan::new(&a, FbmpkOptions::default()).unwrap();
        let mut x = vec![0.0; n];
        plan.symgs_sweep(&b, &mut x);
        let mut want = vec![0.0; n];
        dense_symgs(&a, &b, &mut want);
        assert!(max_abs_diff(&x, &want) < 1e-13, "{:?}", max_abs_diff(&x, &want));
    }

    #[test]
    fn parallel_matches_serial_on_same_ordering_bitwise() {
        let a = fbmpk_gen::banded::banded_symmetric(fbmpk_gen::banded::BandedParams {
            n: 400,
            nnz_per_row: 11.0,
            bandwidth: 60,
            seed: 7,
        });
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        let abmc = AbmcParams { nblocks: 32, ..Default::default() };
        let serial =
            FbmpkPlan::new(&a, FbmpkOptions { reorder: Some(abmc), ..Default::default() }).unwrap();
        let mut opts = FbmpkOptions::parallel(4);
        opts.reorder = Some(abmc);
        let par = FbmpkPlan::new(&a, opts).unwrap();
        let mut xs = vec![0.0; n];
        let mut xp = vec![0.0; n];
        for _ in 0..3 {
            serial.symgs_sweep(&b, &mut xs);
            par.symgs_sweep(&b, &mut xp);
        }
        assert_eq!(xs, xp);
    }

    #[test]
    fn stationary_iteration_converges_on_spd() {
        // SYMGS as a stationary method converges for SPD systems.
        let a = spd();
        let n = a.nrows();
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 3 % 7) as f64) - 3.0).collect();
        let b = spmv_alloc(&a, &x_true);
        let plan = FbmpkPlan::new(&a, FbmpkOptions::default()).unwrap();
        let mut x = vec![0.0; n];
        let mut prev_res = f64::INFINITY;
        for sweep in 0..200 {
            plan.symgs_sweep(&b, &mut x);
            let r: Vec<f64> = spmv_alloc(&a, &x).iter().zip(&b).map(|(ax, bi)| bi - ax).collect();
            let rn = norm2(&r);
            assert!(rn <= prev_res * (1.0 + 1e-12), "sweep {sweep} residual grew");
            prev_res = rn;
        }
        assert!(max_abs_diff(&x, &x_true) < 1e-8, "err {}", max_abs_diff(&x, &x_true));
    }

    #[test]
    fn reordered_sweep_still_converges() {
        // GS depends on the sweep order; a permuted order is a *different*
        // but still convergent iteration for SPD systems.
        let a = spd();
        let n = a.nrows();
        let b = vec![1.0; n];
        let mut opts = FbmpkOptions::parallel(3);
        opts.reorder = Some(AbmcParams { nblocks: 8, ..Default::default() });
        let plan = FbmpkPlan::new(&a, opts).unwrap();
        let mut x = vec![0.0; n];
        for _ in 0..300 {
            plan.symgs_sweep(&b, &mut x);
        }
        let res: Vec<f64> = spmv_alloc(&a, &x).iter().zip(&b).map(|(ax, bi)| bi - ax).collect();
        assert!(norm2(&res) / norm2(&b) < 1e-9);
    }

    #[test]
    #[should_panic(expected = "nonzero diagonal")]
    fn zero_diagonal_rejected() {
        let a = Csr::from_dense(&[&[0.0, 1.0], &[1.0, 1.0]]);
        let plan = FbmpkPlan::new(&a, FbmpkOptions::default()).unwrap();
        let mut x = vec![0.0; 2];
        plan.symgs_sweep(&[1.0, 1.0], &mut x);
    }
}
